// Federation overhead under fault load: how much a degraded transport
// costs the monitor-driven synchronization loop. Sweeps a fixed 400-tick
// schedule over fault regimes — fault-free, 5% loss, 20% loss, and a
// permanent flap — plus a raw monitor-tick throughput sweep over synthetic
// source counts. Every run is seeded and logical-time based, so numbers
// vary only with machine speed, never with schedule luck.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "eve/eve_system.h"
#include "federation/monitor.h"
#include "federation/simulator.h"
#include "federation/transport.h"
#include "mkb/capability_change.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

EveSystem FreshSystem() {
  Mkb mkb = MakeTravelAgencyMkb().MoveValue();
  if (!AddAccidentInsPc(&mkb).ok()) std::abort();
  EveSystem system(std::move(mkb));
  if (!system.RegisterViewText(CustomerPassengersAsiaSql()).ok()) {
    std::abort();
  }
  return system;
}

// One full 400-tick schedule with two capability changes riding on top of
// the given per-tick fault rate (0 = fault-free). heal_within_lease keeps
// the comparison apples-to-apples: every regime ends all-healthy, so the
// measured delta is pure retry/backoff/breaker overhead.
void RunSchedule(benchmark::State& state, double fault_rate) {
  uint64_t probes = 0, failures = 0;
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    federation::SimOptions options;
    options.ticks = 400;
    options.seed = 7;
    options.fault_rate = fault_rate;
    options.heal_within_lease = true;
    federation::FederationSimulator sim(&system, options);
    sim.RandomizeFaults();
    sim.ScheduleChange(60, CapabilityChange::DeleteRelation("RentACar"));
    sim.ScheduleChange(120, CapabilityChange::DeleteRelation("Customer"));
    const Result<federation::SimResult> result = sim.Run();
    if (!result.ok() || !result->violations.empty()) {
      state.SkipWithError("fault schedule did not converge");
      return;
    }
    probes = result->stats.probes;
    failures = result->stats.failures;
    benchmark::DoNotOptimize(result->final_views.data());
  }
  state.counters["probes"] = static_cast<double>(probes);
  state.counters["failed_probes"] = static_cast<double>(failures);
}

void BM_ScheduleFaultFree(benchmark::State& state) {
  RunSchedule(state, 0.0);
}
BENCHMARK(BM_ScheduleFaultFree)->Unit(benchmark::kMillisecond);

void BM_ScheduleLoss5Percent(benchmark::State& state) {
  RunSchedule(state, 0.05);
}
BENCHMARK(BM_ScheduleLoss5Percent)->Unit(benchmark::kMillisecond);

void BM_ScheduleLoss20Percent(benchmark::State& state) {
  RunSchedule(state, 0.20);
}
BENCHMARK(BM_ScheduleLoss20Percent)->Unit(benchmark::kMillisecond);

// Every source flaps for the whole run: the alternating success half keeps
// leases alive, so this measures sustained retry churn, not departures.
void BM_ScheduleFlapAllSources(benchmark::State& state) {
  uint64_t failures = 0;
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    federation::SimOptions options;
    options.ticks = 400;
    federation::FederationSimulator sim(&system, options);
    for (const std::string& source :
         system.mkb().catalog().SourceNames()) {
      sim.ScheduleFault(
          source, {1, 400, federation::SimulatedTransport::FaultKind::kFlap});
    }
    const Result<federation::SimResult> result = sim.Run();
    if (!result.ok() || !result->violations.empty() ||
        result->stats.departures > 0) {
      state.SkipWithError("flap schedule did not converge");
      return;
    }
    failures = result->stats.failures;
    benchmark::DoNotOptimize(result->final_membership.data());
  }
  state.counters["failed_probes"] = static_cast<double>(failures);
}
BENCHMARK(BM_ScheduleFlapAllSources)->Unit(benchmark::kMillisecond);

// Raw monitor throughput: 100 healthy ticks over N synthetic sources (one
// relation each), no views and no faults — the fixed per-tick tax of just
// tracking a large federation.
void BM_MonitorTick(benchmark::State& state) {
  const int num_sources = static_cast<int>(state.range(0));
  std::string misd;
  for (int i = 0; i < num_sources; ++i) {
    misd += "SOURCE S" + std::to_string(i) + " RELATION R" +
            std::to_string(i) + " (Name string, X int)\n";
  }
  for (auto _ : state) {
    state.PauseTiming();
    EveSystem system{Mkb()};
    if (!system.ExtendMkb(misd).ok()) std::abort();
    federation::SimulatedTransport transport;
    federation::FederationMonitor monitor(&system, &transport);
    if (!monitor.TrackSources().ok()) std::abort();
    state.ResumeTiming();
    if (!monitor.AdvanceTo(100).ok()) std::abort();
    benchmark::DoNotOptimize(monitor.stats().probes);
  }
  state.counters["sources"] = static_cast<double>(num_sources);
}
BENCHMARK(BM_MonitorTick)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eve

BENCHMARK_MAIN();
