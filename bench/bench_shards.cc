// Sharded serving core: registration throughput, aggregate commit
// throughput at 1/4/16 shards on a disjoint-shard change stream, and
// pinned-snapshot read latency (p50/p99) while commits are in flight.
//
// The commit sweep is the acceptance benchmark for the sharded refactor:
// each change in the stream renames a payload attribute of one chain
// relation, and every view anchored on that relation is name-salted onto
// one 16-way hash shard, so a change touches exactly one shard's view
// partition. Shards the change does not touch commit their MKB replica
// through the shared-VIEWS fast path (O(MKB), no pool rendering), so in
// full-snapshot versioning mode per-commit rendering drops from O(pool)
// to O(pool / shards). That is per-commit WORK, not parallelism: this
// container has a single core, and the sweep's speedup is entirely
// explained by smaller version snapshots per shard.
//
// Before timing anything the binary replays the same change stream at 1,
// 4, and 16 shards and byte-compares every merged report; a mismatch is a
// determinism bug, so the whole binary refuses to produce numbers.
//
// Set EVE_BENCH_MILLION=1 to also run the million-view bulk-registration
// smoke (skipped by default to keep local runs quick).

#include <benchmark/benchmark.h>

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sharding.h"
#include "eve/sharded_system.h"
#include "mkb/capability_change.h"
#include "workload/generator.h"

namespace eve {
namespace {

constexpr size_t kChain = 32;
constexpr size_t kAlignShards = 16;
// The stream renames payloads of the last kHotRels chain relations; each
// hot relation anchors kHotViews views, all name-salted onto shard
// (relation % 16) of a 16-way partition. The rest of the pool is "cold":
// anchored on relations the stream never touches, so per-change CVS work
// is constant while the pool (and thus the 1-shard snapshot render) can
// grow arbitrarily.
constexpr size_t kHotRels = 16;
constexpr size_t kHotViews = 8;

Mkb BenchMkb() {
  ChainMkbSpec spec;
  spec.length = kChain;
  spec.cover_distance = 0;   // renames need no covers; keep the MKB lean
  spec.extra_attributes = 0;
  Result<Mkb> mkb = MakeChainMkb(spec);
  if (!mkb.ok()) {
    std::cerr << "chain MKB failed: " << mkb.status() << "\n";
    std::abort();
  }
  return mkb.MoveValue();
}

ViewDefinition SingleRelationView(std::string name, size_t r) {
  const std::string rel = "R" + std::to_string(r);
  const std::string payload = "P" + std::to_string(r);
  std::vector<ViewSelectItem> select;
  select.push_back(ViewSelectItem{Expr::Column(AttributeRef{rel, payload}),
                                  payload, EvolutionParams{false, true}});
  std::vector<ViewRelation> from;
  from.push_back(ViewRelation{rel, EvolutionParams{false, true}});
  return ViewDefinition(std::move(name), ViewExtent::kAny, std::move(select),
                        std::move(from), {});
}

// `num_cold` cold views over the first kChain - kHotRels relations plus
// kHotRels * kHotViews hot views, the hot ones salted so that renaming
// R_r's payload affects views on exactly one 16-way hash bucket — the
// disjoint-shard stream the sweep needs.
std::vector<ViewDefinition> AlignedPool(size_t num_cold) {
  std::vector<ViewDefinition> pool;
  pool.reserve(num_cold + kHotRels * kHotViews);
  for (size_t v = 0; v < num_cold; ++v) {
    pool.push_back(
        SingleRelationView("cv" + std::to_string(v), v % (kChain - kHotRels)));
  }
  size_t h = 0;
  for (size_t r = kChain - kHotRels; r < kChain; ++r) {
    for (size_t k = 0; k < kHotViews; ++k, ++h) {
      std::string name = "hv" + std::to_string(h);
      for (uint64_t salt = 0; ShardOf(name, kAlignShards) != r % kAlignShards;
           ++salt) {
        name = "hv" + std::to_string(h) + "_s" + std::to_string(salt);
      }
      pool.push_back(SingleRelationView(std::move(name), r));
    }
  }
  return pool;
}

// Change i of the stream renames a hot relation's payload attribute; the
// second lap renames it back, so the stream cycles forever without
// growing the MKB.
CapabilityChange StreamChange(size_t i) {
  const size_t r = kChain - kHotRels + (i % kHotRels);
  const std::string rel = "R" + std::to_string(r);
  const std::string payload = "P" + std::to_string(r);
  const bool forward = (i / kHotRels) % 2 == 0;
  return forward
             ? CapabilityChange::RenameAttribute(rel, payload, payload + "x")
             : CapabilityChange::RenameAttribute(rel, payload + "x", payload);
}

std::unique_ptr<ShardedEveSystem> FreshSystem(const Mkb& mkb, size_t shards,
                                              const std::vector<ViewDefinition>& pool) {
  auto system = std::make_unique<ShardedEveSystem>(mkb, CvsOptions{}, shards);
  system->SetReportUnaffected(false);  // reports O(affected), all counts
  const Status registered = system->RegisterViewsBulk(pool);
  if (!registered.ok()) {
    std::cerr << "bulk registration failed: " << registered << "\n";
    std::abort();
  }
  return system;
}

// Determinism gate: the merged reports for the same stream must be
// byte-identical at every shard count, or the numbers below are for a
// broken system.
void ValidateMergedReportDeterminism() {
  const Mkb mkb = BenchMkb();
  const std::vector<ViewDefinition> pool = AlignedPool(256);
  std::vector<std::string> reference;
  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    std::unique_ptr<ShardedEveSystem> system = FreshSystem(mkb, shards, pool);
    std::vector<std::string> reports;
    for (size_t i = 0; i < 4 * kHotRels; ++i) {
      Result<ChangeReport> report = system->ApplyChange(StreamChange(i));
      if (!report.ok()) {
        std::cerr << "stream change " << i << " failed at " << shards
                  << " shards: " << report.status() << "\n";
        std::abort();
      }
      reports.push_back(report.value().ToString());
    }
    if (reference.empty()) {
      reference = std::move(reports);
    } else if (reports != reference) {
      std::cerr << "merged reports diverge at " << shards << " shards\n";
      std::abort();
    }
  }
}

// Bulk registration throughput: one RegisterViewsBulk of the whole pool,
// partitioned across shards; items/s = views registered per second.
void BM_BulkRegistration(benchmark::State& state) {
  const Mkb mkb = BenchMkb();
  const std::vector<ViewDefinition> pool = AlignedPool(4096);
  const size_t shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto system = std::make_unique<ShardedEveSystem>(mkb, CvsOptions{}, shards);
    system->SetReportUnaffected(false);
    state.ResumeTiming();
    if (!system->RegisterViewsBulk(pool).ok()) std::abort();
    state.PauseTiming();
    system.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pool.size()));
  state.counters["views"] = static_cast<double>(pool.size());
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_BulkRegistration)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The acceptance sweep: aggregate ApplyChange throughput on the
// disjoint-shard rename stream, full-snapshot versioning (the default),
// at 1 / 4 / 16 shards. items/s = committed changes per second.
void BM_DisjointCommitThroughput(benchmark::State& state) {
  const Mkb mkb = BenchMkb();
  const std::vector<ViewDefinition> pool = AlignedPool(16384);
  const size_t shards = static_cast<size_t>(state.range(0));
  std::unique_ptr<ShardedEveSystem> system = FreshSystem(mkb, shards, pool);
  size_t i = 0;
  for (auto _ : state) {
    Result<ChangeReport> report = system->ApplyChange(StreamChange(i++));
    if (!report.ok()) {
      std::cerr << "commit failed: " << report.status() << "\n";
      std::abort();
    }
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["views"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_DisjointCommitThroughput)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Pinned-snapshot reads while a writer commits the rename stream as fast
// as it can. Each iteration pins the published snapshot (one atomic
// load) and reads through it; per-read latency is collected by hand so
// the counters can report p50/p99 and how many reads completed while a
// commit was in flight. Zero-blocking evidence: reads overlapping a
// commit complete orders of magnitude faster than the commit itself —
// they never wait for it.
void BM_PinnedReadDuringCommits(benchmark::State& state) {
  using Clock = std::chrono::steady_clock;
  const Mkb mkb = BenchMkb();
  const std::vector<ViewDefinition> pool = AlignedPool(2048);
  std::unique_ptr<ShardedEveSystem> system = FreshSystem(mkb, 16, pool);

  std::atomic<bool> stop{false};
  std::atomic<bool> in_commit{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> commit_ns{0};
  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const CapabilityChange change = StreamChange(i++);
      const Clock::time_point t0 = Clock::now();
      in_commit.store(true, std::memory_order_release);
      if (!system->ApplyChange(change).ok()) std::abort();
      in_commit.store(false, std::memory_order_release);
      commit_ns.fetch_add(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
      commits.fetch_add(1);
    }
  });

  std::vector<uint64_t> latencies;
  latencies.reserve(1 << 20);
  uint64_t reads_during_commit = 0;
  uint64_t epoch_floor = 0;
  for (auto _ : state) {
    const bool overlapped = in_commit.load(std::memory_order_acquire);
    const Clock::time_point t0 = Clock::now();
    const std::shared_ptr<const ShardedSnapshot> snap = system->PinPublished();
    // Read through the pin: the epoch must never run backwards.
    if (snap->epoch < epoch_floor) std::abort();
    epoch_floor = snap->epoch;
    benchmark::DoNotOptimize(snap);
    latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count()));
    if (overlapped) ++reads_during_commit;
  }
  stop.store(true);
  writer.join();

  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&latencies](double p) {
    if (latencies.empty()) return 0.0;
    const size_t idx = std::min(
        latencies.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies.size())));
    return static_cast<double>(latencies[idx]);
  };
  state.counters["read_p50_ns"] = pct(0.50);
  state.counters["read_p99_ns"] = pct(0.99);
  state.counters["reads_during_commit"] =
      static_cast<double>(reads_during_commit);
  state.counters["commits_during_run"] =
      static_cast<double>(commits.load());
  state.counters["mean_commit_ns"] =
      commits.load() == 0
          ? 0.0
          : static_cast<double>(commit_ns.load()) /
                static_cast<double>(commits.load());
}
BENCHMARK(BM_PinnedReadDuringCommits)->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

// Million-view bulk registration (EVE_BENCH_MILLION=1): the ISSUE-target
// pool size, MKB-only versioning so version commits stay O(MKB).
void BM_MillionViewRegistration(benchmark::State& state) {
  const Mkb mkb = BenchMkb();
  ViewPoolSpec spec;
  spec.num_views = 1000000;
  spec.zipf_s = 1.1;
  spec.max_span = 1;
  spec.seed = 7;
  const std::vector<ViewDefinition> pool = MakeViewPool(mkb, spec).MoveValue();
  for (auto _ : state) {
    state.PauseTiming();
    auto system = std::make_unique<ShardedEveSystem>(mkb, CvsOptions{}, 16);
    system->SetVersioningMode(VersioningMode::kMkbOnly);
    system->SetReportUnaffected(false);
    state.ResumeTiming();
    if (!system->RegisterViewsBulk(pool).ok()) std::abort();
    if (system->NumViews() != spec.num_views) std::abort();
    state.PauseTiming();
    system.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(spec.num_views));
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::ValidateMergedReportDeterminism();
  if (const char* million = std::getenv("EVE_BENCH_MILLION");
      million != nullptr && std::string(million) == "1") {
    ::benchmark::RegisterBenchmark("BM_MillionViewRegistration",
                                   &eve::BM_MillionViewRegistration)
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
