// E6: CVS vs the one-step-away SVS baseline. The paper's motivating claim
// is that chaining multiple join constraints preserves views the simple
// approach loses. We sweep the join distance between the surviving view
// relation and the cover of the deleted relation's attribute: SVS succeeds
// only at distance <= 2 (a direct edge), CVS keeps succeeding until the
// search bound, and the preservation-rate table shows the crossover.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "cvs/svs_baseline.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

struct Scenario {
  Mkb mkb;
  Mkb mkb_prime;
  ViewDefinition view;
};

// Chain R0-R1-...-R9 with skip edges; the view joins R0 and R1; deleting
// R1 forces a rewrite whose cover for R1.P1 sits on R{1+distance}.
Scenario MakeScenario(size_t cover_distance) {
  Scenario s;
  ChainMkbSpec spec;
  spec.length = 10;
  spec.skip_edges = true;
  spec.cover_distance = cover_distance;
  s.mkb = MakeChainMkb(spec).MoveValue();
  s.view = MakeChainView(s.mkb, 0, 2).MoveValue();
  s.mkb_prime = EvolveMkb(s.mkb, CapabilityChange::DeleteRelation("R1"))
                    .MoveValue()
                    .mkb;
  return s;
}

void PrintReproduction() {
  std::cout << "=== E6: CVS vs SVS (one-step-away) preservation ===\n"
            << "chain federation, view over {R0, R1}, change: "
               "delete-relation R1; cover of R1.P1 at varying join "
               "distance from R0\n\n";
  std::printf("%-16s %-18s %-18s %s\n", "cover distance", "SVS preserved",
              "CVS preserved", "CVS rewritings");
  for (size_t distance = 1; distance <= 6; ++distance) {
    const Scenario s = MakeScenario(distance);
    const Result<CvsResult> svs =
        SvsSynchronizeDeleteRelation(s.view, "R1", s.mkb, s.mkb_prime);
    CvsOptions deep;
    deep.replacement.max_extra_relations = 6;
    const Result<CvsResult> cvs =
        SynchronizeDeleteRelation(s.view, "R1", s.mkb, s.mkb_prime, deep);
    if (!svs.ok() || !cvs.ok()) {
      std::cerr << svs.status() << " / " << cvs.status() << std::endl;
      std::exit(1);
    }
    std::printf("%-16zu %-18s %-18s %zu\n", distance,
                svs.value().ViewPreserved() ? "yes" : "NO",
                cvs.value().ViewPreserved() ? "yes" : "NO",
                cvs.value().rewritings.size());
  }
  std::cout << "\nexpected shape: SVS only survives while the cover is "
               "directly joinable to R0 (distance 1, via the R0-R2 skip "
               "edge); CVS follows chains of join constraints and keeps "
               "preserving the view at every distance (paper Sec. 1: "
               "'possibly complex view rewrites through multiple join "
               "constraints').\n\n";
}

void RunSynchronization(benchmark::State& state, bool use_svs) {
  const size_t distance = static_cast<size_t>(state.range(0));
  const Scenario s = MakeScenario(distance);
  CvsOptions options;
  options.replacement.max_extra_relations = use_svs ? 0 : 6;
  size_t preserved = 0;
  for (auto _ : state) {
    const Result<CvsResult> result =
        SynchronizeDeleteRelation(s.view, "R1", s.mkb, s.mkb_prime, options);
    preserved += result.ok() && result.value().ViewPreserved() ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["preserved"] =
      benchmark::Counter(static_cast<double>(preserved),
                         benchmark::Counter::kAvgIterations);
}

void BM_Svs(benchmark::State& state) { RunSynchronization(state, true); }
BENCHMARK(BM_Svs)->DenseRange(1, 5, 1);

void BM_Cvs(benchmark::State& state) { RunSynchronization(state, false); }
BENCHMARK(BM_Cvs)->DenseRange(1, 5, 1);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
