// E5 / Fig. 3: the E-SQL evolution-parameter semantics. Sweeps every
// (dispensable, replaceable) combination on the attribute, condition and
// relation of a canonical view under "delete-relation Customer" and prints
// the outcome matrix (preserved / dropped / disabled) that Fig. 3's
// parameter table implies. Then times synchronization per configuration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

struct Fixture {
  Mkb mkb;
  Mkb mkb_prime;
};

Fixture MakeFixture() {
  Fixture f;
  f.mkb = MakeTravelAgencyMkb().MoveValue();
  f.mkb_prime =
      EvolveMkb(f.mkb, CapabilityChange::DeleteRelation("Customer"))
          .MoveValue()
          .mkb;
  return f;
}

// The canonical probe view: one Customer attribute, one Customer-related
// condition, joined with FlightRes.
ViewDefinition ProbeView(const Mkb& mkb, EvolutionParams attr,
                         EvolutionParams rel) {
  ViewDefinition view = ParseAndBindView(
                            "CREATE VIEW Probe AS "
                            "SELECT C.Name, F.Airline (true, true) "
                            "FROM Customer C, FlightRes F "
                            "WHERE C.Name = F.PName",
                            mkb.catalog())
                            .MoveValue();
  (*view.mutable_select())[0].params = attr;
  (*view.mutable_from())[0].params = rel;
  return view;
}

const char* Describe(const CvsResult& result) {
  if (result.rewritings.empty()) return "DISABLED";
  const SynchronizedView& best = result.rewritings.front();
  if (best.is_drop) return "preserved (drop)";
  // Did the Name item survive?
  for (const ViewSelectItem& item : best.view.select()) {
    if (item.output_name == "Name") return "preserved (replaced)";
  }
  return "preserved (attr dropped)";
}

void PrintReproduction() {
  Fixture f = MakeFixture();
  std::cout << "=== E5 / Fig. 3: evolution-parameter semantics under "
               "delete-relation Customer ===\n";
  std::printf("%-28s %-28s %s\n", "attribute (AD, AR)", "relation (RD, RR)",
              "outcome");
  const bool flags[] = {false, true};
  for (const bool ad : flags) {
    for (const bool ar : flags) {
      for (const bool rd : flags) {
        for (const bool rr : flags) {
          const ViewDefinition view = ProbeView(
              f.mkb, EvolutionParams{ad, ar}, EvolutionParams{rd, rr});
          const Result<CvsResult> result = SynchronizeDeleteRelation(
              view, "Customer", f.mkb, f.mkb_prime);
          if (!result.ok()) {
            std::cerr << result.status() << std::endl;
            std::exit(1);
          }
          char attr_desc[32];
          char rel_desc[32];
          std::snprintf(attr_desc, sizeof(attr_desc), "(%s, %s)",
                        ad ? "true" : "false", ar ? "true" : "false");
          std::snprintf(rel_desc, sizeof(rel_desc), "(%s, %s)",
                        rd ? "true" : "false", rr ? "true" : "false");
          std::printf("%-28s %-28s %s\n", attr_desc, rel_desc,
                      Describe(result.value()));
        }
      }
    }
  }
  std::cout << "\nexpected per Fig. 3: an indispensable non-replaceable "
               "attribute (false,false) disables the view under every "
               "relation setting; a non-replaceable relation (RR=false) "
               "blocks the replacement path entirely; with RR=true, "
               "replaceable attributes are rewritten and dispensable "
               "non-replaceable ones are dropped.\n\n";
}

void BM_SynchronizeReplaceablePath(benchmark::State& state) {
  Fixture f = MakeFixture();
  const ViewDefinition view = ProbeView(f.mkb, EvolutionParams{false, true},
                                        EvolutionParams{false, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "Customer", f.mkb, f.mkb_prime));
  }
}
BENCHMARK(BM_SynchronizeReplaceablePath);

void BM_SynchronizeDropPath(benchmark::State& state) {
  Fixture f = MakeFixture();
  const ViewDefinition view = ProbeView(f.mkb, EvolutionParams{true, true},
                                        EvolutionParams{true, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "Customer", f.mkb, f.mkb_prime));
  }
}
BENCHMARK(BM_SynchronizeDropPath);

void BM_SynchronizeDisabledPath(benchmark::State& state) {
  Fixture f = MakeFixture();
  const ViewDefinition view = ProbeView(f.mkb, EvolutionParams{false, false},
                                        EvolutionParams{false, false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "Customer", f.mkb, f.mkb_prime));
  }
}
BENCHMARK(BM_SynchronizeDisabledPath);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
