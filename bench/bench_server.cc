// bench_server: closed-loop chaos load harness for the eved serving loop.
//
// Forks a net::Server into a child process (so the 10k client sockets and
// the 10k server sockets each get their own fd table), connects N
// concurrent sessions (default 10,000), and drives a closed loop: every
// session keeps exactly one statement in flight and sends the next the
// instant its response arrives. A deterministic slice of the sessions
// misbehaves on a scripted schedule instead of talking the protocol:
//
//   disconnect  writes half a frame, hangs up, reconnects, repeats
//   stall       writes half a frame and goes silent (slow-loris bait:
//               the server must evict it, it reconnects and stalls again)
//   flood       claims a 2 MiB payload and pours junk until the read-
//               buffer bound evicts it, then reconnects
//
// The run fails (exit 1) if the server crashes, if any well-behaved
// session observes a protocol violation, or if fewer sessions than
// requested reach the concurrent plateau. Results — latency p50/p99 over
// the well-behaved requests, throughput, and the server's shed/evict/
// resync counters — are written as JSON (default BENCH_server.json).
//
// Usage:
//   bench_server [--sessions N] [--duration-seconds S] [--workers N]
//                [--drivers N] [--out PATH]
//
// Client I/O runs on a few driver threads, each owning an epoll set of
// nonblocking connections — the same pattern as the server side, so the
// harness itself scales to tens of thousands of sockets.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/console.h"
#include "net/protocol.h"
#include "net/server.h"

namespace eve {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RaiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

enum class ChaosMode { kNormal, kDisconnect, kStall, kFlood };

// One client connection owned by a driver thread.
struct Conn {
  int fd = -1;
  ChaosMode mode = ChaosMode::kNormal;
  net::FrameDecoder decoder;
  std::string outbox;  // unsent bytes (partial writes under pressure)
  uint64_t sent_micros = 0;
  uint64_t request_id = 0;
  uint64_t next_action_micros = 0;  // chaos pacing
  bool in_flight = false;
};

struct DriverStats {
  std::vector<uint32_t> latencies_micros;
  uint64_t completed = 0;
  uint64_t sheds = 0;       // kResourceExhausted responses (resent)
  uint64_t failures = 0;    // non-ok, non-shed statement outcomes
  uint64_t reconnects = 0;  // chaos + eviction recoveries
  uint64_t protocol_errors = 0;
};

int ConnectNonblocking(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
}

// Half of a valid request frame: the torn-write / slow-loris payload.
std::string HalfFrame() {
  const std::string whole = net::EncodeFrame(
      net::FrameType::kRequest,
      net::EncodeRequest(net::Request{1, 0, 0, "SHOW MKB"}));
  return whole.substr(0, whole.size() / 2);
}

// A header claiming 2 MiB, so the junk that follows stays one partial
// frame until the server's read-buffer bound evicts the session.
std::string FloodHeader() {
  std::string header = net::EncodeFrame(net::FrameType::kRequest, "x");
  const uint32_t huge = 2u << 20;
  header[5] = static_cast<char>(huge & 0xff);
  header[6] = static_cast<char>((huge >> 8) & 0xff);
  header[7] = static_cast<char>((huge >> 16) & 0xff);
  header[8] = static_cast<char>((huge >> 24) & 0xff);
  return header.substr(0, net::kHeaderSize);
}

class Driver {
 public:
  Driver(uint16_t port, size_t conns, size_t index_offset,
         uint64_t deadline_micros)
      : port_(port), deadline_micros_(deadline_micros) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    conns_.resize(conns);
    for (size_t i = 0; i < conns; ++i) {
      // ~3% of sessions misbehave, spread deterministically.
      const size_t global = index_offset + i;
      switch (global % 100) {
        case 0: conns_[i].mode = ChaosMode::kDisconnect; break;
        case 1: conns_[i].mode = ChaosMode::kStall; break;
        case 2: conns_[i].mode = ChaosMode::kFlood; break;
        default: conns_[i].mode = ChaosMode::kNormal; break;
      }
    }
  }

  ~Driver() {
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  // Establishes every connection and sends the opening payload.
  bool ConnectAll() {
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (!Reconnect(i)) return false;
    }
    return true;
  }

  void Run() {
    std::vector<epoll_event> events(1024);
    while (NowMicros() < deadline_micros_) {
      const int n =
          ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), 50 /*ms*/);
      for (int i = 0; i < n; ++i) {
        const size_t index = static_cast<size_t>(events[i].data.u64);
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          HandleClosed(index);
          continue;
        }
        if (events[i].events & EPOLLOUT) FlushOutbox(index);
        if (events[i].events & EPOLLIN) HandleReadable(index);
      }
      PumpChaos();
    }
  }

  DriverStats& stats() { return stats_; }

 private:
  // (Re)connects conns_[index] and kicks off its behavior.
  bool Reconnect(size_t index) {
    Conn& conn = conns_[index];
    if (conn.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      ::close(conn.fd);
      ++stats_.reconnects;
    }
    conn.fd = ConnectNonblocking(port_);
    if (conn.fd < 0) return false;
    conn.decoder = net::FrameDecoder();
    conn.outbox.clear();
    conn.in_flight = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = index;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) < 0) return false;
    Kickoff(index);
    return true;
  }

  void Kickoff(size_t index) {
    Conn& conn = conns_[index];
    switch (conn.mode) {
      case ChaosMode::kNormal:
        SendNextRequest(index);
        break;
      case ChaosMode::kDisconnect:
        // Torn write now; the hangup happens on the next chaos tick so
        // the bytes actually leave before the RST.
        Send(index, HalfFrame());
        conn.next_action_micros = NowMicros() + 20'000;
        break;
      case ChaosMode::kStall:
        // Half a frame, then silence: the server's slow-loris sweep must
        // evict us; HandleClosed reconnects and stalls again.
        Send(index, HalfFrame());
        conn.next_action_micros = 0;
        break;
      case ChaosMode::kFlood:
        Send(index, FloodHeader() + std::string(96 * 1024, 'z'));
        conn.next_action_micros = NowMicros() + 10'000;
        break;
    }
  }

  void SendNextRequest(size_t index) {
    Conn& conn = conns_[index];
    net::Request request;
    request.id = ++conn.request_id;
    // Mostly snapshot reads (the shared-lock fast path), with a slice of
    // exclusive-lock statements so both classes are always in flight.
    request.statement =
        (conn.request_id % 16 == 0) ? "SHOW SYNC STATS" : "SHOW VIEWS";
    conn.sent_micros = NowMicros();
    conn.in_flight = true;
    Send(index, net::EncodeFrame(net::FrameType::kRequest,
                                 net::EncodeRequest(request)));
  }

  void Send(size_t index, std::string bytes) {
    Conn& conn = conns_[index];
    conn.outbox += bytes;
    FlushOutbox(index);
  }

  void FlushOutbox(size_t index) {
    Conn& conn = conns_[index];
    size_t off = 0;
    while (off < conn.outbox.size()) {
      const ssize_t n = ::send(conn.fd, conn.outbox.data() + off,
                               conn.outbox.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN (wait for EPOLLOUT) or a dead peer (EPOLLHUP soon)
    }
    conn.outbox.erase(0, off);
    epoll_event ev{};
    ev.events = conn.outbox.empty() ? EPOLLIN : (EPOLLIN | EPOLLOUT);
    ev.data.u64 = index;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void HandleReadable(size_t index) {
    Conn& conn = conns_[index];
    char buf[65536];
    while (true) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n == 0) {
        HandleClosed(index);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        HandleClosed(index);
        return;
      }
      conn.decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
    while (std::optional<net::Frame> frame = conn.decoder.Next()) {
      if (frame->type == net::FrameType::kGoodbye) {
        HandleClosed(index);
        return;
      }
      if (frame->type != net::FrameType::kResponse) continue;
      Result<net::Response> response = net::DecodeResponse(frame->payload);
      if (!response.ok() || !conn.in_flight ||
          response.value().id != conn.request_id) {
        ++stats_.protocol_errors;
        continue;
      }
      conn.in_flight = false;
      if (response.value().code ==
          static_cast<int32_t>(StatusCode::kResourceExhausted)) {
        ++stats_.sheds;  // expected under overload: resend, closed-loop
      } else if (response.value().code != 0) {
        ++stats_.failures;
      } else {
        ++stats_.completed;
        stats_.latencies_micros.push_back(static_cast<uint32_t>(
            std::min<uint64_t>(NowMicros() - conn.sent_micros, UINT32_MAX)));
      }
      SendNextRequest(index);
    }
  }

  void HandleClosed(size_t index) {
    // Expected for chaos sessions (the server evicted us — that is the
    // point); well-behaved sessions reconnect and keep the loop closed.
    if (!Reconnect(index)) conns_[index].fd = -1;
  }

  void PumpChaos() {
    const uint64_t now = NowMicros();
    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn& conn = conns_[i];
      if (conn.fd < 0) {
        if (!Reconnect(i)) conn.fd = -1;
        continue;
      }
      if (conn.next_action_micros == 0 || now < conn.next_action_micros) {
        continue;
      }
      switch (conn.mode) {
        case ChaosMode::kDisconnect:
          // Hang up mid-frame, reconnect, tear again.
          HandleClosed(i);
          break;
        case ChaosMode::kFlood:
          // Keep pouring junk until the server cuts us off.
          Send(i, std::string(96 * 1024, 'z'));
          conn.next_action_micros = now + 10'000;
          break;
        default:
          conn.next_action_micros = 0;
          break;
      }
    }
  }

  const uint16_t port_;
  const uint64_t deadline_micros_;
  int epoll_fd_ = -1;
  std::vector<Conn> conns_;
  DriverStats stats_;
};

uint32_t Percentile(std::vector<uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return sorted[index];
}

// Forks the server into a child process with its own fd table; the child
// serves until the parent kills it. Returns the child pid and sets
// `port_out` once the child is listening.
pid_t ForkServer(size_t workers, uint16_t* port_out) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RaiseFdLimit();
    net::Console console;
    {
      std::ostringstream out;
      std::ostringstream err;
      const std::vector<std::string> setup = {
          "DEFINE SOURCE IS1 RELATION Customer (Name string, Age int)",
          "DEFINE SOURCE IS2 RELATION FlightRes (PName string, Dest string)",
          "CREATE VIEW V1 (VE = ~) AS SELECT C.Name (true, true), "
          "C.Age (true, true) FROM Customer C (true, true) "
          "WHERE (C.Age = 30) (true, true)",
      };
      for (const std::string& statement : setup) {
        if (!console.Run(statement, out, err)) {
          std::cerr << "setup failed: " << err.str() << "\n";
          ::_exit(1);
        }
      }
    }
    net::ServerOptions options;
    options.worker_threads = workers;
    options.idle_timeout_micros = 1'000'000;  // evict stalls within 1s
    net::Server server(&console, options);
    const Status started = server.Start();
    if (!started.ok()) {
      std::cerr << "server start failed: " << started << "\n";
      ::_exit(1);
    }
    const uint16_t port = server.port();
    if (::write(pipe_fds[1], &port, sizeof(port)) != sizeof(port)) {
      ::_exit(1);
    }
    ::close(pipe_fds[1]);
    server.WaitUntilStopped();  // runs until the parent kills the process
    ::_exit(0);
  }
  ::close(pipe_fds[1]);
  uint16_t port = 0;
  const ssize_t n = ::read(pipe_fds[0], &port, sizeof(port));
  ::close(pipe_fds[0]);
  if (n != sizeof(port)) return -1;
  *port_out = port;
  return pid;
}

// Pulls one counter out of a "key=value key=value ..." stats line.
uint64_t StatsField(const std::string& text, const std::string& key) {
  const size_t at = text.find(key + "=");
  if (at == std::string::npos) return 0;
  return static_cast<uint64_t>(
      std::atoll(text.c_str() + at + key.size() + 1));
}

// One SHOW SERVER STATS round trip on a dedicated connection.
bool QueryServerStats(uint16_t port, std::string* stats_line) {
  const int fd = ConnectNonblocking(port);
  if (fd < 0) return false;
  // Blocking semantics are fine here: flip the socket back.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) & ~O_NONBLOCK);
  const std::string wire = net::EncodeFrame(
      net::FrameType::kRequest,
      net::EncodeRequest(net::Request{1, 0, 0, "SHOW SERVER STATS"}));
  if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(wire.size())) {
    ::close(fd);
    return false;
  }
  net::FrameDecoder decoder;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    if (std::optional<net::Frame> frame = decoder.Next()) {
      ::close(fd);
      Result<net::Response> response = net::DecodeResponse(frame->payload);
      if (!response.ok()) return false;
      *stats_line = response.value().output;
      return true;
    }
  }
}

int Main(int argc, char** argv) {
  size_t sessions = 10'000;
  size_t duration_seconds = 8;
  size_t workers = 8;
  size_t drivers = 4;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sessions" && has_value) {
      sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--duration-seconds" && has_value) {
      duration_seconds = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--workers" && has_value) {
      workers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--drivers" && has_value) {
      drivers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_server [--sessions N] "
                   "[--duration-seconds S] [--workers N] [--drivers N] "
                   "[--out PATH]\n";
      return 2;
    }
  }
  RaiseFdLimit();
  // A chaos peer can reset its socket between our poll and our write;
  // that must surface as EPIPE, not kill the harness.
  ::signal(SIGPIPE, SIG_IGN);

  uint16_t port = 0;
  const pid_t server_pid = ForkServer(workers, &port);
  if (server_pid < 0) {
    std::cerr << "failed to fork the server child\n";
    return 1;
  }

  const uint64_t bench_start = NowMicros();
  const uint64_t deadline =
      bench_start + duration_seconds * 1'000'000ull;
  std::vector<std::unique_ptr<Driver>> fleet;
  size_t assigned = 0;
  for (size_t d = 0; d < drivers; ++d) {
    const size_t share =
        sessions / drivers + (d < sessions % drivers ? 1 : 0);
    fleet.push_back(
        std::make_unique<Driver>(port, share, assigned, deadline));
    assigned += share;
  }
  std::cerr << "connecting " << sessions << " sessions...\n";
  for (auto& driver : fleet) {
    if (!driver->ConnectAll()) {
      std::cerr << "connect storm failed (fd limit?)\n";
      ::kill(server_pid, SIGKILL);
      return 1;
    }
  }

  // Sample the concurrent-session plateau over the wire while the
  // drivers run (SHOW SERVER STATS is answered on the I/O thread, so it
  // works even with every worker busy).
  std::atomic<uint64_t> peak_sessions{0};
  std::vector<std::thread> threads;
  for (auto& driver : fleet) {
    threads.emplace_back([&driver] { driver->Run(); });
  }
  std::thread sampler([&] {
    while (NowMicros() < deadline) {
      std::string line;
      if (QueryServerStats(port, &line)) {
        peak_sessions.store(std::max(peak_sessions.load(),
                                     StatsField(line, "sessions_now")));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  for (std::thread& thread : threads) thread.join();
  sampler.join();
  const uint64_t elapsed_micros = NowMicros() - bench_start;

  // Final counters over the wire, then judge the child's health: alive
  // means zero (simulated or real) crashes across the whole schedule.
  std::string stats_line;
  const bool stats_ok = QueryServerStats(port, &stats_line);
  int child_status = 0;
  const bool child_alive =
      ::waitpid(server_pid, &child_status, WNOHANG) == 0;
  ::kill(server_pid, SIGKILL);
  ::waitpid(server_pid, nullptr, 0);
  const bool crashed = !child_alive || !stats_ok;

  net::ServerStats server_stats;
  server_stats.accepted = StatsField(stats_line, "accepted");
  server_stats.refused = StatsField(stats_line, "refused");
  server_stats.shed_overload = StatsField(stats_line, "shed_overload");
  server_stats.evicted_slow_loris =
      StatsField(stats_line, "evicted_slow_loris");
  server_stats.evicted_overflow = StatsField(stats_line, "evicted_overflow");
  server_stats.evicted_io_error = StatsField(stats_line, "evicted_io_error");
  server_stats.resyncs = StatsField(stats_line, "resyncs");
  server_stats.crc_failures = StatsField(stats_line, "crc_failures");

  DriverStats total;
  for (auto& driver : fleet) {
    DriverStats& stats = driver->stats();
    total.completed += stats.completed;
    total.sheds += stats.sheds;
    total.failures += stats.failures;
    total.reconnects += stats.reconnects;
    total.protocol_errors += stats.protocol_errors;
    total.latencies_micros.insert(total.latencies_micros.end(),
                                  stats.latencies_micros.begin(),
                                  stats.latencies_micros.end());
  }
  std::sort(total.latencies_micros.begin(), total.latencies_micros.end());
  const uint32_t p50 = Percentile(total.latencies_micros, 0.50);
  const uint32_t p99 = Percentile(total.latencies_micros, 0.99);
  const double seconds = static_cast<double>(elapsed_micros) / 1e6;
  const double rps =
      seconds > 0 ? static_cast<double>(total.completed) / seconds : 0;

  const bool ok = !crashed && total.protocol_errors == 0 &&
                  total.failures == 0 &&
                  peak_sessions.load() >= sessions;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"description\": \"Closed-loop chaos load against a forked"
         " eved server child: every session keeps one statement in"
         " flight; ~3% of sessions run scripted faults (disconnect"
         " mid-frame, slow-loris stall, flood).\",\n"
      << "  \"sessions\": " << sessions << ",\n"
      << "  \"peak_concurrent_sessions\": " << peak_sessions.load() << ",\n"
      << "  \"duration_seconds\": " << seconds << ",\n"
      << "  \"requests_completed\": " << total.completed << ",\n"
      << "  \"throughput_rps\": " << static_cast<uint64_t>(rps) << ",\n"
      << "  \"latency_p50_micros\": " << p50 << ",\n"
      << "  \"latency_p99_micros\": " << p99 << ",\n"
      << "  \"client\": {\"sheds_observed\": " << total.sheds
      << ", \"statement_failures\": " << total.failures
      << ", \"reconnects\": " << total.reconnects
      << ", \"protocol_errors\": " << total.protocol_errors << "},\n"
      << "  \"server\": {\"accepted\": " << server_stats.accepted
      << ", \"refused\": " << server_stats.refused
      << ", \"shed_overload\": " << server_stats.shed_overload
      << ", \"evicted_slow_loris\": " << server_stats.evicted_slow_loris
      << ", \"evicted_overflow\": " << server_stats.evicted_overflow
      << ", \"evicted_io_error\": " << server_stats.evicted_io_error
      << ", \"resyncs\": " << server_stats.resyncs
      << ", \"crc_failures\": " << server_stats.crc_failures << "},\n"
      << "  \"server_alive_at_end\": " << (child_alive ? "true" : "false")
      << ",\n"
      << "  \"zero_crashes\": " << (crashed ? "false" : "true") << ",\n"
      << "  \"passed\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::cout << "BENCHSUMMARY suite=server out=" << out_path
            << " sessions=" << sessions
            << " peak_concurrent=" << peak_sessions.load()
            << " rps=" << static_cast<uint64_t>(rps) << " p50_us=" << p50
            << " p99_us=" << p99
            << " slow_loris_evictions=" << server_stats.evicted_slow_loris
            << " overflow_evictions=" << server_stats.evicted_overflow
            << " zero_crashes=" << (crashed ? "false" : "true")
            << " passed=" << (ok ? "true" : "false") << std::endl;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
