// E4 / Ex. 5-10: the paper's central walk-through — "delete-relation
// Customer" against Customer-Passengers-Asia (Eq. 5). Prints the R-mapping
// (Ex. 8 / Eq. 11-12), the covers and candidates (Ex. 9), and the final
// rewritings (Ex. 10 / Eq. 13), then measures each CVS stage.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "esql/binder.h"
#include "hypergraph/join_graph.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

struct Fixture {
  Mkb mkb;
  Mkb mkb_prime;
  ViewDefinition view;
};

Fixture MakeFixture() {
  Fixture f;
  f.mkb = MakeTravelAgencyMkb().MoveValue();
  Status status = AddAccidentInsPc(&f.mkb);
  if (!status.ok()) {
    std::cerr << status << std::endl;
    std::exit(1);
  }
  f.view = ParseAndBindView(CustomerPassengersAsiaSql(), f.mkb.catalog())
               .MoveValue();
  f.mkb_prime =
      EvolveMkb(f.mkb, CapabilityChange::DeleteRelation("Customer"))
          .MoveValue()
          .mkb;
  return f;
}

void PrintReproduction() {
  Fixture f = MakeFixture();
  std::cout << "=== E4 / Ex. 5-10: delete-relation Customer ===\n"
            << "view (paper Eq. 5):\n"
            << f.view.ToString() << "\n\n";

  // Ex. 8 / Eq. 11-12.
  const RMapping mapping =
      ComputeRMapping(f.view, "Customer", f.mkb).MoveValue();
  std::cout << "--- R-mapping (paper Ex. 8) ---\n"
            << mapping.ToString() << "\n"
            << "paper: Min(H_Customer) = FlightRes ⋈[JC1] Customer, "
               "C_{Max/Min} = (FlightRes.Dest = 'Asia')\n\n";

  // Ex. 9: covers and candidates.
  const JoinGraph graph_prime = JoinGraph::Build(f.mkb_prime);
  std::cout << "--- covers of Customer.Name (paper Ex. 9 Step 1) ---\n";
  for (const FunctionOfConstraint* fc :
       f.mkb.CoversOf({"Customer", "Name"})) {
    std::cout << "  " << fc->ToString() << "\n";
  }
  const auto candidates =
      ComputeRReplacements(f.view, mapping, f.mkb, graph_prime, {})
          .MoveValue();
  std::cout << "--- R-replacement candidates (paper Ex. 9) ---\n";
  for (const ReplacementCandidate& candidate : candidates) {
    std::cout << candidate.ToString() << "\n";
  }
  std::cout << "paper: the Participant cover (F4) is rejected — no "
               "connected path in H'(MKB') contains it together with "
               "FlightRes.\n\n";

  // Ex. 10 / Eq. 13.
  const CvsResult result =
      SynchronizeDeleteRelation(f.view, "Customer", f.mkb, f.mkb_prime)
          .MoveValue();
  std::cout << "--- legal rewritings (paper Ex. 10) ---\n";
  for (const SynchronizedView& rewriting : result.rewritings) {
    std::cout << rewriting.ToString() << "\n\n";
  }
  std::cout << "paper Eq. (13) shape: Name -> Accident-Ins.Holder, Age -> "
               "(today - Birthday)/365, join via JC6.\n\n";
}

void BM_RMapping(benchmark::State& state) {
  const Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeRMapping(f.view, "Customer", f.mkb));
  }
}
BENCHMARK(BM_RMapping);

void BM_RReplacement(benchmark::State& state) {
  const Fixture f = MakeFixture();
  const RMapping mapping =
      ComputeRMapping(f.view, "Customer", f.mkb).MoveValue();
  const JoinGraph graph_prime = JoinGraph::Build(f.mkb_prime);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeRReplacements(f.view, mapping, f.mkb, graph_prime, {}));
  }
}
BENCHMARK(BM_RReplacement);

void BM_FullCvs(benchmark::State& state) {
  const Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(f.view, "Customer", f.mkb, f.mkb_prime));
  }
}
BENCHMARK(BM_FullCvs);

void BM_MkbEvolutionDeleteRelation(benchmark::State& state) {
  const Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvolveMkb(f.mkb, CapabilityChange::DeleteRelation("Customer")));
  }
}
BENCHMARK(BM_MkbEvolutionDeleteRelation);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
