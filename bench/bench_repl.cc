// bench_repl: the replication chaos gate — 1 primary + 2 replicas as REAL
// processes under closed-loop write load, with a kill and a partition
// scenario, asserting the replication contract end to end:
//
//   * every ACKED commit (semi-sync, ack_replicas=1) survives the loss of
//     the primary — zero lost acked commits;
//   * the survivors elect a new primary within the failover budget
//     (one lease to detect the loss + the election round);
//   * the killed/partitioned node rejoins as a replica, discards its
//     unreplicated suffix through the snapshot/resume handshake, and the
//     whole cluster converges to byte-identical SHOW MKB and SHOW VIEWS.
//
// Scenarios (both run in one invocation):
//   kill        SIGKILL the current primary under load, wait for the
//               promotion, restart the corpse as a replica of the winner
//   partition   SIGSTOP the current primary (its kernel still ACKs, the
//               process is silent — an asymmetric partition), wait for the
//               promotion, SIGCONT; the stale primary must demote itself
//               and re-sync behind the new epoch
//
// Node children are spawned by re-executing THIS binary (fork+exec via
// /proc/self/exe --child ...), so supervisor restarts stay safe after the
// writer threads exist. A child exits 3 when an armed crash failpoint
// fires (EVE_FAILPOINTS is armed in the child only); the supervisor
// restarts it as a replica, which is how the nightly repl.* crash matrix
// runs this harness.
//
// Usage:
//   bench_repl [--writers N] [--load-seconds S] [--lease-micros U]
//              [--out PATH]
//
// Results land in BENCH_repl.json with "passed": true/false; exit 0 only
// when every assertion held.

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/replication.h"

namespace eve {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint16_t ReservePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// --- Child mode: one replicated eved node ----------------------------------

int ChildMain(const std::string& node_id, const std::string& cluster_spec,
              const std::string& primary_of, const std::string& data_dir,
              uint16_t port, uint64_t lease_micros, uint64_t heartbeat_micros,
              uint32_t ack_replicas) {
  // Crash/error faults are armed in the CHILD only: the supervisor stays
  // healthy while its nodes die at the armed sites.
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status armed = Failpoints::Instance().ArmFromSpec(spec);
    if (!armed.ok()) {
      std::cerr << node_id << ": bad EVE_FAILPOINTS: " << armed << "\n";
      return 2;
    }
  }
  Result<std::map<std::string, net::NodeAddress>> cluster =
      net::ParseCluster(cluster_spec);
  if (!cluster.ok()) {
    std::cerr << node_id << ": bad cluster: " << cluster.status() << "\n";
    return 2;
  }
  net::ReplicatedNodeOptions options;
  options.server.host = "127.0.0.1";
  options.server.port = port;
  options.repl.node_id = node_id;
  options.repl.cluster = cluster.MoveValue();
  options.repl.primary_of = primary_of;
  options.repl.data_dir = data_dir;
  options.repl.lease_micros = lease_micros;
  options.repl.heartbeat_micros = heartbeat_micros;
  options.repl.ack_replicas = ack_replicas;
  net::ReplicatedNode node;
  const Status started = node.Start(options);
  if (!started.ok()) {
    std::cerr << node_id << ": start failed: " << started << "\n";
    return 1;
  }
  std::cerr << node_id << ": serving on 127.0.0.1:" << node.port() << "\n";
  node.WaitUntilStopped();
  if (!node.crashed_site().empty()) {
    std::cerr << node_id << ": simulated crash at " << node.crashed_site()
              << "\n";
    return 3;
  }
  return 0;
}

// --- Supervisor ------------------------------------------------------------

struct NodeProc {
  std::string id;
  uint16_t port = 0;
  std::string data_dir;
  pid_t pid = -1;
  bool deliberately_down = false;
};

struct HarnessConfig {
  uint64_t lease_micros = 1'000'000;
  uint64_t heartbeat_micros = 100'000;
  uint32_t ack_replicas = 1;
  std::string self_exe;
  std::string cluster_spec;
  std::string root_dir;
};

pid_t SpawnNode(const HarnessConfig& config, const NodeProc& node,
                const std::string& primary_of) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: exec ourselves in --child mode (a fresh single-threaded
  // process; no locks inherited from the supervisor's writer threads).
  const std::string port = std::to_string(node.port);
  const std::string lease = std::to_string(config.lease_micros);
  const std::string heartbeat = std::to_string(config.heartbeat_micros);
  const std::string acks = std::to_string(config.ack_replicas);
  const char* argv[] = {config.self_exe.c_str(),
                        "--child",
                        "--node-id", node.id.c_str(),
                        "--cluster", config.cluster_spec.c_str(),
                        "--primary-of", primary_of.c_str(),
                        "--data-dir", node.data_dir.c_str(),
                        "--port", port.c_str(),
                        "--lease-micros", lease.c_str(),
                        "--heartbeat-micros", heartbeat.c_str(),
                        "--ack-replicas", acks.c_str(),
                        nullptr};
  ::execv(config.self_exe.c_str(), const_cast<char* const*>(argv));
  ::_exit(127);
}

// Blocking status probe (kReplStatusReq/kReplStatus) with a hard timeout,
// so a SIGSTOPped node reads as unreachable rather than hanging us.
std::optional<net::ReplStatus> ProbeNode(uint16_t port,
                                         uint64_t timeout_micros = 500'000) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_micros / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout_micros % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string wire = net::EncodeFrame(net::FrameType::kReplStatusReq, "");
  if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(wire.size())) {
    ::close(fd);
    return std::nullopt;
  }
  net::FrameDecoder decoder;
  char buf[4096];
  const uint64_t deadline = NowMicros() + timeout_micros;
  while (NowMicros() < deadline) {
    if (std::optional<net::Frame> frame = decoder.Next()) {
      if (frame->type != net::FrameType::kReplStatus) continue;
      ::close(fd);
      Result<net::ReplStatus> status = net::DecodeReplStatus(frame->payload);
      if (!status.ok()) return std::nullopt;
      return status.MoveValue();
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
  return std::nullopt;
}

// The index of the node currently reporting the PRIMARY role, or -1.
int FindPrimary(const std::vector<NodeProc>& nodes) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].deliberately_down) continue;
    const std::optional<net::ReplStatus> status = ProbeNode(nodes[i].port);
    if (status.has_value() && status->role == net::ReplRole::kPrimary) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// --- Closed-loop writers ----------------------------------------------------

struct WriterLedger {
  std::mutex mu;
  std::vector<std::string> acked_relations;  // code==0 (or duplicate-apply)
  uint64_t acked = 0;
  uint64_t unacked = 0;       // ack-timeout or retries exhausted
  uint64_t transport_retries = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> pause{false};
};

void WriterMain(int writer_index, const std::vector<NodeProc>& nodes,
                WriterLedger* ledger) {
  net::ClientOptions options;
  options.host = "127.0.0.1";
  options.port = nodes[0].port;
  for (size_t i = 1; i < nodes.size(); ++i) {
    options.nodes.push_back("127.0.0.1:" + std::to_string(nodes[i].port));
  }
  options.max_transport_retries = 16;
  options.initial_backoff_micros = 20'000;
  options.max_backoff_micros = 400'000;
  // A wedged (SIGSTOPped) leader must surface as a transport error so the
  // client rotates onward instead of hanging the closed loop.
  options.receive_timeout_micros = 1'500'000;
  std::optional<net::NetClient> client;
  int serial = 0;
  while (!ledger->stop.load()) {
    if (ledger->pause.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (!client.has_value()) {
      Result<net::NetClient> connected = net::NetClient::Connect(options);
      if (!connected.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      client.emplace(connected.MoveValue());
    }
    const std::string relation =
        "W" + std::to_string(writer_index) + "R" + std::to_string(++serial);
    const std::string statement = "DEFINE SOURCE S" + relation +
                                  " RELATION " + relation +
                                  " (Name string, Age int)";
    // Retry THIS statement until a definitive outcome: applied (acked) or
    // given up (unacked — it may or may not surface later; the gate only
    // requires that ACKED commits survive).
    bool acked = false;
    bool definitive = false;
    for (int attempt = 0; attempt < 8 && !definitive && !ledger->stop.load();
         ++attempt) {
      const Result<net::Response> response = client->Run(statement);
      if (!response.ok()) {
        // Transport retries exhausted: rebuild the client and try again.
        client.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        Result<net::NetClient> connected = net::NetClient::Connect(options);
        if (connected.ok()) client.emplace(connected.MoveValue());
        if (!client.has_value()) break;
        continue;
      }
      const int32_t code = response.value().code;
      if (code == 0) {
        acked = definitive = true;
      } else if (code == static_cast<int32_t>(StatusCode::kAlreadyExists)) {
        // A transport retry re-sent a statement the dying primary had
        // already applied (and shipped): it IS in, count it acked.
        acked = definitive = true;
      } else if (response.value().error.find("replication ack timeout") !=
                 std::string::npos) {
        // Explicitly unacknowledged: retry — if a later attempt lands it
        // becomes acked; if every attempt times out it stays unacked.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      } else {
        // Redirect loops or election churn: brief pause, retry.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    std::lock_guard<std::mutex> lock(ledger->mu);
    if (acked) {
      ++ledger->acked;
      ledger->acked_relations.push_back(relation);
    } else {
      ++ledger->unacked;
    }
    if (client.has_value()) {
      ledger->transport_retries = client->transport_retries();
    }
  }
}

// --- Convergence checks -----------------------------------------------------

std::optional<std::string> RunOn(uint16_t port, const std::string& statement) {
  net::ClientOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.receive_timeout_micros = 2'000'000;
  Result<net::NetClient> client = net::NetClient::Connect(options);
  if (!client.ok()) return std::nullopt;
  Result<net::Response> response = client.value().Run(statement);
  if (!response.ok() || response.value().code != 0) return std::nullopt;
  return response.value().output;
}

// Waits until every live node returns byte-identical SHOW MKB and SHOW
// VIEWS; returns the converged MKB dump (nullopt on timeout).
std::optional<std::string> WaitForConvergence(
    const std::vector<NodeProc>& nodes, uint64_t timeout_micros) {
  const uint64_t deadline = NowMicros() + timeout_micros;
  uint64_t next_report = 0;
  while (NowMicros() < deadline) {
    std::vector<std::string> mkbs;
    std::vector<std::string> views;
    bool all = true;
    for (const NodeProc& node : nodes) {
      if (node.deliberately_down) continue;
      std::optional<std::string> mkb = RunOn(node.port, "SHOW MKB");
      std::optional<std::string> view_pool = RunOn(node.port, "SHOW VIEWS");
      if (!mkb.has_value() || !view_pool.has_value()) {
        all = false;
        break;
      }
      mkbs.push_back(*mkb);
      views.push_back(*view_pool);
    }
    if (all && !mkbs.empty()) {
      bool identical = true;
      for (size_t i = 1; i < mkbs.size(); ++i) {
        if (mkbs[i] != mkbs[0] || views[i] != views[0]) identical = false;
      }
      if (identical) return mkbs[0];
    }
    if (NowMicros() >= next_report) {
      next_report = NowMicros() + 3'000'000;
      std::ostringstream line;
      line << "convergence wait:";
      for (const NodeProc& node : nodes) {
        const std::optional<net::ReplStatus> status = ProbeNode(node.port);
        if (status.has_value()) {
          line << " " << node.id << "=role" << static_cast<int>(status->role)
               << "/e" << status->epoch << "/p" << status->applied_version;
        } else {
          line << " " << node.id << "=unreachable";
        }
      }
      std::cerr << line.str() << "\n";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  return std::nullopt;
}

int Main(int argc, char** argv) {
  // --child dispatch (exec'd by the supervisor).
  if (argc > 1 && std::string(argv[1]) == "--child") {
    std::string node_id, cluster, primary_of, data_dir;
    uint16_t port = 0;
    uint64_t lease = 1'000'000, heartbeat = 100'000;
    uint32_t acks = 1;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string arg = argv[i];
      const std::string value = argv[i + 1];
      if (arg == "--node-id") node_id = value;
      else if (arg == "--cluster") cluster = value;
      else if (arg == "--primary-of") primary_of = value;
      else if (arg == "--data-dir") data_dir = value;
      else if (arg == "--port") port = static_cast<uint16_t>(std::stoul(value));
      else if (arg == "--lease-micros") lease = std::stoull(value);
      else if (arg == "--heartbeat-micros") heartbeat = std::stoull(value);
      else if (arg == "--ack-replicas") acks = std::stoul(value);
    }
    return ChildMain(node_id, cluster, primary_of, data_dir, port, lease,
                     heartbeat, acks);
  }

  size_t writers = 2;
  uint64_t load_micros = 2'000'000;
  uint64_t lease_micros = 1'000'000;
  std::string out_path = "BENCH_repl.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--writers" && has_value) {
      writers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--load-seconds" && has_value) {
      load_micros = static_cast<uint64_t>(std::atoll(argv[++i])) * 1'000'000;
    } else if (arg == "--lease-micros" && has_value) {
      lease_micros = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_repl [--writers N] [--load-seconds S] "
                   "[--lease-micros U] [--out PATH]\n";
      return 2;
    }
  }
  ::signal(SIGPIPE, SIG_IGN);
  // The supervisor must not arm EVE_FAILPOINTS in itself; children read it
  // from the environment after exec.
  Failpoints::Instance().Reset();
  // Children narrate role transitions on stderr: the harness log then shows
  // the whole failover timeline across processes.
  ::setenv("EVE_REPL_TRACE", "1", 1);

  HarnessConfig config;
  config.lease_micros = lease_micros;
  config.heartbeat_micros = std::max<uint64_t>(lease_micros / 10, 20'000);
  config.self_exe = "/proc/self/exe";
  config.root_dir = std::filesystem::temp_directory_path().string() +
                    "/bench_repl_" + std::to_string(::getpid());
  std::filesystem::remove_all(config.root_dir);

  std::vector<NodeProc> nodes(3);
  std::ostringstream spec;
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = "n" + std::to_string(i + 1);
    nodes[i].port = ReservePort();
    nodes[i].data_dir = config.root_dir + "/" + nodes[i].id;
    std::filesystem::create_directories(nodes[i].data_dir);
    if (i > 0) spec << ",";
    spec << nodes[i].id << "=127.0.0.1:" << nodes[i].port;
  }
  config.cluster_spec = spec.str();

  const auto spawn = [&](size_t index, const std::string& primary_of) {
    nodes[index].pid = SpawnNode(config, nodes[index], primary_of);
    nodes[index].deliberately_down = false;
  };
  const auto wait_role = [&](net::ReplRole role, uint64_t budget,
                             int* index_out) {
    const uint64_t deadline = NowMicros() + budget;
    while (NowMicros() < deadline) {
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].deliberately_down) continue;
        const std::optional<net::ReplStatus> status = ProbeNode(nodes[i].port);
        if (status.has_value() && status->role == role) {
          if (index_out != nullptr) *index_out = static_cast<int>(i);
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  };

  std::cerr << "cluster: " << config.cluster_spec << "\n";
  spawn(0, "");
  spawn(1, "n1");
  spawn(2, "n1");
  int primary = -1;
  if (!wait_role(net::ReplRole::kPrimary, 10'000'000, &primary)) {
    std::cerr << "bootstrap: no primary came up\n";
    return 1;
  }

  // The supervisor restarts any child that dies on its own (exit 3 = an
  // armed crash failpoint fired) as a replica of the current leader.
  std::atomic<bool> supervising{true};
  std::atomic<uint64_t> crash_restarts{0};
  std::thread supervisor([&] {
    while (supervising.load()) {
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].pid <= 0 || nodes[i].deliberately_down) continue;
        int status = 0;
        if (::waitpid(nodes[i].pid, &status, WNOHANG) == nodes[i].pid) {
          std::cerr << "supervisor: " << nodes[i].id << " exited ("
                    << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
                    << "), restarting as replica\n";
          ++crash_restarts;
          const int leader = FindPrimary(nodes);
          spawn(i, leader >= 0 ? nodes[leader].id : "");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  WriterLedger ledger;
  std::vector<std::thread> writer_threads;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back(
        [&, w] { WriterMain(static_cast<int>(w), nodes, &ledger); });
  }

  bool passed = true;
  std::string failure;
  uint64_t kill_promotion_micros = 0;
  uint64_t partition_promotion_micros = 0;
  uint64_t acked_before_kill = 0;
  uint64_t acked_before_partition = 0;
  // The failover budget: one lease to detect the silence, plus election
  // probes and restart slack.
  const uint64_t promotion_budget = 3 * lease_micros + 2'000'000;

  // --- Scenario 1: SIGKILL the primary under load ---------------------------
  std::this_thread::sleep_for(std::chrono::microseconds(load_micros));
  primary = FindPrimary(nodes);
  if (primary < 0) {
    passed = false;
    failure = "no primary before the kill scenario";
  } else {
    {
      std::lock_guard<std::mutex> lock(ledger.mu);
      acked_before_kill = ledger.acked;
    }
    std::cerr << "scenario kill: SIGKILL " << nodes[primary].id << "\n";
    nodes[primary].deliberately_down = true;
    ::kill(nodes[primary].pid, SIGKILL);
    ::waitpid(nodes[primary].pid, nullptr, 0);
    nodes[primary].pid = -1;
    const uint64_t killed_at = NowMicros();
    int winner = -1;
    if (!wait_role(net::ReplRole::kPrimary, promotion_budget, &winner)) {
      passed = false;
      failure = "kill: no promotion within the budget";
    } else {
      kill_promotion_micros = NowMicros() - killed_at;
      std::cerr << "scenario kill: " << nodes[winner].id << " promoted in "
                << kill_promotion_micros / 1000 << " ms\n";
      // Restart the corpse as a replica of the winner (its data dir still
      // holds the old epoch's journal — the snapshot handshake discards
      // the unreplicated suffix).
      const int corpse = primary;
      spawn(static_cast<size_t>(corpse), nodes[winner].id);
    }
  }

  // --- Scenario 2: SIGSTOP (asymmetric partition) the new primary -----------
  if (passed) {
    std::this_thread::sleep_for(std::chrono::microseconds(load_micros));
    primary = FindPrimary(nodes);
    if (primary < 0) {
      passed = false;
      failure = "no primary before the partition scenario";
    } else {
      {
        std::lock_guard<std::mutex> lock(ledger.mu);
        acked_before_partition = ledger.acked;
      }
      std::cerr << "scenario partition: SIGSTOP " << nodes[primary].id
                << "\n";
      ::kill(nodes[primary].pid, SIGSTOP);
      nodes[primary].deliberately_down = true;  // probes would hang
      const uint64_t stopped_at = NowMicros();
      int winner = -1;
      if (!wait_role(net::ReplRole::kPrimary, promotion_budget, &winner)) {
        passed = false;
        failure = "partition: no promotion within the budget";
        ::kill(nodes[primary].pid, SIGCONT);
      } else {
        partition_promotion_micros = NowMicros() - stopped_at;
        std::cerr << "scenario partition: " << nodes[winner].id
                  << " promoted in " << partition_promotion_micros / 1000
                  << " ms; SIGCONT the stale primary\n";
        ::kill(nodes[primary].pid, SIGCONT);
        nodes[primary].deliberately_down = false;
        // The resumed node must fence itself behind the new epoch: its
        // isolation check demotes it, the election rejoins it as a
        // replica of the winner.
      }
    }
  }

  // --- Drain and verify -----------------------------------------------------
  std::this_thread::sleep_for(std::chrono::microseconds(load_micros));
  ledger.stop.store(true);
  for (std::thread& thread : writer_threads) thread.join();
  supervising.store(false);
  supervisor.join();

  std::optional<std::string> converged_mkb;
  if (passed) {
    converged_mkb = WaitForConvergence(nodes, 30'000'000);
    if (!converged_mkb.has_value()) {
      passed = false;
      failure = "cluster did not converge to byte-identical state";
    }
  }

  // Every surviving node's version chain must scrub clean: SCRUB exits
  // nonzero on any corruption, and RunOn surfaces that as nullopt.
  if (passed) {
    for (const NodeProc& node : nodes) {
      if (node.deliberately_down) continue;
      const std::optional<std::string> scrub = RunOn(node.port, "SCRUB");
      if (!scrub.has_value() ||
          scrub->find("corruptions=0") == std::string::npos) {
        passed = false;
        failure = "scrub failed on " + node.id;
        break;
      }
    }
  }

  uint64_t lost_acked = 0;
  std::vector<std::string> acked_relations;
  {
    std::lock_guard<std::mutex> lock(ledger.mu);
    acked_relations = ledger.acked_relations;
  }
  if (converged_mkb.has_value()) {
    for (const std::string& relation : acked_relations) {
      if (converged_mkb->find(relation) == std::string::npos) {
        ++lost_acked;
        if (failure.empty()) failure = "lost acked commit " + relation;
      }
    }
    if (lost_acked > 0) passed = false;
  }
  if (acked_relations.empty() && passed) {
    passed = false;
    failure = "no commit was ever acknowledged (no load reached the cluster)";
  }

  for (NodeProc& node : nodes) {
    if (node.pid > 0) {
      ::kill(node.pid, SIGKILL);
      ::waitpid(node.pid, nullptr, 0);
    }
  }
  std::filesystem::remove_all(config.root_dir);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"description\": \"Replication chaos gate: 1 primary + 2"
         " replicas as real processes under closed-loop semi-sync write"
         " load; SIGKILL and SIGSTOP (partition) of the primary; asserts"
         " promotion within the failover budget, zero lost acked commits"
         " and byte-identical converged SHOW MKB / SHOW VIEWS"
         " scrubbing clean on every survivor.\",\n"
      << "  \"writers\": " << writers << ",\n"
      << "  \"lease_micros\": " << lease_micros << ",\n"
      << "  \"promotion_budget_micros\": " << promotion_budget << ",\n"
      << "  \"kill_promotion_micros\": " << kill_promotion_micros << ",\n"
      << "  \"partition_promotion_micros\": " << partition_promotion_micros
      << ",\n"
      << "  \"acked_commits\": " << acked_relations.size() << ",\n"
      << "  \"acked_before_kill\": " << acked_before_kill << ",\n"
      << "  \"acked_before_partition\": " << acked_before_partition << ",\n"
      << "  \"unacked_commits\": " << ledger.unacked << ",\n"
      << "  \"lost_acked_commits\": " << lost_acked << ",\n"
      << "  \"crash_restarts\": " << crash_restarts.load() << ",\n"
      << "  \"converged_identical\": "
      << (converged_mkb.has_value() ? "true" : "false") << ",\n"
      << "  \"failure\": \"" << failure << "\",\n"
      << "  \"passed\": " << (passed ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::cout << "BENCHSUMMARY suite=repl out=" << out_path
            << " acked=" << acked_relations.size()
            << " unacked=" << ledger.unacked
            << " lost_acked=" << lost_acked
            << " kill_promotion_ms=" << kill_promotion_micros / 1000
            << " partition_promotion_ms=" << partition_promotion_micros / 1000
            << " crash_restarts=" << crash_restarts.load()
            << " converged=" << (converged_mkb.has_value() ? "true" : "false")
            << " passed=" << (passed ? "true" : "false") << std::endl;
  return passed ? 0 : 1;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
