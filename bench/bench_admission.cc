// Admission/deadline benchmark. Two questions:
//   1. What does threading a live DeadlineToken through the enumeration
//      cost when it never fires? BM_SynchronizeNoToken vs
//      BM_SynchronizeFreeToken time the identical cover-fan search without
//      and with a (never-expiring) token; run_benchmarks.sh computes the
//      overhead ratio and flags anything above the 2% budget.
//   2. What latency does the bounded sync queue deliver under overload?
//      BM_AdmissionBatch runs enqueue→shed→drain cycles against a chain
//      system and reports p50/p99 cycle latency plus per-batch shed and
//      completed counts.
// The validation pass asserts a generous-budget run returns byte-identical
// rewritings to the token-free run before any timing starts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "cvs/cvs.h"
#include "eve/eve_system.h"
#include "mkb/capability_change.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

struct Scenario {
  Mkb mkb;
  Mkb mkb_prime;
  ViewDefinition view;
};

std::unique_ptr<Scenario> MakeScenario(size_t covers) {
  CoverFanMkbSpec spec;
  spec.num_covers = covers;
  auto s = std::make_unique<Scenario>();
  s->mkb = MakeCoverFanMkb(spec).MoveValue();
  s->view = MakeCoverFanView(s->mkb).MoveValue();
  s->mkb_prime = EvolveMkb(s->mkb, CapabilityChange::DeleteRelation("R0"))
                     .MoveValue()
                     .mkb;
  return s;
}

CvsOptions WideCvsOptions(size_t covers) {
  CvsOptions options;
  options.replacement.max_results = 1000000;
  options.replacement.max_cover_combinations = 1000000;
  options.replacement.max_extra_relations = covers;
  return options;
}

// Identical search with no token: the deadline machinery's zero-cost path.
void BM_SynchronizeNoToken(benchmark::State& state) {
  const std::unique_ptr<Scenario> s = MakeScenario(state.range(0));
  const CvsOptions options = WideCvsOptions(state.range(0));
  for (auto _ : state) {
    const auto result = SynchronizeDeleteRelation(s->view, "R0", s->mkb,
                                                  s->mkb_prime, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynchronizeNoToken)->Arg(8)->Arg(16);

// The same search carrying a live token whose budget is far too large to
// fire: every enumeration step pays the Spend check and nothing stops, so
// the delta against BM_SynchronizeNoToken is pure deadline overhead.
void BM_SynchronizeFreeToken(benchmark::State& state) {
  const std::unique_ptr<Scenario> s = MakeScenario(state.range(0));
  CvsOptions options = WideCvsOptions(state.range(0));
  for (auto _ : state) {
    options.replacement.token =
        DeadlineToken::Root({1ull << 60, 0});
    const auto result = SynchronizeDeleteRelation(s->view, "R0", s->mkb,
                                                  s->mkb_prime, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynchronizeFreeToken)->Arg(8)->Arg(16);

// Chain system for the admission cycles (matches the admission_test
// workload: even views reference the victim R1, odd ones live far away).
EveSystem MakeChainSystem(size_t num_views) {
  ChainMkbSpec spec;
  spec.length = 24;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  EveSystem system(mkb);
  for (size_t i = 0; i < num_views; ++i) {
    const size_t start = (i % 2 == 0) ? (i / 2) % 2 : 10 + (i / 2) % 10;
    ViewDefinition view = MakeChainView(mkb, start, 3).MoveValue();
    view.set_name("BV" + std::to_string(i));
    if (!system.RegisterView(view).ok()) std::abort();
  }
  return system;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return sorted[index];
}

// One iteration = one overload cycle: submit six changes against a queue
// of `range(0)`, shedding the excess, then drain what was admitted under a
// per-view work budget. Latencies are aggregated into p50/p99 counters.
void BM_AdmissionBatch(benchmark::State& state) {
  const EveSystem base = MakeChainSystem(8);
  const size_t queue_limit = state.range(0);
  const std::vector<CapabilityChange> batch = {
      CapabilityChange::DeleteRelation("R1"),
      CapabilityChange::DeleteAttribute("R10", "P10"),
      CapabilityChange::DeleteRelation("R20"),
      CapabilityChange::DeleteAttribute("R12", "P12"),
      CapabilityChange::DeleteRelation("R5"),
      CapabilityChange::DeleteAttribute("R15", "P15"),
  };
  std::vector<double> latencies_us;
  uint64_t shed = 0;
  uint64_t completed = 0;
  for (auto _ : state) {
    EveSystem system = base;
    system.SetSyncQueueLimit(queue_limit);
    system.SetSyncWorkBudget(200);
    const auto start = std::chrono::steady_clock::now();
    for (const CapabilityChange& change : batch) {
      (void)system.EnqueueChange(change);  // overflow sheds explicitly
    }
    const auto reports = system.DrainSyncQueue();
    benchmark::DoNotOptimize(reports);
    const auto end = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
    shed = system.admission_stats().shed;
    completed = system.admission_stats().completed;
    if (!reports.ok()) state.SkipWithError("drain failed");
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["p50_us"] = Percentile(latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(latencies_us, 0.99);
  state.counters["shed_per_batch"] = static_cast<double>(shed);
  state.counters["completed_per_batch"] = static_cast<double>(completed);
}
BENCHMARK(BM_AdmissionBatch)->Arg(2)->Arg(4)->Arg(6);

// Before timing: a token that cannot fire must not change the answer.
bool ValidateFreeTokenEquivalence() {
  for (const size_t covers : {8u, 16u}) {
    const std::unique_ptr<Scenario> s = MakeScenario(covers);
    const auto bare = SynchronizeDeleteRelation(
        s->view, "R0", s->mkb, s->mkb_prime, WideCvsOptions(covers));
    CvsOptions tokened = WideCvsOptions(covers);
    tokened.replacement.token = DeadlineToken::Root({1ull << 60, 0});
    const auto budgeted = SynchronizeDeleteRelation(s->view, "R0", s->mkb,
                                                    s->mkb_prime, tokened);
    if (!bare.ok() || !budgeted.ok()) return false;
    if (budgeted.value().enumeration.deadline.partial) return false;
    if (bare.value().rewritings.size() != budgeted.value().rewritings.size())
      return false;
    for (size_t i = 0; i < bare.value().rewritings.size(); ++i) {
      if (bare.value().rewritings[i].view.ToString() !=
          budgeted.value().rewritings[i].view.ToString()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  std::cout << "# bench_admission: deadline-token overhead on the cover-fan "
               "search + bounded-queue batch latency under shedding\n";
  if (!eve::ValidateFreeTokenEquivalence()) {
    std::cerr << "FATAL: a non-firing token changed the synchronization "
                 "result\n";
    return 1;
  }
  std::cout << "# validated: free-token run == token-free run at every "
               "sweep point\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
