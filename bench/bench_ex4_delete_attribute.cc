// E3 / Ex. 4: "delete-attribute Customer.Addr" against the Asia-Customer
// view (paper Eq. 3), rewritten through Person (paper Eq. 4). Prints the
// reproduced rewriting and measures delete-attribute synchronization.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

struct Fixture {
  Mkb mkb;
  Mkb mkb_prime;
  ViewDefinition view;
};

Fixture MakeFixture() {
  Fixture f;
  f.mkb = MakeTravelAgencyMkb().MoveValue();
  Status status = AddPersonExtension(&f.mkb);
  if (!status.ok()) {
    std::cerr << status << std::endl;
    std::exit(1);
  }
  f.view = ParseAndBindView(AsiaCustomerSql(), f.mkb.catalog()).MoveValue();
  f.mkb_prime =
      EvolveMkb(f.mkb, CapabilityChange::DeleteAttribute("Customer", "Addr"))
          .MoveValue()
          .mkb;
  return f;
}

void PrintReproduction() {
  Fixture f = MakeFixture();
  std::cout << "=== E3 / Ex. 4: delete-attribute Customer.Addr ===\n"
            << "original view (paper Eq. 3):\n"
            << f.view.ToString() << "\n\n";
  const Result<CvsResult> result = SynchronizeDeleteAttribute(
      f.view, "Customer", "Addr", f.mkb, f.mkb_prime, {});
  if (!result.ok()) {
    std::cerr << result.status() << std::endl;
    std::exit(1);
  }
  std::cout << "legal rewritings: " << result.value().rewritings.size()
            << " (paper presents one, Eq. 4)\n\n";
  for (const SynchronizedView& rewriting : result.value().rewritings) {
    std::cout << rewriting.ToString() << "\n\n";
  }
  std::cout << "paper Eq. (4) shape: Addr -> Person.PAddr, Person joined "
               "via Customer.Name = Person.Name, VE = ⊇ justified by the "
               "PC constraint.\n\n";
}

void BM_DeleteAttributeSynchronization(benchmark::State& state) {
  const Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynchronizeDeleteAttribute(
        f.view, "Customer", "Addr", f.mkb, f.mkb_prime, {}));
  }
}
BENCHMARK(BM_DeleteAttributeSynchronization);

void BM_DeleteAttributeDropPath(benchmark::State& state) {
  Fixture f = MakeFixture();
  const Mkb prime =
      EvolveMkb(f.mkb, CapabilityChange::DeleteAttribute("Customer", "Phone"))
          .MoveValue()
          .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynchronizeDeleteAttribute(
        f.view, "Customer", "Phone", f.mkb, prime, {}));
  }
}
BENCHMARK(BM_DeleteAttributeDropPath);

void BM_MkbEvolutionDeleteAttribute(benchmark::State& state) {
  const Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvolveMkb(f.mkb, CapabilityChange::DeleteAttribute("Customer",
                                                           "Addr")));
  }
}
BENCHMARK(BM_MkbEvolutionDeleteAttribute);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
