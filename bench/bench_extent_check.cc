// E8: view-extent (P3) validation — agreement between the PC-based
// inference (CVS Step 6) and empirical containment measured by evaluating
// old and new views over constraint-consistent database states, plus the
// cost of the empirical check as the database grows.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

struct Fixture {
  Mkb mkb;
  Mkb mkb_prime;
  ViewDefinition view;
  CvsResult result;
};

Fixture MakeFixture() {
  Fixture f;
  f.mkb = MakeTravelAgencyMkb().MoveValue();
  Status status = AddAccidentInsPc(&f.mkb);
  if (status.ok()) status = AddFlightResPc(&f.mkb);
  if (!status.ok()) {
    std::cerr << status << std::endl;
    std::exit(1);
  }
  f.view = ParseAndBindView(CustomerPassengersAsiaSql(), f.mkb.catalog())
               .MoveValue();
  f.mkb_prime =
      EvolveMkb(f.mkb, CapabilityChange::DeleteRelation("Customer"))
          .MoveValue()
          .mkb;
  f.result =
      SynchronizeDeleteRelation(f.view, "Customer", f.mkb, f.mkb_prime)
          .MoveValue();
  return f;
}

void PrintReproduction() {
  Fixture f = MakeFixture();
  std::cout << "=== E8: inferred vs empirical view-extent relationship ===\n"
            << "rewritings of Customer-Passengers-Asia under "
               "delete-relation Customer, checked over 20 random "
               "constraint-consistent database states\n\n";
  std::printf("%-44s %-12s %-22s %s\n", "rewriting (FROM)", "inferred",
              "empirical (20 seeds)", "consistent");
  for (const SynchronizedView& rewriting : f.result.rewritings) {
    size_t equal = 0;
    size_t superset = 0;
    size_t other = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      Database db;
      Status status = PopulateTravelAgencyDatabase(f.mkb, &db, 40, seed);
      if (!status.ok()) {
        std::cerr << status << std::endl;
        std::exit(1);
      }
      const Result<ExtentRelation> empirical = CompareExtentsEmpirically(
          f.view, rewriting.view, db, f.mkb.catalog(), f.mkb.catalog());
      if (!empirical.ok()) {
        std::cerr << empirical.status() << std::endl;
        std::exit(1);
      }
      switch (empirical.value()) {
        case ExtentRelation::kEqual:
          ++equal;
          break;
        case ExtentRelation::kSuperset:
          ++superset;
          break;
        default:
          ++other;
          break;
      }
    }
    std::string from;
    for (const std::string& rel : rewriting.view.FromRelationNames()) {
      if (!from.empty()) from += ",";
      from += rel;
    }
    const bool inferred_superset =
        rewriting.legality.inferred_extent == ExtentRelation::kSuperset ||
        rewriting.legality.inferred_extent == ExtentRelation::kEqual;
    const bool consistent = !inferred_superset || other == 0;
    char empirical_desc[32];
    std::snprintf(empirical_desc, sizeof(empirical_desc),
                  "=:%zu ⊇:%zu ?:%zu", equal, superset, other);
    std::printf("%-44s %-12s %-22s %s\n", from.c_str(),
                std::string(ExtentRelationToString(
                                rewriting.legality.inferred_extent))
                    .c_str(),
                empirical_desc, consistent ? "yes" : "NO");
  }
  std::cout << "\nexpected: inferred ⊇ (PC-justified) is never "
               "contradicted; the paper's P3 is conservative.\n\n";
}

void BM_ExtentInferenceViaCvs(benchmark::State& state) {
  const Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(f.view, "Customer", f.mkb, f.mkb_prime));
  }
}
BENCHMARK(BM_ExtentInferenceViaCvs);

void BM_EmpiricalExtentCheck(benchmark::State& state) {
  Fixture f = MakeFixture();
  Database db;
  Status status = PopulateTravelAgencyDatabase(
      f.mkb, &db, static_cast<size_t>(state.range(0)), 3);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  const ViewDefinition& rewriting = f.result.rewritings.front().view;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareExtentsEmpirically(
        f.view, rewriting, db, f.mkb.catalog(), f.mkb.catalog()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EmpiricalExtentCheck)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
