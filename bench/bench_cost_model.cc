// E11 (ablation): rewriting-ranking strategies — the paper's future-work
// cost model vs the default lexicographic rank. Over a batch of random
// delete-relation scenarios on a grid federation, measures the quality of
// the FIRST-ranked rewriting each strategy picks: attributes preserved,
// extra relations joined, extent strength. Then times the scoring.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <random>

#include "cvs/cvs.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

struct Tally {
  size_t scenarios = 0;
  size_t preserved_all_attrs = 0;
  size_t extent_guaranteed = 0;  // first pick inferred = or ⊇/⊆
  size_t total_extra_relations = 0;
};

// Scenarios with a real tradeoff: a chain federation where the deleted
// relation's payload is *dispensable* and its only cover sits several
// joins away. Each strategy must choose between (a) dropping the
// attribute (no new joins, extent ≡ on the common interface) and
// (b) preserving it through a chain of join constraints (wider join,
// extent ⊇ via the PC constraint).
Tally RunBatch(const std::optional<RewritingCostModel>& model) {
  Tally tally;
  for (size_t cover_distance = 2; cover_distance <= 4; ++cover_distance) {
    for (size_t victim_pos = 1; victim_pos <= 3; ++victim_pos) {
      ChainMkbSpec spec;
      spec.length = 10;
      spec.skip_edges = true;
      spec.cover_distance = cover_distance;
      const Mkb mkb = MakeChainMkb(spec).value();
      Result<ViewDefinition> view_or =
          MakeChainView(mkb, victim_pos - 1, 2);
      if (!view_or.ok()) continue;
      ViewDefinition view = view_or.MoveValue();
      // The victim's payload may be dropped (dispensable, replaceable).
      const std::string victim = "R" + std::to_string(victim_pos);
      for (ViewSelectItem& item : *view.mutable_select()) {
        if (!item.expr->ReferencedRelations().empty() &&
            item.expr->ReferencedRelations()[0] == victim) {
          item.params = EvolutionParams{true, true};
        }
      }
      const auto evolution =
          EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim));
      if (!evolution.ok()) continue;
      CvsOptions options;
      options.require_view_extent = false;
      options.replacement.max_extra_relations = 5;
      options.replacement.chase_optional_covers = true;
      options.cost_model = model;
      const Result<CvsResult> result = SynchronizeDeleteRelation(
          view, victim, mkb, evolution.value().mkb, options);
      if (!result.ok() || result.value().rewritings.empty()) continue;
      const SynchronizedView& pick = result.value().rewritings.front();
      ++tally.scenarios;
      if (pick.view.select().size() == view.select().size()) {
        ++tally.preserved_all_attrs;
      }
      if (pick.legality.inferred_extent != ExtentRelation::kUnknown) {
        ++tally.extent_guaranteed;
      }
      if (pick.view.from().size() > view.from().size()) {
        tally.total_extra_relations +=
            pick.view.from().size() - view.from().size();
      }
    }
  }
  return tally;
}

void PrintReproduction() {
  std::cout << "=== E11: ranking ablation — drop the attribute vs chase "
               "its cover through join chains ===\n";
  std::printf("%-26s %-10s %-16s %-16s %s\n", "ranking", "scenarios",
              "all attrs kept", "extent known", "extra joins");

  const Tally lexicographic = RunBatch(std::nullopt);
  std::printf("%-26s %-10zu %-16zu %-16zu %zu\n", "default lexicographic",
              lexicographic.scenarios, lexicographic.preserved_all_attrs,
              lexicographic.extent_guaranteed,
              lexicographic.total_extra_relations);

  const Tally cost_default = RunBatch(RewritingCostModel{});
  std::printf("%-26s %-10zu %-16zu %-16zu %zu\n", "cost model (default)",
              cost_default.scenarios, cost_default.preserved_all_attrs,
              cost_default.extent_guaranteed,
              cost_default.total_extra_relations);

  RewritingCostModel join_averse;
  join_averse.extra_relation_penalty = 50.0;
  const Tally lean = RunBatch(join_averse);
  std::printf("%-26s %-10zu %-16zu %-16zu %zu\n", "cost model (join-averse)",
              lean.scenarios, lean.preserved_all_attrs,
              lean.extent_guaranteed, lean.total_extra_relations);

  std::cout << "\nexpected shape: the lexicographic rank prefers the "
               "extent-neutral drop (attribute lost, no new joins); the "
               "default cost model pays for joins to preserve the "
               "attribute; join-averse weights flip back to dropping.\n\n";
}

void BM_ScoreRewriting(benchmark::State& state) {
  const Mkb mkb = MakeGridMkb(3, 3).value();
  std::mt19937_64 rng(7);
  const ViewDefinition view = MakeRandomConnectedView(mkb, &rng, 3)
                                  .MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ScoreRewriting(view, view, ExtentRelation::kSuperset, {}));
  }
}
BENCHMARK(BM_ScoreRewriting);

void BM_SynchronizeWithCostModel(benchmark::State& state) {
  const Mkb mkb = MakeGridMkb(3, 3).value();
  std::mt19937_64 rng(7);
  const ViewDefinition view = MakeRandomConnectedView(mkb, &rng, 3)
                                  .MoveValue();
  const std::string victim = view.FromRelationNames().front();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim))
                        .MoveValue()
                        .mkb;
  CvsOptions options;
  options.cost_model = RewritingCostModel{};
  options.require_view_extent = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, victim, mkb, prime, options));
  }
}
BENCHMARK(BM_SynchronizeWithCostModel);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
