// Journal + checkpoint throughput: the durability tax on the EVE change
// pipeline. Measures raw fsynced record appends, journaled vs un-journaled
// ApplyChange, checkpoint write, and full RecoverFromFiles replay.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "eve/eve_system.h"
#include "eve/journal.h"
#include "mkb/capability_change.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

std::string TempPath(const char* suffix) {
  return std::string(P_tmpdir) + "/eve_bench_journal_" + suffix;
}

EveSystem FreshSystem() {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  if (!system.RegisterViewText(CustomerPassengersAsiaSql()).ok()) {
    std::abort();
  }
  return system;
}

void BM_JournalAppend(benchmark::State& state) {
  const std::string path = TempPath("append.wal");
  std::remove(path.c_str());
  Journal journal = Journal::Open(path).MoveValue();
  const std::string body(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        journal.Append(JournalRecordKind::kExtendMkb, body));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(body.size()));
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ApplyChangeUnjournaled(benchmark::State& state) {
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    benchmark::DoNotOptimize(
        system.ApplyChange(CapabilityChange::DeleteRelation("Customer")));
  }
}
BENCHMARK(BM_ApplyChangeUnjournaled);

void BM_ApplyChangeJournaled(benchmark::State& state) {
  const std::string path = TempPath("apply.wal");
  for (auto _ : state) {
    std::remove(path.c_str());
    Journal journal = Journal::Open(path).MoveValue();
    EveSystem system = FreshSystem();
    system.AttachJournal(&journal);
    benchmark::DoNotOptimize(
        system.ApplyChange(CapabilityChange::DeleteRelation("Customer")));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_ApplyChangeJournaled);

void BM_WriteCheckpoint(benchmark::State& state) {
  const std::string path = TempPath("write.ckpt");
  EveSystem system = FreshSystem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteCheckpoint(system, path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_WriteCheckpoint);

void BM_RecoverFromFiles(benchmark::State& state) {
  const std::string ckpt = TempPath("recover.ckpt");
  const std::string wal = TempPath("recover.wal");
  std::remove(ckpt.c_str());
  std::remove(wal.c_str());
  {
    EveSystem system = FreshSystem();
    if (!WriteCheckpoint(system, ckpt).ok()) std::abort();
    Journal journal = Journal::Open(wal).MoveValue();
    system.AttachJournal(&journal);
    for (int i = 0; i < state.range(0); ++i) {
      if (!system
               .ExtendMkb("SOURCE BenchIS RELATION Bench" +
                          std::to_string(i) + " (Name string, X int)")
               .ok()) {
        std::abort();
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecoverFromFiles(ckpt, wal));
  }
  state.SetComplexityN(state.range(0));
  std::remove(ckpt.c_str());
  std::remove(wal.c_str());
}
BENCHMARK(BM_RecoverFromFiles)->RangeMultiplier(4)->Range(4, 64)
    ->Complexity();

void PrintReproduction() {
  std::cout << "=== Journal/recovery microbenchmarks ===\n"
            << "Raw fsynced appends, the journaling tax on ApplyChange,\n"
            << "atomic checkpoint writes, and checkpoint+replay recovery.\n";
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
