// E2 / Fig. 4: the hypergraphs H(MKB) and H'(MKB'). Prints the connected
// components before and after "delete-relation Customer" (the two panels
// of the paper's figure), then measures hypergraph construction and
// connectivity queries as the MKB grows.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "hypergraph/hypergraph.h"
#include "hypergraph/join_graph.h"
#include "mkb/evolution.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

void PrintReproduction() {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  std::cout << "=== E2 / Fig. 4 (left panel): H(MKB) ===\n"
            << Hypergraph::Build(mkb).Summary() << "\n";
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("Customer"));
  if (!evolution.ok()) {
    std::cerr << evolution.status() << std::endl;
    std::exit(1);
  }
  std::cout << "=== E2 / Fig. 4 (right panel): H'(MKB') after "
               "delete-relation Customer ===\n"
            << Hypergraph::Build(evolution.value().mkb).Summary()
            << "\npaper: the Customer component splits into "
               "{FlightRes, Accident-Ins} and {Participant, Tour}; "
               "{Hotels, RentACar} is untouched.\n\n";
}

void BM_HypergraphBuild(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = static_cast<size_t>(state.range(0));
  const Mkb mkb = MakeChainMkb(spec).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hypergraph::Build(mkb));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HypergraphBuild)->Range(8, 1024)->Complexity();

void BM_JoinGraphBuild(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = static_cast<size_t>(state.range(0));
  const Mkb mkb = MakeChainMkb(spec).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinGraph::Build(mkb));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JoinGraphBuild)->Range(8, 1024)->Complexity();

void BM_ConnectedComponents(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = static_cast<size_t>(state.range(0));
  const Mkb mkb = MakeChainMkb(spec).value();
  const JoinGraph graph = JoinGraph::Build(mkb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.Components());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConnectedComponents)->Range(8, 1024)->Complexity();

void BM_ComponentOfQuery(benchmark::State& state) {
  const Mkb mkb = MakeGridMkb(8, 8).value();
  const JoinGraph graph = JoinGraph::Build(mkb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.ComponentOf("R0"));
  }
}
BENCHMARK(BM_ComponentOfQuery);

void BM_EraseRelation(benchmark::State& state) {
  const Mkb mkb = MakeGridMkb(8, 8).value();
  const JoinGraph graph = JoinGraph::Build(mkb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.EraseRelation("R27"));
  }
}
BENCHMARK(BM_EraseRelation);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
