// E7: CVS scalability characterization — synchronization latency as the
// MKB grows (chain / star / grid topologies), as the view widens, and as
// the replacement search bound increases (the ablation DESIGN.md calls
// out: anchored search vs wider Steiner exploration).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cvs/cvs.h"
#include "eve/eve_system.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

void PrintReproduction() {
  std::cout << "=== E7: scalability characterization ===\n"
            << "CVS latency vs MKB size / view width / search bound; see "
               "benchmark table below. Expected shape: near-linear in MKB "
               "size for chain topologies (anchored search), growing with "
               "the Steiner bound on grids.\n\n";
  // A quick preserved-rate sanity sweep across sizes.
  std::printf("%-12s %-12s %s\n", "chain size", "preserved", "rewritings");
  for (const size_t n : {10, 50, 200, 1000}) {
    ChainMkbSpec spec;
    spec.length = n;
    spec.skip_edges = true;
    spec.cover_distance = 2;
    const Mkb mkb = MakeChainMkb(spec).value();
    const ViewDefinition view = MakeChainView(mkb, 0, 3).value();
    const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                          .MoveValue()
                          .mkb;
    const Result<CvsResult> result =
        SynchronizeDeleteRelation(view, "R1", mkb, prime);
    std::printf("%-12zu %-12s %zu\n", n,
                result.ok() && result.value().ViewPreserved() ? "yes" : "NO",
                result.ok() ? result.value().rewritings.size() : 0);
  }
  std::cout << "\n";
}

// --- MKB size sweeps ---------------------------------------------------------

void BM_CvsChainMkbSize(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = static_cast<size_t>(state.range(0));
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 0, 3).value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "R1", mkb, prime));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvsChainMkbSize)->RangeMultiplier(4)->Range(8, 2048)
    ->Complexity();

void BM_CvsStarMkbSize(benchmark::State& state) {
  const Mkb mkb = MakeStarMkb(static_cast<size_t>(state.range(0))).value();
  // View over hub and spoke R1; delete the spoke (covered on the hub).
  const ViewDefinition view = [&] {
    std::mt19937_64 rng(1);
    return MakeRandomConnectedView(mkb, &rng, 2).MoveValue();
  }();
  const std::string victim = view.FromRelationNames().back();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, victim, mkb, prime));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvsStarMkbSize)->RangeMultiplier(4)->Range(8, 512)
    ->Complexity();

void BM_CvsGridMkbSize(benchmark::State& state) {
  const size_t side = static_cast<size_t>(state.range(0));
  const Mkb mkb = MakeGridMkb(side, side).value();
  std::mt19937_64 rng(2);
  const ViewDefinition view = MakeRandomConnectedView(mkb, &rng, 3)
                                  .MoveValue();
  const std::string victim = view.FromRelationNames().front();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, victim, mkb, prime));
  }
  state.SetComplexityN(static_cast<int64_t>(side * side));
}
BENCHMARK(BM_CvsGridMkbSize)->DenseRange(3, 11, 2)->Complexity();

// --- View width sweep ----------------------------------------------------------

void BM_CvsViewWidth(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = 64;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).value();
  const size_t span = static_cast<size_t>(state.range(0));
  const ViewDefinition view = MakeChainView(mkb, 0, span).value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "R1", mkb, prime));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvsViewWidth)->DenseRange(2, 14, 3)->Complexity();

// --- Search bound ablation ---------------------------------------------------

void BM_CvsSearchBound(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = 24;
  spec.skip_edges = true;
  spec.cover_distance = 4;
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 0, 2).value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;
  CvsOptions options;
  options.replacement.max_extra_relations =
      static_cast<size_t>(state.range(0));
  size_t preserved = 0;
  for (auto _ : state) {
    const Result<CvsResult> result =
        SynchronizeDeleteRelation(view, "R1", mkb, prime, options);
    preserved += result.ok() && result.value().ViewPreserved() ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["preserved"] =
      benchmark::Counter(static_cast<double>(preserved),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CvsSearchBound)->DenseRange(0, 6, 1);

// --- Batch synchronization (EveSystem fan-out) -------------------------------

// A system over a 128-relation chain with `num_views` registered views.
// Even-numbered views sit at the head of the chain and reference the
// victim relation R1; odd-numbered views live far down the chain and are
// unaffected — so one delete-relation change fans out over half the pool.
EveSystem MakeBatchSystem(size_t num_views) {
  ChainMkbSpec spec;
  spec.length = 128;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).value();
  EveSystem system(mkb);
  for (size_t i = 0; i < num_views; ++i) {
    const size_t start =
        (i % 2 == 0) ? (i / 2) % 2 : 60 + (i / 2) % 40;
    ViewDefinition view = MakeChainView(mkb, start, 3).value();
    view.set_name("BV" + std::to_string(i));
    if (!system.RegisterView(view).ok()) std::abort();
  }
  return system;
}

// One change synchronized across a growing view pool: exercises the
// inverted affected-view index and the shared per-change SyncContext.
// Each iteration works on a fresh copy of the system (value semantics),
// so the measured time includes the pool copy the real ApplyChange
// pipeline also performs.
void BM_BatchApplyChange(benchmark::State& state) {
  const EveSystem base = MakeBatchSystem(static_cast<size_t>(state.range(0)));
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  for (auto _ : state) {
    EveSystem system = base;
    benchmark::DoNotOptimize(system.ApplyChange(change));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BatchApplyChange)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity();

// The same 64-view batch at different sync-parallelism settings. The
// reports are byte-identical at every setting; only wall-clock moves.
void BM_BatchSyncParallelism(benchmark::State& state) {
  EveSystem base = MakeBatchSystem(64);
  base.SetSyncParallelism(static_cast<size_t>(state.range(0)));
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  for (auto _ : state) {
    EveSystem system = base;
    benchmark::DoNotOptimize(system.ApplyChange(change));
  }
}
BENCHMARK(BM_BatchSyncParallelism)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Affected-view detection alone on a large pool: index lookup vs the
// former whole-pool scan.
void BM_AffectedViewsLookup(benchmark::State& state) {
  const EveSystem system =
      MakeBatchSystem(static_cast<size_t>(state.range(0)));
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.AffectedViews(change));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AffectedViewsLookup)->RangeMultiplier(8)->Range(8, 4096)
    ->Complexity();

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
