// E7: CVS scalability characterization — synchronization latency as the
// MKB grows (chain / star / grid topologies), as the view widens, and as
// the replacement search bound increases (the ablation DESIGN.md calls
// out: anchored search vs wider Steiner exploration).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "cvs/cvs.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

void PrintReproduction() {
  std::cout << "=== E7: scalability characterization ===\n"
            << "CVS latency vs MKB size / view width / search bound; see "
               "benchmark table below. Expected shape: near-linear in MKB "
               "size for chain topologies (anchored search), growing with "
               "the Steiner bound on grids.\n\n";
  // A quick preserved-rate sanity sweep across sizes.
  std::printf("%-12s %-12s %s\n", "chain size", "preserved", "rewritings");
  for (const size_t n : {10, 50, 200, 1000}) {
    ChainMkbSpec spec;
    spec.length = n;
    spec.skip_edges = true;
    spec.cover_distance = 2;
    const Mkb mkb = MakeChainMkb(spec).value();
    const ViewDefinition view = MakeChainView(mkb, 0, 3).value();
    const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                          .MoveValue()
                          .mkb;
    const Result<CvsResult> result =
        SynchronizeDeleteRelation(view, "R1", mkb, prime);
    std::printf("%-12zu %-12s %zu\n", n,
                result.ok() && result.value().ViewPreserved() ? "yes" : "NO",
                result.ok() ? result.value().rewritings.size() : 0);
  }
  std::cout << "\n";
}

// --- MKB size sweeps ---------------------------------------------------------

void BM_CvsChainMkbSize(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = static_cast<size_t>(state.range(0));
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 0, 3).value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "R1", mkb, prime));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvsChainMkbSize)->RangeMultiplier(4)->Range(8, 2048)
    ->Complexity();

void BM_CvsStarMkbSize(benchmark::State& state) {
  const Mkb mkb = MakeStarMkb(static_cast<size_t>(state.range(0))).value();
  // View over hub and spoke R1; delete the spoke (covered on the hub).
  const ViewDefinition view = [&] {
    std::mt19937_64 rng(1);
    return MakeRandomConnectedView(mkb, &rng, 2).MoveValue();
  }();
  const std::string victim = view.FromRelationNames().back();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, victim, mkb, prime));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvsStarMkbSize)->RangeMultiplier(4)->Range(8, 512)
    ->Complexity();

void BM_CvsGridMkbSize(benchmark::State& state) {
  const size_t side = static_cast<size_t>(state.range(0));
  const Mkb mkb = MakeGridMkb(side, side).value();
  std::mt19937_64 rng(2);
  const ViewDefinition view = MakeRandomConnectedView(mkb, &rng, 3)
                                  .MoveValue();
  const std::string victim = view.FromRelationNames().front();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, victim, mkb, prime));
  }
  state.SetComplexityN(static_cast<int64_t>(side * side));
}
BENCHMARK(BM_CvsGridMkbSize)->DenseRange(3, 11, 2)->Complexity();

// --- View width sweep ----------------------------------------------------------

void BM_CvsViewWidth(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = 64;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).value();
  const size_t span = static_cast<size_t>(state.range(0));
  const ViewDefinition view = MakeChainView(mkb, 0, span).value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynchronizeDeleteRelation(view, "R1", mkb, prime));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvsViewWidth)->DenseRange(2, 14, 3)->Complexity();

// --- Search bound ablation ---------------------------------------------------

void BM_CvsSearchBound(benchmark::State& state) {
  ChainMkbSpec spec;
  spec.length = 24;
  spec.skip_edges = true;
  spec.cover_distance = 4;
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 0, 2).value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;
  CvsOptions options;
  options.replacement.max_extra_relations =
      static_cast<size_t>(state.range(0));
  size_t preserved = 0;
  for (auto _ : state) {
    const Result<CvsResult> result =
        SynchronizeDeleteRelation(view, "R1", mkb, prime, options);
    preserved += result.ok() && result.value().ViewPreserved() ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["preserved"] =
      benchmark::Counter(static_cast<double>(preserved),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CvsSearchBound)->DenseRange(0, 6, 1);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
