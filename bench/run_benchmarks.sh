#!/usr/bin/env bash
# Runs the E7 scalability sweep and writes BENCH_cvs.json at the repo root:
# the current tree's numbers, merged with the recorded pre-PR baseline
# (bench/baseline_chain.json, captured from the seed tree before the
# indexed-MKB / SyncContext work landed) and per-size speedup ratios.
#
# Usage: bench/run_benchmarks.sh [--build-dir DIR] [--filter REGEX]
#                                [--min-time SECONDS]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
FILTER='BM_CvsChainMkbSize'
MIN_TIME='0.2'

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --filter)    FILTER="$2";    shift 2 ;;
    --min-time)  MIN_TIME="$2";  shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

BENCH="$BUILD_DIR/bench/bench_scalability"
if [[ ! -x "$BENCH" ]]; then
  echo "bench binary not found: $BENCH (build the repo first)" >&2
  exit 1
fi

CURRENT_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON"' EXIT

"$BENCH" --benchmark_filter="$FILTER" \
         --benchmark_min_time="${MIN_TIME}s" \
         --benchmark_out="$CURRENT_JSON" \
         --benchmark_out_format=json > /dev/null

python3 - "$CURRENT_JSON" "$REPO_ROOT/bench/baseline_chain.json" \
          "$REPO_ROOT/BENCH_cvs.json" <<'PY'
import json
import sys

current_path, baseline_path, out_path = sys.argv[1:4]

def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None

def times(doc):
    out = {}
    for bench in (doc or {}).get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = (bench["real_time"], bench["time_unit"])
    return out

current = load(current_path)
baseline = load(baseline_path)
current_times = times(current)
baseline_times = times(baseline)

comparison = []
for name, (now, unit) in sorted(current_times.items()):
    entry = {"name": name, "current": now, "time_unit": unit}
    if name in baseline_times:
        before, _ = baseline_times[name]
        entry["baseline"] = before
        entry["speedup"] = round(before / now, 2) if now > 0 else None
    comparison.append(entry)

doc = {
    "description": "E7 chain sweep: pre-PR baseline vs current tree "
                   "(indexed MKB lookups + shared SyncContext + batch "
                   "synchronization)",
    "context": (current or {}).get("context", {}),
    "comparison": comparison,
    "current": current,
    "baseline": baseline,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in comparison:
    speedup = entry.get("speedup")
    note = f"  {entry['current']:.0f} {entry['time_unit']}"
    if speedup is not None:
        note += f"  (baseline {entry['baseline']:.0f}, {speedup}x)"
    print(f"{entry['name']:<28}{note}")
PY
