#!/usr/bin/env bash
# Runs the E7 scalability sweep and writes BENCH_cvs.json at the repo root:
# the current tree's numbers, merged with the recorded pre-PR baseline
# (bench/baseline_chain.json, captured from the seed tree before the
# indexed-MKB / SyncContext work landed) and per-size speedup ratios.
#
# Also runs the enumeration sweep (bench_enumeration: lazy best-first
# stream + top-k driver vs the eager cartesian baseline, which lives in
# the same binary) and writes BENCH_enumeration.json with per-sweep-point
# eager-vs-lazy speedup ratios, the admission sweep (bench_admission:
# deadline-token overhead vs the token-free search, plus p50/p99 bounded-
# queue batch latency under shedding) into BENCH_admission.json, and the
# versioning sweep (bench_versioning: O(1) tip-pin snapshot cost, dry-run
# overhead vs direct apply, COW byte amplification over 1k versions) into
# BENCH_versioning.json, and the sharded serving-core sweep (bench_shards:
# bulk-registration throughput, 1/4/16-shard disjoint-stream commit
# throughput, pinned-snapshot read p50/p99 under concurrent commits, and
# the million-view registration smoke) into BENCH_shards.json.
#
# The executor suite (bench_executor: vectorized vs hash vs nested-loop
# query execution and full-vs-incremental extent re-materialization per
# CVS verdict on a 10M-row skewed join; EVE_BENCH_EXECUTOR_ROWS overrides
# the scale, e.g. under sanitizers) goes into BENCH_executor.json. The
# binary validates vectorized == nested-loop and incremental == full for
# every verdict before timing anything, and exits nonzero on a mismatch.
#
# The server suite (bench_server: closed-loop chaos load against a forked
# eved serving loop — 10k concurrent sessions, ~3% running scripted
# disconnect/stall/flood faults; EVE_BENCH_SERVER_SESSIONS and
# EVE_BENCH_SERVER_SECONDS override the scale, e.g. under sanitizers)
# goes into BENCH_server.json. The binary exits nonzero if the server
# crashes, any well-behaved session sees a protocol violation, or the
# concurrent plateau falls short of the requested sessions.
#
# Every suite ends with one machine-readable line on stdout:
#   BENCHSUMMARY suite=<name> out=<json> key=value ...
# so CI (and humans grepping logs) can read each suite's headline numbers
# without parsing the JSON artifacts.
#
# Usage: bench/run_benchmarks.sh [--build-dir DIR] [--filter REGEX]
#                                [--min-time SECONDS]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
FILTER='BM_CvsChainMkbSize'
MIN_TIME='0.2'

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --filter)    FILTER="$2";    shift 2 ;;
    --min-time)  MIN_TIME="$2";  shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

BENCH="$BUILD_DIR/bench/bench_scalability"
if [[ ! -x "$BENCH" ]]; then
  echo "bench binary not found: $BENCH (build the repo first)" >&2
  exit 1
fi

CURRENT_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON"' EXIT

"$BENCH" --benchmark_filter="$FILTER" \
         --benchmark_min_time="${MIN_TIME}" \
         --benchmark_out="$CURRENT_JSON" \
         --benchmark_out_format=json > /dev/null

python3 - "$CURRENT_JSON" "$REPO_ROOT/bench/baseline_chain.json" \
          "$REPO_ROOT/BENCH_cvs.json" <<'PY'
import json
import sys

current_path, baseline_path, out_path = sys.argv[1:4]

def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None

def times(doc):
    out = {}
    for bench in (doc or {}).get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = (bench["real_time"], bench["time_unit"])
    return out

current = load(current_path)
baseline = load(baseline_path)
current_times = times(current)
baseline_times = times(baseline)

comparison = []
for name, (now, unit) in sorted(current_times.items()):
    entry = {"name": name, "current": now, "time_unit": unit}
    if name in baseline_times:
        before, _ = baseline_times[name]
        entry["baseline"] = before
        entry["speedup"] = round(before / now, 2) if now > 0 else None
    comparison.append(entry)

doc = {
    "description": "E7 chain sweep: pre-PR baseline vs current tree "
                   "(indexed MKB lookups + shared SyncContext + batch "
                   "synchronization)",
    "context": (current or {}).get("context", {}),
    "comparison": comparison,
    "current": current,
    "baseline": baseline,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in comparison:
    speedup = entry.get("speedup")
    note = f"  {entry['current']:.0f} {entry['time_unit']}"
    if speedup is not None:
        note += f"  (baseline {entry['baseline']:.0f}, {speedup}x)"
    print(f"{entry['name']:<28}{note}")
speedups = [e["speedup"] for e in comparison if e.get("speedup") is not None]
print(f"BENCHSUMMARY suite=cvs out={out_path} points={len(comparison)}"
      f" min_speedup={min(speedups) if speedups else 'n/a'}"
      f" max_speedup={max(speedups) if speedups else 'n/a'}")
PY

ENUM_BENCH="$BUILD_DIR/bench/bench_enumeration"
if [[ ! -x "$ENUM_BENCH" ]]; then
  echo "bench binary not found: $ENUM_BENCH (build the repo first)" >&2
  exit 1
fi

ENUM_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON" "$ENUM_JSON"' EXIT

# The binary validates top-k == exhaustive-prefix at every sweep point
# before timing anything, and exits nonzero on a mismatch.
"$ENUM_BENCH" --benchmark_min_time="${MIN_TIME}" \
              --benchmark_out="$ENUM_JSON" \
              --benchmark_out_format=json

python3 - "$ENUM_JSON" "$REPO_ROOT/BENCH_enumeration.json" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1:3]

with open(current_path) as f:
    doc = json.load(f)

times = {}
counters = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = (bench["real_time"], bench["time_unit"])
    counters[bench["name"]] = {
        k: v for k, v in bench.items()
        if k in ("candidates", "rewritings", "pulled")
    }

# The eager baseline lives in the same binary, so the comparison is
# within-run: for each sweep point, pair the exhaustive and the top-k
# driver (end to end) and the eager and the lazy enumeration (stream
# only).
comparison = []
for pair_kind, base_fmt, lazy_fmt in (
    ("synchronize", "BM_SynchronizeExhaustive/{m}", "BM_SynchronizeTopK/{m}/{k}"),
    ("enumerate", "BM_EnumerateEager/{m}", "BM_EnumerateLazyTopK/{m}/{k}"),
):
    for m in (4, 8, 12, 16):
        base_name = base_fmt.format(m=m)
        if base_name not in times:
            continue
        base_time, unit = times[base_name]
        for k in (1, 4, 8):
            lazy_name = lazy_fmt.format(m=m, k=k)
            if lazy_name not in times:
                continue
            lazy_time, _ = times[lazy_name]
            comparison.append({
                "kind": pair_kind,
                "covers": m,
                "k": k,
                "eager_baseline": base_name,
                "lazy": lazy_name,
                "baseline": base_time,
                "current": lazy_time,
                "time_unit": unit,
                "speedup": round(base_time / lazy_time, 2)
                           if lazy_time > 0 else None,
                "counters": counters.get(lazy_name, {}),
            })

out = {
    "description": "Lazy best-first top-k enumeration vs eager cartesian "
                   "baseline on cover-fan MKBs (covers x k sweep); top-k "
                   "results validated byte-identical to the exhaustive "
                   "prefix before timing",
    "context": doc.get("context", {}),
    "comparison": comparison,
    "raw": doc,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in comparison:
    name = f"{entry['kind']} m={entry['covers']} k={entry['k']}"
    print(f"{name:<28}  {entry['current']:.0f} {entry['time_unit']}"
          f"  (eager {entry['baseline']:.0f}, {entry['speedup']}x)")
speedups = [e["speedup"] for e in comparison if e.get("speedup") is not None]
print(f"BENCHSUMMARY suite=enumeration out={out_path}"
      f" pairs={len(comparison)}"
      f" min_speedup={min(speedups) if speedups else 'n/a'}"
      f" max_speedup={max(speedups) if speedups else 'n/a'}")
PY

FED_BENCH="$BUILD_DIR/bench/bench_federation"
if [[ ! -x "$FED_BENCH" ]]; then
  echo "bench binary not found: $FED_BENCH (build the repo first)" >&2
  exit 1
fi

FED_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON" "$ENUM_JSON" "$FED_JSON"' EXIT

# Fault-regime sweep: every schedule must converge (the binary marks a
# non-converging run as an error) before its time means anything.
"$FED_BENCH" --benchmark_min_time="${MIN_TIME}" \
             --benchmark_out="$FED_JSON" \
             --benchmark_out_format=json > /dev/null

python3 - "$FED_JSON" "$REPO_ROOT/BENCH_federation.json" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1:3]

with open(current_path) as f:
    doc = json.load(f)

times = {}
counters = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = (bench["real_time"], bench["time_unit"])
    counters[bench["name"]] = {
        k: v for k, v in bench.items()
        if k in ("probes", "failed_probes", "sources")
    }

# The fault-free schedule is the in-run baseline: each fault regime's
# overhead ratio is its time over the clean run's.
comparison = []
base = times.get("BM_ScheduleFaultFree")
for name in ("BM_ScheduleFaultFree", "BM_ScheduleLoss5Percent",
             "BM_ScheduleLoss20Percent", "BM_ScheduleFlapAllSources"):
    if name not in times:
        continue
    now, unit = times[name]
    entry = {"name": name, "current": now, "time_unit": unit,
             "counters": counters.get(name, {})}
    if base is not None and now > 0:
        entry["baseline"] = base[0]
        entry["overhead"] = round(now / base[0], 2)
    comparison.append(entry)
for name in sorted(times):
    if name.startswith("BM_MonitorTick"):
        now, unit = times[name]
        comparison.append({"name": name, "current": now, "time_unit": unit,
                           "counters": counters.get(name, {})})

out = {
    "description": "Federation monitor under fault load: 400-tick "
                   "healed-within-lease schedules at 0%/5%/20% loss and "
                   "all-source flap (overhead vs the fault-free run), "
                   "plus raw monitor-tick throughput over synthetic "
                   "source counts",
    "context": doc.get("context", {}),
    "comparison": comparison,
    "raw": doc,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in comparison:
    note = f"  {entry['current']:.1f} {entry['time_unit']}"
    if "overhead" in entry:
        note += f"  ({entry['overhead']}x fault-free)"
    print(f"{entry['name']:<28}{note}")
overheads = [e["overhead"] for e in comparison if "overhead" in e]
print(f"BENCHSUMMARY suite=federation out={out_path}"
      f" regimes={len(overheads)}"
      f" max_overhead={max(overheads) if overheads else 'n/a'}")
PY

ADM_BENCH="$BUILD_DIR/bench/bench_admission"
if [[ ! -x "$ADM_BENCH" ]]; then
  echo "bench binary not found: $ADM_BENCH (build the repo first)" >&2
  exit 1
fi

ADM_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON" "$ENUM_JSON" "$FED_JSON" "$ADM_JSON"' EXIT

# The binary validates that a non-firing token leaves the synchronization
# result byte-identical before timing anything.
"$ADM_BENCH" --benchmark_min_time="${MIN_TIME}" \
             --benchmark_out="$ADM_JSON" \
             --benchmark_out_format=json

python3 - "$ADM_JSON" "$REPO_ROOT/BENCH_admission.json" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1:3]

with open(current_path) as f:
    doc = json.load(f)

times = {}
counters = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = (bench["real_time"], bench["time_unit"])
    counters[bench["name"]] = {
        k: v for k, v in bench.items()
        if k in ("p50_us", "p99_us", "shed_per_batch", "completed_per_batch")
    }

# Deadline-check overhead: the free-token search over the token-free one,
# per cover count. The budget is 2%; anything above is flagged (a warning,
# not a failure — CI machines are noisy).
overhead = []
for covers in (8, 16):
    bare = times.get(f"BM_SynchronizeNoToken/{covers}")
    tokened = times.get(f"BM_SynchronizeFreeToken/{covers}")
    if bare is None or tokened is None or bare[0] <= 0:
        continue
    ratio = tokened[0] / bare[0]
    overhead.append({
        "covers": covers,
        "no_token": bare[0],
        "free_token": tokened[0],
        "time_unit": bare[1],
        "overhead_percent": round((ratio - 1.0) * 100, 2),
        "within_2_percent_budget": ratio <= 1.02,
    })

latency = []
for name in sorted(times):
    if not name.startswith("BM_AdmissionBatch"):
        continue
    now, unit = times[name]
    entry = {"name": name, "current": now, "time_unit": unit}
    entry.update(counters.get(name, {}))
    latency.append(entry)

out = {
    "description": "Deadline-token overhead on the cover-fan search "
                   "(free token vs no token; 2% budget) and bounded-queue "
                   "admission cycles: p50/p99 enqueue+drain latency with "
                   "explicit shedding at queue limits 2/4/6 against 6 "
                   "submissions",
    "context": doc.get("context", {}),
    "overhead": overhead,
    "latency": latency,
    "raw": doc,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in overhead:
    flag = "ok" if entry["within_2_percent_budget"] else "OVER BUDGET"
    print(f"token overhead covers={entry['covers']:<3}"
          f"  {entry['overhead_percent']:+.2f}%  ({flag})")
for entry in latency:
    print(f"{entry['name']:<24}  p50 {entry.get('p50_us', 0):.0f} us"
          f"  p99 {entry.get('p99_us', 0):.0f} us"
          f"  shed {entry.get('shed_per_batch', 0):.0f}")
p99s = [e["p99_us"] for e in latency if "p99_us" in e]
print(f"BENCHSUMMARY suite=admission out={out_path}"
      f" within_budget={all(e['within_2_percent_budget'] for e in overhead)}"
      f" max_p99_us={max(p99s) if p99s else 'n/a'}")
PY

VER_BENCH="$BUILD_DIR/bench/bench_versioning"
if [[ ! -x "$VER_BENCH" ]]; then
  echo "bench binary not found: $VER_BENCH (build the repo first)" >&2
  exit 1
fi

VER_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON" "$ENUM_JSON" "$FED_JSON" "$ADM_JSON" "$VER_JSON"' EXIT

# The binary validates dry-run == commit (byte-identical reports, zero
# version churn) before timing anything, and aborts on a mismatch.
"$VER_BENCH" --benchmark_min_time="${MIN_TIME}" \
             --benchmark_out="$VER_JSON" \
             --benchmark_out_format=json > /dev/null

python3 - "$VER_JSON" "$REPO_ROOT/BENCH_versioning.json" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1:3]

with open(current_path) as f:
    doc = json.load(f)

times = {}
counters = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    times[bench["name"]] = (bench["real_time"], bench["time_unit"])
    counters[bench["name"]] = {
        k: v for k, v in bench.items()
        if k in ("versions", "retained_bytes", "logical_bytes",
                 "amplification")
    }

comparison = []
# Snapshot acquisition: the O(1) tip pin vs the reparse of an old version.
tip = times.get("BM_PinTipSnapshot")
old = times.get("BM_PinOldVersion")
if tip is not None:
    entry = {"name": "snapshot_acquisition", "tip_pin": tip[0],
             "time_unit": tip[1]}
    if old is not None and tip[0] > 0:
        entry["old_version_pin"] = old[0]
        entry["reparse_factor"] = round(old[0] / tip[0], 1)
    comparison.append(entry)
# Dry-run overhead vs the direct commit (in-run baseline).
direct = times.get("BM_ApplyChangeDirect")
for name in ("BM_DryRunChange", "BM_DryRunThenCommit"):
    if name not in times:
        continue
    now, unit = times[name]
    entry = {"name": name, "current": now, "time_unit": unit}
    if direct is not None and direct[0] > 0:
        entry["direct_apply"] = direct[0]
        entry["ratio_vs_direct"] = round(now / direct[0], 2)
    comparison.append(entry)
# COW amplification across the chain sweep.
for name in sorted(times):
    if not name.startswith("BM_CowMemoryAmplification"):
        continue
    now, unit = times[name]
    entry = {"name": name, "current": now, "time_unit": unit}
    entry.update(counters.get(name, {}))
    comparison.append(entry)

out = {
    "description": "Versioned MKB costs: O(1) tip-pin snapshot vs old-"
                   "version reparse, what-if dry-run vs direct apply "
                   "(dry-run reports validated byte-identical to the "
                   "commit before timing), and copy-on-write retained-vs-"
                   "logical byte amplification across 100/1000-version "
                   "chains",
    "context": doc.get("context", {}),
    "comparison": comparison,
    "raw": doc,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in comparison:
    name = entry["name"]
    if name == "snapshot_acquisition":
        print(f"{name:<32}  tip {entry['tip_pin']:.1f} {entry['time_unit']}"
              f"  (old-version x{entry.get('reparse_factor', '?')})")
    elif "ratio_vs_direct" in entry:
        print(f"{name:<32}  {entry['current']:.0f} {entry['time_unit']}"
              f"  ({entry['ratio_vs_direct']}x direct apply)")
    elif "amplification" in entry:
        print(f"{name:<32}  retained {entry['retained_bytes']:.0f} B"
              f"  logical {entry['logical_bytes']:.0f} B"
              f"  ({entry['amplification']:.2f}x saved)")
tip_entry = next((e for e in comparison
                  if e["name"] == "snapshot_acquisition"), {})
print(f"BENCHSUMMARY suite=versioning out={out_path}"
      f" tip_pin_{tip_entry.get('time_unit', 'ns')}="
      f"{round(tip_entry.get('tip_pin', 0), 1)}"
      f" reparse_factor={tip_entry.get('reparse_factor', 'n/a')}")
PY

SHARDS_BENCH="$BUILD_DIR/bench/bench_shards"
if [[ ! -x "$SHARDS_BENCH" ]]; then
  echo "bench binary not found: $SHARDS_BENCH (build the repo first)" >&2
  exit 1
fi

SHARDS_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON" "$ENUM_JSON" "$FED_JSON" "$ADM_JSON" "$VER_JSON" "$SHARDS_JSON"' EXIT

# The binary replays the same change stream at 1/4/16 shards and
# byte-compares every merged report before timing anything; a divergence
# aborts the run (and, via set -e, this script). EVE_BENCH_MILLION=1 also
# runs the million-view bulk-registration smoke; export it as 0 to skip
# (e.g. under sanitizers).
EVE_BENCH_MILLION="${EVE_BENCH_MILLION:-1}" \
"$SHARDS_BENCH" --benchmark_min_time="${MIN_TIME}" \
                --benchmark_out="$SHARDS_JSON" \
                --benchmark_out_format=json > /dev/null

python3 - "$SHARDS_JSON" "$REPO_ROOT/BENCH_shards.json" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1:3]

with open(current_path) as f:
    doc = json.load(f)

runs = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    runs[bench["name"]] = bench

registration = []
commits = []
for shards in (1, 4, 16):
    reg = runs.get(f"BM_BulkRegistration/{shards}")
    if reg is not None:
        registration.append({
            "shards": shards,
            "views": reg.get("views"),
            "views_per_second": reg.get("items_per_second"),
        })
    com = runs.get(f"BM_DisjointCommitThroughput/{shards}")
    if com is not None:
        commits.append({
            "shards": shards,
            "pool_views": com.get("views"),
            "commits_per_second": com.get("items_per_second"),
            "ms_per_commit": com.get("real_time"),
        })

by_shards = {c["shards"]: c["commits_per_second"] for c in commits}
speedup_16v1 = (round(by_shards[16] / by_shards[1], 2)
                if by_shards.get(1) and by_shards.get(16) else None)

reads = {}
for name, bench in runs.items():
    if name.startswith("BM_PinnedReadDuringCommits"):
        p99 = bench.get("read_p99_ns", 0.0)
        mean_commit = bench.get("mean_commit_ns", 0.0)
        during = bench.get("reads_during_commit", 0.0)
        reads = {
            "read_p50_ns": bench.get("read_p50_ns"),
            "read_p99_ns": p99,
            "reads_during_commit": during,
            "commits_during_run": bench.get("commits_during_run"),
            "mean_commit_ns": mean_commit,
            # Reads overlapping an in-flight commit completed, and the
            # read tail is orders of magnitude below a single commit:
            # pinned readers never wait for writers.
            "zero_blocking_reads": bool(
                during > 0 and mean_commit > 0 and p99 < mean_commit / 100),
        }

million = None
for name, bench in runs.items():
    if name.startswith("BM_MillionViewRegistration"):
        million = {
            "seconds": round(bench.get("real_time", 0.0), 2),
            "views_per_second": bench.get("items_per_second"),
        }

out = {
    "description": "Sharded view-pool serving core: bulk-registration "
                   "throughput, aggregate commit throughput on a "
                   "disjoint-shard rename stream at 1/4/16 shards "
                   "(single-core container: the speedup is smaller "
                   "per-shard snapshot rendering, not parallelism), and "
                   "pinned-snapshot read latency while a writer commits "
                   "continuously. Merged reports are validated "
                   "byte-identical across shard counts before timing.",
    "context": doc.get("context", {}),
    "merged_reports_identical": True,  # validated by the binary pre-timing
    "registration": registration,
    "commit_throughput": commits,
    "commit_speedup_16_shards_vs_1": speedup_16v1,
    "meets_3x_target": speedup_16v1 is not None and speedup_16v1 >= 3.0,
    "pinned_reads_under_commits": reads,
    "million_view_registration": million,
    "raw": doc,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in commits:
    print(f"commit throughput shards={entry['shards']:<3}"
          f"  {entry['commits_per_second']:.1f}/s")
if reads:
    print(f"pinned reads  p50 {reads['read_p50_ns']:.0f} ns"
          f"  p99 {reads['read_p99_ns']:.0f} ns"
          f"  during-commit {reads['reads_during_commit']:.0f}"
          f"  (mean commit {reads['mean_commit_ns'] / 1e6:.1f} ms)")
if million:
    print(f"million-view registration  {million['seconds']:.1f} s")
print(f"BENCHSUMMARY suite=shards out={out_path}"
      f" commit_speedup_16v1={speedup_16v1}"
      f" meets_3x_target={speedup_16v1 is not None and speedup_16v1 >= 3.0}"
      f" zero_blocking_reads={reads.get('zero_blocking_reads', 'n/a')}"
      f" read_p99_ns={reads.get('read_p99_ns', 'n/a')}"
      f" merged_reports_identical=True")
PY

EXEC_BENCH="$BUILD_DIR/bench/bench_executor"
if [[ ! -x "$EXEC_BENCH" ]]; then
  echo "bench binary not found: $EXEC_BENCH (build the repo first)" >&2
  exit 1
fi

EXEC_JSON="$(mktemp)"
trap 'rm -f "$CURRENT_JSON" "$ENUM_JSON" "$FED_JSON" "$ADM_JSON" "$VER_JSON" "$SHARDS_JSON" "$EXEC_JSON"' EXIT

# The binary validates vectorized == nested-loop == hash and incremental
# == full refresh for every verdict before timing anything, and exits
# nonzero on a mismatch (aborting this script via set -e).
# EVE_BENCH_EXECUTOR_ROWS sets the R0 scale; the 10M default is the
# ISSUE-target configuration — export a smaller value under sanitizers.
EVE_BENCH_EXECUTOR_ROWS="${EVE_BENCH_EXECUTOR_ROWS:-10000000}" \
"$EXEC_BENCH" --benchmark_min_time="${MIN_TIME}" \
              --benchmark_out="$EXEC_JSON" \
              --benchmark_out_format=json

python3 - "$EXEC_JSON" "$REPO_ROOT/BENCH_executor.json" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1:3]

with open(current_path) as f:
    doc = json.load(f)

runs = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    runs[bench["name"]] = bench

def time_of(name):
    bench = runs.get(name)
    return (bench["real_time"], bench["time_unit"]) if bench else None

rows = None
full = time_of("BM_FullRefresh")

# Query-strategy ablation: hash is the in-run baseline for the columnar
# path (the nested-loop oracle runs at a capped size, so its time is
# reported but not a fair ratio).
strategies = []
hash_time = time_of("BM_QueryHash")
for name in ("BM_QueryNestedLoop", "BM_QueryHash", "BM_QueryVectorized",
             "BM_QueryAuto"):
    t = time_of(name)
    if t is None:
        continue
    bench = runs[name]
    entry = {"name": name, "current": t[0], "time_unit": t[1],
             "rows": bench.get("rows"), "out_rows": bench.get("out_rows")}
    if rows is None and name != "BM_QueryNestedLoop":
        rows = bench.get("rows")
    if (name in ("BM_QueryVectorized", "BM_QueryAuto")
            and hash_time is not None and t[0] > 0):
        entry["speedup_vs_hash"] = round(hash_time[0] / t[0], 2)
    strategies.append(entry)

# Incremental maintenance vs the full re-materialization baseline.
incremental = []
speedups = {}
for verdict, name in (("equal", "BM_IncrementalEqual"),
                      ("superset", "BM_IncrementalSuperset"),
                      ("subset", "BM_IncrementalSubset")):
    t = time_of(name)
    if t is None:
        continue
    bench = runs[name]
    entry = {"verdict": verdict, "name": name, "current": t[0],
             "time_unit": t[1], "out_rows": bench.get("out_rows")}
    if full is not None and t[0] > 0:
        entry["full_refresh"] = full[0]
        entry["speedup_vs_full"] = round(full[0] / t[0], 2)
        speedups[verdict] = entry["speedup_vs_full"]
    incremental.append(entry)

# The acceptance bar: Equal and Superset verdicts re-materialize >= 5x
# faster than a full refresh at the benchmarked scale.
meets_5x = all(speedups.get(v, 0) >= 5.0 for v in ("equal", "superset"))

out = {
    "description": "Columnar data plane: vectorized vs hash vs nested-"
                   "loop execution of a skewed two-relation join, and "
                   "incremental extent maintenance (IncrementalRefresh "
                   "per CVS verdict) vs full re-materialization. The "
                   "binary validates strategy agreement and incremental "
                   "== full for every verdict before timing.",
    "context": doc.get("context", {}),
    "rows": rows,
    "strategies": strategies,
    "incremental": incremental,
    "incremental_speedups_vs_full": speedups,
    "meets_5x_target_equal_superset": meets_5x,
    "raw": doc,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for entry in strategies:
    note = f"  {entry['current']:.1f} {entry['time_unit']}"
    if "speedup_vs_hash" in entry:
        note += f"  ({entry['speedup_vs_hash']}x hash)"
    print(f"{entry['name']:<24}{note}")
for entry in incremental:
    note = f"  {entry['current']:.2f} {entry['time_unit']}"
    if "speedup_vs_full" in entry:
        note += (f"  (full {entry['full_refresh']:.1f},"
                 f" {entry['speedup_vs_full']}x)")
    print(f"{entry['name']:<24}{note}")
print(f"BENCHSUMMARY suite=executor out={out_path}"
      f" rows={rows}"
      f" equal_speedup={speedups.get('equal', 'n/a')}"
      f" superset_speedup={speedups.get('superset', 'n/a')}"
      f" subset_speedup={speedups.get('subset', 'n/a')}"
      f" meets_5x_target={meets_5x}")
PY

SERVER_BENCH="$BUILD_DIR/bench/bench_server"
if [[ ! -x "$SERVER_BENCH" ]]; then
  echo "bench binary not found: $SERVER_BENCH (build the repo first)" >&2
  exit 1
fi

# Not a google-benchmark microbench: bench_server forks an eved serving
# loop, drives EVE_BENCH_SERVER_SESSIONS concurrent closed-loop sessions
# (~3% running scripted disconnect/stall/flood faults), writes
# BENCH_server.json itself, and prints its own BENCHSUMMARY line. It
# exits nonzero — aborting this script via set -e — if the server
# crashes, a well-behaved session sees a protocol violation, or the
# concurrent plateau falls short.
"$SERVER_BENCH" --sessions "${EVE_BENCH_SERVER_SESSIONS:-10000}" \
                --duration-seconds "${EVE_BENCH_SERVER_SECONDS:-8}" \
                --out "$REPO_ROOT/BENCH_server.json"

REPL_BENCH="$BUILD_DIR/bench/bench_repl"
if [[ ! -x "$REPL_BENCH" ]]; then
  echo "bench binary not found: $REPL_BENCH (build the repo first)" >&2
  exit 1
fi

# Also not a microbench: bench_repl runs a 3-node replicated cluster as
# real processes under closed-loop semi-sync load, SIGKILLs the primary,
# then partitions (SIGSTOP) its successor. It writes BENCH_repl.json
# itself and exits nonzero — aborting this script via set -e — on a
# missed promotion budget, any lost acked commit, non-identical
# converged state, or a dirty scrub.
"$REPL_BENCH" --writers "${EVE_BENCH_REPL_WRITERS:-2}" \
              --out "$REPO_ROOT/BENCH_repl.json"
