// Join-strategy ablation: nested-loop vs hash execution of view extents.
// The empirical P3 check (E8) evaluates views over growing states; this
// bench quantifies why the hash path is the default there (O(N) vs O(N²)
// on equi-joins) and verifies both strategies agree.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "esql/binder.h"
#include "esql/evaluator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

struct Fixture {
  Mkb mkb;
  ViewDefinition view;
};

Fixture MakeFixture() {
  Fixture f;
  f.mkb = MakeTravelAgencyMkb().MoveValue();
  f.view = ParseAndBindView(CustomerPassengersAsiaSql(), f.mkb.catalog())
               .MoveValue();
  return f;
}

void PrintReproduction() {
  Fixture f = MakeFixture();
  Database db;
  Status status = PopulateTravelAgencyDatabase(f.mkb, &db, 200, 5);
  if (!status.ok()) {
    std::cerr << status << std::endl;
    std::exit(1);
  }
  const Result<Table> nested = EvaluateView(
      f.view, db, f.mkb.catalog(), nullptr, JoinStrategy::kNestedLoop);
  const Result<Table> hashed = EvaluateView(f.view, db, f.mkb.catalog(),
                                            nullptr, JoinStrategy::kHash);
  if (!nested.ok() || !hashed.ok()) {
    std::cerr << nested.status() << " / " << hashed.status() << std::endl;
    std::exit(1);
  }
  std::cout << "=== join-strategy ablation ===\n"
            << "paper view over 200 customers: nested-loop rows = "
            << nested.value().NumRows()
            << ", hash rows = " << hashed.value().NumRows()
            << ", identical sets: "
            << (nested.value().SetEquals(hashed.value()) ? "yes" : "NO")
            << "\n\n";
}

void RunStrategy(benchmark::State& state, JoinStrategy strategy) {
  Fixture f = MakeFixture();
  Database db;
  Status status = PopulateTravelAgencyDatabase(
      f.mkb, &db, static_cast<size_t>(state.range(0)), 5);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateView(f.view, db, f.mkb.catalog(), nullptr, strategy));
  }
  state.SetComplexityN(state.range(0));
}

void BM_NestedLoop(benchmark::State& state) {
  RunStrategy(state, JoinStrategy::kNestedLoop);
}
BENCHMARK(BM_NestedLoop)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_HashJoin(benchmark::State& state) {
  RunStrategy(state, JoinStrategy::kHash);
}
BENCHMARK(BM_HashJoin)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
