// E1 / Fig. 2: the travel-agency MKB. Prints the reproduced content
// descriptions and constraint inventory, then measures MKB construction
// and constraint-lookup throughput.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "esql/binder.h"
#include "mkb/mkb.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

void PrintReproduction() {
  const Result<Mkb> mkb = MakeTravelAgencyMkb();
  if (!mkb.ok()) {
    std::cerr << "failed to build Fig. 2 MKB: " << mkb.status() << std::endl;
    std::exit(1);
  }
  std::cout << "=== E1 / Fig. 2: travel-agency MKB ===\n"
            << mkb.value().ToString() << "\n"
            << "inventory: " << mkb.value().catalog().NumRelations()
            << " relations (paper: 7), "
            << mkb.value().join_constraints().size()
            << " join constraints (paper: JC1-JC6), "
            << mkb.value().function_of_constraints().size()
            << " function-of constraints (paper: F1-F7)\n\n";
}

void BM_BuildTravelAgencyMkb(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeTravelAgencyMkb());
  }
}
BENCHMARK(BM_BuildTravelAgencyMkb);

void BM_JoinConstraintLookup(benchmark::State& state) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  size_t hits = 0;
  for (auto _ : state) {
    hits += mkb.JoinConstraintsOf("Customer").size();
    hits += mkb.JoinConstraintsBetween("FlightRes", "Accident-Ins").size();
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_JoinConstraintLookup);

void BM_CoverLookup(benchmark::State& state) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const AttributeRef name{"Customer", "Name"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mkb.CoversOf(name));
  }
}
BENCHMARK(BM_CoverLookup);

void BM_ParseAndBindPaperView(benchmark::State& state) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const std::string sql = CustomerPassengersAsiaSql();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseAndBindView(sql, mkb.catalog()));
  }
}
BENCHMARK(BM_ParseAndBindPaperView);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
