// E9: MKB evolution and affected-view detection throughput — the cost of
// each of the six capability-change operators on large MKBs, and the
// EveSystem end-to-end change pipeline with a large registered view pool.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "eve/eve_system.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

Mkb BigMkb(size_t n) {
  ChainMkbSpec spec;
  spec.length = n;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  return MakeChainMkb(spec).MoveValue();
}

void PrintReproduction() {
  std::cout << "=== E9: MKB evolution + EVE change pipeline ===\n";
  const Mkb mkb = BigMkb(200);
  std::printf("%-32s %-10s %s\n", "operator", "ok",
              "dropped/weakened constraints");
  struct Case {
    const char* name;
    CapabilityChange change;
  };
  RelationDef fresh;
  fresh.source = "ISX";
  fresh.name = "Fresh";
  fresh.schema = Schema({{"f", DataType::kInt}});
  const Case cases[] = {
      {"add-relation", CapabilityChange::AddRelation(fresh)},
      {"add-attribute",
       CapabilityChange::AddAttribute("R100", {"Extra", DataType::kInt})},
      {"rename-relation",
       CapabilityChange::RenameRelation("R100", "R100x")},
      {"rename-attribute",
       CapabilityChange::RenameAttribute("R100", "P100", "P100x")},
      {"delete-attribute",
       CapabilityChange::DeleteAttribute("R100", "P100")},
      {"delete-relation", CapabilityChange::DeleteRelation("R100")},
  };
  for (const Case& c : cases) {
    const Result<MkbEvolutionReport> report = EvolveMkb(mkb, c.change);
    if (report.ok()) {
      std::printf("%-32s %-10s %zu/%zu\n", c.name, "yes",
                  report.value().dropped_constraints.size(),
                  report.value().weakened_constraints.size());
    } else {
      std::printf("%-32s %-10s %s\n", c.name, "NO",
                  report.status().ToString().c_str());
    }
  }
  std::cout << "\n";
}

void BM_EvolveDeleteRelation(benchmark::State& state) {
  const Mkb mkb = BigMkb(static_cast<size_t>(state.range(0)));
  const CapabilityChange change = CapabilityChange::DeleteRelation(
      "R" + std::to_string(state.range(0) / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvolveMkb(mkb, change));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvolveDeleteRelation)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_EvolveRenameRelation(benchmark::State& state) {
  const Mkb mkb = BigMkb(static_cast<size_t>(state.range(0)));
  const CapabilityChange change = CapabilityChange::RenameRelation(
      "R" + std::to_string(state.range(0) / 2), "Renamed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvolveMkb(mkb, change));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvolveRenameRelation)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_EvolveDeleteAttribute(benchmark::State& state) {
  const Mkb mkb = BigMkb(static_cast<size_t>(state.range(0)));
  const std::string rel = "R" + std::to_string(state.range(0) / 2);
  const std::string attr = "P" + std::to_string(state.range(0) / 2);
  const CapabilityChange change =
      CapabilityChange::DeleteAttribute(rel, attr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvolveMkb(mkb, change));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvolveDeleteAttribute)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

// End-to-end pipeline: many registered views, one change.
void BM_EveSystemApplyChange(benchmark::State& state) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const Mkb mkb = BigMkb(64);
  for (auto _ : state) {
    state.PauseTiming();
    EveSystem system(mkb);
    std::mt19937_64 rng(7);
    for (size_t i = 0; i < num_views; ++i) {
      ViewDefinition view = MakeRandomConnectedView(mkb, &rng, 3).MoveValue();
      view.set_name("view_" + std::to_string(i));
      benchmark::DoNotOptimize(system.RegisterView(view));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        system.ApplyChange(CapabilityChange::DeleteRelation("R30")));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EveSystemApplyChange)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity();

void BM_AffectedViewDetection(benchmark::State& state) {
  const Mkb mkb = BigMkb(64);
  EveSystem system(mkb);
  std::mt19937_64 rng(7);
  for (size_t i = 0; i < static_cast<size_t>(state.range(0)); ++i) {
    ViewDefinition view = MakeRandomConnectedView(mkb, &rng, 3).MoveValue();
    view.set_name("view_" + std::to_string(i));
    benchmark::DoNotOptimize(system.RegisterView(view));
  }
  const CapabilityChange change = CapabilityChange::DeleteRelation("R30");
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.AffectedViews(change));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AffectedViewDetection)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity();

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
