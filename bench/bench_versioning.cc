// Cost of the versioned MKB: O(1) snapshot acquisition (tip pin) vs
// pinning an old version (reparse), what-if dry-run overhead vs a direct
// ApplyChange, and copy-on-write memory amplification across a 1k-version
// chain (retained vs logical bytes).
//
// Before timing anything the binary validates the dry-run contract: the
// dry-run report must be byte-identical to the report the real commit then
// produces, and the dry-run must leave the version chain untouched.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "eve/eve_system.h"
#include "mkb/capability_change.h"
#include "mkb/version_store.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

EveSystem FreshSystem() {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  if (!system.RegisterViewText(CustomerPassengersAsiaSql()).ok()) {
    std::abort();
  }
  return system;
}

// Dry-run == commit, checked once up front; a mismatch is a correctness
// bug, so the whole benchmark binary refuses to produce numbers.
void ValidateDryRunContract() {
  EveSystem system = FreshSystem();
  const CapabilityChange change = CapabilityChange::DeleteRelation("Customer");
  const uint64_t version_before = system.current_version();
  const Result<DryRunReport> dry = system.DryRunChange(change);
  if (!dry.ok() || system.current_version() != version_before) {
    std::cerr << "dry-run validation failed: " << dry.status() << "\n";
    std::abort();
  }
  const Result<ChangeReport> applied = system.ApplyChange(change);
  if (!applied.ok() ||
      dry.value().report.ToString() != applied.value().ToString()) {
    std::cerr << "dry-run report does not match the committed report\n";
    std::abort();
  }
}

// O(1) snapshot: the tip pin is a shared_ptr copy under the store mutex.
void BM_PinTipSnapshot(benchmark::State& state) {
  EveSystem system = FreshSystem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.PinTip());
  }
}
BENCHMARK(BM_PinTipSnapshot);

// Pinning a non-tip version reparses its MISD segments — the price of
// time travel, for contrast with the O(1) tip pin.
void BM_PinOldVersion(benchmark::State& state) {
  EveSystem system = FreshSystem();
  if (!system.ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
           .ok()) {
    std::abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.PinVersion(1));
  }
}
BENCHMARK(BM_PinOldVersion);

void BM_ApplyChangeDirect(benchmark::State& state) {
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    benchmark::DoNotOptimize(
        system.ApplyChange(CapabilityChange::DeleteRelation("Customer")));
  }
}
BENCHMARK(BM_ApplyChangeDirect);

// The same change as a what-if: full prepare (evolution + CVS), no commit.
// The overhead vs BM_ApplyChangeDirect is the rehearsal tax; the saving is
// everything journal/commit-side.
void BM_DryRunChange(benchmark::State& state) {
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    benchmark::DoNotOptimize(
        system.DryRunChange(CapabilityChange::DeleteRelation("Customer")));
  }
}
BENCHMARK(BM_DryRunChange);

// Dry-run-then-commit: the full rehearsed pipeline, for the end-to-end
// cost of habitually previewing every change.
void BM_DryRunThenCommit(benchmark::State& state) {
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    const CapabilityChange change =
        CapabilityChange::DeleteRelation("Customer");
    benchmark::DoNotOptimize(system.DryRunChange(change));
    benchmark::DoNotOptimize(system.ApplyChange(change));
  }
}
BENCHMARK(BM_DryRunThenCommit);

// COW amplification across a long chain of view-pool-only commits (the
// slowly-evolving-MKB regime): each version re-renders one segment and
// shares the other four. Reports retained vs logical bytes and the
// amplification ratio logical/retained — the factor full snapshots would
// have cost.
void BM_CowMemoryAmplification(benchmark::State& state) {
  const size_t versions = static_cast<size_t>(state.range(0));
  VersionByteStats bytes;
  for (auto _ : state) {
    EveSystem system = FreshSystem();
    for (size_t i = 0; i < versions; ++i) {
      const ViewState next =
          (i % 2 == 0) ? ViewState::kDisabled : ViewState::kActive;
      if (!system.SetViewState("CustomerPassengersAsia", next).ok()) {
        std::abort();
      }
    }
    bytes = system.versions().ByteStats();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["versions"] = static_cast<double>(versions);
  state.counters["retained_bytes"] = static_cast<double>(bytes.retained_bytes);
  state.counters["logical_bytes"] = static_cast<double>(bytes.logical_bytes);
  state.counters["amplification"] =
      bytes.retained_bytes > 0
          ? static_cast<double>(bytes.logical_bytes) /
                static_cast<double>(bytes.retained_bytes)
          : 0.0;
}
BENCHMARK(BM_CowMemoryAmplification)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::ValidateDryRunContract();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
