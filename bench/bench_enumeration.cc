// Enumeration-pipeline benchmark: the lazy best-first candidate stream and
// the top-k synchronization driver against the pre-refactor eager
// cartesian-product enumeration, swept over candidate-space size (number
// of covers in a cover-fan MKB — candidates grow quadratically with it)
// and k. The validation pass asserts the top-k run returns byte-identical
// rewritings to the exhaustive run's prefix before any timing starts.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <iostream>
#include <optional>

#include "cvs/cvs.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "hypergraph/join_graph.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

struct Scenario {
  Mkb mkb;
  Mkb mkb_prime;
  ViewDefinition view;
  RMapping mapping;
  // Built against mkb_prime AFTER the scenario stops moving: the graph
  // borrows the Mkb's join-constraint vector.
  std::optional<JoinGraph> graph_prime;
  const JoinGraph& graph() const { return *graph_prime; }
};

std::unique_ptr<Scenario> MakeScenario(size_t covers) {
  CoverFanMkbSpec spec;
  spec.num_covers = covers;
  auto s = std::make_unique<Scenario>();
  s->mkb = MakeCoverFanMkb(spec).MoveValue();
  s->view = MakeCoverFanView(s->mkb).MoveValue();
  s->mkb_prime = EvolveMkb(s->mkb, CapabilityChange::DeleteRelation("R0"))
                     .MoveValue()
                     .mkb;
  s->mapping = ComputeRMapping(s->view, "R0", s->mkb).MoveValue();
  s->graph_prime.emplace(JoinGraph::Build(s->mkb_prime));
  return s;
}

// Caps wide enough that nothing truncates: the baseline really does
// materialize the whole candidate space.
RReplacementOptions WideOptions(size_t covers) {
  RReplacementOptions options;
  options.max_results = 1000000;
  options.max_cover_combinations = 1000000;
  options.max_extra_relations = covers;
  return options;
}

CvsOptions WideCvsOptions(size_t covers, size_t top_k) {
  CvsOptions options;
  options.replacement = WideOptions(covers);
  options.top_k = top_k;
  return options;
}

// The pre-refactor eager enumeration: every cover combination fully
// expanded, every join tree materialized, sorted afterwards.
void BM_EnumerateEager(benchmark::State& state) {
  const std::unique_ptr<Scenario> s = MakeScenario(state.range(0));
  const RReplacementOptions options = WideOptions(state.range(0));
  size_t candidates = 0;
  for (auto _ : state) {
    const auto result = ComputeRReplacementsEager(s->view, s->mapping, s->mkb,
                                                  s->graph(), options);
    candidates = result.value().size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_EnumerateEager)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

// The streaming enumeration pulled only k candidates deep: the work the
// top-k driver actually pays for.
void BM_EnumerateLazyTopK(benchmark::State& state) {
  const std::unique_ptr<Scenario> s = MakeScenario(state.range(0));
  const RReplacementOptions options = WideOptions(state.range(0));
  const size_t k = state.range(1);
  const RewritingCostModel model = DefaultRankingCostModel();
  for (auto _ : state) {
    CandidateStream stream =
        CandidateStream::Create(s->view, s->mapping, s->mkb, s->graph(),
                                options, model)
            .MoveValue();
    for (size_t pulled = 0; pulled < k; ++pulled) {
      std::optional<ReplacementCandidate> candidate = stream.Next();
      if (!candidate.has_value()) break;
      benchmark::DoNotOptimize(candidate);
    }
  }
}
BENCHMARK(BM_EnumerateLazyTopK)
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({12, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8});

// End-to-end synchronization, exhaustive: every candidate spliced,
// legality-checked and ranked.
void BM_SynchronizeExhaustive(benchmark::State& state) {
  const std::unique_ptr<Scenario> s = MakeScenario(state.range(0));
  const CvsOptions options = WideCvsOptions(state.range(0), 0);
  size_t rewritings = 0;
  for (auto _ : state) {
    const auto result = SynchronizeDeleteRelation(s->view, "R0", s->mkb,
                                                  s->mkb_prime, options);
    rewritings = result.value().rewritings.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
}
BENCHMARK(BM_SynchronizeExhaustive)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

// End-to-end synchronization with the top-k bound: stops pulling as soon
// as the stream provably cannot improve the k best.
void BM_SynchronizeTopK(benchmark::State& state) {
  const std::unique_ptr<Scenario> s = MakeScenario(state.range(0));
  const CvsOptions options = WideCvsOptions(state.range(0), state.range(1));
  size_t yielded = 0;
  for (auto _ : state) {
    const auto result = SynchronizeDeleteRelation(s->view, "R0", s->mkb,
                                                  s->mkb_prime, options);
    yielded = result.value().enumeration.candidates_yielded;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pulled"] = static_cast<double>(yielded);
}
BENCHMARK(BM_SynchronizeTopK)
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({12, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8});

// Before timing anything: the top-k result must be byte-identical to the
// exhaustive run's k-prefix at every sweep point.
bool ValidateTopKEquivalence() {
  for (const size_t covers : {4u, 8u, 12u, 16u}) {
    const std::unique_ptr<Scenario> s = MakeScenario(covers);
    const auto full = SynchronizeDeleteRelation(
        s->view, "R0", s->mkb, s->mkb_prime, WideCvsOptions(covers, 0));
    for (const size_t k : {1u, 4u, 8u}) {
      const auto pruned = SynchronizeDeleteRelation(
          s->view, "R0", s->mkb, s->mkb_prime, WideCvsOptions(covers, k));
      if (!full.ok() || !pruned.ok()) return false;
      const size_t expect =
          std::min(k, full.value().rewritings.size());
      if (pruned.value().rewritings.size() != expect) return false;
      for (size_t i = 0; i < expect; ++i) {
        if (pruned.value().rewritings[i].view.ToString() !=
            full.value().rewritings[i].view.ToString()) {
          return false;
        }
      }
    }
  }
  return true;
}

void PrintReproduction() {
  std::cout << "# bench_enumeration: lazy best-first stream vs eager "
               "cartesian enumeration on cover-fan MKBs\n"
            << "# sweep: covers in {4,8,12,16} x k in {1,4,8}\n";
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  if (!eve::ValidateTopKEquivalence()) {
    std::cerr << "FATAL: top-k result differs from the exhaustive prefix\n";
    return 1;
  }
  std::cout << "# validated: top-k == exhaustive prefix at every sweep "
               "point\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
