// Columnar data plane at scale: vectorized executor vs hash vs the
// nested-loop oracle, and incremental extent maintenance
// (IncrementalRefresh) vs full re-materialization for every CVS verdict.
//
// The workload is a two-relation chain join R0 ⋈ R1 with a 10M-row R0
// (EVE_BENCH_EXECUTOR_ROWS overrides; the in-tree default is 65536 so the
// CI smoke run stays fast) populated by PopulateRelationSkewed: 90% of R0
// rows carry a hot join key that matches ~1 R1 row, payloads draw from a
// skewed 1M-value domain. The three view shapes:
//
//   base           SELECT P0, P1 FROM R0, R1 WHERE R0.L0 = R1.L0
//   old_superset   base plus P0 < hi   (hi keeps ~99.9% of rows) — dropping
//                  the condition makes base a SUPERSET of it, and the
//                  delta ¬(P0 < hi) selects ~0.1% of the base scan
//   new_subset     base plus P0 < lo   — adding the condition makes it a
//                  SUBSET of base, maintainable by filtering the stored
//                  extent with no base scan at all
//
// Before any timing, the binary validates (and exits nonzero on failure):
//   1. nested-loop, hash and vectorized execution produce identical sets;
//   2. IncrementalRefresh is byte-identical to a full Refresh for the
//      Equal, Superset and Subset verdicts, AND actually took the delta
//      path (a silent fallback to kFull would make the timings a lie).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "algebra/executor.h"
#include "esql/evaluator.h"
#include "eve/materialization.h"
#include "workload/generator.h"

namespace eve {
namespace {

constexpr int64_t kValueDomain = 1000000;
constexpr size_t kDimRows = 4096;  // R1: one expected match per hot key
constexpr uint64_t kSeed = 7;

size_t BigRows() {
  if (const char* env = std::getenv("EVE_BENCH_EXECUTOR_ROWS");
      env != nullptr && *env != '\0') {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 65536;
}

struct Fixture {
  Mkb mkb;
  Database db;
  FunctionRegistry registry = FunctionRegistry::Default();
  ViewDefinition base;          // V: the join, no extra conditions
  ViewDefinition old_superset;  // V with the soon-to-be-dropped condition
  ViewDefinition new_subset;    // V with an added condition
  size_t rows = 0;
};

// P0 < threshold, the only condition shape the delta rules need here.
ViewCondition PayloadBelow(int64_t threshold) {
  return ViewCondition{
      Expr::Binary(BinaryOp::kLt,
                   Expr::Column(AttributeRef{"R0", "P0"}),
                   Expr::Lit(Value::Int(threshold))),
      EvolutionParams{false, true}};
}

std::unique_ptr<Fixture> MakeFixture(size_t rows) {
  auto f = std::make_unique<Fixture>();
  ChainMkbSpec spec;
  spec.length = 2;
  spec.skip_edges = false;
  spec.cover_distance = 0;
  spec.extra_attributes = 0;
  spec.pc_constraints = false;
  f->mkb = MakeChainMkb(spec).MoveValue();
  f->rows = rows;

  SkewedDataSpec fact;
  fact.rows = rows;
  fact.value_domain = kValueDomain;
  fact.value_skew = 0.5;
  fact.join_domain = static_cast<int64_t>(kDimRows);
  fact.join_selectivity = 0.9;
  fact.seed = kSeed;
  SkewedDataSpec dim = fact;
  dim.rows = kDimRows < rows ? kDimRows : rows;
  dim.value_skew = 0.0;
  dim.join_selectivity = 1.0;
  dim.seed = kSeed + 1;
  Status status =
      PopulateRelationSkewed(f->mkb.catalog(), "R0", fact, &f->db);
  if (status.ok()) {
    status = PopulateRelationSkewed(f->mkb.catalog(), "R1", dim, &f->db);
  }
  if (!status.ok()) {
    std::cerr << "fixture population failed: " << status << std::endl;
    std::exit(1);
  }

  f->base = MakeChainView(f->mkb, 0, 2).MoveValue();
  f->base.set_name("V");
  f->old_superset = f->base;
  f->old_superset.mutable_where()->push_back(
      PayloadBelow(kValueDomain - kValueDomain / 1000));  // keeps ~99.9%
  f->new_subset = f->base;
  f->new_subset.mutable_where()->push_back(
      PayloadBelow(kValueDomain / 8));
  return f;
}

// Fixtures are expensive to populate (BigRows() is 10M in the published
// numbers); build each row count once and share it across benchmarks.
Fixture& GetFixture(size_t rows) {
  static std::map<size_t, std::unique_ptr<Fixture>>* cache =
      new std::map<size_t, std::unique_ptr<Fixture>>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    it = cache->emplace(rows, MakeFixture(rows)).first;
  }
  return *it->second;
}

void Require(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "VALIDATION FAILED: " << what << std::endl;
    std::exit(1);
  }
}

// One incremental case: materialize the old view, incrementally bring it
// to the new definition under `verdict`, and demand (a) the expected
// delta path was taken and (b) the result is set-identical to a full
// refresh of the new view.
void CheckIncremental(Fixture& f, const ViewDefinition& old_view,
                      const ViewDefinition& new_view, ExtentRelation verdict,
                      RefreshPath want_path) {
  MaterializedViewStore store(&f.registry);
  store.SetStrategy(JoinStrategy::kVectorized);
  Require(store.Refresh(old_view, f.db, f.mkb.catalog()).ok(),
          "materialize old view");
  Require(store
              .IncrementalRefresh(old_view, new_view, verdict, f.db,
                                  f.mkb.catalog())
              .ok(),
          "incremental refresh");
  Require(store.StatsFor("V").last_path == want_path,
          std::string("expected path ") + RefreshPathToString(want_path) +
              ", got " + RefreshPathToString(store.StatsFor("V").last_path));
  MaterializedViewStore full(&f.registry);
  full.SetStrategy(JoinStrategy::kVectorized);
  Require(full.Refresh(new_view, f.db, f.mkb.catalog()).ok(),
          "full refresh of new view");
  Require(store.Extent("V").value()->SetEquals(*full.Extent("V").value()),
          std::string("incremental != full for verdict ") +
              std::string(ExtentRelationToString(verdict)));
}

void PrintReproduction() {
  Fixture& f = GetFixture(16384);
  const Result<Table> nested = EvaluateView(
      f.base, f.db, f.mkb.catalog(), &f.registry, JoinStrategy::kNestedLoop);
  const Result<Table> hashed = EvaluateView(
      f.base, f.db, f.mkb.catalog(), &f.registry, JoinStrategy::kHash);
  const Result<Table> vectorized = EvaluateView(
      f.base, f.db, f.mkb.catalog(), &f.registry, JoinStrategy::kVectorized);
  Require(nested.ok() && hashed.ok() && vectorized.ok(),
          "strategy evaluation errored");
  Require(vectorized.value().SetEquals(nested.value()),
          "vectorized != nested-loop oracle");
  Require(hashed.value().SetEquals(nested.value()),
          "hash != nested-loop oracle");

  CheckIncremental(f, f.base, f.base, ExtentRelation::kEqual,
                   RefreshPath::kReuseEqual);
  CheckIncremental(f, f.old_superset, f.base, ExtentRelation::kSuperset,
                   RefreshPath::kDeltaSuperset);
  CheckIncremental(f, f.base, f.new_subset, ExtentRelation::kSubset,
                   RefreshPath::kDeltaSubset);

  std::cout << "=== executor ablation ===\n"
            << "16384-row join: all three strategies agree ("
            << nested.value().NumRows() << " rows); incremental refresh "
            << "matches full refresh for Equal/Superset/Subset via the "
            << "delta paths\n"
            << "timed R0 rows: " << BigRows() << "\n\n";
}

// --- Query execution strategies -----------------------------------------

void RunStrategy(benchmark::State& state, JoinStrategy strategy,
                 size_t rows) {
  Fixture& f = GetFixture(rows);
  size_t out_rows = 0;
  for (auto _ : state) {
    Result<Table> result =
        EvaluateView(f.base, f.db, f.mkb.catalog(), &f.registry, strategy);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    out_rows = result.value().NumRows();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * rows));
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

// The oracle is O(|R0| x |R1|); timing it at the 10M scale is pointless,
// so it runs at a capped size where the quadratic blowup is visible but
// bounded.
void BM_QueryNestedLoop(benchmark::State& state) {
  RunStrategy(state, JoinStrategy::kNestedLoop,
              BigRows() < 8192 ? BigRows() : 8192);
}
BENCHMARK(BM_QueryNestedLoop)->Unit(benchmark::kMillisecond);

void BM_QueryHash(benchmark::State& state) {
  RunStrategy(state, JoinStrategy::kHash, BigRows());
}
BENCHMARK(BM_QueryHash)->Unit(benchmark::kMillisecond);

void BM_QueryVectorized(benchmark::State& state) {
  RunStrategy(state, JoinStrategy::kVectorized, BigRows());
}
BENCHMARK(BM_QueryVectorized)->Unit(benchmark::kMillisecond);

void BM_QueryAuto(benchmark::State& state) {
  RunStrategy(state, JoinStrategy::kAuto, BigRows());
}
BENCHMARK(BM_QueryAuto)->Unit(benchmark::kMillisecond);

// --- Full vs incremental re-materialization ------------------------------

// The baseline every verdict competes against: recompute the rewritten
// view from the base tables.
void BM_FullRefresh(benchmark::State& state) {
  Fixture& f = GetFixture(BigRows());
  MaterializedViewStore store(&f.registry);
  store.SetStrategy(JoinStrategy::kAuto);
  for (auto _ : state) {
    const Status status = store.Refresh(f.base, f.db, f.mkb.catalog());
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.counters["rows"] = static_cast<double>(f.rows);
  state.counters["out_rows"] =
      static_cast<double>(store.Extent("V").value()->NumRows());
}
BENCHMARK(BM_FullRefresh)->Unit(benchmark::kMillisecond);

// Verdict Equal: the extent is adopted wholesale — O(columns), no scan.
void BM_IncrementalEqual(benchmark::State& state) {
  Fixture& f = GetFixture(BigRows());
  MaterializedViewStore store(&f.registry);
  store.SetStrategy(JoinStrategy::kAuto);
  Status status = store.Refresh(f.base, f.db, f.mkb.catalog());
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    status = store.IncrementalRefresh(f.base, f.base, ExtentRelation::kEqual,
                                      f.db, f.mkb.catalog());
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  if (store.StatsFor("V").last_path != RefreshPath::kReuseEqual) {
    state.SkipWithError("Equal rule fell back to full refresh");
    return;
  }
  state.counters["rows"] = static_cast<double>(f.rows);
  state.counters["out_rows"] =
      static_cast<double>(store.Extent("V").value()->NumRows());
}
BENCHMARK(BM_IncrementalEqual)->Unit(benchmark::kMillisecond);

// Verdicts Superset/Subset: each timed iteration starts from a freshly
// materialized OLD extent (restored outside the timer), then applies the
// delta rule. The paused restore dominates wall time at 10M rows but
// none of it is measured.
void RunIncremental(benchmark::State& state, const ViewDefinition& old_view,
                    const ViewDefinition& new_view, ExtentRelation verdict,
                    RefreshPath want_path) {
  Fixture& f = GetFixture(BigRows());
  MaterializedViewStore store(&f.registry);
  store.SetStrategy(JoinStrategy::kAuto);
  for (auto _ : state) {
    state.PauseTiming();
    Status status = store.Refresh(old_view, f.db, f.mkb.catalog());
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    status = store.IncrementalRefresh(old_view, new_view, verdict, f.db,
                                      f.mkb.catalog());
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  if (store.StatsFor("V").last_path != want_path) {
    state.SkipWithError("delta rule fell back to full refresh");
    return;
  }
  state.counters["rows"] = static_cast<double>(f.rows);
  state.counters["out_rows"] =
      static_cast<double>(store.Extent("V").value()->NumRows());
}

void BM_IncrementalSuperset(benchmark::State& state) {
  Fixture& f = GetFixture(BigRows());
  RunIncremental(state, f.old_superset, f.base, ExtentRelation::kSuperset,
                 RefreshPath::kDeltaSuperset);
}
BENCHMARK(BM_IncrementalSuperset)->Unit(benchmark::kMillisecond);

void BM_IncrementalSubset(benchmark::State& state) {
  Fixture& f = GetFixture(BigRows());
  RunIncremental(state, f.base, f.new_subset, ExtentRelation::kSubset,
                 RefreshPath::kDeltaSubset);
}
BENCHMARK(BM_IncrementalSubset)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  eve::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
