#!/usr/bin/env bash
# End-to-end tests for the eved network front end, driven as ctests:
#
#   net_e2e_test.sh <mode> <evectl> <eved> <srcdir>
#
# Modes:
#   identity       The demo script's stdout over eved + `evectl --connect`
#                  is byte-identical to a local evectl run, and SIGTERM
#                  drains eved to a clean exit 0.
#   crash_recover  kill -9 eved mid-load, then RECOVER from the surviving
#                  checkpoint + journal must land on a whole version and
#                  scrub clean (exit 0). When EVE_CRASH_FAILPOINTS is set
#                  (the nightly chaos matrix), those crash-mode sites are
#                  armed on eved instead, so the death comes from the
#                  serving path itself; kill -9 stays as the fallback if
#                  the site never fires.
#   stress_failline  With an injected admission fault, evectl must exit
#                  nonzero and report the failing statement as
#                  <script>:<line>: error (the script-diagnostic contract).
set -u

MODE="$1"; EVECTL="$2"; EVED="$3"; SRCDIR="$4"
WORK="$(mktemp -d)"
EVED_PID=""

cleanup() {
  if [ -n "$EVED_PID" ] && kill -0 "$EVED_PID" 2>/dev/null; then
    kill -9 "$EVED_PID" 2>/dev/null
    wait "$EVED_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "FAIL($MODE): $*" >&2; exit 1; }

# Starts eved (cwd = SRCDIR so scripts resolve tools/demo.misd), waits for
# the port file, and sets EVED_PID / PORT.
start_eved() {
  (cd "$SRCDIR" && \
      EVE_FAILPOINTS="${EVED_FAILPOINTS:-}" \
      exec "$EVED" --port 0 --port-file "$WORK/port" "$@" \
      > "$WORK/eved.out" 2> "$WORK/eved.err") &
  EVED_PID=$!
  for _ in $(seq 1 200); do
    [ -s "$WORK/port" ] && break
    kill -0 "$EVED_PID" 2>/dev/null || die "eved died during startup: $(cat "$WORK/eved.err")"
    sleep 0.05
  done
  [ -s "$WORK/port" ] || die "eved never wrote its port file"
  PORT="$(cat "$WORK/port")"
}

case "$MODE" in
  identity)
    # Local run: the reference bytes.
    (cd "$SRCDIR" && "$EVECTL" tools/demo.evectl) \
        > "$WORK/local.out" 2> "$WORK/local.err" \
        || die "local demo run failed: $(cat "$WORK/local.err")"

    start_eved
    (cd "$SRCDIR" && "$EVECTL" --connect "127.0.0.1:$PORT" tools/demo.evectl) \
        > "$WORK/remote.out" 2> "$WORK/remote.err" \
        || die "remote demo run failed: $(cat "$WORK/remote.err")"

    diff -u "$WORK/local.out" "$WORK/remote.out" \
        || die "remote output is not byte-identical to the local run"

    # Graceful drain: SIGTERM must end in a clean exit 0.
    kill -TERM "$EVED_PID"
    wait "$EVED_PID"; RC=$?
    EVED_PID=""
    [ "$RC" -eq 0 ] || die "SIGTERM drain exited $RC (want 0): $(cat "$WORK/eved.err")"
    grep -q "eved exited cleanly" "$WORK/eved.out" \
        || die "missing clean-exit banner: $(cat "$WORK/eved.out")"
    ;;

  crash_recover)
    # Bring up eved with journaled durable state...
    cat > "$WORK/init.evectl" <<EOF
LOAD MISD 'tools/demo.misd';
CREATE VIEW CustomerPassengersAsia (VE = ~) AS
SELECT C.Name (false, true), C.Age (true, true),
       P.Participant (true, true), P.TourID (true, true)
FROM Customer C (true, true), FlightRes F (true, true),
     Participant P (true, true)
WHERE (C.Name = F.PName) (false, true)
  AND (F.Dest = 'Asia') (false, true)
  AND (P.StartDate = F."Date") (false, true)
  AND (P.Loc = 'Asia') (false, true);
JOURNAL '$WORK/wal';
CHECKPOINT '$WORK/ckpt';
EOF
    # The nightly chaos matrix arms crash-mode net.* sites here; the
    # tier-1 ctest leaves it empty and relies on the kill -9 below.
    EVED_FAILPOINTS="${EVE_CRASH_FAILPOINTS:-}"
    start_eved --init "$WORK/init.evectl"
    EVED_FAILPOINTS=""

    # ...journal-heavy remote load: every ROLLBACK commits (and journals)
    # a new version, so kill -9 lands mid-commit with high probability.
    {
      echo "DELETE RELATION Customer;"
      for _ in $(seq 1 400); do echo "ROLLBACK TO VERSION 2;"; done
    } > "$WORK/load.evectl"
    (cd "$SRCDIR" && "$EVECTL" --connect "127.0.0.1:$PORT" "$WORK/load.evectl") \
        > "$WORK/load.out" 2> "$WORK/load.err" &
    LOAD_PID=$!

    # Let the load get going, then pull the plug. An armed crash-mode
    # failpoint usually beats us to it (eved exits 3 from the serving
    # path); kill -9 is the fallback death.
    for _ in $(seq 1 100); do
      grep -q "ROLLBACK" "$WORK/load.out" 2>/dev/null && break
      kill -0 "$EVED_PID" 2>/dev/null || break
      sleep 0.02
    done
    kill -9 "$EVED_PID" 2>/dev/null
    wait "$EVED_PID" 2>/dev/null
    EVED_PID=""
    wait "$LOAD_PID" 2>/dev/null || true  # the client dies with the server

    # Recovery: the surviving checkpoint + journal must restore a whole
    # version that scrubs clean.
    cat > "$WORK/recover.evectl" <<EOF
RECOVER '$WORK/ckpt' '$WORK/wal';
SHOW VERSIONS;
SCRUB;
SHOW SCRUB STATS;
EOF
    (cd "$SRCDIR" && "$EVECTL" "$WORK/recover.evectl") \
        > "$WORK/recover.out" 2> "$WORK/recover.err" \
        || die "RECOVER after kill -9 failed: $(cat "$WORK/recover.err")"
    grep -q "corruptions=0" "$WORK/recover.out" \
        || die "scrub did not come back clean: $(cat "$WORK/recover.out")"
    ;;

  stress_failline)
    # Satellite contract: a script failure exits nonzero with a one-line
    # <script>:<line>: error diagnostic naming the failing statement.
    (cd "$SRCDIR" && EVE_FAILPOINTS=eve.admission.drain=error \
        "$EVECTL" tools/stress.evectl) \
        > "$WORK/stress.out" 2> "$WORK/stress.err"
    RC=$?
    [ "$RC" -ne 0 ] || die "evectl exited 0 despite an injected drain fault"
    grep -Eq 'stress\.evectl:[0-9]+: error' "$WORK/stress.err" \
        || die "missing file:line diagnostic, stderr was: $(cat "$WORK/stress.err")"
    ;;

  *)
    die "unknown mode: $MODE"
    ;;
esac

echo "PASS($MODE)"
