// Versioned-MKB invariants: copy-on-write segment sharing, O(1) pinned
// snapshots that survive concurrent commits, what-if dry-runs that match the
// real commit byte for byte while mutating nothing, rollback-as-new-version,
// checkpoint VERSIONS round-trips where every flipped byte is detected, and
// the online scrubber (synchronous and background) catching 100% of injected
// corruptions.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/file_io.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/view_pool_io.h"
#include "mkb/scrubber.h"
#include "mkb/serializer.h"
#include "mkb/version_store.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

EveSystem MakeSystem() {
  Mkb mkb = MakeTravelAgencyMkb().MoveValue();
  EXPECT_TRUE(AddAccidentInsPc(&mkb).ok());
  EveSystem system(std::move(mkb));
  EXPECT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  return system;
}

// Full observable state, for zero-side-effect assertions.
std::string StateOf(const EveSystem& system) {
  return SaveMkb(system.mkb()) + "\n===\n" + SaveViews(system) + "\n===\n" +
         system.versions().Render();
}

class VersioningTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().Reset(); }
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(VersioningTest, EveryMutationCommitsAVersion) {
  EveSystem system = MakeSystem();
  // ctor = v0, RegisterViewText = v1.
  EXPECT_EQ(system.current_version(), 1u);
  ASSERT_TRUE(
      system.ExtendMkb("SOURCE IS9 RELATION Extra9 (Name string, X int)")
          .ok());
  EXPECT_EQ(system.current_version(), 2u);
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Extra9")).ok());
  EXPECT_EQ(system.current_version(), 3u);
  ASSERT_TRUE(system.RetractConstraint("JC6").ok());
  EXPECT_EQ(system.current_version(), 4u);
  ASSERT_TRUE(
      system.SetViewState("CustomerPassengersAsia", ViewState::kDisabled)
          .ok());
  EXPECT_EQ(system.current_version(), 5u);
  EXPECT_EQ(system.versions().NumVersions(), 6u);
}

TEST_F(VersioningTest, UnchangedSegmentsAreSharedNotCopied) {
  EveSystem system = MakeSystem();
  // A view-state flip touches only the VIEWS segment; the four MISD
  // segments must be shared with the parent, not re-rendered copies.
  ASSERT_TRUE(
      system.SetViewState("CustomerPassengersAsia", ViewState::kDisabled)
          .ok());
  const VersionScrubStats stats = system.ScrubVersions();
  EXPECT_EQ(stats.corruptions, 0u) << stats.ToString();
  EXPECT_GE(stats.segments_shared, 4u) << stats.ToString();
  const VersionByteStats bytes = system.versions().ByteStats();
  EXPECT_LT(bytes.retained_bytes, bytes.logical_bytes);
}

TEST_F(VersioningTest, PinnedTipSurvivesConcurrentEvolution) {
  EveSystem system = MakeSystem();
  const PinnedMkb pinned = system.PinTip();
  const std::string before = SaveMkb(*pinned.mkb);
  const uint64_t pinned_id = pinned.id();
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  ASSERT_TRUE(system.RetractConstraint("JC6").ok());
  // The pin is byte-stable: commits swapped the tip pointer, they never
  // mutated the pinned snapshot.
  EXPECT_EQ(SaveMkb(*pinned.mkb), before);
  EXPECT_EQ(pinned.id(), pinned_id);
  EXPECT_GT(system.current_version(), pinned_id);
  // And re-pinning the old id reparses to the same bytes.
  const Result<PinnedMkb> repinned = system.PinVersion(pinned_id);
  ASSERT_TRUE(repinned.ok()) << repinned.status();
  EXPECT_EQ(SaveMkb(*repinned.value().mkb), before);
}

TEST_F(VersioningTest, DryRunMatchesCommitAndMutatesNothing) {
  EveSystem system = MakeSystem();
  const std::string before = StateOf(system);

  const Result<DryRunReport> dry =
      system.DryRunChange(CapabilityChange::DeleteRelation("Customer"));
  ASSERT_TRUE(dry.ok()) << dry.status();
  EXPECT_EQ(dry.value().base_version, system.current_version());

  // Zero side effects: MKB, views and version chain are byte-unchanged.
  EXPECT_EQ(StateOf(system), before);

  // The real commit produces the identical report.
  const Result<ChangeReport> applied =
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer"));
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(dry.value().report.ToString(), applied.value().ToString());
  EXPECT_NE(StateOf(system), before);
}

TEST_F(VersioningTest, DryRunAppendsNothingToTheJournal) {
  const std::string base = ::testing::TempDir() + "versioning_dryrun";
  const std::string journal_path = base + ".wal";
  std::remove(journal_path.c_str());
  Result<Journal> journal = Journal::Open(journal_path);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EveSystem system = MakeSystem();
  system.AttachJournal(&journal.value());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  const std::string bytes_before =
      ReadFileToString(journal_path).MoveValue();

  const Result<DryRunReport> dry =
      system.DryRunChange(CapabilityChange::DeleteRelation("Customer"));
  ASSERT_TRUE(dry.ok()) << dry.status();
  const Result<DryRunReport> dry_at =
      system.DryRunChangeAt(CapabilityChange::DeleteRelation("Customer"),
                            /*version=*/1);
  ASSERT_TRUE(dry_at.ok()) << dry_at.status();

  system.AttachJournal(nullptr);
  EXPECT_EQ(ReadFileToString(journal_path).MoveValue(), bytes_before)
      << "a dry-run must not journal anything";
  std::remove(journal_path.c_str());
}

TEST_F(VersioningTest, DryRunAtOldVersionMatchesRollbackThenCommit) {
  EveSystem system = MakeSystem();
  const uint64_t before_delete = system.current_version();
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());

  const CapabilityChange change = CapabilityChange::DeleteRelation("Customer");
  const Result<DryRunReport> dry =
      system.DryRunChangeAt(change, before_delete);
  ASSERT_TRUE(dry.ok()) << dry.status();
  EXPECT_EQ(dry.value().base_version, before_delete);

  // Rehearsal equals reality: rollback + commit on a copy produces the
  // same report bytes.
  EveSystem replica = system;
  ASSERT_TRUE(replica.RollbackToVersion(before_delete).ok());
  const Result<ChangeReport> applied = replica.ApplyChange(change);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(dry.value().report.ToString(), applied.value().ToString());
  // And the dry-run left the original untouched.
  EXPECT_NE(StateOf(system), StateOf(replica));
}

TEST_F(VersioningTest, RollbackCommitsANewVersionAndKeepsHistory) {
  EveSystem system = MakeSystem();
  const uint64_t target = system.current_version();
  const std::string mkb_at_target = SaveMkb(system.mkb());
  const std::string views_at_target = SaveViews(system);

  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer")).ok());
  const uint64_t after_change = system.current_version();
  EXPECT_NE(SaveMkb(system.mkb()), mkb_at_target);

  const Result<uint64_t> rolled = system.RollbackToVersion(target);
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(rolled.value(), after_change + 1);
  EXPECT_EQ(system.current_version(), after_change + 1);
  // Content restored...
  EXPECT_EQ(SaveMkb(system.mkb()), mkb_at_target);
  // ...history never truncated: the rolled-past version stays pinnable.
  ASSERT_TRUE(system.PinVersion(after_change).ok());
  EXPECT_EQ(system.versions().NumVersions(), after_change + 2);
  // The surviving view kept its pre-rollback history plus a marker.
  const RegisteredView* view =
      system.GetView("CustomerPassengersAsia").value();
  ASSERT_FALSE(view->history.empty());
  EXPECT_NE(view->history.back().find("rolled back to version"),
            std::string::npos);
  // The view pool content matches the target version (modulo the
  // synced_at stamps, which name live versions).
  ASSERT_TRUE(system.ViewsTextAt(target).ok());
  EXPECT_EQ(views_at_target, system.ViewsTextAt(target).value());
}

TEST_F(VersioningTest, ARollbackCanItselfBeRolledBack) {
  EveSystem system = MakeSystem();
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer")).ok());
  const uint64_t with_change = system.current_version();
  const std::string mkb_with_change = SaveMkb(system.mkb());

  ASSERT_TRUE(system.RollbackToVersion(1).ok());
  EXPECT_NE(SaveMkb(system.mkb()), mkb_with_change);
  // Roll forward again by rolling back to the rolled-past version.
  ASSERT_TRUE(system.RollbackToVersion(with_change).ok());
  EXPECT_EQ(SaveMkb(system.mkb()), mkb_with_change);
  const VersionScrubStats stats = system.ScrubVersions();
  EXPECT_EQ(stats.corruptions, 0u) << stats.ToString();
}

TEST_F(VersioningTest, RollbackToUnknownVersionIsAnError) {
  EveSystem system = MakeSystem();
  const std::string before = StateOf(system);
  EXPECT_EQ(system.RollbackToVersion(99).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StateOf(system), before);
}

TEST_F(VersioningTest, SerializeDeserializeRoundTrips) {
  EveSystem system = MakeSystem();
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  ASSERT_TRUE(system.RollbackToVersion(1).ok());

  const std::string text = system.versions().Serialize();
  const Result<MkbVersionStore> loaded = MkbVersionStore::Deserialize(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().Render(), system.versions().Render());
  EXPECT_EQ(loaded.value().Serialize(), text);
  EXPECT_EQ(SaveMkb(*loaded.value().Tip().mkb), SaveMkb(system.mkb()));
  const VersionScrubStats stats = loaded.value().Scrub();
  EXPECT_EQ(stats.corruptions, 0u) << stats.ToString();
}

// Satellite (b): every single flipped byte in the serialized VERSIONS text
// is detected — either the load fails outright or the loaded chain scrubs
// dirty. No silent corruption.
TEST_F(VersioningTest, EveryFlippedSerializedByteIsDetected) {
  EveSystem system = MakeSystem();
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  const std::string text = system.versions().Serialize();
  ASSERT_FALSE(text.empty());

  size_t undetected = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    std::string mutated = text;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    const Result<MkbVersionStore> loaded =
        MkbVersionStore::Deserialize(mutated);
    if (!loaded.ok()) continue;  // detected at load
    if (loaded.value().Scrub().corruptions > 0) continue;  // detected by scrub
    ++undetected;
    ADD_FAILURE() << "flip at byte " << i << " (" << text[i]
                  << ") survived both load and scrub";
  }
  EXPECT_EQ(undetected, 0u);
}

// The scrubber finds every injected segment corruption: any version, any
// segment.
TEST_F(VersioningTest, ScrubDetectsEveryInjectedSegmentCorruption) {
  EveSystem system = MakeSystem();
  ASSERT_TRUE(
      system.ExtendMkb("SOURCE IS9 RELATION Extra9 (Name string, X int)")
          .ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Extra9")).ok());

  const uint64_t versions = system.versions().NumVersions();
  ASSERT_GE(versions, 4u);
  for (uint64_t id = 0; id < versions; ++id) {
    for (size_t segment = 0; segment < kNumVersionSegments; ++segment) {
      MkbVersionStore corrupted = system.versions();
      if (!corrupted.CorruptSegmentForTesting(id, segment,
                                              /*byte_offset=*/0)) {
        continue;  // empty segment body: nothing to flip
      }
      const VersionScrubStats stats = corrupted.Scrub();
      EXPECT_GT(stats.corruptions, 0u)
          << "corruption in version " << id << " segment " << segment
          << " went undetected";
    }
  }
  // The shared original is untouched throughout.
  EXPECT_EQ(system.ScrubVersions().corruptions, 0u);
}

TEST_F(VersioningTest, ScrubChecksViewSyncStamps) {
  EveSystem system = MakeSystem();
  EXPECT_EQ(system.ScrubVersions().corruptions, 0u);
  // A stamp naming a version that was never committed is an integrity
  // finding.
  ASSERT_TRUE(
      system.SetViewSyncedVersion("CustomerPassengersAsia", 77).ok());
  const VersionScrubStats stats = system.ScrubVersions();
  EXPECT_GT(stats.corruptions, 0u);
  ASSERT_FALSE(stats.findings.empty());
  EXPECT_NE(stats.findings.back().find("CustomerPassengersAsia"),
            std::string::npos);
}

// crash_recovery_test's site-coverage check points here: the scrub site is
// armed in BOTH modes by the two ScrubFailpoint tests below.
TEST_F(VersioningTest, ScrubFailpointErrorIsCountedAsAFinding) {
  EveSystem system = MakeSystem();
  Failpoints::Instance().Arm(fp::kVersionScrub, FailpointAction::kError);
  const VersionScrubStats stats = system.ScrubVersions();
  Failpoints::Instance().Reset();
  EXPECT_GT(stats.corruptions, 0u);
  ASSERT_FALSE(stats.findings.empty());
  EXPECT_NE(stats.findings.front().find("injected fault"),
            std::string::npos);
  // The chain itself is untouched: a clean pass follows.
  EXPECT_EQ(system.ScrubVersions().corruptions, 0u);
}

TEST_F(VersioningTest, ScrubFailpointCrashKillsThePassAndRetrySucceeds) {
  EveSystem system = MakeSystem();
  Failpoints::Instance().Arm(fp::kVersionScrub, FailpointAction::kCrash);
  EXPECT_THROW((void)system.ScrubVersions(), SimulatedCrash);
  Failpoints::Instance().Reset();
  // Scrubbing is read-only: the killed pass left nothing behind.
  const VersionScrubStats stats = system.ScrubVersions();
  EXPECT_EQ(stats.corruptions, 0u) << stats.ToString();
}

TEST_F(VersioningTest, BackgroundScrubberRunsConcurrentlyWithCommits) {
  EveSystem system = MakeSystem();
  MkbScrubber scrubber(&system.versions());
  scrubber.Start(std::chrono::milliseconds(1));
  // Commits race the scrub passes; the store hands the scrubber immutable
  // chain snapshots, so every pass sees whole versions and stays clean.
  for (int i = 0; i < 20; ++i) {
    const std::string name = "Bg" + std::to_string(i);
    ASSERT_TRUE(
        system
            .ExtendMkb("SOURCE IS9 RELATION " + name + " (Name string)")
            .ok());
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation(name)).ok());
  }
  // Let at least one full pass observe the final chain.
  while (scrubber.passes() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scrubber.Stop();
  EXPECT_GE(scrubber.passes(), 2u);
  EXPECT_EQ(scrubber.total_corruptions(), 0u)
      << scrubber.last_stats().ToString();
  EXPECT_GT(scrubber.last_stats().versions_checked, 0u);
}

TEST_F(VersioningTest, BackgroundScrubberReportsInjectedCorruption) {
  EveSystem system = MakeSystem();
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  MkbVersionStore corrupted = system.versions();
  ASSERT_TRUE(corrupted.CorruptSegmentForTesting(/*id=*/1, /*segment=*/0,
                                                 /*byte_offset=*/0));
  MkbScrubber scrubber(&corrupted);
  const VersionScrubStats stats = scrubber.RunOnce();
  EXPECT_GT(stats.corruptions, 0u);
  EXPECT_EQ(scrubber.passes(), 1u);
  EXPECT_GE(scrubber.total_corruptions(), stats.corruptions);
  // A transient finding is not erased by a later clean pass.
  MkbScrubber clean_scrubber(&system.versions());
  (void)clean_scrubber.RunOnce();
  EXPECT_EQ(clean_scrubber.total_corruptions(), 0u);
  (void)scrubber.RunOnce();
  EXPECT_GE(scrubber.total_corruptions(), stats.corruptions);
}

// Versioning survives the durability cycle: checkpoint + journal replay
// rebuild the same chain, and RECOVER reports torn-tail bytes.
TEST_F(VersioningTest, RecoveryRestoresTheVersionChain) {
  const std::string base = ::testing::TempDir() + "versioning_recover";
  const std::string checkpoint_path = base + ".ckpt";
  const std::string journal_path = base + ".wal";
  std::remove(checkpoint_path.c_str());
  std::remove(journal_path.c_str());

  EveSystem system = MakeSystem();
  ASSERT_TRUE(WriteCheckpoint(system, checkpoint_path).ok());
  Result<Journal> journal = Journal::Open(journal_path);
  ASSERT_TRUE(journal.ok()) << journal.status();
  system.AttachJournal(&journal.value());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer")).ok());
  ASSERT_TRUE(system.RollbackToVersion(1).ok());
  system.AttachJournal(nullptr);

  const Result<EveSystem> recovered =
      RecoverFromFiles(checkpoint_path, journal_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value().versions().Render(), system.versions().Render());
  EXPECT_EQ(recovered.value().current_version(), system.current_version());
  EXPECT_EQ(SaveMkb(recovered.value().mkb()), SaveMkb(system.mkb()));
  EXPECT_EQ(recovered.value().ScrubVersions().corruptions, 0u);

  std::remove(checkpoint_path.c_str());
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace eve
