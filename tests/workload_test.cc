#include <gtest/gtest.h>

#include "esql/binder.h"
#include "esql/evaluator.h"
#include "hypergraph/join_graph.h"
#include "mkb/serializer.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

TEST(ChainMkbTest, BuildsRequestedShape) {
  ChainMkbSpec spec;
  spec.length = 6;
  spec.skip_edges = false;
  spec.cover_distance = 1;
  const Mkb mkb = MakeChainMkb(spec).value();
  EXPECT_EQ(mkb.catalog().NumRelations(), 6u);
  EXPECT_EQ(mkb.join_constraints().size(), 5u);  // chain edges only
  // Covers: R0..R4 covered on the next relation (R5 cannot cover itself).
  EXPECT_EQ(mkb.function_of_constraints().size(), 5u);
  EXPECT_EQ(mkb.pc_constraints().size(), 5u);
  EXPECT_TRUE(mkb.catalog().HasAttribute({"R1", "C0"}));
  EXPECT_FALSE(mkb.catalog().HasAttribute({"R5", "C5"}));
}

TEST(ChainMkbTest, SkipEdgesKeepGraphConnectedUnderDeletion) {
  ChainMkbSpec spec;
  spec.length = 5;
  spec.skip_edges = true;
  const Mkb mkb = MakeChainMkb(spec).value();
  const JoinGraph graph = JoinGraph::Build(mkb);
  EXPECT_EQ(graph.Components().size(), 1u);
  const JoinGraph pruned = graph.EraseRelation("R2");
  EXPECT_EQ(pruned.Components().size(), 1u);  // skip edges bridge the gap

  ChainMkbSpec no_skip = spec;
  no_skip.skip_edges = false;
  const JoinGraph fragile =
      JoinGraph::Build(MakeChainMkb(no_skip).value()).EraseRelation("R2");
  EXPECT_EQ(fragile.Components().size(), 2u);
}

TEST(ChainMkbTest, CoverDistancePlacesMirrors) {
  ChainMkbSpec spec;
  spec.length = 8;
  spec.cover_distance = 3;
  const Mkb mkb = MakeChainMkb(spec).value();
  // R1's payload mirrored on R4.
  const auto covers = mkb.CoversOf({"R1", "P1"});
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0]->source.relation, "R4");
  // Clamped at the end: R6's cover sits on R7.
  EXPECT_EQ(mkb.CoversOf({"R6", "P6"})[0]->source.relation, "R7");
}

TEST(ChainMkbTest, RejectsDegenerateLength) {
  ChainMkbSpec spec;
  spec.length = 1;
  EXPECT_FALSE(MakeChainMkb(spec).ok());
}

TEST(StarMkbTest, HubJoinsEverySpoke) {
  const Mkb mkb = MakeStarMkb(5).value();
  EXPECT_EQ(mkb.catalog().NumRelations(), 6u);
  EXPECT_EQ(mkb.join_constraints().size(), 5u);
  const JoinGraph graph = JoinGraph::Build(mkb);
  EXPECT_EQ(graph.Neighbors("R0").size(), 5u);
  EXPECT_EQ(graph.Neighbors("R3").size(), 1u);
  // Spoke payloads are covered on the hub.
  EXPECT_EQ(mkb.CoversOf({"R2", "P2"})[0]->source.relation, "R0");
  EXPECT_EQ(mkb.CoversOf({"R0", "P0"})[0]->source.relation, "R1");
}

TEST(GridMkbTest, GridAdjacency) {
  const Mkb mkb = MakeGridMkb(3, 4).value();
  EXPECT_EQ(mkb.catalog().NumRelations(), 12u);
  // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
  EXPECT_EQ(mkb.join_constraints().size(), 17u);
  const JoinGraph graph = JoinGraph::Build(mkb);
  EXPECT_EQ(graph.Components().size(), 1u);
  // Corner has 2 neighbors, center has 4.
  EXPECT_EQ(graph.Neighbors("R0").size(), 2u);
  EXPECT_EQ(graph.Neighbors("R5").size(), 4u);
}

TEST(GridMkbTest, RejectsDegenerateShapes) {
  EXPECT_FALSE(MakeGridMkb(0, 4).ok());
  EXPECT_FALSE(MakeGridMkb(3, 1).ok());
}

TEST(RandomMkbTest, ConnectedAndDeterministic) {
  RandomMkbSpec spec;
  spec.num_relations = 15;
  spec.seed = 42;
  const Mkb a = MakeRandomMkb(spec).value();
  const Mkb b = MakeRandomMkb(spec).value();
  EXPECT_EQ(SaveMkb(a), SaveMkb(b));  // deterministic under the seed
  EXPECT_EQ(a.catalog().NumRelations(), 15u);
  // Spanning tree guarantees connectivity.
  EXPECT_EQ(JoinGraph::Build(a).Components().size(), 1u);
  // At least the tree edges exist.
  EXPECT_GE(a.join_constraints().size(), 14u);
}

TEST(RandomMkbTest, DifferentSeedsDiffer) {
  RandomMkbSpec a;
  a.seed = 1;
  RandomMkbSpec b;
  b.seed = 2;
  EXPECT_NE(SaveMkb(MakeRandomMkb(a).value()),
            SaveMkb(MakeRandomMkb(b).value()));
}

TEST(RandomMkbTest, CoverProbabilityZeroMeansNoCovers) {
  RandomMkbSpec spec;
  spec.cover_probability = 0.0;
  const Mkb mkb = MakeRandomMkb(spec).value();
  EXPECT_TRUE(mkb.function_of_constraints().empty());
  EXPECT_TRUE(mkb.pc_constraints().empty());
}

TEST(RandomMkbTest, RejectsDegenerateSize) {
  RandomMkbSpec spec;
  spec.num_relations = 1;
  EXPECT_FALSE(MakeRandomMkb(spec).ok());
}

TEST(ChainViewTest, BindsAgainstChainMkb) {
  ChainMkbSpec spec;
  spec.length = 6;
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 1, 3).value();
  EXPECT_EQ(view.FromRelationNames(),
            (std::vector<std::string>{"R1", "R2", "R3"}));
  EXPECT_EQ(view.where().size(), 2u);
  // Rebinding validates all references.
  EXPECT_TRUE(BindView(view.ToParsedView(), mkb.catalog()).ok());
}

TEST(ChainViewTest, OutOfRangeFails) {
  ChainMkbSpec spec;
  spec.length = 4;
  const Mkb mkb = MakeChainMkb(spec).value();
  EXPECT_FALSE(MakeChainView(mkb, 2, 5).ok());
  EXPECT_FALSE(MakeChainView(mkb, 0, 0).ok());
}

TEST(RandomViewTest, ProducesBindableConnectedViews) {
  const Mkb mkb = MakeGridMkb(3, 3).value();
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20; ++i) {
    const ViewDefinition view =
        MakeRandomConnectedView(mkb, &rng, 3).value();
    EXPECT_GE(view.from().size(), 2u);
    EXPECT_LE(view.from().size(), 4u);  // edge may add two relations
    EXPECT_TRUE(BindView(view.ToParsedView(), mkb.catalog()).ok());
  }
}

TEST(PopulateSyntheticTest, FillsEveryTable) {
  ChainMkbSpec spec;
  spec.length = 4;
  const Mkb mkb = MakeChainMkb(spec).value();
  Database db;
  ASSERT_TRUE(PopulateSyntheticDatabase(mkb, &db, 25, 7).ok());
  for (const std::string& rel : mkb.catalog().RelationNames()) {
    EXPECT_EQ(db.GetTable(rel).value()->NumRows(), 25u);
  }
  // Views evaluate.
  const ViewDefinition view = MakeChainView(mkb, 0, 2).value();
  const Table result = EvaluateView(view, db, mkb.catalog()).value();
  EXPECT_GT(result.NumRows(), 0u);
}

TEST(TravelAgencyDatabaseTest, ConstraintConsistentPopulation) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddPersonExtension(&mkb).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 40, 5).ok());
  // PC-AI: every Customer.Name appears in Accident-Ins.Holder.
  const Table& customer = *db.GetTable("Customer").value();
  const Table& insurance = *db.GetTable("Accident-Ins").value();
  for (const Tuple& row : customer.rows()) {
    bool found = false;
    for (const Tuple& ins : insurance.rows()) {
      if (ins[0] == row[0]) found = true;
    }
    EXPECT_TRUE(found) << row[0].ToString();
  }
  // F3 holds: age reproduces from birthday.
  const Date today = Date::FromYmd(2026, 7, 7).value();
  for (const Tuple& ins : insurance.rows()) {
    const int64_t days =
        today.days_since_epoch() - ins[3].date_value().days_since_epoch();
    bool found_customer = false;
    for (const Tuple& row : customer.rows()) {
      if (row[0] == ins[0]) {
        EXPECT_EQ(days / 365, row[3].int_value());
        found_customer = true;
      }
    }
    EXPECT_TRUE(found_customer);
  }
}

TEST(TravelAgencyDatabaseTest, DeterministicUnderSeed) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  Database a;
  Database b;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &a, 30, 99).ok());
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &b, 30, 99).ok());
  EXPECT_TRUE(a.GetTable("FlightRes").value()->SetEquals(
      *b.GetTable("FlightRes").value()));
}

}  // namespace
}  // namespace eve
