#include <gtest/gtest.h>

#include "sql/parser.h"

namespace eve {
namespace {

ParsedView Parse(std::string_view text) {
  const Result<ParsedView> result = ParseView(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result.value() : ParsedView{};
}

// --- Basic structure ----------------------------------------------------------

TEST(ParserTest, MinimalView) {
  const ParsedView view = Parse("CREATE VIEW V AS SELECT R.a FROM R");
  EXPECT_EQ(view.name, "V");
  EXPECT_EQ(view.extent, ViewExtent::kAny);  // default
  ASSERT_EQ(view.select.size(), 1u);
  EXPECT_EQ(view.select[0].expr->column(), (AttributeRef{"R", "a"}));
  ASSERT_EQ(view.from.size(), 1u);
  EXPECT_EQ(view.from[0].relation, "R");
  EXPECT_TRUE(view.where.empty());
}

TEST(ParserTest, ColumnListAndExtent) {
  const ParsedView view =
      Parse("CREATE VIEW V (C1, C2) (VE = >=) AS SELECT R.a, R.b FROM R");
  EXPECT_EQ(view.column_names, (std::vector<std::string>{"C1", "C2"}));
  EXPECT_EQ(view.extent, ViewExtent::kSuperset);
}

TEST(ParserTest, ExtentBeforeColumnList) {
  const ParsedView view =
      Parse("CREATE VIEW V (VE = <=) (C1) AS SELECT R.a FROM R");
  EXPECT_EQ(view.extent, ViewExtent::kSubset);
  EXPECT_EQ(view.column_names, (std::vector<std::string>{"C1"}));
}

TEST(ParserTest, ExtentKeywordForms) {
  EXPECT_EQ(Parse("CREATE VIEW V (VE = EQUAL) AS SELECT R.a FROM R").extent,
            ViewExtent::kEqual);
  EXPECT_EQ(
      Parse("CREATE VIEW V (VE = superset) AS SELECT R.a FROM R").extent,
      ViewExtent::kSuperset);
  EXPECT_EQ(Parse("CREATE VIEW V (VE = subset) AS SELECT R.a FROM R").extent,
            ViewExtent::kSubset);
  EXPECT_EQ(Parse("CREATE VIEW V (VE = any) AS SELECT R.a FROM R").extent,
            ViewExtent::kAny);
  EXPECT_EQ(Parse("CREATE VIEW V (VE = =) AS SELECT R.a FROM R").extent,
            ViewExtent::kEqual);
  EXPECT_EQ(Parse("CREATE VIEW V (VE = ~) AS SELECT R.a FROM R").extent,
            ViewExtent::kAny);
}

// --- Annotations ----------------------------------------------------------------

TEST(ParserTest, NamedAttributeAnnotations) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.Phone (AD = true, AR = false) FROM C");
  EXPECT_TRUE(view.select[0].params.dispensable);
  EXPECT_FALSE(view.select[0].params.replaceable);
}

TEST(ParserTest, PositionalAnnotations) {
  const ParsedView view =
      Parse("CREATE VIEW V AS SELECT C.Name (false, true) FROM C");
  EXPECT_FALSE(view.select[0].params.dispensable);
  EXPECT_TRUE(view.select[0].params.replaceable);
}

TEST(ParserTest, DefaultsWhenNoAnnotation) {
  const ParsedView view = Parse("CREATE VIEW V AS SELECT C.Name FROM C");
  EXPECT_FALSE(view.select[0].params.dispensable);
  EXPECT_TRUE(view.select[0].params.replaceable);
}

TEST(ParserTest, RelationAnnotations) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C (RD = true, "
      "RR = true), FlightRes F");
  EXPECT_TRUE(view.from[0].params.dispensable);
  EXPECT_TRUE(view.from[0].params.replaceable);
  EXPECT_EQ(view.from[0].alias, "C");
  EXPECT_EQ(view.from[1].relation, "FlightRes");
}

TEST(ParserTest, ConditionAnnotations) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.Name FROM C, F "
      "WHERE (C.Name = F.PName) (CD = false, CR = true) "
      "AND (F.Dest = 'Asia') (CD = true)");
  ASSERT_EQ(view.where.size(), 2u);
  EXPECT_FALSE(view.where[0].params.dispensable);
  EXPECT_TRUE(view.where[1].params.dispensable);
}

TEST(ParserTest, AnnotatedGroupSpreadsOverConjuncts) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.a FROM C "
      "WHERE (C.a = 1 AND C.b = 2) (true, true)");
  ASSERT_EQ(view.where.size(), 2u);
  EXPECT_TRUE(view.where[0].params.dispensable);
  EXPECT_TRUE(view.where[1].params.dispensable);
}

TEST(ParserTest, PartialPositionalAnnotation) {
  const ParsedView view =
      Parse("CREATE VIEW V AS SELECT C.a (true) FROM C");
  EXPECT_TRUE(view.select[0].params.dispensable);
  EXPECT_TRUE(view.select[0].params.replaceable);  // default kept
}

// --- Aliases ------------------------------------------------------------------

TEST(ParserTest, SelectAliasExplicitAndImplicit) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT R.a AS x, R.b y, R.c FROM R");
  EXPECT_EQ(view.select[0].alias, "x");
  EXPECT_EQ(view.select[1].alias, "y");
  EXPECT_EQ(view.select[2].alias, "");
}

TEST(ParserTest, QualifiedRelationNameKeepsRelationPart) {
  const ParsedView view =
      Parse("CREATE VIEW V AS SELECT R.a FROM IS1.R");
  EXPECT_EQ(view.from[0].relation, "R");
}

// --- WHERE clause shapes --------------------------------------------------------

TEST(ParserTest, MultipleConjuncts) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.Name FROM C, F, P "
      "WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') "
      "AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')");
  EXPECT_EQ(view.where.size(), 4u);
}

TEST(ParserTest, ComparisonOperatorsInWhere) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.a FROM C "
      "WHERE C.a <> 1 AND C.b <= 2 AND C.c >= 3 AND C.d < 4 AND C.e > 5");
  ASSERT_EQ(view.where.size(), 5u);
  EXPECT_EQ(view.where[0].clause->binary_op(), BinaryOp::kNe);
  EXPECT_EQ(view.where[1].clause->binary_op(), BinaryOp::kLe);
  EXPECT_EQ(view.where[2].clause->binary_op(), BinaryOp::kGe);
  EXPECT_EQ(view.where[3].clause->binary_op(), BinaryOp::kLt);
  EXPECT_EQ(view.where[4].clause->binary_op(), BinaryOp::kGt);
}

TEST(ParserTest, OrStaysAsSingleClause) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.a FROM C "
      "WHERE (C.a = 1 OR C.b = 2) AND C.c = 3");
  ASSERT_EQ(view.where.size(), 2u);
  EXPECT_EQ(view.where[0].clause->binary_op(), BinaryOp::kOr);
}

TEST(ParserTest, NotCondition) {
  const ParsedView view =
      Parse("CREATE VIEW V AS SELECT C.a FROM C WHERE NOT (C.a = 1)");
  ASSERT_EQ(view.where.size(), 1u);
  EXPECT_EQ(view.where[0].clause->kind(), ExprKind::kUnary);
}

TEST(ParserTest, ArithmeticInConditions) {
  const ParsedView view = Parse(
      "CREATE VIEW V AS SELECT C.a FROM C WHERE (C.a + 1) * 2 > C.b / 3");
  ASSERT_EQ(view.where.size(), 1u);
  EXPECT_EQ(view.where[0].clause->binary_op(), BinaryOp::kGt);
}

// --- Expressions ----------------------------------------------------------------

TEST(ParserTest, FunctionCallInSelect) {
  const ParsedView view =
      Parse("CREATE VIEW V AS SELECT f(A.Birthday) (true, true) FROM A");
  EXPECT_EQ(view.select[0].expr->kind(), ExprKind::kFunctionCall);
  EXPECT_EQ(view.select[0].expr->function_name(), "f");
  EXPECT_TRUE(view.select[0].params.dispensable);
}

TEST(ParserTest, DateLiteral) {
  const ExprPtr expr = ParseExpression("DATE '1998-03-27'").value();
  EXPECT_EQ(expr->kind(), ExprKind::kLiteral);
  EXPECT_EQ(expr->literal().type(), DataType::kDate);
  EXPECT_EQ(expr->literal().date_value().ToString(), "1998-03-27");
}

TEST(ParserTest, BooleanAndNullLiterals) {
  EXPECT_EQ(ParseExpression("TRUE").value()->literal(), Value::Bool(true));
  EXPECT_EQ(ParseExpression("false").value()->literal(), Value::Bool(false));
  EXPECT_TRUE(ParseExpression("NULL").value()->literal().is_null());
}

TEST(ParserTest, NumericLiterals) {
  EXPECT_EQ(ParseExpression("42").value()->literal(), Value::Int(42));
  EXPECT_EQ(ParseExpression("2.5").value()->literal(), Value::Double(2.5));
  EXPECT_EQ(ParseExpression("-3").value()->kind(), ExprKind::kUnary);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  const ExprPtr expr = ParseExpression("1 + 2 * 3").value();
  EXPECT_EQ(expr->binary_op(), BinaryOp::kAdd);
  EXPECT_EQ(expr->child(1)->binary_op(), BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const ExprPtr expr = ParseExpression("(1 + 2) * 3").value();
  EXPECT_EQ(expr->binary_op(), BinaryOp::kMul);
}

TEST(ParserTest, UnqualifiedColumn) {
  const ExprPtr expr = ParseExpression("Name").value();
  EXPECT_EQ(expr->column(), (AttributeRef{"", "Name"}));
}

TEST(ParserTest, ParseConjunctionFlattens) {
  const auto conjuncts =
      ParseConjunction("R.a = S.b AND R.c > 1 AND S.d = 'x'").value();
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST(ParserTest, PaperEq5ParsesCompletely) {
  const ParsedView view = Parse(R"sql(
    CREATE VIEW CustomerPassengersAsia (VE = ~) AS
    SELECT C.Name (false, true), C.Age (true, true),
           P.Participant (true, true), P.TourID (true, true)
    FROM Customer C (true, true), FlightRes F (true, true),
         Participant P (true, true)
    WHERE (C.Name = F.PName) (false, true)
      AND (F.Dest = 'Asia')
      AND (P.StartDate = F.Date)
      AND (P.Loc = 'Asia')
  )sql");
  EXPECT_EQ(view.select.size(), 4u);
  EXPECT_EQ(view.from.size(), 3u);
  EXPECT_EQ(view.where.size(), 4u);
  EXPECT_FALSE(view.select[0].params.dispensable);
  EXPECT_TRUE(view.select[1].params.dispensable);
  EXPECT_TRUE(view.from[0].params.dispensable);
}

// --- Errors -------------------------------------------------------------------

TEST(ParserTest, MissingKeywordsFail) {
  EXPECT_FALSE(ParseView("SELECT R.a FROM R").ok());
  EXPECT_FALSE(ParseView("CREATE VIEW V SELECT R.a FROM R").ok());
  EXPECT_FALSE(ParseView("CREATE VIEW V AS SELECT R.a").ok());
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseView("CREATE VIEW V AS SELECT R.a FROM R garbage +").ok());
  EXPECT_FALSE(ParseExpression("1 + 2 extra +").ok());
}

TEST(ParserTest, MalformedAnnotationFails) {
  EXPECT_FALSE(
      ParseView("CREATE VIEW V AS SELECT R.a (AD = maybe) FROM R").ok());
}

TEST(ParserTest, EmptySelectListFails) {
  EXPECT_FALSE(ParseView("CREATE VIEW V AS SELECT FROM R").ok());
}

TEST(ParserTest, BadExtentFails) {
  EXPECT_FALSE(ParseView("CREATE VIEW V (VE = sideways) AS SELECT R.a FROM R")
                   .ok());
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  const ParsedView view =
      Parse("create view V as select R.a from R where R.a = 1");
  EXPECT_EQ(view.name, "V");
  EXPECT_EQ(view.where.size(), 1u);
}

}  // namespace
}  // namespace eve
