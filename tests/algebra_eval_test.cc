#include <gtest/gtest.h>

#include "algebra/eval.h"

namespace eve {
namespace {

ExprPtr Col(const std::string& rel, const std::string& attr) {
  return Expr::Column(AttributeRef{rel, attr});
}
ExprPtr Lit(Value v) { return Expr::Lit(std::move(v)); }
ExprPtr Bin(BinaryOp op, ExprPtr a, ExprPtr b) {
  return Expr::Binary(op, std::move(a), std::move(b));
}

Value Eval(const ExprPtr& expr, const RowBinding& binding = {},
           const FunctionRegistry* registry = nullptr) {
  const Result<Value> result = EvalExpr(*expr, binding, registry);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result.value() : Value::Null();
}

// --- Arithmetic -------------------------------------------------------------

TEST(EvalTest, IntegerArithmetic) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kAdd, Lit(Value::Int(2)), Lit(Value::Int(3)))),
            Value::Int(5));
  EXPECT_EQ(Eval(Bin(BinaryOp::kSub, Lit(Value::Int(2)), Lit(Value::Int(3)))),
            Value::Int(-1));
  EXPECT_EQ(Eval(Bin(BinaryOp::kMul, Lit(Value::Int(4)), Lit(Value::Int(3)))),
            Value::Int(12));
  EXPECT_EQ(Eval(Bin(BinaryOp::kDiv, Lit(Value::Int(7)), Lit(Value::Int(2)))),
            Value::Int(3));  // integer division
}

TEST(EvalTest, DoubleArithmeticWidens) {
  EXPECT_EQ(
      Eval(Bin(BinaryOp::kAdd, Lit(Value::Int(1)), Lit(Value::Double(0.5)))),
      Value::Double(1.5));
  EXPECT_EQ(
      Eval(Bin(BinaryOp::kDiv, Lit(Value::Double(7)), Lit(Value::Int(2)))),
      Value::Double(3.5));
}

TEST(EvalTest, DivisionByZeroFails) {
  const RowBinding binding;
  EXPECT_FALSE(EvalExpr(*Bin(BinaryOp::kDiv, Lit(Value::Int(1)),
                             Lit(Value::Int(0))),
                        binding, nullptr)
                   .ok());
  EXPECT_FALSE(EvalExpr(*Bin(BinaryOp::kDiv, Lit(Value::Double(1)),
                             Lit(Value::Double(0))),
                        binding, nullptr)
                   .ok());
}

TEST(EvalTest, DateMinusDateGivesDays) {
  const Date a = Date::FromYmd(2026, 7, 7).value();
  const Date b = Date::FromYmd(2026, 6, 7).value();
  EXPECT_EQ(Eval(Bin(BinaryOp::kSub, Lit(Value::MakeDate(a)),
                     Lit(Value::MakeDate(b)))),
            Value::Int(30));
}

TEST(EvalTest, DatePlusIntGivesDate) {
  const Date a = Date::FromYmd(2026, 1, 1).value();
  const Value result = Eval(
      Bin(BinaryOp::kAdd, Lit(Value::MakeDate(a)), Lit(Value::Int(31))));
  EXPECT_EQ(result.date_value().ToString(), "2026-02-01");
  const Value back = Eval(
      Bin(BinaryOp::kSub, Lit(result), Lit(Value::Int(31))));
  EXPECT_EQ(back.date_value().ToString(), "2026-01-01");
}

TEST(EvalTest, PaperF3AgeFromBirthday) {
  // F3: Customer.Age = (today - Birthday) / 365 with today = 2026-07-07.
  const Date today = Date::FromYmd(2026, 7, 7).value();
  const Date birthday = today.AddDays(-30 * 365);
  const ExprPtr f3 =
      Bin(BinaryOp::kDiv,
          Bin(BinaryOp::kSub, Lit(Value::MakeDate(today)),
              Lit(Value::MakeDate(birthday))),
          Lit(Value::Int(365)));
  EXPECT_EQ(Eval(f3), Value::Int(30));
}

TEST(EvalTest, StringConcatenation) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kAdd, Lit(Value::String("a")),
                     Lit(Value::String("b")))),
            Value::String("ab"));
}

TEST(EvalTest, ArithmeticOnNullIsNull) {
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kAdd, Lit(Value::Null()), Lit(Value::Int(1))))
          .is_null());
}

TEST(EvalTest, ArithmeticTypeErrors) {
  const RowBinding binding;
  EXPECT_FALSE(EvalExpr(*Bin(BinaryOp::kMul, Lit(Value::String("a")),
                             Lit(Value::Int(1))),
                        binding, nullptr)
                   .ok());
}

// --- Comparisons -------------------------------------------------------------

TEST(EvalTest, Comparisons) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kEq, Lit(Value::Int(2)), Lit(Value::Int(2)))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kNe, Lit(Value::Int(2)), Lit(Value::Int(2)))),
            Value::Bool(false));
  EXPECT_EQ(Eval(Bin(BinaryOp::kLt, Lit(Value::Int(1)), Lit(Value::Int(2)))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kLe, Lit(Value::Int(2)), Lit(Value::Int(2)))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kGt, Lit(Value::Int(1)), Lit(Value::Int(2)))),
            Value::Bool(false));
  EXPECT_EQ(Eval(Bin(BinaryOp::kGe, Lit(Value::Int(2)), Lit(Value::Int(3)))),
            Value::Bool(false));
}

TEST(EvalTest, ComparisonWithNullIsNull) {
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kEq, Lit(Value::Null()), Lit(Value::Int(1))))
          .is_null());
}

TEST(EvalTest, BoolEquality) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kEq, Lit(Value::Bool(true)),
                     Lit(Value::Bool(true)))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kNe, Lit(Value::Bool(true)),
                     Lit(Value::Bool(false)))),
            Value::Bool(true));
}

TEST(EvalTest, IncomparableTypesError) {
  const RowBinding binding;
  EXPECT_FALSE(EvalExpr(*Bin(BinaryOp::kLt, Lit(Value::String("a")),
                             Lit(Value::Int(1))),
                        binding, nullptr)
                   .ok());
}

// --- Logic (Kleene) ----------------------------------------------------------

TEST(EvalTest, KleeneAnd) {
  const ExprPtr null_cmp =
      Bin(BinaryOp::kEq, Lit(Value::Null()), Lit(Value::Int(1)));
  EXPECT_EQ(Eval(Bin(BinaryOp::kAnd, Lit(Value::Bool(false)), null_cmp)),
            Value::Bool(false));
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kAnd, Lit(Value::Bool(true)), null_cmp)).is_null());
  EXPECT_EQ(Eval(Bin(BinaryOp::kAnd, Lit(Value::Bool(true)),
                     Lit(Value::Bool(true)))),
            Value::Bool(true));
}

TEST(EvalTest, KleeneOr) {
  const ExprPtr null_cmp =
      Bin(BinaryOp::kEq, Lit(Value::Null()), Lit(Value::Int(1)));
  EXPECT_EQ(Eval(Bin(BinaryOp::kOr, Lit(Value::Bool(true)), null_cmp)),
            Value::Bool(true));
  EXPECT_TRUE(
      Eval(Bin(BinaryOp::kOr, Lit(Value::Bool(false)), null_cmp)).is_null());
}

TEST(EvalTest, NotAndNegate) {
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNot, Lit(Value::Bool(true)))),
            Value::Bool(false));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNegate, Lit(Value::Int(4)))),
            Value::Int(-4));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNegate, Lit(Value::Double(1.5)))),
            Value::Double(-1.5));
  EXPECT_TRUE(
      Eval(Expr::Unary(UnaryOp::kNot, Lit(Value::Null()))).is_null());
}

// --- Bindings -----------------------------------------------------------------

TEST(EvalTest, ColumnLookup) {
  RowBinding binding;
  binding.Bind({"R", "a"}, Value::Int(9));
  EXPECT_EQ(Eval(Col("R", "a"), binding), Value::Int(9));
}

TEST(EvalTest, UnboundColumnFails) {
  const RowBinding binding;
  EXPECT_FALSE(EvalExpr(*Col("R", "a"), binding, nullptr).ok());
}

TEST(EvalTest, UnbindRemovesBinding) {
  RowBinding binding;
  binding.Bind({"R", "a"}, Value::Int(9));
  binding.Unbind({"R", "a"});
  EXPECT_FALSE(binding.Lookup({"R", "a"}).ok());
}

// --- Functions ------------------------------------------------------------------

TEST(EvalTest, FunctionRegistryCalls) {
  const FunctionRegistry registry = FunctionRegistry::Default();
  RowBinding binding;
  EXPECT_EQ(Eval(Expr::Func("identity", {Lit(Value::Int(3))}), binding,
                 &registry),
            Value::Int(3));
}

TEST(EvalTest, YearsSince) {
  const FunctionRegistry registry = FunctionRegistry::Default();
  const Date birthday = Date::FromYmd(2026, 7, 7).value().AddDays(-25 * 365);
  RowBinding binding;
  EXPECT_EQ(Eval(Expr::Func("years_since",
                            {Lit(Value::MakeDate(birthday))}),
                 binding, &registry),
            Value::Int(25));
  EXPECT_TRUE(Eval(Expr::Func("years_since", {Lit(Value::Null())}), binding,
                   &registry)
                  .is_null());
}

TEST(EvalTest, UnknownFunctionFails) {
  const FunctionRegistry registry = FunctionRegistry::Default();
  const RowBinding binding;
  EXPECT_FALSE(
      EvalExpr(*Expr::Func("nope", {}), binding, &registry).ok());
}

TEST(EvalTest, FunctionWithoutRegistryFails) {
  const RowBinding binding;
  EXPECT_FALSE(EvalExpr(*Expr::Func("identity", {Lit(Value::Int(1))}),
                        binding, nullptr)
                   .ok());
}

// --- Type inference -----------------------------------------------------------

class InferTypeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationDef def;
    def.source = "IS1";
    def.name = "R";
    def.schema = Schema({{"i", DataType::kInt},
                         {"d", DataType::kDouble},
                         {"s", DataType::kString},
                         {"t", DataType::kDate},
                         {"b", DataType::kBool}});
    ASSERT_TRUE(catalog_.AddRelation(def).ok());
  }
  Catalog catalog_;
};

TEST_F(InferTypeTest, ColumnTypesFromCatalog) {
  EXPECT_EQ(InferType(*Col("R", "i"), catalog_).value(), DataType::kInt);
  EXPECT_EQ(InferType(*Col("R", "t"), catalog_).value(), DataType::kDate);
  EXPECT_FALSE(InferType(*Col("R", "zz"), catalog_).ok());
}

TEST_F(InferTypeTest, ArithmeticWidening) {
  EXPECT_EQ(
      InferType(*Bin(BinaryOp::kAdd, Col("R", "i"), Col("R", "i")), catalog_)
          .value(),
      DataType::kInt);
  EXPECT_EQ(
      InferType(*Bin(BinaryOp::kAdd, Col("R", "i"), Col("R", "d")), catalog_)
          .value(),
      DataType::kDouble);
}

TEST_F(InferTypeTest, DateArithmetic) {
  EXPECT_EQ(
      InferType(*Bin(BinaryOp::kSub, Col("R", "t"), Col("R", "t")), catalog_)
          .value(),
      DataType::kInt);
  EXPECT_EQ(
      InferType(*Bin(BinaryOp::kAdd, Col("R", "t"), Col("R", "i")), catalog_)
          .value(),
      DataType::kDate);
}

TEST_F(InferTypeTest, ComparisonsAndLogicAreBool) {
  EXPECT_EQ(
      InferType(*Bin(BinaryOp::kEq, Col("R", "i"), Col("R", "d")), catalog_)
          .value(),
      DataType::kBool);
  EXPECT_EQ(InferType(*Bin(BinaryOp::kAnd, Col("R", "b"), Col("R", "b")),
                      catalog_)
                .value(),
            DataType::kBool);
}

TEST_F(InferTypeTest, Errors) {
  EXPECT_FALSE(
      InferType(*Bin(BinaryOp::kMul, Col("R", "s"), Col("R", "i")), catalog_)
          .ok());
  EXPECT_FALSE(
      InferType(*Expr::Unary(UnaryOp::kNot, Col("R", "i")), catalog_).ok());
  EXPECT_FALSE(
      InferType(*Expr::Unary(UnaryOp::kNegate, Col("R", "s")), catalog_)
          .ok());
}

TEST_F(InferTypeTest, FunctionHeuristics) {
  EXPECT_EQ(InferType(*Expr::Func("years_since", {Col("R", "t")}), catalog_)
                .value(),
            DataType::kInt);
  EXPECT_EQ(InferType(*Expr::Func("custom", {Col("R", "s")}), catalog_)
                .value(),
            DataType::kString);
}

// --- EvalPredicate -------------------------------------------------------------

TEST(EvalPredicateTest, NullCountsAsNotTrue) {
  const RowBinding binding;
  const ExprPtr null_cmp =
      Bin(BinaryOp::kEq, Lit(Value::Null()), Lit(Value::Int(1)));
  EXPECT_FALSE(EvalPredicate(*null_cmp, binding, nullptr).value());
  EXPECT_TRUE(EvalPredicate(*Lit(Value::Bool(true)), binding, nullptr)
                  .value());
}

TEST(EvalPredicateTest, NonBooleanPredicateFails) {
  const RowBinding binding;
  EXPECT_FALSE(EvalPredicate(*Lit(Value::Int(1)), binding, nullptr).ok());
}

}  // namespace
}  // namespace eve
