#include <gtest/gtest.h>

#include "mkb/builder.h"
#include "mkb/serializer.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

// Structural equality between two MKBs, independent of formatting.
void ExpectSameMkb(const Mkb& a, const Mkb& b) {
  EXPECT_EQ(a.catalog().RelationNames(), b.catalog().RelationNames());
  for (const std::string& name : a.catalog().RelationNames()) {
    const RelationDef& da = *a.catalog().GetRelation(name).value();
    const RelationDef& db = *b.catalog().GetRelation(name).value();
    EXPECT_EQ(da.source, db.source) << name;
    EXPECT_EQ(da.schema, db.schema) << name;
    EXPECT_EQ(da.ordered_by, db.ordered_by) << name;
  }
  ASSERT_EQ(a.join_constraints().size(), b.join_constraints().size());
  for (size_t i = 0; i < a.join_constraints().size(); ++i) {
    const JoinConstraint& ja = a.join_constraints()[i];
    const JoinConstraint& jb = b.join_constraints()[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.lhs, jb.lhs);
    EXPECT_EQ(ja.rhs, jb.rhs);
    ASSERT_EQ(ja.clauses.size(), jb.clauses.size()) << ja.id;
    for (size_t k = 0; k < ja.clauses.size(); ++k) {
      EXPECT_TRUE(ja.clauses[k]->Equals(*jb.clauses[k]))
          << ja.clauses[k]->ToString() << " vs "
          << jb.clauses[k]->ToString();
    }
  }
  ASSERT_EQ(a.function_of_constraints().size(),
            b.function_of_constraints().size());
  for (size_t i = 0; i < a.function_of_constraints().size(); ++i) {
    const FunctionOfConstraint& fa = a.function_of_constraints()[i];
    const FunctionOfConstraint& fb = b.function_of_constraints()[i];
    EXPECT_EQ(fa.id, fb.id);
    EXPECT_EQ(fa.target, fb.target);
    EXPECT_EQ(fa.source, fb.source);
    EXPECT_TRUE(fa.fn->Equals(*fb.fn)) << fa.id;
  }
  ASSERT_EQ(a.pc_constraints().size(), b.pc_constraints().size());
  for (size_t i = 0; i < a.pc_constraints().size(); ++i) {
    const PCConstraint& pa = a.pc_constraints()[i];
    const PCConstraint& pb = b.pc_constraints()[i];
    EXPECT_EQ(pa.id, pb.id);
    EXPECT_EQ(pa.lhs_relation, pb.lhs_relation);
    EXPECT_EQ(pa.rhs_relation, pb.rhs_relation);
    EXPECT_EQ(pa.lhs_attrs, pb.lhs_attrs);
    EXPECT_EQ(pa.rhs_attrs, pb.rhs_attrs);
    EXPECT_EQ(pa.relation, pb.relation);
  }
}

TEST(SerializerTest, TravelAgencyRoundTrip) {
  Mkb original = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddPersonExtension(&original).ok());
  ASSERT_TRUE(AddAccidentInsPc(&original).ok());
  const std::string text = SaveMkb(original);
  const Result<Mkb> loaded = LoadMkb(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << text;
  ExpectSameMkb(original, loaded.value());
}

TEST(SerializerTest, SavedTextIsReadable) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const std::string text = SaveMkb(mkb);
  EXPECT_NE(text.find("SOURCE IS1 RELATION Customer"), std::string::npos);
  EXPECT_NE(text.find("JOIN CONSTRAINT JC1 BETWEEN Customer AND FlightRes"),
            std::string::npos);
  EXPECT_NE(text.find("FUNCTION F3 Customer.Age ="), std::string::npos);
  // Hyphenated names are quoted.
  EXPECT_NE(text.find("\"Accident-Ins\""), std::string::npos);
}

TEST(SerializerTest, HandAuthoredText) {
  const Result<Mkb> mkb = LoadMkb(R"misd(
    -- a tiny hand-written federation
    SOURCE IS1 RELATION Emp (Name string, Dept string, Salary double)
        ORDER BY (Name)
    SOURCE IS2 RELATION Dept (Dept string, City string)
    SOURCE IS3 RELATION Payroll (Who string, Amount double)

    JOIN CONSTRAINT J1 BETWEEN Emp AND Dept
        WHERE Emp.Dept = Dept.Dept
    JOIN CONSTRAINT J2 BETWEEN Emp AND Payroll
        WHERE Emp.Name = Payroll.Who AND Emp.Salary > 0

    FUNCTION FX Emp.Salary = Payroll.Amount * 1
    PC P1 Payroll (Who) SUPERSET Emp (Name)
  )misd");
  ASSERT_TRUE(mkb.ok()) << mkb.status();
  EXPECT_EQ(mkb.value().catalog().NumRelations(), 3u);
  EXPECT_EQ(mkb.value().join_constraints().size(), 2u);
  EXPECT_EQ(mkb.value().GetJoinConstraint("J2").value()->clauses.size(), 2u);
  EXPECT_EQ(mkb.value().function_of_constraints().size(), 1u);
  EXPECT_EQ(mkb.value().pc_constraints().size(), 1u);
  EXPECT_EQ(mkb.value().catalog().GetRelation("Emp").value()->ordered_by,
            (std::vector<std::string>{"Name"}));
}

TEST(SerializerTest, PcWithSelections) {
  const Result<Mkb> mkb = LoadMkb(R"misd(
    SOURCE IS1 RELATION A (x int, y int)
    SOURCE IS2 RELATION B (x int, z int)
    JOIN CONSTRAINT J BETWEEN A AND B WHERE A.x = B.x
    PC P1 A (x) WHERE (A.y > 0) SUBSET B (x) WHERE (B.z > 0)
  )misd");
  ASSERT_TRUE(mkb.ok()) << mkb.status();
  const PCConstraint& pc = mkb.value().pc_constraints()[0];
  ASSERT_NE(pc.lhs_condition, nullptr);
  ASSERT_NE(pc.rhs_condition, nullptr);
  EXPECT_EQ(pc.lhs_condition->ToString(), "(A.y > 0)");
  EXPECT_EQ(pc.relation, SetRelation::kSubset);
  // And it round-trips.
  const Result<Mkb> again = LoadMkb(SaveMkb(mkb.value()));
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_NE(again.value().pc_constraints()[0].lhs_condition, nullptr);
  EXPECT_TRUE(again.value().pc_constraints()[0].lhs_condition->Equals(
      *pc.lhs_condition));
}

TEST(SerializerTest, DateLiteralsInFunctionsRoundTrip) {
  const Mkb original = MakeTravelAgencyMkb().value();
  const Mkb loaded = LoadMkb(SaveMkb(original)).value();
  const FunctionOfConstraint* f3 = loaded.GetFunctionOf("F3").value();
  EXPECT_FALSE(f3->IsIdentity());
  EXPECT_TRUE(
      f3->fn->Equals(*original.GetFunctionOf("F3").value()->fn));
}

TEST(SerializerTest, ErrorsAreReported) {
  EXPECT_FALSE(LoadMkb("NONSENSE").ok());
  EXPECT_FALSE(LoadMkb("SOURCE IS1 RELATION R (a int").ok());
  EXPECT_FALSE(LoadMkb("SOURCE IS1 RELATION R (a blob)").ok());
  // Join constraint over unknown relation.
  EXPECT_FALSE(LoadMkb(R"misd(
    SOURCE IS1 RELATION A (x int)
    JOIN CONSTRAINT J BETWEEN A AND B WHERE A.x = B.x
  )misd")
                   .ok());
  // Duplicate constraint id.
  EXPECT_FALSE(LoadMkb(R"misd(
    SOURCE IS1 RELATION A (x int)
    SOURCE IS2 RELATION B (x int)
    JOIN CONSTRAINT J BETWEEN A AND B WHERE A.x = B.x
    JOIN CONSTRAINT J BETWEEN A AND B WHERE A.x = B.x
  )misd")
                   .ok());
  // PC with unknown relation keyword.
  EXPECT_FALSE(LoadMkb(R"misd(
    SOURCE IS1 RELATION A (x int)
    SOURCE IS2 RELATION B (x int)
    PC P1 A (x) SIDEWAYS B (x)
  )misd")
                   .ok());
}

TEST(SerializerTest, EmptyInputGivesEmptyMkb) {
  const Result<Mkb> mkb = LoadMkb("  -- only a comment\n");
  ASSERT_TRUE(mkb.ok());
  EXPECT_EQ(mkb.value().catalog().NumRelations(), 0u);
}

TEST(SerializerTest, OrderByRoundTrips) {
  Mkb mkb;
  RelationDef def;
  def.source = "IS1";
  def.name = "Ordered";
  def.schema = Schema({{"a", DataType::kInt}, {"b", DataType::kString}});
  def.ordered_by = {"b", "a"};
  ASSERT_TRUE(mkb.AddRelation(def).ok());
  const Mkb loaded = LoadMkb(SaveMkb(mkb)).value();
  EXPECT_EQ(loaded.catalog().GetRelation("Ordered").value()->ordered_by,
            (std::vector<std::string>{"b", "a"}));
}

TEST(SerializerTest, DoubleRoundTripIsStable) {
  Mkb original = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddAccidentInsPc(&original).ok());
  const std::string once = SaveMkb(original);
  const std::string twice = SaveMkb(LoadMkb(once).value());
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace eve
