#include <gtest/gtest.h>

#include "cvs/r_mapping.h"
#include "esql/binder.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class RMappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
  }
  Mkb mkb_;
  ViewDefinition view_;
};

// Paper Ex. 8: Min(H_Customer) = FlightRes ⋈_JC1 Customer and
// Max(V_Customer) adds the selection FlightRes.Dest = 'Asia'.
TEST_F(RMappingTest, PaperExample8) {
  const RMapping mapping =
      ComputeRMapping(view_, "Customer", mkb_).value();
  EXPECT_EQ(mapping.relation, "Customer");
  EXPECT_EQ(mapping.relations,
            (std::vector<std::string>{"Customer", "FlightRes"}));
  ASSERT_EQ(mapping.min_edges.size(), 1u);
  EXPECT_EQ(mapping.min_edges[0].id, "JC1");
  // Condition 0 (C.Name = F.PName) is consumed by JC1.
  EXPECT_EQ(mapping.consumed_conditions, (std::vector<size_t>{0}));
  // Condition 1 (F.Dest = 'Asia') is local: the C_{Max/Min} selection.
  EXPECT_EQ(mapping.local_conditions, (std::vector<size_t>{1}));
  // Conditions 2 and 3 touch Participant: C_Rest.
  EXPECT_EQ(mapping.rest_conditions, (std::vector<size_t>{2, 3}));
  EXPECT_EQ(mapping.rest_relations,
            (std::vector<std::string>{"Participant"}));
}

TEST_F(RMappingTest, ParticipantNotAbsorbedWithoutImpliedJc) {
  // JC3 (Customer.Name = Participant.Participant) is NOT implied by the
  // view's WHERE clause, so Participant stays outside Max(V_R).
  const RMapping mapping =
      ComputeRMapping(view_, "Customer", mkb_).value();
  EXPECT_EQ(std::find(mapping.relations.begin(), mapping.relations.end(),
                      "Participant"),
            mapping.relations.end());
}

TEST_F(RMappingTest, MappingForFlightResAbsorbsCustomer) {
  const RMapping mapping =
      ComputeRMapping(view_, "FlightRes", mkb_).value();
  EXPECT_EQ(mapping.relations,
            (std::vector<std::string>{"Customer", "FlightRes"}));
  EXPECT_EQ(mapping.min_edges[0].id, "JC1");
}

TEST_F(RMappingTest, MappingForParticipantIsSingleton) {
  // No MKB JC between Participant and the others is implied by the view.
  const RMapping mapping =
      ComputeRMapping(view_, "Participant", mkb_).value();
  EXPECT_EQ(mapping.relations, (std::vector<std::string>{"Participant"}));
  EXPECT_TRUE(mapping.min_edges.empty());
  // All four conditions: 0 crosses to Customer/FlightRes -> rest;
  // 1 is FlightRes-only -> rest; 2 crosses -> rest; 3 is local.
  EXPECT_EQ(mapping.local_conditions, (std::vector<size_t>{3}));
  EXPECT_EQ(mapping.rest_conditions, (std::vector<size_t>{0, 1, 2}));
}

TEST_F(RMappingTest, MultiClauseJcRequiresAllClauses) {
  // A view joining Customer and Accident-Ins on Holder alone does not
  // imply JC2 (which also requires Customer.Age > 1).
  const ViewDefinition partial = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, \"Accident-Ins\" A "
      "WHERE C.Name = A.Holder",
      mkb_.catalog())
                                     .value();
  const RMapping mapping =
      ComputeRMapping(partial, "Customer", mkb_).value();
  EXPECT_EQ(mapping.relations, (std::vector<std::string>{"Customer"}));

  const ViewDefinition full = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, \"Accident-Ins\" A "
      "WHERE C.Name = A.Holder AND C.Age > 1",
      mkb_.catalog())
                                  .value();
  const RMapping full_mapping =
      ComputeRMapping(full, "Customer", mkb_).value();
  EXPECT_EQ(full_mapping.relations,
            (std::vector<std::string>{"Accident-Ins", "Customer"}));
  EXPECT_EQ(full_mapping.min_edges[0].id, "JC2");
  // Both clauses were consumed.
  EXPECT_EQ(full_mapping.consumed_conditions.size(), 2u);
}

TEST_F(RMappingTest, SymmetricClauseStillImpliesJc) {
  // The view writes the join clause flipped: F.PName = C.Name.
  const ViewDefinition flipped = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, FlightRes F "
      "WHERE F.PName = C.Name",
      mkb_.catalog())
                                     .value();
  const RMapping mapping =
      ComputeRMapping(flipped, "Customer", mkb_).value();
  EXPECT_EQ(mapping.relations,
            (std::vector<std::string>{"Customer", "FlightRes"}));
}

TEST_F(RMappingTest, TransitiveClosureThroughChain) {
  // Customer—Participant—Tour via JC3 and JC4 when both are spelled out.
  const ViewDefinition chain = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, Participant P, "
      "Tour T WHERE C.Name = P.Participant AND P.TourID = T.TourID",
      mkb_.catalog())
                                   .value();
  const RMapping mapping = ComputeRMapping(chain, "Customer", mkb_).value();
  EXPECT_EQ(mapping.relations,
            (std::vector<std::string>{"Customer", "Participant", "Tour"}));
  EXPECT_EQ(mapping.min_edges.size(), 2u);
  EXPECT_EQ(mapping.consumed_conditions.size(), 2u);
  EXPECT_TRUE(mapping.rest_relations.empty());
}

TEST_F(RMappingTest, ErrorsOnForeignRelation) {
  EXPECT_FALSE(ComputeRMapping(view_, "Tour", mkb_).ok());
  EXPECT_FALSE(ComputeRMapping(view_, "Nowhere", mkb_).ok());
}

TEST_F(RMappingTest, ToStringSmoke) {
  const RMapping mapping =
      ComputeRMapping(view_, "Customer", mkb_).value();
  const std::string text = mapping.ToString();
  EXPECT_NE(text.find("Customer"), std::string::npos);
  EXPECT_NE(text.find("JC1"), std::string::npos);
}

}  // namespace
}  // namespace eve
