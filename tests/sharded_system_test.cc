// ShardedEveSystem: hash routing, replica convergence, merged-report
// byte-identity against the single-system reference, RCU snapshot
// publication, poisoning on commit-phase divergence, per-shard
// checkpoint/journal recovery with the cross-shard barrier, and
// serial-vs-parallel recovery byte-identity. This binary runs under TSan
// in CI (see PinnedSnapshotReadsAreStableDuringCommits).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/sharding.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/sharded_system.h"
#include "eve/view_pool_io.h"
#include "mkb/capability_change.h"
#include "mkb/serializer.h"
#include "workload/generator.h"

namespace eve {
namespace {

Mkb MakeMkb() {
  ChainMkbSpec spec;
  spec.length = 32;
  spec.cover_distance = 2;
  return MakeChainMkb(spec).MoveValue();
}

// Registers `num_views` chain views named SV<i>: even ones reference the
// victim relation R1's neighborhood, odd ones sit far down the chain.
template <typename System>
void RegisterPool(System* system, const Mkb& mkb, size_t num_views) {
  for (size_t i = 0; i < num_views; ++i) {
    const size_t start = (i % 2 == 0) ? (i / 2) % 2 : 16 + (i / 2) % 12;
    ViewDefinition view = MakeChainView(mkb, start, 3).MoveValue();
    view.set_name("SV" + std::to_string(i));
    ASSERT_TRUE(system->RegisterView(view).ok()) << view.name();
  }
}

// Everything durable about one sharded system, per shard, concatenated.
std::string SnapSharded(const ShardedEveSystem& system) {
  std::string out;
  for (size_t i = 0; i < system.shard_count(); ++i) {
    out += "==== shard " + std::to_string(i) + "\n";
    out += SaveMkb(system.shard(i).mkb());
    out += SaveViews(system.shard(i));
    out += "log " + std::to_string(system.shard(i).change_log().size()) + "\n";
  }
  return out;
}

TEST(ShardedSystemTest, ViewsRouteToTheirHashShard) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 24);
  ASSERT_EQ(system.NumViews(), 24u);

  size_t placed = 0;
  for (size_t s = 0; s < 4; ++s) {
    for (const std::string& name : system.shard(s).ViewNames()) {
      EXPECT_EQ(ShardOf(name, 4), s) << name;
      ++placed;
    }
    EXPECT_GT(system.shard(s).NumViews(), 0u)
        << "24 hashed views left shard " << s << " empty";
  }
  EXPECT_EQ(placed, 24u);

  // Merged reads agree with the routing.
  const std::vector<std::string> names = system.ViewNames();
  EXPECT_EQ(names.size(), 24u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_TRUE(system.GetView("SV0").ok());
  EXPECT_EQ(system.GetView("SV0").value()->definition.name(), "SV0");
}

TEST(ShardedSystemTest, ShardCountIsFixedAfterFirstRegistration) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb);
  EXPECT_TRUE(system.SetShardCount(8).ok());
  EXPECT_EQ(system.shard_count(), 8u);
  RegisterPool(&system, mkb, 2);
  const Status resized = system.SetShardCount(4);
  EXPECT_EQ(resized.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(system.shard_count(), 8u);
}

TEST(ShardedSystemTest, MergedReportsAreByteIdenticalAcrossShardCounts) {
  const Mkb mkb = MakeMkb();
  const std::vector<CapabilityChange> changes = {
      CapabilityChange::DeleteAttribute("R1", "P1"),
      CapabilityChange::DeleteRelation("R1"),
      CapabilityChange::RenameRelation("R20", "R20x"),
  };

  std::string reference_reports;
  std::string reference_pool;
  for (const size_t count : {size_t{1}, size_t{4}, size_t{16}}) {
    ShardedEveSystem system(mkb, {}, count);
    RegisterPool(&system, mkb, 24);
    std::string reports;
    for (const CapabilityChange& change : changes) {
      const Result<ChangeReport> report = system.ApplyChange(change);
      ASSERT_TRUE(report.ok()) << "shards=" << count;
      reports += report.value().ToString() + "\n====\n";
    }
    // Merged pool across shards, name-ordered.
    std::string pool;
    for (const std::string& name : system.ViewNames()) {
      const RegisteredView* view = system.GetView(name).value();
      pool += name +
              (view->state == ViewState::kActive ? " [active]\n"
                                                 : " [disabled]\n") +
              view->definition.ToString() + "\n";
    }
    if (count == 1) {
      reference_reports = reports;
      reference_pool = pool;
      // The 1-shard merged report IS the classic single-system report.
      EveSystem single(mkb);
      RegisterPool(&single, mkb, 24);
      std::string single_reports;
      for (const CapabilityChange& change : changes) {
        single_reports += single.ApplyChange(change).value().ToString() +
                          "\n====\n";
      }
      EXPECT_EQ(reports, single_reports);
    } else {
      EXPECT_EQ(reports, reference_reports) << "shards=" << count;
      EXPECT_EQ(pool, reference_pool) << "shards=" << count;
    }
  }
}

TEST(ShardedSystemTest, ReplicasConvergeAcrossEveryMutationKind) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 12);
  ASSERT_TRUE(system
                  .ExtendMkb("SOURCE ExtraIS RELATION Extra1 "
                             "(Name string, X int)")
                  .ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());
  ASSERT_TRUE(system.RetractConstraint("JL4").ok());
  ASSERT_TRUE(system
                  .ApplyChanges({CapabilityChange::DeleteRelation("R20"),
                                 CapabilityChange::RenameRelation("R25",
                                                                  "R25x")})
                  .ok());
  const std::string reference = SaveMkb(system.shard(0).mkb());
  for (size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(SaveMkb(system.shard(s).mkb()), reference) << "shard " << s;
  }
}

TEST(ShardedSystemTest, PinnedSnapshotIsImmutableAcrossCommits) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 12);

  const std::shared_ptr<const ShardedSnapshot> pinned = system.PinPublished();
  ASSERT_NE(pinned, nullptr);
  const uint64_t pinned_epoch = pinned->epoch;
  const std::string pinned_mkb = SaveMkb(*pinned->mkb);

  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());

  // The old pin is untouched; the new pin carries a later epoch and the
  // evolved MKB.
  EXPECT_EQ(pinned->epoch, pinned_epoch);
  EXPECT_EQ(SaveMkb(*pinned->mkb), pinned_mkb);
  const std::shared_ptr<const ShardedSnapshot> now = system.PinPublished();
  EXPECT_GT(now->epoch, pinned_epoch);
  EXPECT_NE(SaveMkb(*now->mkb), pinned_mkb);
  EXPECT_EQ(now->shard_versions.size(), 4u);
}

TEST(ShardedSystemTest, PinnedSnapshotReadsAreStableDuringCommits) {
  // Readers pin snapshots while the coordinator commits: every pinned
  // snapshot must render byte-stably (RCU: never torn, never blocked).
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 12);

  std::atomic<bool> stop{false};
  std::atomic<size_t> pins{0};
  std::atomic<size_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const std::shared_ptr<const ShardedSnapshot> snap =
            system.PinPublished();
        const std::string first = SaveMkb(*snap->mkb);
        if (SaveMkb(*snap->mkb) != first ||
            snap->shard_versions.size() != 4) {
          torn.fetch_add(1);
        }
        pins.fetch_add(1);
      }
    });
  }
  for (const char* victim : {"R1", "R20", "R25"}) {
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation(victim)).ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(pins.load(), 0u);
}

TEST(ShardedSystemTest, ShardStatsCountOwnedViewsAndCommits) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 24);
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  // Which shards own a view the change affects, before committing it.
  std::vector<bool> has_affected(4);
  for (size_t s = 0; s < 4; ++s) {
    has_affected[s] = !system.shard(s).AffectedViews(change).empty();
  }
  ASSERT_TRUE(system.ApplyChange(change).ok());
  ASSERT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("R17")).ok());

  const std::vector<ShardStatsRow> rows = system.Stats();
  ASSERT_EQ(rows.size(), 4u);
  size_t views = 0;
  uint64_t commits = 0;
  size_t queued = 0;
  for (const ShardStatsRow& row : rows) {
    views += row.views;
    commits += row.commits;
    queued += row.queue_depth;
    EXPECT_GT(row.last_synced_version, 0u);
    // Only shards owning affected views count the commit; replica no-op
    // commits on the other shards do not inflate their stats.
    EXPECT_EQ(row.commits > 0, has_affected[row.shard])
        << "shard " << row.shard;
  }
  EXPECT_EQ(views, 24u);
  EXPECT_GT(commits, 0u);
  EXPECT_GT(queued, 0u);  // the queued R17 change affects some shard
  EXPECT_FALSE(system.RenderShardStats().empty());
}

TEST(ShardedSystemTest, CommitPhaseFailureOnLaterShardPoisons) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 12);

  Failpoints::Instance().Reset();
  Failpoints::Instance().Arm(fp::kShardedCommitShard, FailpointAction::kError,
                             2);
  const Result<ChangeReport> report =
      system.ApplyChange(CapabilityChange::DeleteRelation("R1"));
  Failpoints::Instance().Reset();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(system.poisoned());
  // Every further mutation is refused until recovery.
  EXPECT_EQ(system.ApplyChange(CapabilityChange::DeleteRelation("R20"))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(system.ExtendMkb("SOURCE S RELATION Z (A int)").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedSystemTest, PrepareFailureLeavesNothingCommittedAnywhere) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  RegisterPool(&system, mkb, 12);
  const std::string before = SnapSharded(system);
  // Deleting a relation that does not exist fails in prepare on every
  // shard identically — clean abort, no poison.
  EXPECT_FALSE(
      system.ApplyChange(CapabilityChange::DeleteRelation("NoSuch")).ok());
  EXPECT_FALSE(system.poisoned());
  EXPECT_EQ(SnapSharded(system), before);
}

class ShardedRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().Reset();
    const std::string base =
        ::testing::TempDir() + "sharded_recovery_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ckpt_base_ = base + ".ckpt";
    wal_base_ = base + ".wal";
    RemoveFiles();
  }
  void TearDown() override {
    Failpoints::Instance().Reset();
    RemoveFiles();
  }
  void RemoveFiles() {
    std::remove((ckpt_base_ + ".manifest").c_str());
    for (size_t i = 0; i < 8; ++i) {
      std::remove((wal_base_ + ".shard" + std::to_string(i)).c_str());
      for (uint64_t g = 1; g <= 4; ++g) {
        std::remove((ckpt_base_ + ".shard" + std::to_string(i) + ".g" +
                     std::to_string(g))
                        .c_str());
      }
    }
  }

  std::string ckpt_base_;
  std::string wal_base_;
};

TEST_F(ShardedRecoveryTest, JournaledRunRecoversByteIdentically) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  ASSERT_TRUE(system.AttachJournals(wal_base_).ok());
  // Initial checkpoint: the constructor-seeded MKB is not journaled, so
  // the journals replay on top of this generation.
  ASSERT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
  RegisterPool(&system, mkb, 12);
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());
  ASSERT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("R20")).ok());
  ASSERT_TRUE(system.SetViewState("SV1", ViewState::kDisabled).ok());
  const std::string expected = SnapSharded(system);

  RecoveryReport report;
  const Result<ShardedEveSystem> recovered =
      ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_,
                                                &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value().shard_count(), 4u);
  EXPECT_EQ(SnapSharded(recovered.value()), expected);
  EXPECT_NE(recovered.value().PinPublished(), nullptr);

  // Recovery repaired the journals in place: a second recovery sees the
  // same bytes and lands on the same state (idempotence).
  const Result<ShardedEveSystem> again =
      ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(SnapSharded(again.value()), expected);
}

TEST_F(ShardedRecoveryTest, RecoveredSystemContinuesJournaling) {
  const Mkb mkb = MakeMkb();
  {
    ShardedEveSystem system(mkb, {}, 4);
    ASSERT_TRUE(system.AttachJournals(wal_base_).ok());
    ASSERT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
    RegisterPool(&system, mkb, 12);
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());
  }
  Result<ShardedEveSystem> recovered =
      ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ShardedEveSystem system = recovered.MoveValue();
  ASSERT_TRUE(system.AttachJournals(wal_base_).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("R20")).ok());
  const std::string expected = SnapSharded(system);

  const Result<ShardedEveSystem> second =
      ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(SnapSharded(second.value()), expected);
}

TEST_F(ShardedRecoveryTest, SerialAndParallelReplayAreByteIdentical) {
  const Mkb mkb = MakeMkb();
  {
    ShardedEveSystem system(mkb, {}, 4);
    ASSERT_TRUE(system.AttachJournals(wal_base_).ok());
    ASSERT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
    RegisterPool(&system, mkb, 16);
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());
    ASSERT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
    ASSERT_TRUE(
        system.ApplyChanges({CapabilityChange::DeleteRelation("R20"),
                             CapabilityChange::RenameRelation("R25", "R25x")})
            .ok());
  }
  const Result<ShardedEveSystem> parallel =
      ShardedEveSystem::RecoverShardedFromFiles(
          ckpt_base_, wal_base_, nullptr, /*parallel_replay=*/true);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  const Result<ShardedEveSystem> serial =
      ShardedEveSystem::RecoverShardedFromFiles(
          ckpt_base_, wal_base_, nullptr, /*parallel_replay=*/false);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(SnapSharded(parallel.value()), SnapSharded(serial.value()));
}

TEST_F(ShardedRecoveryTest, BarrierDropsPartiallyFannedOutChanges) {
  const Mkb mkb = MakeMkb();
  ShardedEveSystem system(mkb, {}, 4);
  ASSERT_TRUE(system.AttachJournals(wal_base_).ok());
  ASSERT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
  RegisterPool(&system, mkb, 12);
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());
  const std::string before = SnapSharded(system);

  // Crash after two shards committed the next change: a strict prefix of
  // the journals carries it, so the barrier must discard it everywhere.
  Failpoints::Instance().Arm(fp::kShardedCommitShard, FailpointAction::kCrash,
                             3);
  EXPECT_THROW(
      (void)system.ApplyChange(CapabilityChange::DeleteRelation("R20")),
      SimulatedCrash);
  Failpoints::Instance().Reset();

  RecoveryReport report;
  const Result<ShardedEveSystem> recovered =
      ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_,
                                                &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(SnapSharded(recovered.value()), before);
  EXPECT_GT(report.discarded, 0u);
}

TEST(ShardedBarrierTest, CountsAndTruncatesGlobalUnits) {
  const std::vector<JournalRecord> records = {
      {JournalRecordKind::kJournalEpoch, "1"},
      {JournalRecordKind::kRegisterView, "..."},
      {JournalRecordKind::kApplyChange, "..."},   // unit 1
      {JournalRecordKind::kVersionCommit, "7"},
      {JournalRecordKind::kBeginBatch, ""},
      {JournalRecordKind::kApplyChange, "..."},
      {JournalRecordKind::kCommitBatch, ""},      // unit 2
      {JournalRecordKind::kApplyChange, "..."},   // unit 3
  };
  EXPECT_EQ(CompletedGlobalUnits(records), 3u);
  EXPECT_EQ(CompletedGlobalUnits({}), 0u);

  // The unit-1 prefix keeps the trailing kVersionCommit that belongs to
  // it; the unit-2 prefix ends where the dangling unit 3 begins.
  EXPECT_EQ(PrefixEndForUnits(records, 0), 2u);
  EXPECT_EQ(PrefixEndForUnits(records, 1), 4u);
  EXPECT_EQ(PrefixEndForUnits(records, 2), 7u);
  EXPECT_EQ(PrefixEndForUnits(records, 3), 8u);

  // An open batch never counts, and the barrier cuts before its begin.
  const std::vector<JournalRecord> open_batch = {
      {JournalRecordKind::kApplyChange, "..."},
      {JournalRecordKind::kBeginBatch, ""},
      {JournalRecordKind::kApplyChange, "..."},
  };
  EXPECT_EQ(CompletedGlobalUnits(open_batch), 1u);
  EXPECT_EQ(PrefixEndForUnits(open_batch, 1), 1u);
}

TEST(ShardedSystemTest, BulkRegistrationPartitionsAcrossShards) {
  ChainMkbSpec spec;
  spec.length = 16;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  ViewPoolSpec pool_spec;
  pool_spec.num_views = 400;
  pool_spec.max_span = 2;
  const std::vector<ViewDefinition> pool =
      MakeViewPool(mkb, pool_spec).MoveValue();

  ShardedEveSystem system(mkb, {}, 4);
  const uint64_t genesis = system.shard(0).current_version();
  ASSERT_TRUE(system.RegisterViewsBulk(pool).ok());
  EXPECT_EQ(system.NumViews(), 400u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(system.shard(s).NumViews(), 0u) << "shard " << s;
    // One bulk record → ONE version per shard, not one per view.
    EXPECT_EQ(system.shard(s).current_version(), genesis + 1) << "shard " << s;
  }
}

TEST(ShardedSystemTest, SkewedViewPoolLandsOnShardZero) {
  ChainMkbSpec spec;
  spec.length = 16;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  ViewPoolSpec pool_spec;
  pool_spec.num_views = 200;
  pool_spec.shard_skew = 1.0;
  pool_spec.skew_shards = 4;
  const std::vector<ViewDefinition> pool =
      MakeViewPool(mkb, pool_spec).MoveValue();
  for (const ViewDefinition& view : pool) {
    EXPECT_EQ(ShardOf(view.name(), 4), 0u) << view.name();
  }
}

}  // namespace
}  // namespace eve
