// Federation layer: membership state machine, backoff/breaker/lease
// mechanics, monitor-driven degraded-mode synchronization, and the
// end-to-end convergence property — every view ends correctly rewritten,
// explicitly disabled, or provisional with a live lease, and a fault
// schedule that heals within every lease leaves reports byte-identical to
// the fault-free run.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/view_pool_io.h"
#include "federation/membership.h"
#include "federation/monitor.h"
#include "federation/simulator.h"
#include "federation/transport.h"
#include "mkb/serializer.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

using federation::BreakerState;
using federation::FederationMonitor;
using federation::FederationSimulator;
using federation::MakeHealthy;
using federation::SimOptions;
using federation::SimResult;
using federation::SimulatedTransport;
using federation::SourceConfig;
using federation::SourceMembership;
using federation::SourceState;

Mkb MakeMkbWithPc() {
  Mkb mkb = MakeTravelAgencyMkb().MoveValue();
  EXPECT_TRUE(AddAccidentInsPc(&mkb).ok());
  return mkb;
}

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().Reset(); }
  void TearDown() override { Failpoints::Instance().Reset(); }
};

// --- State machine and scheduling math -------------------------------------

TEST_F(FederationTest, BackoffDelayIsDeterministicMonotoneAndCapped) {
  SourceConfig config;
  config.jitter_ticks = 0;  // isolate the exponential part
  uint64_t previous = 0;
  for (uint64_t attempt = 1; attempt <= 12; ++attempt) {
    const uint64_t delay = federation::BackoffDelay(config, "IS4", attempt);
    EXPECT_EQ(delay, federation::BackoffDelay(config, "IS4", attempt));
    EXPECT_GE(delay, 1u);
    EXPECT_GE(delay, previous);
    EXPECT_LE(delay, config.backoff_cap_ticks);
    previous = delay;
  }
  EXPECT_EQ(federation::BackoffDelay(config, "IS4", 1),
            config.backoff_base_ticks);
  EXPECT_EQ(federation::BackoffDelay(config, "IS4", 12),
            config.backoff_cap_ticks);
}

TEST_F(FederationTest, JitterIsDeterministicBoundedAndSourceDependent) {
  EXPECT_EQ(federation::DeterministicJitter("IS1", 3, 0), 0u);
  bool spread = false;
  for (uint64_t attempt = 1; attempt <= 8; ++attempt) {
    const uint64_t a = federation::DeterministicJitter("IS1", attempt, 7);
    const uint64_t b = federation::DeterministicJitter("IS2", attempt, 7);
    EXPECT_LT(a, 7u);
    EXPECT_LT(b, 7u);
    EXPECT_EQ(a, federation::DeterministicJitter("IS1", attempt, 7));
    if (a != b) spread = true;
  }
  EXPECT_TRUE(spread) << "distinct sources should not thunder in lockstep";
}

TEST_F(FederationTest, FailuresEscalateThroughSuspectToQuarantine) {
  const SourceConfig config;  // threshold 3
  SourceMembership m = MakeHealthy(config, 0);
  EXPECT_EQ(m.state, SourceState::kHealthy);
  EXPECT_EQ(m.next_probe, config.probe_interval_ticks);
  EXPECT_EQ(m.lease_expires, config.lease_ticks);

  m = OnProbeFailure(m, "IS4", 10);
  EXPECT_EQ(m.state, SourceState::kSuspect);
  EXPECT_EQ(m.breaker, BreakerState::kClosed);
  EXPECT_TRUE(m.Degraded());
  EXPECT_EQ(m.consecutive_failures, 1u);
  EXPECT_EQ(m.lease_expires, config.lease_ticks) << "failures never renew";

  m = OnProbeFailure(m, "IS4", 12);
  EXPECT_EQ(m.state, SourceState::kSuspect);
  m = OnProbeFailure(m, "IS4", 15);  // third consecutive failure: trip
  EXPECT_EQ(m.state, SourceState::kQuarantined);
  EXPECT_EQ(m.breaker, BreakerState::kOpen);
  EXPECT_GE(m.next_probe, 15 + config.breaker_open_ticks);
}

TEST_F(FederationTest, HalfOpenProbeClosesOrReopensTheBreaker) {
  SourceMembership tripped = MakeHealthy({}, 0);
  for (uint64_t tick : {10u, 12u, 15u}) {
    tripped = OnProbeFailure(tripped, "IS4", tick);
  }
  ASSERT_EQ(tripped.breaker, BreakerState::kOpen);

  SourceMembership trial = tripped;
  trial.breaker = BreakerState::kHalfOpen;  // the monitor does this
  const SourceMembership reopened = OnProbeFailure(trial, "IS4", 40);
  EXPECT_EQ(reopened.breaker, BreakerState::kOpen);
  EXPECT_EQ(reopened.state, SourceState::kQuarantined);
  EXPECT_GE(reopened.next_probe, 40 + trial.config.breaker_open_ticks);

  const SourceMembership healed = OnProbeSuccess(trial, "IS4", 40);
  EXPECT_EQ(healed.breaker, BreakerState::kClosed);
  EXPECT_EQ(healed.state, SourceState::kHealthy);
  EXPECT_EQ(healed.consecutive_failures, 0u);
  EXPECT_EQ(healed.lease_expires, 40 + trial.config.lease_ticks);
  EXPECT_EQ(healed.next_probe, 40 + trial.config.probe_interval_ticks);
}

TEST_F(FederationTest, MembershipSerializationRoundTrips) {
  SourceMembership m = MakeHealthy({}, 17);
  m = OnProbeFailure(m, "IS5", 40);
  m = OnProbeFailure(m, "IS5", 44);
  m.config.lease_ticks = 999;
  const std::string line = federation::SerializeMembership("IS5", m);
  const auto parsed = federation::ParseMembership(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->source, "IS5");
  EXPECT_TRUE(parsed->membership == m);
  EXPECT_EQ(federation::SerializeMembership(parsed->source,
                                            parsed->membership),
            line);

  EXPECT_FALSE(federation::ParseMembership("IS5 healthy").ok());
  EXPECT_FALSE(federation::ParseMembership("").ok());
  EXPECT_FALSE(
      federation::ParseMembership(
          "IS5 bogus closed failures=0 lease=1 next=2 attempt=0 "
          "cfg=1,2,3,4,5,6,7,8")
          .ok());
}

// --- Monitor ---------------------------------------------------------------

TEST_F(FederationTest, TransientOutageNeverCausesRewritingChurn) {
  EveSystem system(MakeMkbWithPc());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const std::string views_before = SaveViews(system);
  const std::string mkb_before = SaveMkb(system.mkb());

  SimulatedTransport transport;
  // IS4 dark for 30 ticks: long enough to suspect, quarantine and trip the
  // breaker, far shorter than the 120-tick lease.
  transport.AddFault("IS4", {5, 35, SimulatedTransport::FaultKind::kTimeout});
  FederationMonitor monitor(&system, &transport);
  ASSERT_TRUE(monitor.TrackSources().ok());
  ASSERT_TRUE(monitor.AdvanceTo(200).ok());

  EXPECT_EQ(monitor.stats().departures, 0u);
  EXPECT_GT(monitor.stats().failures, 0u);
  EXPECT_GT(monitor.stats().state_transitions, 0u) << "IS4 must have dipped";
  EXPECT_EQ(system.source_membership().at("IS4").state, SourceState::kHealthy);
  EXPECT_EQ(system.source_membership().at("IS4").breaker,
            BreakerState::kClosed);
  // No view was touched and no change was logged: the outage was absorbed.
  EXPECT_EQ(SaveViews(system), views_before);
  EXPECT_EQ(SaveMkb(system.mkb()), mkb_before);
  EXPECT_TRUE(system.change_log().empty());
}

TEST_F(FederationTest, SlowAndCorruptRepliesCountAsFailures) {
  for (const auto kind : {SimulatedTransport::FaultKind::kSlow,
                          SimulatedTransport::FaultKind::kCorrupt}) {
    EveSystem system(MakeTravelAgencyMkb().MoveValue());
    SimulatedTransport transport;
    transport.AddFault("IS2", {5, 16, kind});
    FederationMonitor monitor(&system, &transport);
    ASSERT_TRUE(monitor.TrackSources().ok());
    ASSERT_TRUE(monitor.AdvanceTo(12).ok());
    EXPECT_EQ(system.source_membership().at("IS2").state,
              SourceState::kSuspect)
        << federation::FaultKindToString(kind);
    EXPECT_GT(monitor.stats().failures, 0u);
  }
}

TEST_F(FederationTest, LeaseExpiryDepartsSourceAndRunsCascade) {
  EveSystem system(MakeMkbWithPc());
  ASSERT_TRUE(system.RegisterViewText(AsiaCustomerSql()).ok());

  SimulatedTransport transport;
  // IS4 dark way past its lease: this outage is a real departure.
  transport.AddFault("IS4", {5, 500, SimulatedTransport::FaultKind::kTimeout});
  FederationMonitor monitor(&system, &transport);
  ASSERT_TRUE(monitor.TrackSources().ok());
  ASSERT_TRUE(monitor.AdvanceTo(300).ok());

  EXPECT_EQ(monitor.stats().departures, 1u);
  EXPECT_EQ(system.source_membership().at("IS4").state,
            SourceState::kDeparted);
  EXPECT_FALSE(system.mkb().catalog().HasRelation("FlightRes"));
  // The cascade synchronized the dependent view: rewritten or disabled,
  // never silently wrong.
  ASSERT_FALSE(system.change_log().empty());
  const RegisteredView* view = system.GetView("AsiaCustomer").value();
  if (view->state == ViewState::kActive) {
    EXPECT_FALSE(view->definition.ReferencesRelation("FlightRes"));
  }
  // Departed sources are not probed again.
  const uint64_t probes_at_departure = monitor.stats().probes;
  ASSERT_TRUE(monitor.AdvanceTo(320).ok());
  const auto& m = system.source_membership().at("IS4");
  EXPECT_EQ(m.state, SourceState::kDeparted);
  EXPECT_GT(monitor.stats().probes, probes_at_departure)
      << "other sources keep probing";
}

TEST_F(FederationTest, FlappingSourceSurvivesOnTheSuccessfulHalf) {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  SimulatedTransport transport;
  transport.AddFault("IS3", {1, 400, SimulatedTransport::FaultKind::kFlap});
  FederationMonitor monitor(&system, &transport);
  ASSERT_TRUE(monitor.TrackSources().ok());
  ASSERT_TRUE(monitor.AdvanceTo(400).ok());
  // Every other probe succeeds, so the lease keeps being renewed.
  EXPECT_EQ(monitor.stats().departures, 0u);
  EXPECT_NE(system.source_membership().at("IS3").state,
            SourceState::kDeparted);
  EXPECT_GT(monitor.stats().failures, 0u);
  EXPECT_GT(monitor.stats().successes, 0u);
}

// --- Degraded-mode synchronization -----------------------------------------

TEST_F(FederationTest, RewritingUnderDegradedSourceIsProvisionalUntilHeal) {
  // Reference run: no faults anywhere.
  EveSystem reference(MakeMkbWithPc());
  ASSERT_TRUE(reference.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(
      reference.ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .ok());

  // Degraded run: IS5 (Accident-Ins, the replacement the rewriting leans
  // on) is SUSPECT when the change arrives.
  EveSystem system(MakeMkbWithPc());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const SourceMembership degraded =
      OnProbeFailure(MakeHealthy({}, 0), "IS5", 10);
  ASSERT_TRUE(system.SetSourceMembership("IS5", degraded).ok());

  const ChangeReport report =
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  ASSERT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  const ViewOutcome& outcome = report.outcomes.front();
  EXPECT_EQ(outcome.provisional_sources,
            (std::vector<std::string>{"IS5"}));
  EXPECT_NE(report.ToString().find("[provisional: IS5]"), std::string::npos);
  const RegisteredView* view =
      system.GetView("CustomerPassengersAsia").value();
  EXPECT_EQ(view->provisional_sources, (std::set<std::string>{"IS5"}));
  EXPECT_NE(SaveViews(system).find("provisional=IS5"), std::string::npos);
  // The degraded run differs from the reference only by the marks.
  EXPECT_NE(SaveViews(system), SaveViews(reference));

  // Heal IS5: the provisional rewiring is confirmed; marks clear from the
  // live view AND the logged report, converging to the fault-free bytes.
  ASSERT_TRUE(
      system.SetSourceMembership("IS5", OnProbeSuccess(degraded, "IS5", 20))
          .ok());
  EXPECT_TRUE(system.GetView("CustomerPassengersAsia")
                  .value()
                  ->provisional_sources.empty());
  EXPECT_EQ(system.change_log().back().ToString(),
            reference.change_log().back().ToString());
  EXPECT_EQ(SaveViews(system), SaveViews(reference));
  EXPECT_EQ(SaveMkb(system.mkb()), SaveMkb(reference.mkb()));
}

TEST_F(FederationTest, DisabledViewCarriesNoProvisionalMarks) {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());  // no PC: incurable
  ASSERT_TRUE(system
                  .RegisterViewText(
                      "CREATE VIEW Rigid (VE = =) AS "
                      "SELECT C.Name (false, true) FROM Customer C, "
                      "FlightRes F WHERE C.Name = F.PName")
                  .ok());
  ASSERT_TRUE(
      system
          .SetSourceMembership("IS4", OnProbeFailure(MakeHealthy({}, 0),
                                                     "IS4", 10))
          .ok());
  const ChangeReport report =
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  ASSERT_EQ(report.CountOutcome(ViewOutcomeKind::kDisabled), 1u);
  EXPECT_TRUE(report.outcomes.front().provisional_sources.empty());
  EXPECT_TRUE(system.GetView("Rigid").value()->provisional_sources.empty());
}

// --- Durability ------------------------------------------------------------

TEST_F(FederationTest, RecoveryRestoresMembershipAndProvisionalMarks) {
  const std::string base = ::testing::TempDir() + "federation_recovery";
  const std::string checkpoint_path = base + ".ckpt";
  const std::string journal_path = base + ".wal";
  std::remove(checkpoint_path.c_str());
  std::remove(journal_path.c_str());

  EveSystem system(MakeMkbWithPc());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(WriteCheckpoint(system, checkpoint_path).ok());
  Journal journal = Journal::Open(journal_path).MoveValue();
  system.AttachJournal(&journal);

  SourceMembership degraded = MakeHealthy({}, 0);
  ASSERT_TRUE(system.SetSourceMembership("IS4", degraded).ok());
  ASSERT_TRUE(system.SetSourceMembership("IS5", degraded).ok());
  degraded = OnProbeFailure(degraded, "IS5", 10);
  ASSERT_TRUE(system.SetSourceMembership("IS5", degraded).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer")).ok());
  ASSERT_FALSE(SaveFederation(system).empty());

  const Result<EveSystem> recovered =
      RecoverFromFiles(checkpoint_path, journal_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(SaveFederation(recovered.value()), SaveFederation(system));
  EXPECT_EQ(SaveViews(recovered.value()), SaveViews(system));
  EXPECT_NE(SaveViews(recovered.value()).find("provisional=IS5"),
            std::string::npos);

  // A checkpoint taken NOW (with membership + marks) round-trips alone.
  const Result<EveSystem> reloaded =
      LoadCheckpoint(RenderCheckpoint(system));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(SaveFederation(reloaded.value()), SaveFederation(system));
  EXPECT_EQ(SaveViews(reloaded.value()), SaveViews(system));

  std::remove(checkpoint_path.c_str());
  std::remove(journal_path.c_str());
}

// --- Transport fault injection via failpoints ------------------------------

TEST_F(FederationTest, FailpointSitesConvertProbesIntoEachFaultKind) {
  const struct {
    const char* site;
    bool still_succeeds;  // flap: first armed probe fails, site disarms
  } kinds[] = {
      {fp::kFederationProbeSend, false},
      {fp::kFederationProbeTimeout, false},
      {fp::kFederationProbeSlow, false},
      {fp::kFederationProbeCorrupt, false},
      {fp::kFederationProbeFlap, false},
  };
  for (const auto& kind : kinds) {
    SCOPED_TRACE(kind.site);
    Failpoints::Instance().Reset();
    EveSystem system(MakeTravelAgencyMkb().MoveValue());
    SimulatedTransport transport;
    FederationMonitor monitor(&system, &transport);
    ASSERT_TRUE(monitor.TrackSources().ok());
    const uint64_t hits_before = Failpoints::Instance().HitCount(kind.site);
    // Arm on the first upcoming probe; with every source probing at tick
    // 10, exactly one of them eats the fault.
    Failpoints::Instance().Arm(kind.site, FailpointAction::kError);
    ASSERT_TRUE(monitor.AdvanceTo(10).ok());
    EXPECT_GT(Failpoints::Instance().HitCount(kind.site), hits_before);
    EXPECT_EQ(monitor.stats().failures, 1u);
    EXPECT_EQ(monitor.stats().successes, monitor.stats().probes - 1);
  }
  Failpoints::Instance().Reset();
}

TEST_F(FederationTest, CrashDuringProbePropagatesFromWorkerThreads) {
  for (const size_t parallelism : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(parallelism);
    Failpoints::Instance().Reset();
    EveSystem system(MakeTravelAgencyMkb().MoveValue());
    SimulatedTransport transport;
    FederationMonitor monitor(&system, &transport);
    monitor.SetProbeParallelism(parallelism);
    ASSERT_TRUE(monitor.TrackSources().ok());
    Failpoints::Instance().Arm(fp::kFederationProbeSend,
                               FailpointAction::kCrash);
    EXPECT_THROW((void)monitor.AdvanceTo(10), SimulatedCrash);
    Failpoints::Instance().Reset();
  }
}

// --- End-to-end convergence ------------------------------------------------

TEST_F(FederationTest, HealedScheduleIsByteIdenticalToFaultFreeRun) {
  const auto run = [](bool faulty) -> SimResult {
    EveSystem system(MakeMkbWithPc());
    EXPECT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
    SimOptions options;
    options.ticks = 400;
    FederationSimulator sim(&system, options);
    // The change lands while IS5 is degraded (window opened at 35, so the
    // tick-40 probe already failed); the window heals well within the
    // 120-tick lease.
    sim.ScheduleChange(50, CapabilityChange::DeleteRelation("Customer"));
    if (faulty) {
      sim.ScheduleFault("IS5",
                        {35, 70, SimulatedTransport::FaultKind::kTimeout});
    }
    const Result<SimResult> result = sim.Run();
    EXPECT_TRUE(result.ok()) << result.status();
    return result.value();
  };

  const SimResult faulty = run(true);
  const SimResult clean = run(false);
  EXPECT_TRUE(faulty.violations.empty())
      << faulty.violations.front();
  EXPECT_TRUE(clean.violations.empty());
  EXPECT_GT(faulty.provisional_outcomes, 0u)
      << "the schedule must actually exercise degraded-mode rewriting";
  EXPECT_EQ(clean.provisional_outcomes, 0u);
  EXPECT_EQ(faulty.stats.departures, 0u);
  EXPECT_EQ(faulty.Fingerprint(), clean.Fingerprint())
      << "healed-within-lease faults must leave no trace in the reports";
}

TEST_F(FederationTest, RandomizedHealedSchedulesConvergeAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(seed);
    EveSystem system(MakeMkbWithPc());
    ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
    ASSERT_TRUE(system.RegisterViewText(AsiaCustomerSql()).ok());
    SimOptions options;
    options.ticks = 400;
    options.seed = seed;
    options.fault_rate = 0.02;
    options.heal_within_lease = true;
    FederationSimulator sim(&system, options);
    sim.RandomizeFaults();
    sim.ScheduleChange(60, CapabilityChange::DeleteRelation("RentACar"));
    sim.ScheduleChange(120, CapabilityChange::DeleteRelation("Customer"));
    const Result<SimResult> result = sim.Run();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->violations.empty()) << result->violations.front();
    EXPECT_EQ(result->stats.departures, 0u)
        << "healed-within-lease schedules must never depart a source";
    for (const auto& [source, membership] : system.source_membership()) {
      EXPECT_EQ(membership.state, SourceState::kHealthy) << source;
    }
  }
}

TEST_F(FederationTest, HarshRandomizedSchedulesStillConverge) {
  // Short leases + heavy fault rates: departures are expected; silent
  // wrongness is still forbidden.
  uint64_t total_departures = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(seed);
    EveSystem system(MakeMkbWithPc());
    ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
    ASSERT_TRUE(system.RegisterViewText(AsiaCustomerSql()).ok());
    SimOptions options;
    options.ticks = 300;
    options.seed = seed;
    options.fault_rate = 0.08;
    options.heal_within_lease = false;
    options.config.lease_ticks = 40;
    FederationSimulator sim(&system, options);
    sim.RandomizeFaults();
    sim.ScheduleChange(30, CapabilityChange::DeleteRelation("Tour"));
    const Result<SimResult> result = sim.Run();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->violations.empty()) << result->violations.front();
    total_departures += result->stats.departures;
  }
  EXPECT_GT(total_departures, 0u)
      << "the harsh schedule should actually expire leases";
}

TEST_F(FederationTest, MonitorResultsAreIdenticalAtAnyParallelism) {
  const auto run = [](size_t parallelism) {
    EveSystem system(MakeMkbWithPc());
    EXPECT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
    SimulatedTransport transport;
    transport.AddFault("IS4",
                       {5, 35, SimulatedTransport::FaultKind::kTimeout});
    transport.AddFault("IS5",
                       {20, 60, SimulatedTransport::FaultKind::kCorrupt});
    FederationMonitor monitor(&system, &transport);
    monitor.SetProbeParallelism(parallelism);
    EXPECT_TRUE(monitor.TrackSources().ok());
    EXPECT_TRUE(monitor.AdvanceTo(150).ok());
    return SaveFederation(system) + SaveViews(system) + SaveMkb(system.mkb());
  };
  const std::string sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

}  // namespace
}  // namespace eve
