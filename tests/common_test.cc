#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace eve {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ViewDisabled("x").code(), StatusCode::kViewDisabled);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("the view").ToString(), "not_found: the view");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    EVE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    EVE_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("gone"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = result.MoveValue();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto inner = []() -> Result<int> { return 7; };
  auto outer = [&]() -> Result<int> {
    EVE_ASSIGN_OR_RETURN(const int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().value(), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::TypeError("bad"); };
  auto outer = [&]() -> Result<int> {
    EVE_ASSIGN_OR_RETURN(const int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kTypeError);
}

TEST(StrUtilTest, JoinBasic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StrUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StrUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("abc123_X"), "abc123_x");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("where", "wher"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
}

}  // namespace
}  // namespace eve
