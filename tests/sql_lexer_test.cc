#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace eve {
namespace {

std::vector<Token> Lex(std::string_view text) {
  const Result<std::vector<Token>> result = Tokenize(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result.value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  const auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  const auto tokens = Lex("SELECT name _under x2");
  ASSERT_EQ(tokens.size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
  }
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_EQ(tokens[2].text, "_under");
  EXPECT_EQ(tokens[3].text, "x2");
}

TEST(LexerTest, QuotedIdentifiersSupportHyphenatedNames) {
  const auto tokens = Lex("\"Accident-Ins\".Holder");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Accident-Ins");
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].text, "Holder");
}

TEST(LexerTest, UnterminatedQuotedIdentifierFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, StringLiterals) {
  const auto tokens = Lex("'Asia'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "Asia");
}

TEST(LexerTest, StringLiteralEscapedQuote) {
  const auto tokens = Lex("'O''Brien'");
  EXPECT_EQ(tokens[0].text, "O'Brien");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Numbers) {
  const auto tokens = Lex("42 3.25 7");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[1].text, "3.25");
  EXPECT_EQ(tokens[2].type, TokenType::kIntLiteral);
}

TEST(LexerTest, DotAfterNumberWithoutDigitIsSeparate) {
  // "1." followed by an identifier must not lex as a double.
  const auto tokens = Lex("1.x");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
}

TEST(LexerTest, ComparisonOperators) {
  const auto tokens = Lex("= <> != < <= > >= ~");
  EXPECT_EQ(tokens[0].type, TokenType::kEq);
  EXPECT_EQ(tokens[1].type, TokenType::kNe);
  EXPECT_EQ(tokens[2].type, TokenType::kNe);
  EXPECT_EQ(tokens[3].type, TokenType::kLt);
  EXPECT_EQ(tokens[4].type, TokenType::kLe);
  EXPECT_EQ(tokens[5].type, TokenType::kGt);
  EXPECT_EQ(tokens[6].type, TokenType::kGe);
  EXPECT_EQ(tokens[7].type, TokenType::kTilde);
}

TEST(LexerTest, ArithmeticAndPunctuation) {
  const auto tokens = Lex("( ) , . * + - /");
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[1].type, TokenType::kRParen);
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  EXPECT_EQ(tokens[3].type, TokenType::kDot);
  EXPECT_EQ(tokens[4].type, TokenType::kStar);
  EXPECT_EQ(tokens[5].type, TokenType::kPlus);
  EXPECT_EQ(tokens[6].type, TokenType::kMinus);
  EXPECT_EQ(tokens[7].type, TokenType::kSlash);
}

TEST(LexerTest, LineCommentsSkipped) {
  const auto tokens = Lex("a -- this is a comment\n b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, MinusVsComment) {
  const auto tokens = Lex("1 - 2");
  EXPECT_EQ(tokens[1].type, TokenType::kMinus);
  // But "--" starts a comment.
  const auto tokens2 = Lex("1 --2");
  ASSERT_EQ(tokens2.size(), 2u);  // 1 and kEnd
}

TEST(LexerTest, PositionsAreByteOffsets) {
  const auto tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 4u);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("a ; b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(LexerTest, BangEqualsIsNe) {
  const auto tokens = Lex("a != b");
  EXPECT_EQ(tokens[1].type, TokenType::kNe);
}

TEST(LexerTest, WhitespaceVarieties) {
  const auto tokens = Lex("a\tb\nc\r\nd");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].text, "d");
}

}  // namespace
}  // namespace eve
