// Edge-case coverage for paths the module suites don't reach: disconnected
// covers in delete-attribute, non-numeric range clauses in the consistency
// checker, function-of evaluation through the registry, and assorted
// ToString/accessor behaviors.

#include <gtest/gtest.h>

#include "cvs/cvs.h"
#include "cvs/implication.h"
#include "cvs/r_mapping.h"
#include "cvs/rewriting.h"
#include "esql/binder.h"
#include "esql/evaluator.h"
#include "mkb/builder.h"
#include "mkb/evolution.h"
#include "sql/parser.h"
#include "hypergraph/join_graph.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

RelationDef Rel(std::string source, std::string name,
                std::vector<AttributeDef> attrs) {
  RelationDef def;
  def.source = std::move(source);
  def.name = std::move(name);
  def.schema = Schema(std::move(attrs));
  return def;
}

// A cover exists (F constraint) but its relation has no join path to the
// view's relation: the delete-attribute algorithm must report the
// unreachable cover and fall back to disabling.
TEST(DeleteAttributeEdgeTest, UnreachableCoverDisablesView) {
  Mkb mkb;
  ASSERT_TRUE(
      mkb.AddRelation(Rel("IS1", "A",
                          {{"k", DataType::kInt}, {"a", DataType::kInt}}))
          .ok());
  ASSERT_TRUE(
      mkb.AddRelation(Rel("IS2", "B",
                          {{"k", DataType::kInt}, {"b", DataType::kInt}}))
          .ok());
  // F covers A.a from B.b — but there is NO join constraint at all.
  ASSERT_TRUE(AddIdentityFunctionOf(&mkb, "F", {"A", "a"}, {"B", "b"}).ok());

  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT A.a (false, true) FROM A", mkb.catalog())
                                  .value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteAttribute("A", "a"))
                        .MoveValue()
                        .mkb;
  const CvsResult result =
      SynchronizeDeleteAttribute(view, "A", "a", mkb, prime, {}).value();
  EXPECT_TRUE(result.rewritings.empty());
  bool mentioned = false;
  for (const std::string& diagnostic : result.diagnostics) {
    if (diagnostic.find("not reachable") != std::string::npos) {
      mentioned = true;
    }
  }
  EXPECT_TRUE(mentioned);
}

// With a join constraint present the same cover becomes usable.
TEST(DeleteAttributeEdgeTest, ReachableCoverIsUsed) {
  Mkb mkb;
  ASSERT_TRUE(
      mkb.AddRelation(Rel("IS1", "A",
                          {{"k", DataType::kInt}, {"a", DataType::kInt}}))
          .ok());
  ASSERT_TRUE(
      mkb.AddRelation(Rel("IS2", "B",
                          {{"k", DataType::kInt}, {"b", DataType::kInt}}))
          .ok());
  ASSERT_TRUE(AddIdentityFunctionOf(&mkb, "F", {"A", "a"}, {"B", "b"}).ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "J", "A", "B", "A.k = B.k").ok());

  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT A.a (false, true) FROM A", mkb.catalog())
                                  .value();
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteAttribute("A", "a"))
                        .MoveValue()
                        .mkb;
  const CvsResult result =
      SynchronizeDeleteAttribute(view, "A", "a", mkb, prime, {}).value();
  ASSERT_FALSE(result.rewritings.empty());
  const ViewDefinition& rewritten = result.rewritings[0].view;
  EXPECT_TRUE(rewritten.HasFromRelation("B"));
  EXPECT_EQ(rewritten.select()[0].expr->column(), (AttributeRef{"B", "b"}));
}

// String bounds are outside the numeric range checker's scope and must not
// raise false inconsistencies.
TEST(ConsistencyEdgeTest, StringBoundsIgnored) {
  const auto conjuncts =
      ParseConjunction("R.a > 'apple' AND R.a < 'banana'").value();
  EXPECT_TRUE(CheckConjunctionConsistency(conjuncts).ok());
}

TEST(ConsistencyEdgeTest, DateConstantsConflict) {
  const auto conjuncts = ParseConjunction(
                             "R.d = DATE '2020-01-01' AND "
                             "R.d = DATE '2021-01-01'")
                             .value();
  EXPECT_FALSE(CheckConjunctionConsistency(conjuncts).ok());
}

// Function-of replacements evaluate through the registry end to end.
TEST(FunctionEvaluationTest, YearsSinceInViewSelect) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 10, 2).ok());
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT A.Holder, years_since(A.Birthday) AS Age "
      "FROM \"Accident-Ins\" A",
      mkb.catalog())
                                  .value();
  const FunctionRegistry registry = FunctionRegistry::Default();
  const Table result =
      EvaluateView(view, db, mkb.catalog(), &registry).value();
  ASSERT_GT(result.NumRows(), 0u);
  // Ages derived from birthdays must match the stored Customer ages.
  const Table customers =
      EvaluateView(ParseAndBindView(
                       "CREATE VIEW C AS SELECT C.Name, C.Age FROM "
                       "Customer C",
                       mkb.catalog())
                       .value(),
                   db, mkb.catalog())
          .value();
  EXPECT_TRUE(result.SetEquals(customers));
}

// ViewDefinition::ToString round-trips a function-of SELECT item.
TEST(ViewPrintingTest, FunctionSelectItemRoundTrips) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT years_since(A.Birthday) AS Age "
      "FROM \"Accident-Ins\" A WHERE A.Amount > 0",
      mkb.catalog())
                                  .value();
  const ViewDefinition again =
      ParseAndBindView(view.ToString(), mkb.catalog()).value();
  EXPECT_EQ(again.ToString(), view.ToString());
}

TEST(ValueOrderingTest, MixedKindFallbackIsStable) {
  // Incomparable kinds order by variant index, NULL first.
  EXPECT_TRUE(Value::Null() < Value::Bool(false));
  EXPECT_TRUE(Value::Bool(true) < Value::String("a"));
  EXPECT_FALSE(Value::String("a") < Value::Bool(true));
  // Dates after strings.
  EXPECT_TRUE(Value::String("z") < Value::MakeDate(Date(0)));
}

TEST(EnumPrintingTest, ViewExtentAndParams) {
  EXPECT_EQ(ViewExtentToString(ViewExtent::kEqual), "=");
  EXPECT_EQ(ViewExtentToString(ViewExtent::kSuperset), ">=");
  EXPECT_EQ(ViewExtentToString(ViewExtent::kSubset), "<=");
  EXPECT_EQ(ViewExtentToString(ViewExtent::kAny), "~");
  EXPECT_EQ(ViewExtentToSymbol(ViewExtent::kSuperset), "⊇");
  EXPECT_EQ((EvolutionParams{true, false}).ToString(), "(true, false)");
}

TEST(JoinConstraintTest, AsExprConjoinsClauses) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  const JoinConstraint* jc2 = mkb.GetJoinConstraint("JC2").value();
  const ExprPtr expr = jc2->AsExpr();
  std::vector<ExprPtr> flat;
  FlattenConjunction(expr, &flat);
  EXPECT_EQ(flat.size(), 2u);
}

TEST(StatusStreamTest, OperatorPrints) {
  std::ostringstream os;
  os << Status::NotFound("thing");
  EXPECT_EQ(os.str(), "not_found: thing");
}

// Synchronize() via the generic entry point covers every change kind
// against an unaffected view (smoke over the dispatch surface).
TEST(DispatchSmokeTest, AllChangeKinds) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT H.City FROM Hotels H", mkb.catalog())
                                  .value();
  RelationDef fresh = Rel("IS9", "Fresh", {{"x", DataType::kInt}});
  const CapabilityChange changes[] = {
      CapabilityChange::AddRelation(fresh),
      CapabilityChange::AddAttribute("Tour", {"Price", DataType::kDouble}),
      CapabilityChange::RenameRelation("Tour", "Trip"),
      CapabilityChange::RenameAttribute("Customer", "Phone", "Tel"),
      CapabilityChange::DeleteAttribute("Customer", "Phone"),
      CapabilityChange::DeleteRelation("Tour"),
  };
  for (const CapabilityChange& change : changes) {
    const auto evolution = EvolveMkb(mkb, change);
    ASSERT_TRUE(evolution.ok()) << change.ToString();
    const Result<CvsResult> result =
        Synchronize(view, change, mkb, evolution.value().mkb, {});
    ASSERT_TRUE(result.ok()) << change.ToString();
    EXPECT_EQ(result.value().rewritings.size(), 1u) << change.ToString();
  }
}

// --- Implication with non-numeric constants --------------------------------

TEST(ImplicationDateTest, DateEqualityThroughSharedConstant) {
  const auto premises =
      ParseConjunction(
          "R.d = DATE '2020-01-01' AND S.e = DATE '2020-01-01'")
          .value();
  EXPECT_TRUE(ConjunctionImplies(premises,
                                 *ParseExpression("R.d = S.e").value()));
}

TEST(ImplicationDateTest, DifferentDatesDoNotImplyEquality) {
  const auto premises =
      ParseConjunction(
          "R.d = DATE '2020-01-01' AND S.e = DATE '2021-01-01'")
          .value();
  EXPECT_FALSE(ConjunctionImplies(premises,
                                  *ParseExpression("R.d = S.e").value()));
}

TEST(ImplicationDateTest, StringConstantsCompare) {
  const auto premises = ParseConjunction("R.a = 'x' AND S.b = 'x'").value();
  EXPECT_TRUE(ConjunctionImplies(premises,
                                 *ParseExpression("R.a = S.b").value()));
  EXPECT_TRUE(ConjunctionImplies(premises,
                                 *ParseExpression("R.a <> 'y'").value()));
}

// --- Join graph edge cases ---------------------------------------------------

TEST(JoinGraphEdgeTest, MandatoryEdgesAlreadyConnectRequired) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const JoinGraph graph = JoinGraph::Build(mkb);
  const JoinConstraint* jc1 = mkb.GetJoinConstraint("JC1").value();
  const auto trees = graph.FindConnectingTrees(
      {"Customer", "FlightRes"}, {*jc1}, {});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].edges.size(), 1u);
  EXPECT_EQ(trees[0].edges[0].id, "JC1");
}

TEST(JoinGraphEdgeTest, EraseIsolatedRelationKeepsOthersIntact) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const JoinGraph graph = JoinGraph::Build(mkb).EraseRelation("Tour");
  EXPECT_FALSE(graph.HasRelation("Tour"));
  EXPECT_EQ(graph.Neighbors("Participant").size(), 1u);  // JC3 only
  EXPECT_TRUE(graph.SameComponent("Customer", "Participant"));
}

// --- Executor corner cases ----------------------------------------------------

TEST(ExecutorEdgeTest, EmptyBaseTableGivesEmptyResult) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  Database db;
  ASSERT_TRUE(db.CreateAllTables(mkb.catalog()).ok());  // all empty
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, FlightRes F "
      "WHERE C.Name = F.PName",
      mkb.catalog())
                                  .value();
  for (const JoinStrategy strategy :
       {JoinStrategy::kNestedLoop, JoinStrategy::kHash}) {
    const Table result =
        EvaluateView(view, db, mkb.catalog(), nullptr, strategy).value();
    EXPECT_EQ(result.NumRows(), 0u);
  }
}

TEST(ExecutorEdgeTest, LiteralOnlyWhereClause) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 5, 1).ok());
  const ViewDefinition always = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C WHERE 1 = 1",
      mkb.catalog())
                                    .value();
  const ViewDefinition never = ParseAndBindView(
      "CREATE VIEW W AS SELECT C.Name FROM Customer C WHERE 1 = 2",
      mkb.catalog())
                                   .value();
  EXPECT_EQ(EvaluateView(always, db, mkb.catalog()).value().NumRows(), 5u);
  EXPECT_EQ(EvaluateView(never, db, mkb.catalog()).value().NumRows(), 0u);
  // Hash strategy agrees.
  EXPECT_EQ(EvaluateView(never, db, mkb.catalog(), nullptr,
                         JoinStrategy::kHash)
                .value()
                .NumRows(),
            0u);
}

TEST(ExecutorEdgeTest, NullsInProjection) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  Database db;
  ASSERT_TRUE(db.CreateAllTables(mkb.catalog()).ok());
  ASSERT_TRUE(db.Insert("Customer", {Value::String("x"), Value::Null(),
                                     Value::Null(), Value::Int(3)})
                  .ok());
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Addr, C.Age + 1 AS AgeNext FROM "
      "Customer C",
      mkb.catalog())
                                  .value();
  const Table result = EvaluateView(view, db, mkb.catalog()).value();
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_TRUE(result.rows()[0][0].is_null());
  EXPECT_EQ(result.rows()[0][1], Value::Int(4));
}

// --- RMapping with duplicate JC alternatives ----------------------------------

TEST(RMappingEdgeTest, FirstImpliedJcOfParallelPairWins) {
  Mkb mkb;
  RelationDef a = Rel("IS1", "A", {{"x", DataType::kInt},
                                   {"y", DataType::kInt}});
  RelationDef b = Rel("IS2", "B", {{"x", DataType::kInt},
                                   {"y", DataType::kInt}});
  ASSERT_TRUE(mkb.AddRelation(a).ok());
  ASSERT_TRUE(mkb.AddRelation(b).ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "JX", "A", "B", "A.x = B.x").ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "JY", "A", "B", "A.y = B.y").ok());
  // View joins on y only: JY is implied, JX is not.
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT A.x FROM A, B WHERE A.y = B.y",
      mkb.catalog())
                                  .value();
  const RMapping mapping = ComputeRMapping(view, "A", mkb).value();
  ASSERT_EQ(mapping.min_edges.size(), 1u);
  EXPECT_EQ(mapping.min_edges[0].id, "JY");
}

}  // namespace
}  // namespace eve
