#include <gtest/gtest.h>

#include "cvs/cost_model.h"
#include "cvs/cvs.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(AddAccidentInsPc(&mkb_).ok());
    ASSERT_TRUE(AddFlightResPc(&mkb_).ok());
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
    mkb_prime_ =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .MoveValue()
            .mkb;
  }

  CvsResult Run(const RewritingCostModel& model) {
    CvsOptions options;
    options.cost_model = model;
    return SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_prime_,
                                     options)
        .MoveValue();
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
};

TEST_F(CostModelTest, ScoreIdenticalViewIsFree) {
  const RewritingCost cost =
      ScoreRewriting(view_, view_, ExtentRelation::kEqual, {});
  EXPECT_EQ(cost.total, 0.0);
  EXPECT_EQ(cost.dropped_attributes, 0u);
  EXPECT_EQ(cost.dropped_conditions, 0u);
  EXPECT_EQ(cost.extra_relations, 0u);
}

TEST_F(CostModelTest, ScoreCountsDroppedAttributes) {
  ViewDefinition narrowed = view_;
  narrowed.mutable_select()->pop_back();  // drop TourID
  const RewritingCost cost =
      ScoreRewriting(view_, narrowed, ExtentRelation::kEqual, {});
  EXPECT_EQ(cost.dropped_attributes, 1u);
  EXPECT_DOUBLE_EQ(cost.total, RewritingCostModel{}.dropped_attribute_penalty);
}

TEST_F(CostModelTest, ScoreCountsDroppedConditions) {
  ViewDefinition loosened = view_;
  loosened.mutable_where()->pop_back();  // drop (P.Loc = 'Asia')
  const RewritingCost cost =
      ScoreRewriting(view_, loosened, ExtentRelation::kSuperset, {});
  EXPECT_EQ(cost.dropped_conditions, 1u);
  const RewritingCostModel model;
  EXPECT_DOUBLE_EQ(cost.total, model.dropped_condition_penalty +
                                   model.extent_directional_penalty);
}

TEST_F(CostModelTest, ScoreCountsExtraRelationsAndExtent) {
  // The Accident-Ins rewriting: same FROM count (3) as the original, no
  // drops, extent superset.
  const CvsResult result = Run(RewritingCostModel{});
  ASSERT_GE(result.rewritings.size(), 2u);
  const SynchronizedView& best = result.rewritings.front();
  EXPECT_TRUE(best.view.HasFromRelation("Accident-Ins"));
  EXPECT_EQ(best.cost.dropped_attributes, 0u);
  EXPECT_EQ(best.cost.extra_relations, 0u);
  EXPECT_EQ(best.cost.extent, ExtentRelation::kSuperset);
}

TEST_F(CostModelTest, DefaultWeightsPreferAttributePreservation) {
  const CvsResult result = Run(RewritingCostModel{});
  ASSERT_GE(result.rewritings.size(), 2u);
  // The FlightRes rewriting drops Age (cost 10) and is ranked below the
  // Accident-Ins one (cost 2 for the directional extent).
  EXPECT_TRUE(result.rewritings[0].view.HasFromRelation("Accident-Ins"));
  EXPECT_LT(result.rewritings[0].cost.total,
            result.rewritings[1].cost.total);
}

TEST_F(CostModelTest, JoinAverseWeightsFlipThePreference) {
  // Make extra joins and join width dominate: drop the attribute penalty
  // and punish every relation beyond the original FROM count... the
  // Accident-Ins rewriting has 3 relations vs FlightRes's 2, but both are
  // within the original count. Penalize dropped attributes mildly and
  // conditions not at all, then make the extent guarantee worthless and
  // the join width decisive via extra_relation... Instead: score with a
  // huge dropped-attribute penalty flipped off and verify the ordering
  // follows the remaining terms.
  RewritingCostModel lean;
  lean.dropped_attribute_penalty = 0.0;
  lean.dropped_condition_penalty = 0.0;
  lean.extent_directional_penalty = 5.0;
  lean.extent_unknown_penalty = 0.0;
  const CvsResult result = Run(lean);
  ASSERT_GE(result.rewritings.size(), 2u);
  // Now the FlightRes rewriting (extent superset via PC-FR... both have
  // PC constraints; its extent is superset too) — the tie breaks by cost
  // order stability; just verify costs are consistent with the model.
  for (const SynchronizedView& rewriting : result.rewritings) {
    double expected = 0.0;
    if (rewriting.legality.inferred_extent == ExtentRelation::kSuperset ||
        rewriting.legality.inferred_extent == ExtentRelation::kSubset) {
      expected += 5.0;
    }
    expected += static_cast<double>(rewriting.cost.extra_relations) *
                lean.extra_relation_penalty;
    EXPECT_DOUBLE_EQ(rewriting.cost.total, expected)
        << rewriting.cost.ToString();
  }
  EXPECT_LE(result.rewritings[0].cost.total,
            result.rewritings[1].cost.total);
}

TEST_F(CostModelTest, CostModelAppliesToDeleteAttribute) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddPersonExtension(&mkb).ok());
  const ViewDefinition view =
      ParseAndBindView(AsiaCustomerSql(), mkb.catalog()).value();
  const Mkb prime =
      EvolveMkb(mkb, CapabilityChange::DeleteAttribute("Customer", "Addr"))
          .MoveValue()
          .mkb;
  CvsOptions options;
  options.cost_model = RewritingCostModel{};
  const CvsResult result =
      SynchronizeDeleteAttribute(view, "Customer", "Addr", mkb, prime,
                                 options)
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  // One extra relation (Person) joined in; nothing dropped.
  EXPECT_EQ(result.rewritings[0].cost.extra_relations, 1u);
  EXPECT_EQ(result.rewritings[0].cost.dropped_attributes, 0u);
}

TEST_F(CostModelTest, ChaseOptionalCoversEndToEnd) {
  // Chain scenario from bench_cost_model: R1's payload is dispensable and
  // its cover sits 3 joins away. Lexicographic ranking drops it; with the
  // cost model + chasing, the preserving rewriting wins.
  ChainMkbSpec spec;
  spec.length = 10;
  spec.skip_edges = true;
  spec.cover_distance = 3;
  const Mkb mkb = MakeChainMkb(spec).value();
  ViewDefinition view = MakeChainView(mkb, 0, 2).value();
  (*view.mutable_select())[1].params = EvolutionParams{true, true};
  const Mkb prime = EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1"))
                        .MoveValue()
                        .mkb;

  CvsOptions options;
  options.require_view_extent = false;
  options.replacement.max_extra_relations = 5;
  options.replacement.chase_optional_covers = true;

  // Lexicographic: the drop-based candidate (extent equal) ranks first.
  const CvsResult lexicographic =
      SynchronizeDeleteRelation(view, "R1", mkb, prime, options).value();
  ASSERT_FALSE(lexicographic.rewritings.empty());
  EXPECT_EQ(lexicographic.rewritings.front().view.select().size(), 1u);

  // Cost model: preserving P1 through the cover chain wins.
  options.cost_model = RewritingCostModel{};
  const CvsResult costed =
      SynchronizeDeleteRelation(view, "R1", mkb, prime, options).value();
  ASSERT_FALSE(costed.rewritings.empty());
  EXPECT_EQ(costed.rewritings.front().view.select().size(), 2u);
  EXPECT_TRUE(costed.rewritings.front().view.HasFromRelation("R4"));
}

TEST_F(CostModelTest, WithoutCostModelUsesDefaultRanking) {
  // With no explicit cost model the built-in default ranking scores every
  // rewriting, and the result comes back sorted by that total.
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_prime_)
          .MoveValue();
  ASSERT_FALSE(result.rewritings.empty());
  for (size_t i = 1; i < result.rewritings.size(); ++i) {
    EXPECT_LE(result.rewritings[i - 1].cost.total,
              result.rewritings[i].cost.total);
  }
}

TEST_F(CostModelTest, CostToStringReadable) {
  const RewritingCost cost =
      ScoreRewriting(view_, view_, ExtentRelation::kUnknown, {});
  EXPECT_NE(cost.ToString().find("cost"), std::string::npos);
  EXPECT_NE(cost.ToString().find("unknown"), std::string::npos);
}

}  // namespace
}  // namespace eve
