#include <gtest/gtest.h>

#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "esql/binder.h"
#include "hypergraph/join_graph.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class RReplacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
    mapping_ = ComputeRMapping(view_, "Customer", mkb_).MoveValue();
    auto evolution =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .MoveValue();
    mkb_prime_ = std::move(evolution.mkb);
    graph_prime_ = JoinGraph::Build(mkb_prime_);
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  JoinGraph graph_prime_;
  ViewDefinition view_;
  RMapping mapping_;
};

TEST_F(RReplacementTest, ClassifiesNeedsPerEvolutionParams) {
  const AttributeNeeds needs =
      ClassifyAttributeNeeds(view_, mapping_).value();
  // Customer.Name: SELECT item (false, true) -> mandatory.
  ASSERT_EQ(needs.mandatory.size(), 1u);
  EXPECT_EQ(needs.mandatory[0], (AttributeRef{"Customer", "Name"}));
  // Customer.Age: SELECT item (true, true) -> optional.
  ASSERT_EQ(needs.optional.size(), 1u);
  EXPECT_EQ(needs.optional[0], (AttributeRef{"Customer", "Age"}));
}

TEST_F(RReplacementTest, NonReplaceableIndispensableDisablesView) {
  // Same view but Name marked non-replaceable.
  ViewDefinition rigid = view_;
  (*rigid.mutable_select())[0].params = EvolutionParams{false, false};
  const auto result = ClassifyAttributeNeeds(rigid, mapping_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kViewDisabled);
}

// Paper Ex. 9: two usable covers (Accident-Ins via F2 with join chain JC6,
// FlightRes via F1); the Participant cover is rejected (disconnected).
TEST_F(RReplacementTest, PaperExample9Candidates) {
  const auto candidates =
      ComputeRReplacements(view_, mapping_, mkb_, graph_prime_, {}).value();
  ASSERT_EQ(candidates.size(), 2u);
  // Smallest first: the FlightRes-only candidate.
  EXPECT_EQ(candidates[0].tree.relations,
            (std::vector<std::string>{"FlightRes"}));
  EXPECT_EQ(candidates[0].replacements[0].constraint_id, "F1");
  // The Accident-Ins candidate joins through JC6.
  EXPECT_EQ(candidates[1].tree.relations,
            (std::vector<std::string>{"Accident-Ins", "FlightRes"}));
  ASSERT_EQ(candidates[1].tree.edges.size(), 1u);
  EXPECT_EQ(candidates[1].tree.edges[0].id, "JC6");
}

TEST_F(RReplacementTest, OptionalAgeCoveredOpportunistically) {
  const auto candidates =
      ComputeRReplacements(view_, mapping_, mkb_, graph_prime_, {}).value();
  ASSERT_EQ(candidates.size(), 2u);
  // FlightRes-only candidate: Age has no cover there -> unreplaced.
  EXPECT_EQ(candidates[0].replacements.size(), 1u);
  ASSERT_EQ(candidates[0].unreplaced.size(), 1u);
  EXPECT_EQ(candidates[0].unreplaced[0], (AttributeRef{"Customer", "Age"}));
  // Accident-Ins candidate: Age covered via F3 (paper Ex. 10 / Eq. 13).
  ASSERT_EQ(candidates[1].replacements.size(), 2u);
  EXPECT_EQ(candidates[1].replacements[1].constraint_id, "F3");
  EXPECT_TRUE(candidates[1].unreplaced.empty());
}

TEST_F(RReplacementTest, NoCoverMeansEmptyReplacementSet) {
  // A view selecting Customer.Phone (no F constraint covers Phone).
  const ViewDefinition phone_view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Phone (false, true) FROM Customer C, "
      "FlightRes F WHERE C.Name = F.PName",
      mkb_.catalog())
                                        .value();
  const RMapping mapping =
      ComputeRMapping(phone_view, "Customer", mkb_).value();
  const auto candidates =
      ComputeRReplacements(phone_view, mapping, mkb_, graph_prime_, {})
          .value();
  EXPECT_TRUE(candidates.empty());
}

TEST_F(RReplacementTest, DisconnectedCoverRejected) {
  // A view over Customer and Participant joined explicitly: kept set is
  // {Participant}; the FlightRes/Accident-Ins covers are disconnected from
  // Participant in H'(MKB'), and the Participant cover (F4) is itself the
  // kept relation — usable with no extra joins.
  const ViewDefinition pview = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true) FROM Customer C, "
      "Participant P WHERE C.Name = P.Participant",
      mkb_.catalog())
                                   .value();
  const RMapping mapping = ComputeRMapping(pview, "Customer", mkb_).value();
  EXPECT_EQ(mapping.relations,
            (std::vector<std::string>{"Customer", "Participant"}));
  const auto candidates =
      ComputeRReplacements(pview, mapping, mkb_, graph_prime_, {}).value();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].tree.relations,
            (std::vector<std::string>{"Participant"}));
  EXPECT_EQ(candidates[0].replacements[0].constraint_id, "F4");
}

TEST_F(RReplacementTest, MaxResultsBoundsEnumeration) {
  RReplacementOptions options;
  options.max_results = 1;
  const auto candidates =
      ComputeRReplacements(view_, mapping_, mkb_, graph_prime_, options)
          .value();
  EXPECT_EQ(candidates.size(), 1u);
}

TEST_F(RReplacementTest, CandidateToStringSmoke) {
  const auto candidates =
      ComputeRReplacements(view_, mapping_, mkb_, graph_prime_, {}).value();
  ASSERT_FALSE(candidates.empty());
  EXPECT_NE(candidates[0].ToString().find("candidate:"), std::string::npos);
}

TEST_F(RReplacementTest, DispensableNonReplaceableComponentsIgnored) {
  // Phone marked (true, false): dispensable, non-replaceable. It needs no
  // cover and must not appear in the needs.
  const ViewDefinition v = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true), C.Phone (true, false) "
      "FROM Customer C, FlightRes F WHERE C.Name = F.PName",
      mkb_.catalog())
                               .value();
  const RMapping mapping = ComputeRMapping(v, "Customer", mkb_).value();
  const AttributeNeeds needs = ClassifyAttributeNeeds(v, mapping).value();
  EXPECT_EQ(needs.mandatory.size(), 1u);
  EXPECT_TRUE(needs.optional.empty());
}

TEST_F(RReplacementTest, OptionalCoverChasingFindsPreservingCandidates) {
  // A view selecting only dispensable Customer attributes: without
  // chasing, the single candidate drops them; with chasing, candidates
  // that join the covers in (and preserve the attributes) appear too.
  const ViewDefinition v = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Age (true, true), F.Airline (false, true) "
      "FROM Customer C, FlightRes F WHERE C.Name = F.PName",
      mkb_.catalog())
                               .value();
  const RMapping mapping = ComputeRMapping(v, "Customer", mkb_).value();

  const auto plain =
      ComputeRReplacements(v, mapping, mkb_, graph_prime_, {}).value();
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].unreplaced.size(), 1u);  // Age dropped

  RReplacementOptions chase;
  chase.chase_optional_covers = true;
  const auto chased =
      ComputeRReplacements(v, mapping, mkb_, graph_prime_, chase).value();
  ASSERT_EQ(chased.size(), 2u);
  bool preserving_found = false;
  for (const ReplacementCandidate& candidate : chased) {
    if (candidate.unreplaced.empty() && !candidate.replacements.empty()) {
      preserving_found = true;
      // Age covered via F3 from Accident-Ins, joined through JC6.
      EXPECT_EQ(candidate.replacements[0].constraint_id, "F3");
      EXPECT_EQ(candidate.tree.relations,
                (std::vector<std::string>{"Accident-Ins", "FlightRes"}));
    }
  }
  EXPECT_TRUE(preserving_found);
}

TEST_F(RReplacementTest, ConditionAttributesNeedCoversToo) {
  // An indispensable filter on Customer.Age forces Age to be mandatory.
  const ViewDefinition v = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true) FROM Customer C, "
      "FlightRes F WHERE C.Name = F.PName AND (C.Age > 30) (false, true)",
      mkb_.catalog())
                               .value();
  const RMapping mapping = ComputeRMapping(v, "Customer", mkb_).value();
  const AttributeNeeds needs = ClassifyAttributeNeeds(v, mapping).value();
  ASSERT_EQ(needs.mandatory.size(), 2u);
  // Age is only covered by Accident-Ins (F3), so every candidate must
  // join Accident-Ins in; Name may come from F1 or F2 (the F4 combo is
  // disconnected), giving two candidates over the same join skeleton.
  const auto candidates =
      ComputeRReplacements(v, mapping, mkb_, graph_prime_, {}).value();
  ASSERT_EQ(candidates.size(), 2u);
  for (const ReplacementCandidate& candidate : candidates) {
    EXPECT_EQ(candidate.tree.relations,
              (std::vector<std::string>{"Accident-Ins", "FlightRes"}));
  }
}

}  // namespace
}  // namespace eve
