#include <gtest/gtest.h>

#include "algebra/executor.h"

namespace eve {
namespace {

ExprPtr Col(const std::string& rel, const std::string& attr) {
  return Expr::Column(AttributeRef{rel, attr});
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationDef r;
    r.source = "IS1";
    r.name = "R";
    r.schema = Schema({{"id", DataType::kInt}, {"name", DataType::kString}});
    ASSERT_TRUE(catalog_.AddRelation(r).ok());
    RelationDef s;
    s.source = "IS2";
    s.name = "S";
    s.schema = Schema({{"rid", DataType::kInt}, {"tag", DataType::kString}});
    ASSERT_TRUE(catalog_.AddRelation(s).ok());
    ASSERT_TRUE(db_.CreateAllTables(catalog_).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(db_.Insert("R", {Value::Int(i),
                                   Value::String("n" + std::to_string(i))})
                      .ok());
    }
    // S references ids 0..2; id 1 twice.
    for (const int rid : {0, 1, 1, 2}) {
      ASSERT_TRUE(db_.Insert("S", {Value::Int(rid),
                                   Value::String("t" + std::to_string(rid))})
                      .ok());
    }
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(ExecutorTest, SingleTableScanWithFilter) {
  ConjunctiveQuery query;
  query.relations = {"R"};
  query.conjuncts = {Expr::Binary(BinaryOp::kGt, Col("R", "id"),
                                  Expr::Lit(Value::Int(1)))};
  query.projections = {Col("R", "name")};
  query.output_names = {"name"};
  const Table result = Execute(query, db_, catalog_).value();
  EXPECT_EQ(result.NumRows(), 2u);  // ids 2, 3
}

TEST_F(ExecutorTest, EquiJoin) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  query.projections = {Col("R", "name"), Col("S", "tag")};
  query.output_names = {"name", "tag"};
  const Table result = Execute(query, db_, catalog_).value();
  // Distinct pairs: (n0,t0), (n1,t1), (n2,t2) — the duplicate S row for
  // rid=1 collapses under set semantics.
  EXPECT_EQ(result.NumRows(), 3u);
}

TEST_F(ExecutorTest, BagSemanticsWhenDistinctDisabled) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  query.projections = {Col("R", "name")};
  query.output_names = {"name"};
  query.distinct = false;
  const Table result = Execute(query, db_, catalog_).value();
  EXPECT_EQ(result.NumRows(), 4u);  // rid=1 matched twice
}

TEST_F(ExecutorTest, CartesianProductWithoutJoinCondition) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.projections = {Col("R", "id"), Col("S", "rid")};
  query.output_names = {"a", "b"};
  query.distinct = false;
  const Table result = Execute(query, db_, catalog_).value();
  EXPECT_EQ(result.NumRows(), 16u);
}

TEST_F(ExecutorTest, ProjectionExpressions) {
  ConjunctiveQuery query;
  query.relations = {"R"};
  query.projections = {Expr::Binary(BinaryOp::kMul, Col("R", "id"),
                                    Expr::Lit(Value::Int(10)))};
  query.output_names = {"ten_id"};
  const Table result = Execute(query, db_, catalog_).value();
  EXPECT_EQ(result.schema().attribute(0).name, "ten_id");
  EXPECT_EQ(result.schema().attribute(0).type, DataType::kInt);
  EXPECT_EQ(result.NumRows(), 4u);
}

TEST_F(ExecutorTest, OutputSchemaTypesInferred) {
  ConjunctiveQuery query;
  query.relations = {"R"};
  query.projections = {Col("R", "name"),
                       Expr::Binary(BinaryOp::kEq, Col("R", "id"),
                                    Expr::Lit(Value::Int(0)))};
  query.output_names = {"n", "is_zero"};
  const Table result = Execute(query, db_, catalog_).value();
  EXPECT_EQ(result.schema().attribute(0).type, DataType::kString);
  EXPECT_EQ(result.schema().attribute(1).type, DataType::kBool);
}

TEST_F(ExecutorTest, RejectsEmptyFrom) {
  ConjunctiveQuery query;
  const Result<Table> result = Execute(query, db_, catalog_);
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, RejectsDuplicateRelation) {
  ConjunctiveQuery query;
  query.relations = {"R", "R"};
  query.projections = {Col("R", "id")};
  query.output_names = {"id"};
  EXPECT_FALSE(Execute(query, db_, catalog_).ok());
}

TEST_F(ExecutorTest, RejectsConjunctOverUnknownRelation) {
  ConjunctiveQuery query;
  query.relations = {"R"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  query.projections = {Col("R", "id")};
  query.output_names = {"id"};
  EXPECT_FALSE(Execute(query, db_, catalog_).ok());
}

TEST_F(ExecutorTest, RejectsArityMismatch) {
  ConjunctiveQuery query;
  query.relations = {"R"};
  query.projections = {Col("R", "id")};
  query.output_names = {"id", "extra"};
  EXPECT_FALSE(Execute(query, db_, catalog_).ok());
}

TEST_F(ExecutorTest, MissingTableReported) {
  Catalog catalog2 = catalog_;
  RelationDef t;
  t.source = "IS3";
  t.name = "T";
  t.schema = Schema({{"x", DataType::kInt}});
  ASSERT_TRUE(catalog2.AddRelation(t).ok());
  ConjunctiveQuery query;
  query.relations = {"T"};
  query.projections = {Col("T", "x")};
  query.output_names = {"x"};
  EXPECT_FALSE(Execute(query, db_, catalog2).ok());
}

TEST_F(ExecutorTest, PredicatePushdownMatchesUnpushedSemantics) {
  // Filter on R applies at depth 0; the result must equal filtering after
  // the join.
  ConjunctiveQuery pushed;
  pushed.relations = {"R", "S"};
  pushed.conjuncts = {
      Expr::Binary(BinaryOp::kLe, Col("R", "id"), Expr::Lit(Value::Int(1))),
      Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  pushed.projections = {Col("R", "id"), Col("S", "tag")};
  pushed.output_names = {"id", "tag"};

  ConjunctiveQuery reordered = pushed;
  std::swap(reordered.conjuncts[0], reordered.conjuncts[1]);

  const Table a = Execute(pushed, db_, catalog_).value();
  const Table b = Execute(reordered, db_, catalog_).value();
  EXPECT_TRUE(a.SetEquals(b));
  EXPECT_EQ(a.NumRows(), 2u);
}

// --- Hash-join strategy parity -----------------------------------------------

TEST_F(ExecutorTest, HashJoinMatchesNestedLoopOnEquiJoin) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  query.projections = {Col("R", "name"), Col("S", "tag")};
  query.output_names = {"name", "tag"};
  const Table nested = Execute(query, db_, catalog_, nullptr,
                               JoinStrategy::kNestedLoop)
                           .value();
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(nested.SetEquals(hashed));
  EXPECT_EQ(hashed.NumRows(), 3u);
}

TEST_F(ExecutorTest, HashJoinHandlesFiltersAndFlippedConjuncts) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  // Flipped orientation (S on the left) plus a filter on each relation.
  query.conjuncts = {
      Expr::ColumnsEqual({"S", "rid"}, {"R", "id"}),
      Expr::Binary(BinaryOp::kLe, Col("R", "id"), Expr::Lit(Value::Int(1))),
      Expr::Binary(BinaryOp::kNe, Col("S", "tag"),
                   Expr::Lit(Value::String("t0")))};
  query.projections = {Col("R", "name"), Col("S", "tag")};
  query.output_names = {"name", "tag"};
  const Table nested = Execute(query, db_, catalog_).value();
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(nested.SetEquals(hashed));
}

TEST_F(ExecutorTest, HashJoinCartesianFallback) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.projections = {Col("R", "id"), Col("S", "rid")};
  query.output_names = {"a", "b"};
  query.distinct = false;
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_EQ(hashed.NumRows(), 16u);
}

TEST_F(ExecutorTest, HashJoinNullKeysNeverMatch) {
  ASSERT_TRUE(db_.Insert("R", {Value::Null(), Value::String("ghost")}).ok());
  ASSERT_TRUE(db_.Insert("S", {Value::Null(), Value::String("ghost")}).ok());
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  query.projections = {Col("R", "name"), Col("S", "tag")};
  query.output_names = {"name", "tag"};
  const Table nested = Execute(query, db_, catalog_).value();
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(nested.SetEquals(hashed));
  for (const Tuple& row : hashed.rows()) {
    EXPECT_NE(row[1].string_value(), "ghost");
  }
}

TEST_F(ExecutorTest, HashJoinNonEquiConjunctBecomesPostFilter) {
  ConjunctiveQuery query;
  query.relations = {"R", "S"};
  query.conjuncts = {
      Expr::ColumnsEqual({"R", "id"}, {"S", "rid"}),
      Expr::Binary(BinaryOp::kLt, Col("R", "id"), Col("S", "rid"))};
  query.projections = {Col("R", "id")};
  query.output_names = {"id"};
  const Table nested = Execute(query, db_, catalog_).value();
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(nested.SetEquals(hashed));
  EXPECT_EQ(hashed.NumRows(), 0u);  // id = rid contradicts id < rid
}

TEST_F(ExecutorTest, HashJoinRejectsForeignConjuncts) {
  ConjunctiveQuery query;
  query.relations = {"R"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"})};
  query.projections = {Col("R", "id")};
  query.output_names = {"id"};
  EXPECT_FALSE(
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).ok());
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  RelationDef t;
  t.source = "IS3";
  t.name = "T";
  t.schema = Schema({{"tag", DataType::kString}, {"score", DataType::kInt}});
  ASSERT_TRUE(catalog_.AddRelation(t).ok());
  ASSERT_TRUE(db_.CreateTable(catalog_, "T").ok());
  ASSERT_TRUE(db_.Insert("T", {Value::String("t1"), Value::Int(10)}).ok());
  ASSERT_TRUE(db_.Insert("T", {Value::String("t2"), Value::Int(20)}).ok());

  ConjunctiveQuery query;
  query.relations = {"R", "S", "T"};
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"S", "rid"}),
                     Expr::ColumnsEqual({"S", "tag"}, {"T", "tag"})};
  query.projections = {Col("R", "name"), Col("T", "score")};
  query.output_names = {"name", "score"};
  const Table result = Execute(query, db_, catalog_).value();
  EXPECT_EQ(result.NumRows(), 2u);  // (n1,10), (n2,20)
  // Strategy parity on the three-way join.
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(result.SetEquals(hashed));
}

TEST_F(ExecutorTest, HashJoinCompositeKey) {
  // Two equi-join conjuncts between the same pair: a composite hash key.
  RelationDef v;
  v.source = "IS5";
  v.name = "V";
  v.schema = Schema({{"rid", DataType::kInt}, {"tag", DataType::kString}});
  ASSERT_TRUE(catalog_.AddRelation(v).ok());
  ASSERT_TRUE(db_.CreateTable(catalog_, "V").ok());
  ASSERT_TRUE(db_.Insert("V", {Value::Int(1), Value::String("t1")}).ok());
  ASSERT_TRUE(db_.Insert("V", {Value::Int(1), Value::String("zzz")}).ok());
  ASSERT_TRUE(db_.Insert("V", {Value::Int(2), Value::String("t2")}).ok());

  ConjunctiveQuery query;
  query.relations = {"S", "V"};
  query.conjuncts = {Expr::ColumnsEqual({"S", "rid"}, {"V", "rid"}),
                     Expr::ColumnsEqual({"S", "tag"}, {"V", "tag"})};
  query.projections = {Expr::Column(AttributeRef{"S", "rid"}),
                       Expr::Column(AttributeRef{"S", "tag"})};
  query.output_names = {"rid", "tag"};
  const Table nested = Execute(query, db_, catalog_).value();
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(nested.SetEquals(hashed));
  // Only (1, t1) and (2, t2) match on BOTH columns.
  EXPECT_EQ(hashed.NumRows(), 2u);
}

TEST_F(ExecutorTest, StrategyParityOnRandomData) {
  // A wider randomized parity check: widened int/double keys included.
  RelationDef u;
  u.source = "IS4";
  u.name = "U";
  u.schema = Schema({{"k", DataType::kDouble}, {"p", DataType::kInt}});
  ASSERT_TRUE(catalog_.AddRelation(u).ok());
  ASSERT_TRUE(db_.CreateTable(catalog_, "U").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db_.Insert("U", {Value::Double(i % 4), Value::Int(i)}).ok());
  }
  ConjunctiveQuery query;
  query.relations = {"R", "U"};
  // int R.id joined against double U.k: numeric widening semantics.
  query.conjuncts = {Expr::ColumnsEqual({"R", "id"}, {"U", "k"})};
  query.projections = {Col("R", "name"), Col("U", "p")};
  query.output_names = {"name", "p"};
  const Table nested = Execute(query, db_, catalog_).value();
  const Table hashed =
      Execute(query, db_, catalog_, nullptr, JoinStrategy::kHash).value();
  EXPECT_TRUE(nested.SetEquals(hashed));
  EXPECT_GT(hashed.NumRows(), 0u);
}

}  // namespace
}  // namespace eve
