// Robustness / failure-injection suites: mutated and truncated inputs must
// produce Status errors, never crashes or hangs; CVS must stay sound when
// the MKB is inconsistent with itself or options are degenerate.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "common/file_io.h"
#include "cvs/cvs.h"
#include "esql/binder.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/view_pool_io.h"
#include "mkb/evolution.h"
#include "mkb/serializer.h"
#include "sql/parser.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

// One random byte-level corruption: overwrite, delete, or truncate.
std::string Mutate(std::mt19937_64* rng, const std::string& input) {
  if (input.empty()) return input;
  std::string mutated = input;
  const size_t pos =
      std::uniform_int_distribution<size_t>(0, input.size() - 1)(*rng);
  switch (std::uniform_int_distribution<int>(0, 2)(*rng)) {
    case 0:
      mutated[pos] = static_cast<char>(
          std::uniform_int_distribution<int>(0, 255)(*rng));
      break;
    case 1:
      mutated.erase(pos, 1);
      break;
    case 2:
      mutated.resize(pos);
      break;
  }
  return mutated;
}

const char* kSeedInputs[] = {
    "CREATE VIEW V (VE = >=) AS SELECT C.Name (false, true), "
    "f(A.Birthday) AS Age FROM Customer C, \"Accident-Ins\" A "
    "WHERE (C.Name = A.Holder) (CD = false) AND C.Age > 1",
    "CREATE VIEW W AS SELECT R.a + R.b * 2 FROM R WHERE R.c = DATE "
    "'2020-01-01' AND NOT (R.d = 'x''y')",
};

class MutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationTest, ParserNeverCrashesOnMutatedInput) {
  std::mt19937_64 rng(GetParam());
  for (const char* seed_input : kSeedInputs) {
    std::string input = seed_input;
    std::uniform_int_distribution<size_t> pos_dist(0, input.size() - 1);
    std::uniform_int_distribution<int> char_dist(32, 126);
    std::uniform_int_distribution<int> op_dist(0, 2);
    for (int round = 0; round < 200; ++round) {
      std::string mutated = input;
      const int op = op_dist(rng);
      const size_t pos = pos_dist(rng);
      switch (op) {
        case 0:  // overwrite a byte
          mutated[pos] = static_cast<char>(char_dist(rng));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // truncate
          mutated.resize(pos);
          break;
      }
      // Must not crash; any Status outcome is fine.
      const Result<ParsedView> result = ParseView(mutated);
      (void)result;
    }
  }
}

TEST_P(MutationTest, MisdLoaderNeverCrashesOnMutatedInput) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const std::string input = SaveMkb(mkb);
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<size_t> pos_dist(0, input.size() - 1);
  std::uniform_int_distribution<int> char_dist(32, 126);
  std::uniform_int_distribution<int> op_dist(0, 2);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = input;
    const int op = op_dist(rng);
    const size_t pos = pos_dist(rng);
    switch (op) {
      case 0:
        mutated[pos] = static_cast<char>(char_dist(rng));
        break;
      case 1:
        mutated.erase(pos, 1);
        break;
      case 2:
        mutated.resize(pos);
        break;
    }
    const Result<Mkb> result = LoadMkb(mutated);
    (void)result;
  }
}

TEST_P(MutationTest, DeeplyNestedSeedNeverCrashes) {
  // Seed input chosen to sit near the parser's recursion budget, so
  // mutations that add bytes probe the depth guard rather than the stack.
  std::string input = "1";
  for (int i = 0; i < 400; ++i) input = "(" + input + ")";
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const Result<ExprPtr> result = ParseExpression(Mutate(&rng, input));
    (void)result;
  }
}

TEST_P(MutationTest, ViewPoolLoaderNeverCrashesOnMutatedInput) {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(system.RegisterViewText(AsiaCustomerSql()).ok());
  ASSERT_TRUE(
      system.SetViewState("AsiaCustomer", ViewState::kDisabled).ok());
  const std::string input = SaveViews(system);
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    EveSystem fresh(MakeTravelAgencyMkb().MoveValue());
    const Status status = LoadViews(Mutate(&rng, input), &fresh);
    (void)status;
  }
}

TEST_P(MutationTest, CheckpointLoaderNeverCrashesOnMutatedInput) {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  const std::string input = RenderCheckpoint(system);
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const Result<EveSystem> result = LoadCheckpoint(Mutate(&rng, input));
    (void)result;
  }
}

TEST_P(MutationTest, JournalScanAndReplayNeverCrashOnMutatedBytes) {
  const std::string path =
      ::testing::TempDir() + "robustness_journal_" +
      std::to_string(GetParam()) + ".wal";
  std::remove(path.c_str());
  std::string bytes;
  {
    Journal journal = Journal::Open(path).MoveValue();
    EveSystem system(MakeTravelAgencyMkb().MoveValue());
    system.AttachJournal(&journal);
    ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
            .ok());
    bytes = ReadFileToString(path).MoveValue();
  }
  const std::string checkpoint =
      RenderCheckpoint(EveSystem(MakeTravelAgencyMkb().MoveValue()));
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const Result<JournalScan> scan = ScanJournalBytes(Mutate(&rng, bytes));
    if (!scan.ok()) continue;  // bad magic — rejected, not crashed
    // Whatever record prefix survived must replay without crashing.
    const Result<EveSystem> recovered =
        EveSystem::Recover(checkpoint, scan.value().records);
    (void)recovered;
  }
  std::remove(path.c_str());
}

TEST_P(MutationTest, VersionStoreDeserializeNeverCrashesOnMutatedInput) {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  ASSERT_TRUE(system.RollbackToVersion(1).ok());
  const std::string input = system.versions().Serialize();
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Result<MkbVersionStore> result =
        MkbVersionStore::Deserialize(Mutate(&rng, input));
    if (result.ok()) {
      // Whatever loaded must scrub without crashing.
      (void)result.value().Scrub();
    }
  }
}

TEST_P(MutationTest, JournalWithVersionRecordsNeverCrashesOnMutatedBytes) {
  // Same contract as the plain journal fuzz, but the journal now carries
  // version-commit and rollback records: whatever record prefix survives
  // the scan must replay to a system whose version chain scrubs clean —
  // replay rebuilds the chain, it never trusts corrupted bytes for it.
  const std::string path = ::testing::TempDir() +
                           "robustness_version_journal_" +
                           std::to_string(GetParam()) + ".wal";
  std::remove(path.c_str());
  std::string bytes;
  EveSystem base(MakeTravelAgencyMkb().MoveValue());
  ASSERT_TRUE(base.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const std::string checkpoint = RenderCheckpoint(base);
  {
    Journal journal = Journal::Open(path).MoveValue();
    EveSystem system = base;
    system.AttachJournal(&journal);
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
            .ok());
    ASSERT_TRUE(system.RetractConstraint("JC6").ok());
    ASSERT_TRUE(system.RollbackToVersion(1).ok());
    bytes = ReadFileToString(path).MoveValue();
  }
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const Result<JournalScan> scan = ScanJournalBytes(Mutate(&rng, bytes));
    if (!scan.ok()) continue;  // bad magic — rejected, not crashed
    const Result<EveSystem> recovered =
        EveSystem::Recover(checkpoint, scan.value().records);
    if (recovered.ok()) {
      EXPECT_EQ(recovered.value().ScrubVersions().corruptions, 0u);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest,
                         ::testing::Values(11, 22, 33, 44));

// Satellite integrity guarantee: EVERY single-byte flip inside the
// checkpoint's VERSIONS section is caught — by the checkpoint loader (CRC
// or framing validation, or the tip-consistency cross-check) or, failing
// that, by the scrubber on the loaded system. No flip loads silently clean.
TEST(CheckpointVersionsFuzzTest, EveryFlipInVersionsSectionIsDetected) {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  const std::string checkpoint = RenderCheckpoint(system);
  const size_t begin = checkpoint.find("-- SECTION VERSIONS");
  ASSERT_NE(begin, std::string::npos);
  const size_t end = checkpoint.find("-- SECTION END", begin);
  ASSERT_NE(end, std::string::npos);

  size_t undetected = 0;
  for (size_t i = begin; i < end; ++i) {
    std::string mutated = checkpoint;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    const Result<EveSystem> loaded = LoadCheckpoint(mutated);
    if (!loaded.ok()) continue;  // detected at load
    if (loaded.value().ScrubVersions().corruptions > 0) continue;
    ++undetected;
    ADD_FAILURE() << "flip at checkpoint byte " << i << " ('" << checkpoint[i]
                  << "') loaded clean and scrubbed clean";
  }
  EXPECT_EQ(undetected, 0u);
}

// --- Degenerate options ---------------------------------------------------------

class DegenerateOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
    mkb_prime_ =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .MoveValue()
            .mkb;
  }
  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
};

TEST_F(DegenerateOptionsTest, ZeroBudgetsMeanNoRewritingsNotCrashes) {
  CvsOptions options;
  options.replacement.max_results = 0;
  options.replacement.max_cover_combinations = 0;
  const Result<CvsResult> result = SynchronizeDeleteRelation(
      view_, "Customer", mkb_, mkb_prime_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rewritings.empty());
}

TEST_F(DegenerateOptionsTest, HugeBudgetsTerminate) {
  CvsOptions options;
  options.replacement.max_results = 10000;
  options.replacement.max_cover_combinations = 10000;
  options.replacement.max_extra_relations = 10;
  const Result<CvsResult> result = SynchronizeDeleteRelation(
      view_, "Customer", mkb_, mkb_prime_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rewritings.size(), 2u);  // still just two
}

TEST_F(DegenerateOptionsTest, EmptySuffixStillNamesViews) {
  CvsOptions options;
  options.rename_suffix = "";
  const Result<CvsResult> result = SynchronizeDeleteRelation(
      view_, "Customer", mkb_, mkb_prime_, options);
  ASSERT_TRUE(result.ok());
  for (const SynchronizedView& rewriting : result.value().rewritings) {
    EXPECT_FALSE(rewriting.view.name().empty());
  }
}

// --- Inconsistent inputs -------------------------------------------------------

TEST_F(DegenerateOptionsTest, StaleMkbPrimeRejectedByLegality) {
  // Passing the UN-evolved MKB as MKB' : candidates would still reference
  // deleted state consistently, but P2 rebinding uses the passed
  // catalog — which still has Customer, so the rewriting is fine; what
  // must NOT happen is a crash. Verify the call succeeds gracefully.
  const Result<CvsResult> result =
      SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_);
  ASSERT_TRUE(result.ok());
}

TEST_F(DegenerateOptionsTest, ViewOverForeignMkbFails) {
  // A view bound against a different MKB whose relations don't exist here.
  ChainMkbSpec spec;
  spec.length = 4;
  const Mkb chain = MakeChainMkb(spec).value();
  const ViewDefinition foreign = MakeChainView(chain, 0, 2).value();
  const Result<CvsResult> result =
      SynchronizeDeleteRelation(foreign, "R0", mkb_, mkb_prime_);
  EXPECT_FALSE(result.ok());
}

TEST_F(DegenerateOptionsTest, SynchronizeUnusedAttributeIsNoOp) {
  const Result<CvsResult> result = SynchronizeDeleteAttribute(
      view_, "Tour", "TourName", mkb_,
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Tour", "TourName"))
          .MoveValue()
          .mkb,
      {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rewritings.size(), 1u);
  EXPECT_EQ(result.value().rewritings[0].view.name(), view_.name());
}

// --- Deep expressions ------------------------------------------------------------

TEST(DeepExpressionTest, DeeplyNestedParenthesesParse) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  const Result<ExprPtr> result = ParseExpression(expr);
  ASSERT_TRUE(result.ok());
}

TEST(DeepExpressionTest, LongConjunctionsParse) {
  std::string where = "R.a0 = 1";
  for (int i = 1; i < 300; ++i) {
    where += " AND R.a" + std::to_string(i) + " = " + std::to_string(i);
  }
  const Result<std::vector<ExprPtr>> result = ParseConjunction(where);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 300u);
}

TEST(DeepExpressionTest, PathologicalNestingRejectedWithStatus) {
  // Far beyond the recursion budget: must come back as a ParseError, not a
  // stack overflow.
  std::string expr = "1";
  for (int i = 0; i < 20000; ++i) expr = "(" + expr;
  const Result<ExprPtr> result = ParseExpression(expr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("nests too deeply"),
            std::string::npos);
}

TEST(DeepExpressionTest, PathologicalNotChainRejectedWithStatus) {
  std::string expr;
  for (int i = 0; i < 20000; ++i) expr += "NOT ";
  expr += "true";
  const Result<ExprPtr> result = ParseExpression(expr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(DeepExpressionTest, PathologicalWhereNestingRejectedWithStatus) {
  std::string cond = "R.a = 1";
  for (int i = 0; i < 20000; ++i) cond = "NOT " + cond;
  const Result<ParsedView> result =
      ParseView("CREATE VIEW V AS SELECT R.a FROM R WHERE " + cond);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(DeepExpressionTest, WideViewsParseAndPrint) {
  std::string sql = "CREATE VIEW Wide AS SELECT ";
  for (int i = 0; i < 150; ++i) {
    if (i > 0) sql += ", ";
    sql += "R.c" + std::to_string(i);
  }
  sql += " FROM R";
  const Result<ParsedView> view = ParseView(sql);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().select.size(), 150u);
}

}  // namespace
}  // namespace eve
