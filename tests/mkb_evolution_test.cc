#include <algorithm>

#include <gtest/gtest.h>

#include "mkb/builder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

class EvolutionTest : public ::testing::Test {
 protected:
  void SetUp() override { mkb_ = MakeTravelAgencyMkb().MoveValue(); }
  Mkb mkb_;
};

TEST_F(EvolutionTest, DeleteRelationDropsAllTouchingConstraints) {
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer")).value();
  EXPECT_FALSE(report.mkb.catalog().HasRelation("Customer"));
  // JC1-JC3 and F1-F4 mention Customer.
  for (const std::string id : {"JC1", "JC2", "JC3", "F1", "F2", "F3", "F4"}) {
    EXPECT_TRUE(Contains(report.dropped_constraints, id)) << id;
  }
  // JC4-JC6, F5-F7 survive.
  EXPECT_TRUE(report.mkb.GetJoinConstraint("JC4").ok());
  EXPECT_TRUE(report.mkb.GetJoinConstraint("JC6").ok());
  EXPECT_TRUE(report.mkb.GetFunctionOf("F5").ok());
  EXPECT_EQ(report.mkb.join_constraints().size(), 3u);
  EXPECT_EQ(report.mkb.function_of_constraints().size(), 3u);
}

TEST_F(EvolutionTest, DeleteRelationDropsPcConstraints) {
  ASSERT_TRUE(AddAccidentInsPc(&mkb_).ok());
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer")).value();
  EXPECT_TRUE(Contains(report.dropped_constraints, "PC-AI"));
  EXPECT_TRUE(report.mkb.pc_constraints().empty());
}

TEST_F(EvolutionTest, DeleteMissingRelationFails) {
  EXPECT_FALSE(
      EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Nope")).ok());
}

TEST_F(EvolutionTest, DeleteAttributeWeakensJoinConstraint) {
  // Deleting Customer.Age removes the local clause of JC2 but keeps the
  // crossing clause Customer.Name = Accident-Ins.Holder.
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Customer", "Age"))
          .value();
  EXPECT_FALSE(report.mkb.catalog().HasAttribute({"Customer", "Age"}));
  EXPECT_TRUE(Contains(report.weakened_constraints, "JC2"));
  EXPECT_EQ(report.mkb.GetJoinConstraint("JC2").value()->clauses.size(), 1u);
  // F3 (Age = f(Birthday)) must be gone.
  EXPECT_TRUE(Contains(report.dropped_constraints, "F3"));
}

TEST_F(EvolutionTest, DeleteAttributeDropsJcWhenCrossingClauseLost) {
  // Deleting Customer.Name guts JC1/JC3 entirely and reduces JC2 to the
  // non-crossing clause Age > 1, so JC2 is dropped too.
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Customer", "Name"))
          .value();
  EXPECT_TRUE(Contains(report.dropped_constraints, "JC1"));
  EXPECT_TRUE(Contains(report.dropped_constraints, "JC2"));
  EXPECT_TRUE(Contains(report.dropped_constraints, "JC3"));
  EXPECT_TRUE(report.mkb.GetJoinConstraint("JC6").ok());
  // F1, F2, F4 target Customer.Name: dropped.
  EXPECT_TRUE(Contains(report.dropped_constraints, "F1"));
  EXPECT_TRUE(Contains(report.dropped_constraints, "F2"));
  EXPECT_TRUE(Contains(report.dropped_constraints, "F4"));
}

TEST_F(EvolutionTest, DeleteAttributeDropsPcMentioningIt) {
  ASSERT_TRUE(AddPersonExtension(&mkb_).ok());
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Person", "PAddr"))
          .value();
  EXPECT_TRUE(Contains(report.dropped_constraints, "PC-CP"));
  EXPECT_TRUE(Contains(report.dropped_constraints, "F-ADDR"));
  // JC-CP only uses Name: untouched.
  EXPECT_TRUE(report.mkb.GetJoinConstraint("JC-CP").ok());
}

TEST_F(EvolutionTest, RenameRelationRewritesEverything) {
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::RenameRelation("Customer", "Client"))
          .value();
  EXPECT_TRUE(report.mkb.catalog().HasRelation("Client"));
  EXPECT_FALSE(report.mkb.catalog().HasRelation("Customer"));
  EXPECT_TRUE(report.dropped_constraints.empty());
  const JoinConstraint* jc1 = report.mkb.GetJoinConstraint("JC1").value();
  EXPECT_EQ(jc1->lhs, "Client");
  EXPECT_EQ(jc1->clauses[0]->ToString(),
            "(Client.Name = FlightRes.PName)");
  const FunctionOfConstraint* f2 = report.mkb.GetFunctionOf("F2").value();
  EXPECT_EQ(f2->target, (AttributeRef{"Client", "Name"}));
}

TEST_F(EvolutionTest, RenameAttributeRewritesEverything) {
  const auto report =
      EvolveMkb(mkb_,
                CapabilityChange::RenameAttribute("Customer", "Name",
                                                  "FullName"))
          .value();
  EXPECT_TRUE(report.mkb.catalog().HasAttribute({"Customer", "FullName"}));
  const JoinConstraint* jc1 = report.mkb.GetJoinConstraint("JC1").value();
  EXPECT_EQ(jc1->clauses[0]->ToString(),
            "(Customer.FullName = FlightRes.PName)");
  const FunctionOfConstraint* f1 = report.mkb.GetFunctionOf("F1").value();
  EXPECT_EQ(f1->target, (AttributeRef{"Customer", "FullName"}));
}

TEST_F(EvolutionTest, RenameAttributeChecksTypeConvention) {
  // Renaming FlightRes.FlightNo (int) to "Name" collides with the string
  // Name attributes elsewhere.
  EXPECT_FALSE(EvolveMkb(mkb_, CapabilityChange::RenameAttribute(
                                   "FlightRes", "FlightNo", "Name"))
                   .ok());
}

TEST_F(EvolutionTest, AddRelationExtendsCatalog) {
  RelationDef def;
  def.source = "IS9";
  def.name = "Cruise";
  def.schema = Schema({{"CruiseID", DataType::kInt}});
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::AddRelation(def)).value();
  EXPECT_TRUE(report.mkb.catalog().HasRelation("Cruise"));
  EXPECT_TRUE(report.dropped_constraints.empty());
  EXPECT_EQ(report.mkb.join_constraints().size(), 6u);
}

TEST_F(EvolutionTest, AddAttributeExtendsRelation) {
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::AddAttribute(
                          "Customer", {"Email", DataType::kString}))
          .value();
  EXPECT_TRUE(report.mkb.catalog().HasAttribute({"Customer", "Email"}));
}

TEST_F(EvolutionTest, AddDuplicateRelationFails) {
  RelationDef def;
  def.source = "IS1";
  def.name = "Customer";
  def.schema = Schema({{"x", DataType::kInt}});
  EXPECT_FALSE(EvolveMkb(mkb_, CapabilityChange::AddRelation(def)).ok());
}

TEST_F(EvolutionTest, OriginalMkbIsUntouched) {
  const auto report =
      EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer")).value();
  (void)report;
  EXPECT_TRUE(mkb_.catalog().HasRelation("Customer"));
  EXPECT_EQ(mkb_.join_constraints().size(), 6u);
}

TEST(CapabilityChangeTest, ToStringForms) {
  EXPECT_EQ(CapabilityChange::DeleteRelation("R").ToString(),
            "delete-relation R");
  EXPECT_EQ(CapabilityChange::DeleteAttribute("R", "a").ToString(),
            "delete-attribute R.a");
  EXPECT_EQ(CapabilityChange::RenameRelation("R", "S").ToString(),
            "rename-relation R -> S");
  EXPECT_EQ(CapabilityChange::RenameAttribute("R", "a", "b").ToString(),
            "rename-attribute R.a -> R.b");
  RelationDef def;
  def.name = "N";
  def.source = "IS";
  EXPECT_EQ(CapabilityChange::AddRelation(def).ToString(),
            "add-relation N");
  EXPECT_EQ(
      CapabilityChange::AddAttribute("R", {"x", DataType::kInt}).ToString(),
      "add-attribute R.x");
}

}  // namespace
}  // namespace eve
