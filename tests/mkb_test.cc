#include <gtest/gtest.h>

#include "mkb/builder.h"
#include "mkb/mkb.h"
#include "cvs/cvs.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

RelationDef Rel(std::string source, std::string name,
                std::vector<AttributeDef> attrs) {
  RelationDef def;
  def.source = std::move(source);
  def.name = std::move(name);
  def.schema = Schema(std::move(attrs));
  return def;
}

class MkbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mkb_.AddRelation(Rel("IS1", "R",
                                     {{"a", DataType::kInt},
                                      {"b", DataType::kString}}))
                    .ok());
    ASSERT_TRUE(mkb_.AddRelation(Rel("IS2", "S",
                                     {{"c", DataType::kInt},
                                      {"d", DataType::kString}}))
                    .ok());
    ASSERT_TRUE(mkb_.AddRelation(Rel("IS3", "T", {{"e", DataType::kInt}}))
                    .ok());
  }
  Mkb mkb_;
};

TEST_F(MkbTest, AddJoinConstraintValidates) {
  EXPECT_TRUE(
      AddJoinConstraintText(&mkb_, "J1", "R", "S", "R.a = S.c").ok());
  // Duplicate id.
  EXPECT_EQ(AddJoinConstraintText(&mkb_, "J1", "R", "T", "R.a = T.e").code(),
            StatusCode::kAlreadyExists);
  // Unknown relation.
  EXPECT_EQ(AddJoinConstraintText(&mkb_, "J2", "R", "X", "R.a = R.a").code(),
            StatusCode::kNotFound);
  // Self join.
  EXPECT_EQ(AddJoinConstraintText(&mkb_, "J3", "R", "R", "R.a = R.a").code(),
            StatusCode::kInvalidArgument);
  // Clause referencing a third relation.
  EXPECT_EQ(
      AddJoinConstraintText(&mkb_, "J4", "R", "S", "R.a = T.e").code(),
      StatusCode::kInvalidArgument);
  // Unknown attribute.
  EXPECT_EQ(AddJoinConstraintText(&mkb_, "J5", "R", "S", "R.zz = S.c").code(),
            StatusCode::kNotFound);
  // No crossing clause.
  EXPECT_EQ(AddJoinConstraintText(&mkb_, "J6", "R", "S", "R.a > 1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MkbTest, JoinConstraintWithLocalClause) {
  // A crossing clause plus a single-relation clause (like the paper's JC2).
  EXPECT_TRUE(AddJoinConstraintText(&mkb_, "J1", "R", "S",
                                    "R.a = S.c AND R.a > 1")
                  .ok());
  const JoinConstraint* jc = mkb_.GetJoinConstraint("J1").value();
  EXPECT_EQ(jc->clauses.size(), 2u);
  EXPECT_EQ(jc->Other("R"), "S");
  EXPECT_EQ(jc->Other("S"), "R");
  EXPECT_TRUE(jc->Involves("R"));
  EXPECT_FALSE(jc->Involves("T"));
}

TEST_F(MkbTest, AddFunctionOfValidates) {
  EXPECT_TRUE(AddIdentityFunctionOf(&mkb_, "F1", {"R", "a"}, {"S", "c"})
                  .ok());
  // Same relation on both sides.
  EXPECT_EQ(
      AddIdentityFunctionOf(&mkb_, "F2", {"R", "a"}, {"R", "b"}).code(),
      StatusCode::kInvalidArgument);
  // Unknown attributes.
  EXPECT_EQ(
      AddIdentityFunctionOf(&mkb_, "F3", {"R", "zz"}, {"S", "c"}).code(),
      StatusCode::kNotFound);
  EXPECT_EQ(
      AddIdentityFunctionOf(&mkb_, "F4", {"R", "a"}, {"S", "zz"}).code(),
      StatusCode::kNotFound);
}

TEST_F(MkbTest, FunctionOfBodyRestrictedToSource) {
  // Body referencing an attribute other than the source: rejected.
  EXPECT_FALSE(
      AddFunctionOfText(&mkb_, "F1", "R.a", "S.c + T.e").ok());
  // Arithmetic over the source is fine.
  EXPECT_TRUE(AddFunctionOfText(&mkb_, "F2", "R.a", "S.c * 2 + 1").ok());
  const FunctionOfConstraint* fc = mkb_.GetFunctionOf("F2").value();
  EXPECT_FALSE(fc->IsIdentity());
  EXPECT_EQ(fc->target, (AttributeRef{"R", "a"}));
  EXPECT_EQ(fc->source, (AttributeRef{"S", "c"}));
}

TEST_F(MkbTest, IdentityDetection) {
  ASSERT_TRUE(AddIdentityFunctionOf(&mkb_, "F1", {"R", "a"}, {"S", "c"})
                  .ok());
  EXPECT_TRUE(mkb_.GetFunctionOf("F1").value()->IsIdentity());
}

TEST_F(MkbTest, AddPCConstraintValidates) {
  EXPECT_TRUE(AddProjectionPC(&mkb_, "P1", "R", "a", SetRelation::kSuperset,
                              "S", "c")
                  .ok());
  // Arity mismatch.
  EXPECT_FALSE(AddProjectionPC(&mkb_, "P2", "R", "a, b",
                               SetRelation::kSuperset, "S", "c")
                   .ok());
  // Unknown relation.
  EXPECT_FALSE(AddProjectionPC(&mkb_, "P3", "X", "a", SetRelation::kEqual,
                               "S", "c")
                   .ok());
  // Attribute from the wrong relation.
  PCConstraint pc;
  pc.id = "P4";
  pc.lhs_relation = "R";
  pc.rhs_relation = "S";
  pc.lhs_attrs = {{"S", "c"}};
  pc.rhs_attrs = {{"S", "c"}};
  EXPECT_FALSE(mkb_.AddPCConstraint(pc).ok());
}

TEST_F(MkbTest, QueriesByRelation) {
  ASSERT_TRUE(AddJoinConstraintText(&mkb_, "J1", "R", "S", "R.a = S.c").ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb_, "J2", "S", "T", "S.c = T.e").ok());
  EXPECT_EQ(mkb_.JoinConstraintsOf("S").size(), 2u);
  EXPECT_EQ(mkb_.JoinConstraintsOf("R").size(), 1u);
  EXPECT_EQ(mkb_.JoinConstraintsOf("X").size(), 0u);
  EXPECT_EQ(mkb_.JoinConstraintsBetween("R", "S").size(), 1u);
  EXPECT_EQ(mkb_.JoinConstraintsBetween("S", "R").size(), 1u);
  EXPECT_EQ(mkb_.JoinConstraintsBetween("R", "T").size(), 0u);
}

TEST_F(MkbTest, CoversOfLooksUpByTarget) {
  ASSERT_TRUE(AddIdentityFunctionOf(&mkb_, "F1", {"R", "a"}, {"S", "c"})
                  .ok());
  ASSERT_TRUE(AddIdentityFunctionOf(&mkb_, "F2", {"R", "a"}, {"T", "e"})
                  .ok());
  EXPECT_EQ(mkb_.CoversOf({"R", "a"}).size(), 2u);
  EXPECT_EQ(mkb_.CoversOf({"R", "b"}).size(), 0u);
}

TEST_F(MkbTest, PCConstraintsBetweenBothOrientations) {
  ASSERT_TRUE(AddProjectionPC(&mkb_, "P1", "R", "a", SetRelation::kSuperset,
                              "S", "c")
                  .ok());
  EXPECT_EQ(mkb_.PCConstraintsBetween("R", "S").size(), 1u);
  EXPECT_EQ(mkb_.PCConstraintsBetween("S", "R").size(), 1u);
  EXPECT_EQ(mkb_.PCConstraintsBetween("R", "T").size(), 0u);
}

TEST_F(MkbTest, RemoveConstraintByIdAcrossKinds) {
  ASSERT_TRUE(AddJoinConstraintText(&mkb_, "J1", "R", "S", "R.a = S.c").ok());
  ASSERT_TRUE(AddIdentityFunctionOf(&mkb_, "F1", {"R", "a"}, {"S", "c"})
                  .ok());
  ASSERT_TRUE(AddProjectionPC(&mkb_, "P1", "R", "a", SetRelation::kSuperset,
                              "S", "c")
                  .ok());
  EXPECT_TRUE(mkb_.RemoveConstraint("F1").ok());
  EXPECT_FALSE(mkb_.GetFunctionOf("F1").ok());
  EXPECT_TRUE(mkb_.RemoveConstraint("J1").ok());
  EXPECT_TRUE(mkb_.RemoveConstraint("P1").ok());
  EXPECT_TRUE(mkb_.pc_constraints().empty());
  EXPECT_EQ(mkb_.RemoveConstraint("J1").code(), StatusCode::kNotFound);
  // The freed id is reusable.
  EXPECT_TRUE(AddJoinConstraintText(&mkb_, "J1", "R", "T", "R.a = T.e").ok());
}

TEST_F(MkbTest, RetractedCoverNoLongerPreservesViews) {
  // End-to-end: retracting the covering F constraint turns a curable view
  // into a disabled one.
  Mkb travel = MakeTravelAgencyMkb().value();
  const Result<ViewDefinition> view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true) FROM Customer C, "
      "FlightRes F WHERE C.Name = F.PName",
      travel.catalog());
  ASSERT_TRUE(view.ok());
  // Remove every cover of Customer.Name.
  ASSERT_TRUE(travel.RemoveConstraint("F1").ok());
  ASSERT_TRUE(travel.RemoveConstraint("F2").ok());
  ASSERT_TRUE(travel.RemoveConstraint("F4").ok());
  const auto evolution =
      EvolveMkb(travel, CapabilityChange::DeleteRelation("Customer"))
          .value();
  const CvsResult result =
      SynchronizeDeleteRelation(view.value(), "Customer", travel,
                                evolution.mkb)
          .value();
  EXPECT_TRUE(result.rewritings.empty());
}

TEST_F(MkbTest, GetByIdNotFound) {
  EXPECT_FALSE(mkb_.GetJoinConstraint("nope").ok());
  EXPECT_FALSE(mkb_.GetFunctionOf("nope").ok());
}

TEST(SetRelationTest, FlipIsInvolutionAroundEqual) {
  EXPECT_EQ(FlipSetRelation(SetRelation::kSubset), SetRelation::kSuperset);
  EXPECT_EQ(FlipSetRelation(SetRelation::kProperSubset),
            SetRelation::kProperSuperset);
  EXPECT_EQ(FlipSetRelation(SetRelation::kEqual), SetRelation::kEqual);
  for (const SetRelation r :
       {SetRelation::kProperSubset, SetRelation::kSubset, SetRelation::kEqual,
        SetRelation::kSuperset, SetRelation::kProperSuperset}) {
    EXPECT_EQ(FlipSetRelation(FlipSetRelation(r)), r);
  }
}

TEST(TravelAgencyMkbTest, MatchesFig2Inventory) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  EXPECT_EQ(mkb.catalog().NumRelations(), 7u);
  EXPECT_EQ(mkb.join_constraints().size(), 6u);
  EXPECT_EQ(mkb.function_of_constraints().size(), 7u);
  EXPECT_TRUE(mkb.catalog().HasAttribute({"Accident-Ins", "Birthday"}));
  EXPECT_EQ(mkb.catalog().TypeOf({"Customer", "Age"}).value(),
            DataType::kInt);
  // JC2 carries the extra local clause Customer.Age > 1.
  EXPECT_EQ(mkb.GetJoinConstraint("JC2").value()->clauses.size(), 2u);
  // F3 is a genuine (non-identity) function.
  EXPECT_FALSE(mkb.GetFunctionOf("F3").value()->IsIdentity());
  // Covers of Customer.Name per Ex. 9 Step 1: F1, F2, F4.
  EXPECT_EQ(mkb.CoversOf({"Customer", "Name"}).size(), 3u);
}

TEST(TravelAgencyMkbTest, ExtensionsApply) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddPersonExtension(&mkb).ok());
  EXPECT_TRUE(mkb.catalog().HasRelation("Person"));
  EXPECT_EQ(mkb.CoversOf({"Customer", "Addr"}).size(), 1u);
  ASSERT_TRUE(AddAccidentInsPc(&mkb).ok());
  ASSERT_TRUE(AddFlightResPc(&mkb).ok());
  EXPECT_EQ(mkb.PCConstraintsBetween("Customer", "Accident-Ins").size(), 1u);
  EXPECT_EQ(mkb.pc_constraints().size(), 3u);
}

TEST(TravelAgencyMkbTest, ToStringMentionsEverySection) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const std::string dump = mkb.ToString();
  EXPECT_NE(dump.find("JC6"), std::string::npos);
  EXPECT_NE(dump.find("F7"), std::string::npos);
  EXPECT_NE(dump.find("Customer"), std::string::npos);
}

}  // namespace
}  // namespace eve
