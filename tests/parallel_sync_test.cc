// Determinism of parallel batch synchronization: ApplyChange /
// ApplyChanges at sync parallelism 1 (the sequential reference), 4 and 8
// must produce byte-identical change reports, identical view pools, and
// byte-identical journal files. Also unit-tests the ThreadPool /
// ParallelFor primitives (this binary runs under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/file_io.h"
#include "common/thread_pool.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/sharded_system.h"
#include "eve/view_pool_io.h"
#include "mkb/capability_change.h"
#include "mkb/serializer.h"
#include "workload/generator.h"

namespace eve {
namespace {

// A system over a chain MKB with `num_views` views: even-numbered views
// sit at the chain head (and reference the victim relation R1), odd ones
// live far down the chain and stay unaffected.
EveSystem MakeBatchSystem(size_t num_views) {
  ChainMkbSpec spec;
  spec.length = 48;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  EveSystem system(mkb);
  for (size_t i = 0; i < num_views; ++i) {
    const size_t start = (i % 2 == 0) ? (i / 2) % 2 : 20 + (i / 2) % 20;
    ViewDefinition view = MakeChainView(mkb, start, 3).MoveValue();
    view.set_name("BV" + std::to_string(i));
    EXPECT_TRUE(system.RegisterView(view).ok());
  }
  return system;
}

// Flattens everything observable about a system after a change: the
// report, every view's definition, state and history.
std::string Fingerprint(const ChangeReport& report, const EveSystem& system) {
  std::string out = report.ToString();
  for (const std::string& name : system.ViewNames()) {
    const RegisteredView* view = system.GetView(name).value();
    out += "\n-- " + name +
           (view->state == ViewState::kActive ? " [active]" : " [disabled]") +
           "\n" + view->definition.ToString();
    for (const std::string& event : view->history) out += "\n# " + event;
  }
  return out;
}

TEST(ParallelSyncTest, ApplyChangeIsDeterministicAcrossThreadCounts) {
  const EveSystem base = MakeBatchSystem(24);
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");

  std::string reference_fingerprint;
  std::string reference_journal;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    EveSystem system = base;
    system.SetSyncParallelism(threads);
    const std::string journal_path = ::testing::TempDir() +
                                     "parallel_sync_apply_" +
                                     std::to_string(threads) + ".wal";
    std::remove(journal_path.c_str());
    Result<Journal> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    system.AttachJournal(&journal.value());

    const Result<ChangeReport> report = system.ApplyChange(change);
    ASSERT_TRUE(report.ok()) << "threads=" << threads;
    system.AttachJournal(nullptr);

    const std::string fingerprint = Fingerprint(report.value(), system);
    const std::string journal_bytes =
        ReadFileToString(journal_path).MoveValue();
    EXPECT_GT(report.value().CountOutcome(ViewOutcomeKind::kRewritten) +
                  report.value().CountOutcome(ViewOutcomeKind::kDisabled),
              0u);
    if (threads == 1) {
      reference_fingerprint = fingerprint;
      reference_journal = journal_bytes;
    } else {
      EXPECT_EQ(fingerprint, reference_fingerprint) << "threads=" << threads;
      EXPECT_EQ(journal_bytes, reference_journal) << "threads=" << threads;
    }
    std::remove(journal_path.c_str());
  }
}

TEST(ParallelSyncTest, ApplyChangesBatchIsDeterministicAcrossThreadCounts) {
  const EveSystem base = MakeBatchSystem(16);
  const std::vector<CapabilityChange> changes = {
      CapabilityChange::DeleteAttribute("R1", "P1"),
      CapabilityChange::DeleteRelation("R1"),
      CapabilityChange::RenameRelation("R21", "R21x"),
  };

  std::string reference;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    EveSystem system = base;
    system.SetSyncParallelism(threads);
    const Result<std::vector<ChangeReport>> reports =
        system.ApplyChanges(changes);
    ASSERT_TRUE(reports.ok()) << "threads=" << threads;
    std::string fingerprint;
    for (const ChangeReport& report : reports.value()) {
      fingerprint += Fingerprint(report, system) + "\n====\n";
    }
    if (threads == 1) {
      reference = fingerprint;
    } else {
      EXPECT_EQ(fingerprint, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelSyncTest, TopKAndBudgetAreDeterministicAcrossThreadCounts) {
  // The top-k / candidate-budget knobs narrow each view's private
  // enumeration; they must not perturb determinism — reports, pools and
  // the aggregated enumeration stats stay byte-identical at any
  // parallelism.
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  std::string reference_fingerprint;
  std::string reference_stats;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    EveSystem system = MakeBatchSystem(24);
    system.SetSyncTopK(2);
    system.SetSyncCandidateBudget(16);
    system.SetSyncParallelism(threads);
    const Result<ChangeReport> report = system.ApplyChange(change);
    ASSERT_TRUE(report.ok()) << "threads=" << threads;
    const std::string fingerprint = Fingerprint(report.value(), system);
    const std::string stats = system.last_sync_stats().ToString();
    if (threads == 1) {
      reference_fingerprint = fingerprint;
      reference_stats = stats;
    } else {
      EXPECT_EQ(fingerprint, reference_fingerprint) << "threads=" << threads;
      EXPECT_EQ(stats, reference_stats) << "threads=" << threads;
    }
  }
}

TEST(ParallelSyncTest, WorkBudgetPartialsAreDeterministicAcrossThreadCounts) {
  // A tight per-view logical work budget stops every view's search on the
  // same enumeration step regardless of which thread runs it, so the
  // partial results — reports, pools, aggregated stats, diagnostics AND
  // journal bytes — must be byte-identical across parallelism.
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  std::string reference_fingerprint;
  std::string reference_stats;
  std::string reference_diagnostics;
  std::string reference_journal;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    // The chain views' searches are tiny (one frontier expansion + one
    // emission each), so budget 1 is the tight setting that actually
    // deadline-stops them.
    EveSystem system = MakeBatchSystem(24);
    system.SetSyncWorkBudget(1);
    system.SetSyncParallelism(threads);
    const std::string journal_path = ::testing::TempDir() +
                                     "parallel_sync_budget_" +
                                     std::to_string(threads) + ".wal";
    std::remove(journal_path.c_str());
    Result<Journal> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    system.AttachJournal(&journal.value());
    const Result<ChangeReport> report = system.ApplyChange(change);
    ASSERT_TRUE(report.ok()) << "threads=" << threads;
    system.AttachJournal(nullptr);

    // The budget is tight enough to stop at least one view's search.
    EXPECT_FALSE(system.last_sync_diagnostics().deadline_views.empty());
    EXPECT_TRUE(system.last_sync_stats().deadline.partial);
    EXPECT_EQ(system.last_sync_stats().deadline.stop_cause,
              StopCause::kWorkBudget);

    const std::string fingerprint = Fingerprint(report.value(), system);
    const std::string stats = system.last_sync_stats().ToString();
    const std::string diagnostics = system.last_sync_diagnostics().ToString();
    const std::string journal_bytes =
        ReadFileToString(journal_path).MoveValue();
    if (threads == 1) {
      reference_fingerprint = fingerprint;
      reference_stats = stats;
      reference_diagnostics = diagnostics;
      reference_journal = journal_bytes;
    } else {
      EXPECT_EQ(fingerprint, reference_fingerprint) << "threads=" << threads;
      EXPECT_EQ(stats, reference_stats) << "threads=" << threads;
      EXPECT_EQ(diagnostics, reference_diagnostics) << "threads=" << threads;
      EXPECT_EQ(journal_bytes, reference_journal) << "threads=" << threads;
    }
    std::remove(journal_path.c_str());
  }
}

TEST(ParallelSyncTest, DryRunThenCommitMatchesDirectCommitAcrossThreadCounts) {
  // The prepare/commit split must be invisible: rehearsing a change with
  // SYNC DRYRUN and then committing it produces byte-identical reports,
  // view pools and journal files to committing it directly — at every
  // sync parallelism.
  const EveSystem base = MakeBatchSystem(24);
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");

  std::string reference_fingerprint;
  std::string reference_journal;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    // Direct commit.
    EveSystem direct = base;
    direct.SetSyncParallelism(threads);
    const std::string direct_path = ::testing::TempDir() +
                                    "parallel_sync_direct_" +
                                    std::to_string(threads) + ".wal";
    std::remove(direct_path.c_str());
    Result<Journal> direct_journal = Journal::Open(direct_path);
    ASSERT_TRUE(direct_journal.ok());
    direct.AttachJournal(&direct_journal.value());
    const Result<ChangeReport> direct_report = direct.ApplyChange(change);
    ASSERT_TRUE(direct_report.ok()) << "threads=" << threads;
    direct.AttachJournal(nullptr);

    // Dry-run first, then commit.
    EveSystem rehearsed = base;
    rehearsed.SetSyncParallelism(threads);
    const std::string rehearsed_path = ::testing::TempDir() +
                                       "parallel_sync_rehearsed_" +
                                       std::to_string(threads) + ".wal";
    std::remove(rehearsed_path.c_str());
    Result<Journal> rehearsed_journal = Journal::Open(rehearsed_path);
    ASSERT_TRUE(rehearsed_journal.ok());
    rehearsed.AttachJournal(&rehearsed_journal.value());
    const Result<DryRunReport> dry = rehearsed.DryRunChange(change);
    ASSERT_TRUE(dry.ok()) << "threads=" << threads;
    const Result<ChangeReport> committed = rehearsed.ApplyChange(change);
    ASSERT_TRUE(committed.ok()) << "threads=" << threads;
    rehearsed.AttachJournal(nullptr);

    // The dry-run predicted the commit exactly...
    EXPECT_EQ(dry.value().report.ToString(), committed.value().ToString())
        << "threads=" << threads;
    // ...and left no trace: fingerprints and journal bytes match the
    // direct run.
    EXPECT_EQ(Fingerprint(committed.value(), rehearsed),
              Fingerprint(direct_report.value(), direct))
        << "threads=" << threads;
    const std::string direct_bytes = ReadFileToString(direct_path).MoveValue();
    const std::string rehearsed_bytes =
        ReadFileToString(rehearsed_path).MoveValue();
    EXPECT_EQ(rehearsed_bytes, direct_bytes) << "threads=" << threads;

    if (threads == 1) {
      reference_fingerprint = Fingerprint(direct_report.value(), direct);
      reference_journal = direct_bytes;
    } else {
      EXPECT_EQ(Fingerprint(direct_report.value(), direct),
                reference_fingerprint)
          << "threads=" << threads;
      EXPECT_EQ(direct_bytes, reference_journal) << "threads=" << threads;
    }
    std::remove(direct_path.c_str());
    std::remove(rehearsed_path.c_str());
  }
}

TEST(ParallelSyncTest, PinnedReadersObserveOnlyWholeVersionsDuringCommits) {
  // Concurrent readers pin the tip while commits swap it: every pin must
  // land on exactly one committed version — the pinned MKB renders byte-
  // identically to that version's clean render, never a torn in-between.
  const std::vector<CapabilityChange> changes = {
      CapabilityChange::DeleteAttribute("R1", "P1"),
      CapabilityChange::DeleteRelation("R1"),
      CapabilityChange::RenameRelation("R21", "R21x"),
      CapabilityChange::RenameRelation("R30", "R30x"),
      CapabilityChange::DeleteRelation("R40"),
  };
  // Clean sequential run records the only legal render per version id.
  std::map<uint64_t, std::string> legal;
  {
    EveSystem clean = MakeBatchSystem(24);
    legal[clean.current_version()] = SaveMkb(clean.mkb());
    for (const CapabilityChange& change : changes) {
      ASSERT_TRUE(clean.ApplyChange(change).ok());
      legal[clean.current_version()] = SaveMkb(clean.mkb());
    }
  }

  EveSystem system = MakeBatchSystem(24);
  system.SetSyncParallelism(8);
  std::atomic<bool> stop{false};
  std::atomic<size_t> pins_checked{0};
  std::atomic<size_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const PinnedMkb pinned = system.PinTip();
        const auto it = legal.find(pinned.id());
        if (it == legal.end() || SaveMkb(*pinned.mkb) != it->second) {
          torn.fetch_add(1);
        }
        pins_checked.fetch_add(1);
      }
    });
  }
  for (const CapabilityChange& change : changes) {
    ASSERT_TRUE(system.ApplyChange(change).ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(torn.load(), 0u)
      << "a reader pinned a state that is not a whole committed version";
  EXPECT_GT(pins_checked.load(), 0u);
  // The writer's final tip agrees with the clean run.
  EXPECT_EQ(SaveMkb(system.mkb()), legal.at(system.current_version()));
}

TEST(ParallelSyncTest, PreviewChangeSharesThePoolSafely) {
  EveSystem system = MakeBatchSystem(12);
  system.SetSyncParallelism(4);
  const CapabilityChange change = CapabilityChange::DeleteRelation("R1");
  // Previews run on scratch copies sharing the same pool; interleave a few
  // with a real apply to exercise concurrent ParallelFor invocations.
  const Result<ChangeReport> preview = system.PreviewChange(change);
  ASSERT_TRUE(preview.ok());
  const Result<ChangeReport> applied = system.ApplyChange(change);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(preview.value().ToString(), applied.value().ToString());
}

// The sharded serving core must keep the determinism contract at every
// (shard count × sync parallelism × drain mode) point: the same queued
// change stream produces byte-identical per-shard state and byte-identical
// merged reports.
ShardedEveSystem MakeShardedBatchSystem(size_t num_views, size_t shards) {
  ChainMkbSpec spec;
  spec.length = 48;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  ShardedEveSystem system(mkb, {}, shards);
  for (size_t i = 0; i < num_views; ++i) {
    const size_t start = (i % 2 == 0) ? (i / 2) % 2 : 20 + (i / 2) % 20;
    ViewDefinition view = MakeChainView(mkb, start, 3).MoveValue();
    view.set_name("BV" + std::to_string(i));
    EXPECT_TRUE(system.RegisterView(view).ok());
  }
  return system;
}

TEST(ParallelSyncTest, ShardedDrainIsDeterministicAcrossShardsAndThreads) {
  const std::vector<CapabilityChange> stream = {
      CapabilityChange::DeleteAttribute("R1", "P1"),
      CapabilityChange::DeleteRelation("R1"),
      CapabilityChange::RenameRelation("R21", "R21x"),
      CapabilityChange::DeleteRelation("R30"),
  };

  std::string reference_reports;  // merged reports: shard-count invariant
  std::map<size_t, std::string> reference_shards;  // per-shard, per count
  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      for (const bool parallel_drain : {false, true}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads) +
                     (parallel_drain ? " par" : " seq"));
        ShardedEveSystem system = MakeShardedBatchSystem(24, shards);
        system.SetSyncParallelism(threads);
        for (const CapabilityChange& change : stream) {
          ASSERT_TRUE(system.EnqueueChange(change).ok());
        }
        const Result<std::vector<ChangeReport>> reports =
            parallel_drain ? system.DrainSyncQueueParallel()
                           : system.DrainSyncQueue();
        ASSERT_TRUE(reports.ok()) << reports.status();
        ASSERT_EQ(reports.value().size(), stream.size());
        EXPECT_EQ(system.queued_changes(), 0u);

        std::string merged;
        for (const ChangeReport& report : reports.value()) {
          merged += report.ToString() + "\n====\n";
        }
        std::string per_shard;
        for (size_t s = 0; s < shards; ++s) {
          per_shard += "== shard " + std::to_string(s) + "\n" +
                       SaveMkb(system.shard(s).mkb()) +
                       SaveViews(system.shard(s));
        }
        if (reference_reports.empty()) {
          reference_reports = merged;
        } else {
          EXPECT_EQ(merged, reference_reports);
        }
        const auto it = reference_shards.find(shards);
        if (it == reference_shards.end()) {
          reference_shards[shards] = per_shard;
        } else {
          EXPECT_EQ(per_shard, it->second);
        }
      }
    }
  }
}

TEST(ParallelSyncTest, ShardedParallelDrainStopsAtTheFailingChange) {
  // A mid-stream prepare failure (unknown relation) must stop both drain
  // modes at the same change, with the same error, the same applied
  // prefix, and the remainder still queued.
  const std::vector<CapabilityChange> stream = {
      CapabilityChange::DeleteRelation("R1"),
      CapabilityChange::DeleteRelation("NoSuchRelation"),
      CapabilityChange::DeleteRelation("R30"),
  };
  std::string sequential_state;
  Status sequential_error;
  for (const bool parallel_drain : {false, true}) {
    SCOPED_TRACE(parallel_drain ? "par" : "seq");
    ShardedEveSystem system = MakeShardedBatchSystem(24, 4);
    for (const CapabilityChange& change : stream) {
      ASSERT_TRUE(system.EnqueueChange(change).ok());
    }
    const Result<std::vector<ChangeReport>> reports =
        parallel_drain ? system.DrainSyncQueueParallel()
                       : system.DrainSyncQueue();
    ASSERT_FALSE(reports.ok());
    EXPECT_FALSE(system.poisoned());  // prepare failures abort cleanly
    EXPECT_EQ(system.queued_changes(), 1u);  // R30 still waiting
    EXPECT_EQ(system.admission_stats().failed, 1u);
    std::string state;
    for (size_t s = 0; s < system.shard_count(); ++s) {
      state += SaveMkb(system.shard(s).mkb()) + SaveViews(system.shard(s));
    }
    if (!parallel_drain) {
      sequential_state = state;
      sequential_error = reports.status();
    } else {
      EXPECT_EQ(state, sequential_state);
      EXPECT_EQ(reports.status(), sequential_error);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(&pool, n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForWorksWithoutAPool) {
  std::atomic<size_t> sum{0};
  ParallelFor(nullptr, 100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsOnOnePool) {
  ThreadPool pool(4);
  ThreadPool callers(3);
  std::atomic<size_t> total{0};
  ParallelFor(&callers, 3, [&](size_t) {
    std::atomic<size_t> local{0};
    ParallelFor(&pool, 200, [&](size_t i) { local.fetch_add(i + 1); });
    total.fetch_add(local.load());
  });
  // Each caller sums 1..200 = 20100.
  EXPECT_EQ(total.load(), 3u * 20100u);
}

}  // namespace
}  // namespace eve
