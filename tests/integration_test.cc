// Full-system integration scenarios over the travel-agency federation:
// long change sequences, survival matrices, and cross-checks between the
// EveSystem facade and direct CVS runs.

#include <gtest/gtest.h>

#include "esql/binder.h"
#include "esql/evaluator.h"
#include "eve/eve_system.h"
#include "mkb/evolution.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

Mkb FullMkb() {
  Mkb mkb = MakeTravelAgencyMkb().value();
  EXPECT_TRUE(AddPersonExtension(&mkb).ok());
  EXPECT_TRUE(AddAccidentInsPc(&mkb).ok());
  EXPECT_TRUE(AddFlightResPc(&mkb).ok());
  return mkb;
}

TEST(IntegrationTest, LongChangeSequencePreservesCurableViews) {
  EveSystem system(FullMkb());
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(system.RegisterViewText(AsiaCustomerSql()).ok());
  ASSERT_TRUE(system.RegisterViewText(
                      "CREATE VIEW HotelCars AS SELECT H.City, R.Company "
                      "FROM Hotels H, RentACar R "
                      "WHERE H.Address = R.Location")
                  .ok());
  EXPECT_EQ(system.NumActiveViews(), 3u);

  // 1. An unrelated IS leaves: Tour disappears. Nothing is affected.
  auto report =
      system.ApplyChange(CapabilityChange::DeleteRelation("Tour")).value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 0u);
  EXPECT_EQ(system.NumActiveViews(), 3u);

  // 2. Customer.Addr is deleted: AsiaCustomer rewrites via Person (Ex. 4).
  report = system
               .ApplyChange(
                   CapabilityChange::DeleteAttribute("Customer", "Addr"))
               .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  EXPECT_TRUE(system.GetView("AsiaCustomer")
                  .value()
                  ->definition.HasFromRelation("Person"));
  EXPECT_EQ(system.NumActiveViews(), 3u);

  // 3. Customer disappears. CustomerPassengersAsia rewrites through its
  // covers (Ex. 9-10). AsiaCustomer, however, was already rerouted through
  // Person, and Person's only join constraint went through Customer — with
  // Customer gone Person is unreachable in H'(MKB'), so the view is
  // correctly disabled (Def. 3's replacement set is empty).
  report = system.ApplyChange(CapabilityChange::DeleteRelation("Customer"))
               .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u)
      << report.ToString();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kDisabled), 1u);
  EXPECT_EQ(system.NumActiveViews(), 2u);
  EXPECT_FALSE(system.GetView("CustomerPassengersAsia")
                   .value()
                   ->definition.ReferencesRelation("Customer"));

  // 4. Hotels renamed: HotelCars follows.
  report =
      system.ApplyChange(CapabilityChange::RenameRelation("Hotels", "Inns"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  EXPECT_TRUE(
      system.GetView("HotelCars").value()->definition.HasFromRelation(
          "Inns"));

  // 5. RentACar disappears: no cover for Company — HotelCars dies.
  report =
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kDisabled), 1u);
  EXPECT_EQ(system.NumActiveViews(), 1u);

  EXPECT_EQ(system.change_log().size(), 5u);
}

TEST(IntegrationTest, RewrittenViewsStayEvaluableAcrossChanges) {
  Mkb mkb = FullMkb();
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 60, 21).ok());
  EveSystem system(mkb);
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());

  const Table before =
      EvaluateView(
          system.GetView("CustomerPassengersAsia").value()->definition, db,
          mkb.catalog())
          .value();

  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer")).ok());
  const ViewDefinition& rewritten =
      system.GetView("CustomerPassengersAsia").value()->definition;
  // Evaluate against the pre-change catalog (physical tuples unchanged).
  const Table after = EvaluateView(rewritten, db, mkb.catalog()).value();

  // PC-AI guarantees the rewriting is complete: nothing is lost.
  Table before_projected = before;
  Table after_projected = after;
  EXPECT_TRUE(before_projected.IsSubsetOf(after_projected))
      << "before:\n"
      << before.ToString() << "after:\n"
      << after.ToString();
}

TEST(IntegrationTest, SurvivalMatrixUnderEveryRelationDeletion) {
  // For each relation, run the paper view against delete-relation and
  // record whether CVS preserves it; the expected pattern documents the
  // algorithm's behavior on the Fig. 2 MKB.
  const Mkb mkb = FullMkb();
  const ViewDefinition view =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb.catalog()).value();

  const std::vector<std::pair<std::string, bool>> expectations = {
      {"Customer", true},      // covers via F1/F2 (paper Ex. 9-10)
      {"FlightRes", false},    // PName/Dest/Date have no covers
      {"Participant", false},  // StartDate/Loc sit in indispensable
                               // conditions and have no covers
  };
  for (const auto& [relation, expect_preserved] : expectations) {
    const auto evolution =
        EvolveMkb(mkb, CapabilityChange::DeleteRelation(relation)).value();
    const CvsResult result =
        SynchronizeDeleteRelation(view, relation, mkb, evolution.mkb)
            .value();
    EXPECT_EQ(result.ViewPreserved(), expect_preserved)
        << relation << ": " << result.diagnostics.size()
        << " diagnostics";
  }
}

TEST(IntegrationTest, SyntheticFederationChurn) {
  // A 3x3 grid federation with covers; delete relations one by one and
  // watch views survive while their covers last.
  const Mkb initial = MakeGridMkb(3, 3).value();
  EveSystem system(initial);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 5; ++i) {
    Result<ViewDefinition> view = MakeRandomConnectedView(initial, &rng, 3);
    ASSERT_TRUE(view.ok());
    ViewDefinition named = view.MoveValue();
    named.set_name("view_" + std::to_string(i));
    ASSERT_TRUE(system.RegisterView(named).ok());
  }
  ASSERT_EQ(system.NumViews(), 5u);

  size_t rewritten_total = 0;
  for (const std::string victim : {"R4", "R1"}) {
    const auto report =
        system.ApplyChange(CapabilityChange::DeleteRelation(victim));
    ASSERT_TRUE(report.ok()) << report.status();
    rewritten_total +=
        report.value().CountOutcome(ViewOutcomeKind::kRewritten);
    // Every still-active view must bind against the evolved MKB.
    for (const std::string& name : system.ViewNames()) {
      const RegisteredView* view = system.GetView(name).value();
      if (view->state != ViewState::kActive) continue;
      EXPECT_TRUE(
          BindView(view->definition.ToParsedView(), system.mkb().catalog())
              .ok())
          << name;
    }
  }
  SUCCEED() << rewritten_total << " rewrites across the churn";
}

TEST(IntegrationTest, QuickstartScenarioEndToEnd) {
  // The README quickstart, as a test: build, change, synchronize, compare.
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddAccidentInsPc(&mkb).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 40, 7).ok());

  const ViewDefinition view =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb.catalog()).value();
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("Customer")).value();
  const CvsResult result =
      SynchronizeDeleteRelation(view, "Customer", mkb, evolution.mkb)
          .value();
  ASSERT_EQ(result.rewritings.size(), 2u);

  const FunctionRegistry registry = FunctionRegistry::Default();
  const Table before =
      EvaluateView(view, db, mkb.catalog(), &registry).value();
  const Table after = EvaluateView(result.rewritings[0].view, db,
                                   mkb.catalog(), &registry)
                          .value();
  // The Accident-Ins rewriting reproduces the original extent exactly on
  // this constraint-consistent state (Birthday determines Age via F3).
  EXPECT_TRUE(before.SetEquals(after)) << "before:\n"
                                       << before.ToString() << "after:\n"
                                       << after.ToString();
}

}  // namespace
}  // namespace eve
