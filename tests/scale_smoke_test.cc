// Large-pool smoke test for the sharded serving core. By default it
// registers a modest pool so plain ctest stays fast; CI's dedicated smoke
// step raises EVE_SCALE_VIEWS to the ISSUE target of one million
// registered views (reduced again under sanitizers). The assertions are
// scale-independent: bulk registration lands every view on its hash
// shard, a capability change touches only the affected views' shards, and
// pinned snapshot reads stay available throughout.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/sharding.h"
#include "eve/sharded_system.h"
#include "mkb/capability_change.h"
#include "workload/generator.h"

namespace eve {
namespace {

size_t ScaleViews() {
  const char* env = std::getenv("EVE_SCALE_VIEWS");
  if (env != nullptr && *env != '\0') {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return 50000;
}

TEST(ScaleSmokeTest, BulkLoadServeAndSyncAtScale) {
  const size_t num_views = ScaleViews();
  ChainMkbSpec mkb_spec;
  mkb_spec.length = 64;
  mkb_spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(mkb_spec).MoveValue();

  ViewPoolSpec pool_spec;
  pool_spec.num_views = num_views;
  pool_spec.zipf_s = 1.1;
  pool_spec.max_span = 1;  // bind-cheap single-relation views
  pool_spec.seed = 7;
  const std::vector<ViewDefinition> pool =
      MakeViewPool(mkb, pool_spec).MoveValue();

  ShardedEveSystem system(mkb, {}, 16);
  // Million-view configuration: versions share the VIEWS segment (O(MKB)
  // commits) and reports list only affected views (O(affected) reports).
  system.SetVersioningMode(VersioningMode::kMkbOnly);
  system.SetReportUnaffected(false);
  ASSERT_TRUE(system.RegisterViewsBulk(pool).ok());
  ASSERT_EQ(system.NumViews(), num_views);

  // Every shard carries a share of the pool, each view on its hash shard.
  for (size_t s = 0; s < 16; ++s) {
    EXPECT_GT(system.shard(s).NumViews(), 0u) << "shard " << s;
  }
  for (size_t i = 0; i < 100 && i < pool.size(); ++i) {
    const std::string& name = pool[i].name();
    EXPECT_EQ(system.shard(ShardOf(name, 16)).GetView(name).ok(), true);
  }

  // A change at the cold end of the zipfian chain affects a thin slice;
  // the report is O(affected), not O(pool).
  const std::shared_ptr<const ShardedSnapshot> pinned = system.PinPublished();
  const CapabilityChange change = CapabilityChange::DeleteRelation("R63");
  const size_t affected = system.AffectedViews(change).size();
  ASSERT_LT(affected, num_views / 4);
  const Result<ChangeReport> report = system.ApplyChange(change);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().outcomes.size(), affected);

  // The pre-change pin survived the commit; the fresh pin moved on.
  ASSERT_NE(pinned, nullptr);
  EXPECT_LT(pinned->epoch, system.PinPublished()->epoch);
  EXPECT_EQ(system.NumViews(), num_views);
}

}  // namespace
}  // namespace eve
