#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/date.h"
#include "types/schema.h"
#include "types/value.h"

namespace eve {
namespace {

// --- DataType -------------------------------------------------------------

TEST(DataTypeTest, RoundTripNames) {
  for (DataType t : {DataType::kBool, DataType::kInt, DataType::kDouble,
                     DataType::kString, DataType::kDate}) {
    const auto parsed = DataTypeFromString(DataTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
}

TEST(DataTypeTest, ParseAliases) {
  EXPECT_EQ(DataTypeFromString("INTEGER").value(), DataType::kInt);
  EXPECT_EQ(DataTypeFromString("varchar").value(), DataType::kString);
  EXPECT_EQ(DataTypeFromString("REAL").value(), DataType::kDouble);
  EXPECT_EQ(DataTypeFromString("Boolean").value(), DataType::kBool);
}

TEST(DataTypeTest, ParseUnknownFails) {
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

TEST(DataTypeTest, ImplicitConversion) {
  EXPECT_TRUE(IsImplicitlyConvertible(DataType::kInt, DataType::kInt));
  EXPECT_TRUE(IsImplicitlyConvertible(DataType::kInt, DataType::kDouble));
  EXPECT_TRUE(IsImplicitlyConvertible(DataType::kNull, DataType::kString));
  EXPECT_FALSE(IsImplicitlyConvertible(DataType::kDouble, DataType::kInt));
  EXPECT_FALSE(IsImplicitlyConvertible(DataType::kString, DataType::kDate));
}

TEST(DataTypeTest, OrderedAndNumericPredicates) {
  EXPECT_TRUE(IsOrdered(DataType::kDate));
  EXPECT_TRUE(IsOrdered(DataType::kString));
  EXPECT_FALSE(IsOrdered(DataType::kBool));
  EXPECT_TRUE(IsNumeric(DataType::kInt));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kDate));
}

// --- Date -------------------------------------------------------------------

TEST(DateTest, EpochIsZero) {
  const Date date = Date::FromYmd(1970, 1, 1).value();
  EXPECT_EQ(date.days_since_epoch(), 0);
}

TEST(DateTest, RoundTripYmd) {
  const Date date = Date::FromYmd(2026, 7, 7).value();
  EXPECT_EQ(date.year(), 2026);
  EXPECT_EQ(date.month(), 7);
  EXPECT_EQ(date.day(), 7);
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(Date::FromYmd(2024, 2, 29).ok());
  EXPECT_FALSE(Date::FromYmd(2023, 2, 29).ok());
  EXPECT_TRUE(Date::FromYmd(2000, 2, 29).ok());   // divisible by 400
  EXPECT_FALSE(Date::FromYmd(1900, 2, 29).ok());  // divisible by 100 only
}

TEST(DateTest, RejectsOutOfRange) {
  EXPECT_FALSE(Date::FromYmd(2020, 13, 1).ok());
  EXPECT_FALSE(Date::FromYmd(2020, 0, 1).ok());
  EXPECT_FALSE(Date::FromYmd(2020, 4, 31).ok());
  EXPECT_FALSE(Date::FromYmd(2020, 1, 0).ok());
}

TEST(DateTest, ParseAndToString) {
  const Date date = Date::Parse("1998-03-27").value();
  EXPECT_EQ(date.ToString(), "1998-03-27");
  EXPECT_FALSE(Date::Parse("not-a-date").ok());
  EXPECT_FALSE(Date::Parse("2020-02-30").ok());
}

TEST(DateTest, AddDaysCrossesMonthBoundary) {
  const Date date = Date::FromYmd(2026, 1, 30).value().AddDays(3);
  EXPECT_EQ(date.ToString(), "2026-02-02");
}

TEST(DateTest, Ordering) {
  const Date early = Date::FromYmd(1998, 3, 27).value();
  const Date late = Date::FromYmd(2026, 7, 7).value();
  EXPECT_LT(early, late);
  EXPECT_EQ(early, Date::Parse("1998-03-27").value());
}

TEST(DateTest, DifferenceInDays) {
  const Date a = Date::FromYmd(2026, 7, 7).value();
  const Date b = Date::FromYmd(2026, 6, 7).value();
  EXPECT_EQ(a.days_since_epoch() - b.days_since_epoch(), 30);
}

// --- Value ------------------------------------------------------------------

TEST(ValueTest, TypesAreReported) {
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt);
  EXPECT_EQ(Value::Double(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::MakeDate(Date()).type(), DataType::kDate);
}

TEST(ValueTest, NullDetection) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int(4).AsDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble().value(), 2.5);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::MakeDate(Date::FromYmd(1998, 1, 2).value()).ToString(),
            "1998-01-02");
}

TEST(ValueTest, CompareNumericWidening) {
  EXPECT_EQ(Compare(Value::Int(2), Value::Double(2.0)),
            CompareResult::kEqual);
  EXPECT_EQ(Compare(Value::Int(2), Value::Double(2.5)),
            CompareResult::kLess);
  EXPECT_EQ(Compare(Value::Double(3.0), Value::Int(2)),
            CompareResult::kGreater);
}

TEST(ValueTest, CompareStringsAndDates) {
  EXPECT_EQ(Compare(Value::String("a"), Value::String("b")),
            CompareResult::kLess);
  EXPECT_EQ(Compare(Value::MakeDate(Date(1)), Value::MakeDate(Date(1))),
            CompareResult::kEqual);
  EXPECT_EQ(Compare(Value::MakeDate(Date(2)), Value::MakeDate(Date(1))),
            CompareResult::kGreater);
}

TEST(ValueTest, CompareNullYieldsNull) {
  EXPECT_EQ(Compare(Value::Null(), Value::Int(1)), CompareResult::kNull);
  EXPECT_EQ(Compare(Value::Int(1), Value::Null()), CompareResult::kNull);
  EXPECT_EQ(Compare(Value::Null(), Value::Null()), CompareResult::kNull);
}

TEST(ValueTest, CompareMismatchedTypesIncomparable) {
  EXPECT_EQ(Compare(Value::String("1"), Value::Int(1)),
            CompareResult::kIncomparable);
  EXPECT_EQ(Compare(Value::MakeDate(Date(0)), Value::Int(0)),
            CompareResult::kIncomparable);
}

TEST(ValueTest, StrictEquality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));  // different kinds
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingForSorting) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_FALSE(Value::Int(2) < Value::Int(2));
  // NULL sorts before values (variant index order).
  EXPECT_TRUE(Value::Null() < Value::Int(0));
}

// --- Schema / Tuple ----------------------------------------------------------

TEST(SchemaTest, CreateValidatesDuplicatesAndEmptyNames) {
  EXPECT_TRUE(Schema::Create({{"a", DataType::kInt}}).ok());
  EXPECT_FALSE(
      Schema::Create({{"a", DataType::kInt}, {"a", DataType::kInt}}).ok());
  EXPECT_FALSE(Schema::Create({{"", DataType::kInt}}).ok());
}

TEST(SchemaTest, IndexLookup) {
  const Schema schema({{"a", DataType::kInt}, {"b", DataType::kString}});
  EXPECT_EQ(schema.IndexOf("b"), 1u);
  EXPECT_FALSE(schema.IndexOf("c").has_value());
  EXPECT_TRUE(schema.Contains("a"));
  EXPECT_EQ(schema.size(), 2u);
}

TEST(SchemaTest, ToStringListsAttributes) {
  const Schema schema({{"a", DataType::kInt}});
  EXPECT_EQ(schema.ToString(), "(a: int)");
}

TEST(TupleTest, ValidateArity) {
  const Schema schema({{"a", DataType::kInt}, {"b", DataType::kString}});
  EXPECT_FALSE(ValidateTuple(schema, {Value::Int(1)}).ok());
  EXPECT_TRUE(
      ValidateTuple(schema, {Value::Int(1), Value::String("x")}).ok());
}

TEST(TupleTest, ValidateTypesWithWideningAndNulls) {
  const Schema schema({{"a", DataType::kDouble}});
  EXPECT_TRUE(ValidateTuple(schema, {Value::Int(1)}).ok());  // widening
  EXPECT_TRUE(ValidateTuple(schema, {Value::Null()}).ok());
  EXPECT_FALSE(ValidateTuple(schema, {Value::String("x")}).ok());
}

TEST(TupleTest, ToStringFormats) {
  EXPECT_EQ(TupleToString({Value::Int(1), Value::String("a")}), "(1, 'a')");
  EXPECT_EQ(TupleToString({}), "()");
}

}  // namespace
}  // namespace eve
