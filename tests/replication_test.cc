// Replicated eved, in process: cluster parsing and the deterministic
// election rule, the hub's ring/resume/snapshot bootstrap decisions,
// bounded-staleness accounting, semi-sync ack waiting, the READ STALENESS
// and SHOW REPLICATION session controls, NetClient's transport-retry
// failover across a node list — and a real 3-node cluster (journal
// shipping, convergence to byte-identical state, kill-the-primary
// failover, old-primary rejoin, repl.* failpoints in error mode).

#include <gtest/gtest.h>

#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/console.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "net/replication.h"
#include "net/server.h"

namespace eve {
namespace net {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Binds an ephemeral port, records it, releases it. The tiny window until
// the node binds it again is acceptable in tests.
uint16_t ReservePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int bound = ::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  EXPECT_EQ(bound, 0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "eve_repl_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(++counter);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

bool WaitUntil(const std::function<bool()>& predicate,
               uint64_t timeout_micros = 10'000'000) {
  const uint64_t deadline = NowMicros() + timeout_micros;
  while (NowMicros() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

std::string Define(int i) {
  return "DEFINE SOURCE IS" + std::to_string(i) + " RELATION Rel" +
         std::to_string(i) + " (Name string, Age int)";
}

// --- Pure functions ---------------------------------------------------------

TEST(ReplParseTest, NodeAddressRoundTrip) {
  const Result<NodeAddress> address = ParseNodeAddress("127.0.0.1:4242");
  ASSERT_TRUE(address.ok());
  EXPECT_EQ(address.value().host, "127.0.0.1");
  EXPECT_EQ(address.value().port, 4242);
  EXPECT_EQ(address.value().ToString(), "127.0.0.1:4242");
  EXPECT_FALSE(ParseNodeAddress("no-port").ok());
  EXPECT_FALSE(ParseNodeAddress(":80").ok());
  EXPECT_FALSE(ParseNodeAddress("h:").ok());
  EXPECT_FALSE(ParseNodeAddress("h:99999").ok());
  EXPECT_FALSE(ParseNodeAddress("h:12x").ok());
}

TEST(ReplParseTest, ClusterSpec) {
  const Result<std::map<std::string, NodeAddress>> cluster =
      ParseCluster("n1=127.0.0.1:1001, n2=127.0.0.1:1002,n3=127.0.0.1:1003");
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(cluster.value().size(), 3u);
  EXPECT_EQ(cluster.value().at("n2").port, 1002);
  EXPECT_FALSE(ParseCluster("").ok());
  EXPECT_FALSE(ParseCluster("n1=127.0.0.1:1,n1=127.0.0.1:2").ok());
  EXPECT_FALSE(ParseCluster("bare").ok());
}

TEST(ReplElectionTest, ChooseLeaderIsDeterministic) {
  ReplStatus a;
  a.node_id = "a";
  a.epoch = 3;
  a.applied_version = 10;
  ReplStatus b = a;
  b.node_id = "b";
  // Higher epoch wins regardless of position.
  b.epoch = 4;
  b.applied_version = 1;
  EXPECT_EQ(ChooseLeader({a, b}), "b");
  // Same epoch: higher position wins (no acked commit may be lost).
  b.epoch = 3;
  b.applied_version = 11;
  EXPECT_EQ(ChooseLeader({a, b}), "b");
  // Full tie: min node id, so every candidate picks the same winner.
  b.applied_version = 10;
  EXPECT_EQ(ChooseLeader({a, b}), "a");
  EXPECT_EQ(ChooseLeader({b, a}), "a");
  EXPECT_EQ(ChooseLeader({}), "");
}

TEST(ReplClientTest, TransportBackoffIsDeterministicAndCapped) {
  ClientOptions options;
  options.initial_backoff_micros = 10'000;
  options.max_backoff_micros = 100'000;
  const uint64_t first = TransportBackoffMicros(options, "key", 1);
  EXPECT_EQ(first, TransportBackoffMicros(options, "key", 1));
  for (uint64_t attempt = 1; attempt <= 12; ++attempt) {
    const uint64_t delay = TransportBackoffMicros(options, "key", attempt);
    EXPECT_GE(delay, 10'000u);
    // Cap plus the half-cap jitter width.
    EXPECT_LE(delay, 100'000u + 50'001u);
  }
  // Distinct keys de-synchronize (with overwhelming probability for FNV).
  EXPECT_NE(TransportBackoffMicros(options, "key-a", 3),
            TransportBackoffMicros(options, "key-b", 3));
}

// --- Hub unit tests ---------------------------------------------------------

class HubTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().Reset(); }
  void TearDown() override { Failpoints::Instance().Reset(); }

  ReplicationOptions Options(const std::string& node_id,
                             const std::string& primary_of) {
    ReplicationOptions options;
    options.node_id = node_id;
    options.primary_of = primary_of;
    options.data_dir = FreshDir("hub");
    options.cluster = {{"n1", {"127.0.0.1", 1001}},
                       {"n2", {"127.0.0.1", 1002}},
                       {"n3", {"127.0.0.1", 1003}}};
    return options;
  }
};

TEST_F(HubTest, PrimaryBumpsEpochAcrossRestarts) {
  ReplicationOptions options = Options("n1", "");
  Console console;
  {
    ReplicationHub hub(options, &console);
    ASSERT_TRUE(hub.Initialize().ok());
    EXPECT_EQ(hub.role(), ReplRole::kPrimary);
    EXPECT_EQ(hub.epoch(), 1u);
  }
  {
    // Same data dir: the restarted primary fences its old epoch out.
    ReplicationHub hub(options, &console);
    ASSERT_TRUE(hub.Initialize().ok());
    EXPECT_EQ(hub.epoch(), 2u);
  }
}

TEST_F(HubTest, ResumeFromRingAndSnapshotOtherwise) {
  Console console;
  ReplicationHub hub(Options("n1", ""), &console);
  ASSERT_TRUE(hub.Initialize().ok());
  for (int i = 0; i < 3; ++i) {
    hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  }
  EXPECT_EQ(hub.position(), 3u);

  std::vector<FrameType> types;
  ReplicationHub::PeerSender collect = [&types](std::string bytes) {
    FrameDecoder decoder;
    decoder.Feed(bytes);
    while (std::optional<Frame> frame = decoder.Next()) {
      types.push_back(frame->type);
    }
  };

  // Caught-up-to-1 with the right epoch: records 2 and 3 replay from the
  // ring; no snapshot.
  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = hub.epoch();
  hello.applied_version = 1;
  ASSERT_TRUE(hub.Subscribe(hello, 100, collect).ok());
  EXPECT_EQ(types, (std::vector<FrameType>{FrameType::kReplRecord,
                                           FrameType::kReplRecord}));
  EXPECT_EQ(hub.stats().resumes, 1u);

  // Wrong epoch: full snapshot bootstrap.
  types.clear();
  hello.epoch = hub.epoch() + 7;
  ASSERT_TRUE(hub.Subscribe(hello, 101, collect).ok());
  EXPECT_EQ(types, std::vector<FrameType>{FrameType::kReplSnapshot});
  EXPECT_EQ(hub.stats().snapshots_sent, 1u);

  // A position ahead of the primary is impossible to resume: snapshot.
  types.clear();
  hello.epoch = hub.epoch();
  hello.applied_version = 9;
  ASSERT_TRUE(hub.Subscribe(hello, 102, collect).ok());
  EXPECT_EQ(types, std::vector<FrameType>{FrameType::kReplSnapshot});
}

TEST_F(HubTest, RingEvictionForcesSnapshot) {
  Console console;
  ReplicationOptions options = Options("n1", "");
  options.ring_capacity = 2;
  ReplicationHub hub(options, &console);
  ASSERT_TRUE(hub.Initialize().ok());
  for (int i = 0; i < 5; ++i) {
    hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  }
  std::vector<FrameType> types;
  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = hub.epoch();
  hello.applied_version = 1;  // records 2..3 already evicted (ring holds 4,5)
  ASSERT_TRUE(hub.Subscribe(hello, 100,
                            [&types](std::string bytes) {
                              FrameDecoder decoder;
                              decoder.Feed(bytes);
                              while (std::optional<Frame> f = decoder.Next()) {
                                types.push_back(f->type);
                              }
                            })
                  .ok());
  EXPECT_EQ(types, std::vector<FrameType>{FrameType::kReplSnapshot});
}

TEST_F(HubTest, SemiSyncWaitsForAcksAndTimesOut) {
  Console console;
  ReplicationOptions options = Options("n1", "");
  options.ack_replicas = 1;
  options.ack_timeout_micros = 60'000;
  ReplicationHub hub(options, &console);
  ASSERT_TRUE(hub.Initialize().ok());
  EXPECT_TRUE(hub.RequiresAck());

  hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  // No subscribed peer: the wait must time out, not hang.
  EXPECT_FALSE(hub.WaitForReplication(1));
  EXPECT_EQ(hub.stats().ack_timeouts, 1u);

  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = hub.epoch();
  hello.applied_version = 0;
  ASSERT_TRUE(hub.Subscribe(hello, 100, [](std::string) {}).ok());
  std::thread acker([&hub] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ReplAck ack;
    ack.node_id = "n2";
    ack.epoch = hub.epoch();
    ack.applied_seq = 1;
    ack.applied_version = 0;
    hub.OnAck(ack);
  });
  EXPECT_TRUE(hub.WaitForReplication(1));
  acker.join();
}

TEST_F(HubTest, StalenessBoundTracksHeartbeats) {
  Console console;
  ReplicationHub hub(Options("n3", "n1"), &console);
  ASSERT_TRUE(hub.Initialize().ok());
  ASSERT_EQ(hub.role(), ReplRole::kReplica);

  uint64_t lag = 0;
  bool known = true;
  // Never heard a heartbeat: the lag is unknown and every bound fails.
  EXPECT_FALSE(hub.WithinStalenessBound(1'000'000, &lag, &known));
  EXPECT_FALSE(known);

  ReplHeartbeat heartbeat;
  heartbeat.epoch = hub.epoch();
  heartbeat.tip_version = 5;
  hub.OnPrimaryHeartbeat(heartbeat);
  EXPECT_FALSE(hub.WithinStalenessBound(3, &lag, &known));
  EXPECT_TRUE(known);
  EXPECT_EQ(lag, 5u);
  EXPECT_TRUE(hub.WithinStalenessBound(5, &lag, &known));

  hub.SetAppliedPosition(5, 0);
  EXPECT_TRUE(hub.WithinStalenessBound(0, &lag, &known));
  EXPECT_EQ(lag, 0u);
}

TEST_F(HubTest, VotesArePersistedOncePerEpoch) {
  Console console;
  const ReplicationOptions options = Options("n3", "n1");
  ReplicationHub hub(options, &console);
  ASSERT_TRUE(hub.Initialize().ok());  // replica, never heard a heartbeat

  ReplVoteReq request;
  request.candidate = "n2";
  request.epoch = hub.epoch() + 5;
  request.last_epoch = hub.epoch();
  request.last_position = 0;
  ReplVote vote = hub.HandleVoteRequest(request);
  EXPECT_TRUE(vote.granted);
  EXPECT_EQ(vote.voter, "n3");
  EXPECT_EQ(vote.epoch, request.epoch);
  // The requested epoch fed the promotion fence.
  EXPECT_GE(hub.observed_epoch(), request.epoch);

  // Same epoch, different candidate: this epoch's vote is already spent.
  ReplVoteReq rival = request;
  rival.candidate = "n1";
  EXPECT_FALSE(hub.HandleVoteRequest(rival).granted);
  // Re-asking for the SAME (epoch, candidate) is idempotent (retries).
  EXPECT_TRUE(hub.HandleVoteRequest(request).granted);
  // Older epochs are never granted.
  ReplVoteReq stale = request;
  stale.epoch = request.epoch - 1;
  EXPECT_FALSE(hub.HandleVoteRequest(stale).granted);
  // Unknown candidates are never granted.
  ReplVoteReq stranger = request;
  stranger.epoch = request.epoch + 10;
  stranger.candidate = "nX";
  EXPECT_FALSE(hub.HandleVoteRequest(stranger).granted);

  // The vote survives a restart: the node must not double-vote after a
  // crash between granting and the candidate promoting.
  ReplicationHub restarted(options, &console);
  ASSERT_TRUE(restarted.Initialize().ok());
  EXPECT_FALSE(restarted.HandleVoteRequest(rival).granted);
  EXPECT_TRUE(restarted.HandleVoteRequest(request).granted);
}

TEST_F(HubTest, VotesApplyTheUpToDateRule) {
  Console console;
  ReplicationHub hub(Options("n3", "n1"), &console);
  ASSERT_TRUE(hub.Initialize().ok());
  hub.SetAppliedPosition(10, 0);

  // A candidate whose log is behind this node's must not be elected: the
  // acked-commit quorum intersects every vote majority, and this is the
  // check that makes the intersection matter.
  ReplVoteReq behind;
  behind.candidate = "n2";
  behind.epoch = hub.epoch() + 1;
  behind.last_epoch = hub.epoch();
  behind.last_position = 9;
  EXPECT_FALSE(hub.HandleVoteRequest(behind).granted);

  ReplVoteReq even = behind;
  even.epoch = hub.epoch() + 2;
  even.last_position = 10;
  EXPECT_TRUE(hub.HandleVoteRequest(even).granted);
}

TEST_F(HubTest, LivePrimariesAndTheirReplicasRefuseVotes) {
  Console console;
  // A primary never votes someone else into its own job.
  ReplicationHub primary(Options("n1", ""), &console);
  ASSERT_TRUE(primary.Initialize().ok());
  ReplVoteReq request;
  request.candidate = "n2";
  request.epoch = primary.epoch() + 1;
  request.last_epoch = primary.epoch();
  request.last_position = 0;
  EXPECT_FALSE(primary.HandleVoteRequest(request).granted);
  // … but the fence still advances: it can never mint the asked epoch.
  EXPECT_GE(primary.observed_epoch(), request.epoch);

  // A replica inside a live primary lease refuses to depose it.
  Console replica_console;
  ReplicationHub replica(Options("n3", "n1"), &replica_console);
  ASSERT_TRUE(replica.Initialize().ok());
  ReplHeartbeat heartbeat;
  heartbeat.epoch = replica.epoch();
  heartbeat.tip_version = 0;
  replica.OnPrimaryHeartbeat(heartbeat);
  EXPECT_FALSE(replica.HandleVoteRequest(request).granted);
}

TEST_F(HubTest, BootstrapPeersStartUnacked) {
  Console console;
  ReplicationOptions options = Options("n1", "");
  options.ack_replicas = 1;
  options.ack_timeout_micros = 50'000;
  ReplicationHub hub(options, &console);
  ASSERT_TRUE(hub.Initialize().ok());
  for (int i = 0; i < 3; ++i) {
    hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  }

  // A bootstrapping peer CLAIMS it already applied position 3, but its
  // hello was not resumable — the claim is unverified (its snapshot
  // install is still in flight). It must not satisfy semi-sync.
  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = 0;  // bootstrap path
  hello.applied_version = 3;
  ASSERT_TRUE(hub.Subscribe(hello, 100, [](std::string) {}).ok());
  EXPECT_FALSE(hub.WaitForReplication(3));

  // Only a real ack counts.
  ReplAck ack;
  ack.node_id = "n2";
  ack.epoch = hub.epoch();
  ack.applied_seq = 3;
  hub.OnAck(ack);
  EXPECT_TRUE(hub.WaitForReplication(3));
}

TEST_F(HubTest, EffectiveAckQuorumIntersectsElections) {
  Console console;
  ReplicationOptions options = Options("n1", "");
  options.cluster["n4"] = {"127.0.0.1", 1004};
  options.cluster["n5"] = {"127.0.0.1", 1005};
  options.ack_replicas = 1;  // configured below the safe floor
  options.ack_timeout_micros = 50'000;
  ReplicationHub hub(options, &console);
  ASSERT_TRUE(hub.Initialize().ok());
  // 5 nodes: primary + 2 acks form a majority, which intersects every
  // 3-of-5 vote quorum — a bare single ack would let a majority that
  // excludes the acked replica elect a shorter log.
  EXPECT_EQ(hub.effective_ack_replicas(), 2u);

  hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = hub.epoch();
  hello.applied_version = 0;
  ASSERT_TRUE(hub.Subscribe(hello, 100, [](std::string) {}).ok());
  hello.node_id = "n3";
  ASSERT_TRUE(hub.Subscribe(hello, 101, [](std::string) {}).ok());

  ReplAck ack;
  ack.node_id = "n2";
  ack.epoch = hub.epoch();
  ack.applied_seq = 1;
  hub.OnAck(ack);
  // One ack is not a quorum at cluster size 5.
  EXPECT_FALSE(hub.WaitForReplication(1));
  ack.node_id = "n3";
  hub.OnAck(ack);
  EXPECT_TRUE(hub.WaitForReplication(1));

  // ack_replicas = 0 stays an explicit async opt-out.
  ReplicationOptions async_options = Options("n1", "");
  async_options.ack_replicas = 0;
  ReplicationHub async_hub(async_options, &console);
  ASSERT_TRUE(async_hub.Initialize().ok());
  EXPECT_EQ(async_hub.effective_ack_replicas(), 0u);
  EXPECT_FALSE(async_hub.RequiresAck());
}

TEST_F(HubTest, OldEpochResumeStopsAtThePromotionBase) {
  Console console;
  ReplicationHub hub(Options("n1", ""), &console);
  ASSERT_TRUE(hub.Initialize().ok());
  const uint64_t old_epoch = hub.epoch();
  for (int i = 0; i < 3; ++i) {
    hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  }
  // Re-promotion at position 3: the election certified THIS log through 3.
  ASSERT_TRUE(hub.Demote(ReplRole::kCandidate).ok());
  ASSERT_TRUE(hub.Promote(old_epoch + 4).ok());
  for (int i = 0; i < 2; ++i) {
    hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  }
  ASSERT_EQ(hub.position(), 5u);

  std::vector<FrameType> types;
  ReplicationHub::PeerSender collect = [&types](std::string bytes) {
    FrameDecoder decoder;
    decoder.Feed(bytes);
    while (std::optional<Frame> frame = decoder.Next()) {
      types.push_back(frame->type);
    }
  };

  // An old-epoch position at or below the promotion base is a certified
  // prefix: resume.
  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = old_epoch;
  hello.applied_version = 2;
  ASSERT_TRUE(hub.Subscribe(hello, 100, collect).ok());
  EXPECT_EQ(types.size(), 3u);  // records 3, 4, 5
  for (const FrameType type : types) {
    EXPECT_EQ(type, FrameType::kReplRecord);
  }

  // An old-epoch position PAST the base can only be a divergent suffix
  // (records this primary never saw under a dead lineage): bootstrap,
  // even though the ring technically covers the position.
  types.clear();
  hello.applied_version = 4;
  ASSERT_TRUE(hub.Subscribe(hello, 101, collect).ok());
  EXPECT_EQ(types, std::vector<FrameType>{FrameType::kReplSnapshot});

  // The same position under the CURRENT epoch is this lineage: resume.
  types.clear();
  hello.epoch = hub.epoch();
  ASSERT_TRUE(hub.Subscribe(hello, 102, collect).ok());
  EXPECT_EQ(types, std::vector<FrameType>{FrameType::kReplRecord});
}

TEST_F(HubTest, PromoteFencesAndDemoteDropsPeers) {
  Console console;
  ReplicationHub hub(Options("n1", ""), &console);
  ASSERT_TRUE(hub.Initialize().ok());
  hub.OnJournalRecord(JournalRecordKind::kExtendMkb, "body");
  ASSERT_TRUE(hub.Demote(ReplRole::kCandidate).ok());
  EXPECT_EQ(hub.role(), ReplRole::kCandidate);
  EXPECT_EQ(hub.stats().demotions, 1u);
  ASSERT_TRUE(hub.Promote(7).ok());
  EXPECT_EQ(hub.role(), ReplRole::kPrimary);
  EXPECT_EQ(hub.epoch(), 7u);
  // Position is NOT reset: the promoted node's history continues.
  EXPECT_EQ(hub.position(), 1u);
}

// --- Replicated cluster (in process) ----------------------------------------

struct ClusterNode {
  std::string id;
  uint16_t port = 0;
  std::string data_dir;
  std::unique_ptr<ReplicatedNode> node;
};

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().Reset(); }
  void TearDown() override {
    Failpoints::Instance().Reset();
    for (auto& member : nodes_) {
      if (member.node != nullptr) member.node->Stop();
    }
    nodes_.clear();
  }

  // Reserves ports and data dirs for an n-node cluster; nothing starts yet.
  void Plan(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      ClusterNode member;
      member.id = "n" + std::to_string(i + 1);
      member.port = ReservePort();
      member.data_dir = FreshDir(member.id);
      nodes_.push_back(std::move(member));
    }
  }

  std::map<std::string, NodeAddress> ClusterMap() const {
    std::map<std::string, NodeAddress> cluster;
    for (const ClusterNode& member : nodes_) {
      cluster[member.id] = NodeAddress{"127.0.0.1", member.port};
    }
    return cluster;
  }

  // Starts (or restarts) node `index` with the given primary_of.
  void StartNode(size_t index, const std::string& primary_of,
                 uint32_t ack_replicas = 1,
                 uint64_t ack_timeout_micros = 3'000'000) {
    ClusterNode& member = nodes_[index];
    ReplicatedNodeOptions options;
    options.server.host = "127.0.0.1";
    options.server.port = member.port;
    options.server.worker_threads = 2;
    options.repl.node_id = member.id;
    options.repl.cluster = ClusterMap();
    options.repl.primary_of = primary_of;
    options.repl.data_dir = member.data_dir;
    options.repl.lease_micros = 400'000;
    options.repl.heartbeat_micros = 30'000;
    options.repl.ack_replicas = ack_replicas;
    options.repl.ack_timeout_micros = ack_timeout_micros;
    if (snapshot_chunk_bytes_ != 0) {
      options.repl.snapshot_chunk_bytes = snapshot_chunk_bytes_;
    }
    member.node = std::make_unique<ReplicatedNode>();
    const Status started = member.node->Start(options);
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  NetClient ClientFor(size_t index, int transport_retries = 0) {
    ClientOptions options;
    options.host = "127.0.0.1";
    options.port = nodes_[index].port;
    options.max_transport_retries = transport_retries;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (i == index) continue;
      options.nodes.push_back("127.0.0.1:" +
                              std::to_string(nodes_[i].port));
    }
    Result<NetClient> client = NetClient::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.MoveValue();
  }

  bool Converged(size_t primary_index) {
    const uint64_t tip = nodes_[primary_index].node->hub().position();
    for (const ClusterNode& member : nodes_) {
      if (member.node == nullptr || member.node->stopped()) continue;
      if (member.node->hub().position() != tip) return false;
    }
    return true;
  }

  std::string ShowMkb(size_t index) {
    NetClient client = ClientFor(index);
    Result<Response> response = client.Run("SHOW MKB");
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().code, 0) << response.value().error;
    return response.value().output;
  }

  // Waits until `count` replicas have subscribed to node `index`.
  bool WaitForPeers(size_t index, uint64_t count) {
    return WaitUntil([this, index, count] {
      const ReplicationStats stats = nodes_[index].node->hub().stats();
      return stats.snapshots_sent + stats.resumes >= count;
    });
  }

  std::vector<ClusterNode> nodes_;
  // When non-zero, StartNode overrides snapshot_chunk_bytes (tests shrink
  // it to force multi-chunk bootstrap transfers).
  size_t snapshot_chunk_bytes_ = 0;
};

TEST_F(ClusterTest, ShipsApplyAndConvergeByteIdentical) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));

  NetClient client = ClientFor(0);
  for (int i = 1; i <= 8; ++i) {
    Result<Response> response = client.Run(Define(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().code, 0) << response.value().error;
  }
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  const std::string primary_mkb = ShowMkb(0);
  EXPECT_NE(primary_mkb.find("Rel8"), std::string::npos);
  EXPECT_EQ(primary_mkb, ShowMkb(1));
  EXPECT_EQ(primary_mkb, ShowMkb(2));

  // The replicas applied through their own WALs: records_applied moved.
  EXPECT_GT(nodes_[1].node->hub().stats().records_applied, 0u);
  EXPECT_GT(nodes_[2].node->hub().stats().records_applied, 0u);
}

TEST_F(ClusterTest, ReplicaRedirectsWritesToLeader) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));

  // Raw client (no retries): the replica refuses with a leader hint.
  NetClient raw = ClientFor(1);
  Result<Response> refused = raw.Run(Define(1));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().code,
            static_cast<int32_t>(StatusCode::kFailedPrecondition));
  EXPECT_NE(refused.value().error.find(
                "leader=127.0.0.1:" + std::to_string(nodes_[0].port)),
            std::string::npos)
      << refused.value().error;

  // Cluster-aware client: the redirect is chased automatically.
  NetClient chasing = ClientFor(1, /*transport_retries=*/8);
  Result<Response> applied = chasing.Run(Define(2));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().code, 0) << applied.value().error;
  EXPECT_EQ(chasing.leader_hint(),
            "127.0.0.1:" + std::to_string(nodes_[0].port));

  // Reads are always served by replicas.
  Result<Response> read = raw.Run("SHOW VIEWS");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().code, 0);
}

TEST_F(ClusterTest, SemiSyncRefusesUnackedCommits) {
  Plan(3);
  StartNode(0, "", /*ack_replicas=*/1, /*ack_timeout_micros=*/200'000);
  // No replicas at all: the commit is locally durable but cannot be acked,
  // so the client must see an explicit error, not a silent success.
  NetClient client = ClientFor(0);
  Result<Response> response = client.Run(Define(1));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().code,
            static_cast<int32_t>(StatusCode::kInternal));
  EXPECT_NE(response.value().error.find("replication ack timeout"),
            std::string::npos)
      << response.value().error;
  EXPECT_GE(nodes_[0].node->hub().stats().ack_timeouts, 1u);
}

TEST_F(ClusterTest, ReadStalenessBoundGatesReplicaReads) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));
  NetClient primary = ClientFor(0);
  ASSERT_EQ(primary.Run(Define(1)).value().code, 0);
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  NetClient replica = ClientFor(1);
  // The knob echoes, and a fresh replica passes a generous bound.
  Result<Response> set = replica.Run("READ STALENESS 1000000");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value().output, "read staleness bound = 1000000\n");
  ASSERT_TRUE(WaitUntil([this, &replica] {
    const Result<Response> read = replica.Run("SHOW MKB");
    return read.ok() && read.value().code == 0;
  }));

  // Bound 0 right after a write: the replica may pass only once it has
  // caught up AND heard a heartbeat carrying the new tip.
  ASSERT_EQ(primary.Run(Define(2)).value().code, 0);
  ASSERT_TRUE(WaitUntil([this, &replica] {
    const Result<Response> read = replica.Run("SHOW MKB");
    return read.ok() && read.value().code == 0;
  }));

  // NONE resets the bound.
  Result<Response> none = replica.Run("READ STALENESS NONE");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().output, "read staleness bound = none\n");
  // Malformed bound: explicit error.
  Result<Response> bad = replica.Run("READ STALENESS soon");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().code,
            static_cast<int32_t>(StatusCode::kInvalidArgument));
}

TEST_F(ClusterTest, ShowReplicationReportsRolesAndLag) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));

  NetClient primary = ClientFor(0);
  Result<Response> status = primary.Run("SHOW REPLICATION");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status.value().output.find("role=primary"), std::string::npos)
      << status.value().output;
  EXPECT_NE(status.value().output.find("replica n2"), std::string::npos);
  EXPECT_NE(status.value().output.find("replica n3"), std::string::npos);

  NetClient replica = ClientFor(1);
  Result<Response> replica_status = replica.Run("SHOW REPLICATION");
  ASSERT_TRUE(replica_status.ok());
  EXPECT_NE(replica_status.value().output.find("role=replica"),
            std::string::npos)
      << replica_status.value().output;
}

TEST_F(ClusterTest, FailoverElectsSurvivorWithoutLosingAckedCommits) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));

  NetClient client = ClientFor(0, /*transport_retries=*/10);
  for (int i = 1; i <= 5; ++i) {
    Result<Response> response = client.Run(Define(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().code, 0) << response.value().error;
  }
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  // Kill the primary abruptly. Survivors must elect within a few leases.
  nodes_[0].node->Stop();
  size_t new_primary = 0;
  ASSERT_TRUE(WaitUntil([this, &new_primary] {
    for (size_t i = 1; i < nodes_.size(); ++i) {
      if (nodes_[i].node->hub().role() == ReplRole::kPrimary) {
        new_primary = i;
        return true;
      }
    }
    return false;
  }));
  EXPECT_GT(nodes_[new_primary].node->hub().epoch(), 1u);

  // Every acked commit survived the failover.
  ASSERT_TRUE(WaitUntil([this, new_primary] {
    const std::string mkb = ShowMkb(new_primary);
    for (int i = 1; i <= 5; ++i) {
      if (mkb.find("Rel" + std::to_string(i)) == std::string::npos) {
        return false;
      }
    }
    return true;
  }));

  // The cluster-aware client fails over: its old connection is dead, the
  // node list + leader redirect find the new primary. Semi-sync needs the
  // remaining replica subscribed to the new primary first.
  ASSERT_TRUE(WaitUntil([this, new_primary] {
    const ReplicationStats stats = nodes_[new_primary].node->hub().stats();
    return stats.snapshots_sent + stats.resumes >= 1;
  }));
  Result<Response> after = client.Run(Define(6));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.value().code, 0) << after.value().error;
  EXPECT_GE(client.transport_retries(), 1u);

  // The old primary rejoins as a replica of the new leader; its unacked
  // suffix (none here) is discarded by the snapshot/resume handshake, and
  // it converges to byte-identical state.
  StartNode(0, nodes_[new_primary].id);
  ASSERT_TRUE(WaitUntil([this, new_primary] {
    return nodes_[0].node->hub().role() == ReplRole::kReplica &&
           nodes_[0].node->hub().position() ==
               nodes_[new_primary].node->hub().position();
  }));
  EXPECT_EQ(ShowMkb(0), ShowMkb(new_primary));
}

TEST_F(ClusterTest, ChunkedSnapshotBootstrapsLateJoiner) {
  Plan(3);
  // Checkpoints outgrow the frame payload cap in production; 64-byte chunks
  // force the same multi-frame transfer shape at test scale.
  snapshot_chunk_bytes_ = 64;
  StartNode(0, "");
  StartNode(1, "n1");
  ASSERT_TRUE(WaitForPeers(0, 1));

  NetClient client = ClientFor(0);
  for (int i = 1; i <= 6; ++i) {
    Result<Response> response = client.Run(Define(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().code, 0) << response.value().error;
  }

  // The late joiner bootstraps from a checkpoint many times the chunk size:
  // it must reassemble the transfer and install atomically.
  StartNode(2, "n1");
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));
  EXPECT_GE(nodes_[2].node->hub().stats().snapshots_installed, 1u);
  EXPECT_EQ(ShowMkb(2), ShowMkb(0));
}

TEST_F(ClusterTest, ReplFailpointsInErrorModeSelfHeal) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));
  NetClient client = ClientFor(0);

  // ship.record: one peer's stream breaks with a goodbye; it re-syncs.
  Failpoints::Instance().Arm(fp::kReplShipRecord, FailpointAction::kError);
  ASSERT_EQ(client.Run(Define(1)).value().code, 0);
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  // apply.record: a replica abandons the stream and re-syncs from a fresh
  // hello.
  Failpoints::Instance().Arm(fp::kReplApplyRecord, FailpointAction::kError);
  ASSERT_EQ(client.Run(Define(2)).value().code, 0);
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  // ack.send: one dropped ack; the other replica's ack keeps semi-sync
  // moving and the next ack carries the position forward.
  Failpoints::Instance().Arm(fp::kReplAckSend, FailpointAction::kError);
  ASSERT_EQ(client.Run(Define(3)).value().code, 0);
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  const std::string primary_mkb = ShowMkb(0);
  EXPECT_EQ(primary_mkb, ShowMkb(1));
  EXPECT_EQ(primary_mkb, ShowMkb(2));
  const ReplicationStats n2 = nodes_[1].node->hub().stats();
  const ReplicationStats n3 = nodes_[2].node->hub().stats();
  EXPECT_GT(n2.stream_breaks + n3.stream_breaks, 0u);
}

TEST_F(ClusterTest, ReplicaRestartResumesFromLocalWal) {
  Plan(3);
  StartNode(0, "");
  StartNode(1, "n1");
  StartNode(2, "n1");
  ASSERT_TRUE(WaitForPeers(0, 2));
  NetClient client = ClientFor(0);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_EQ(client.Run(Define(i)).value().code, 0);
  }
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));

  // Restart replica n3: it recovers from its own checkpoint+wal and
  // re-subscribes (snapshot or resume — either way it converges).
  nodes_[2].node->Stop();
  nodes_[2].node.reset();
  ASSERT_EQ(client.Run(Define(5)).value().code, 0);
  StartNode(2, "n1");
  ASSERT_TRUE(WaitUntil([this] { return Converged(0); }));
  EXPECT_EQ(ShowMkb(0), ShowMkb(2));
}

// --- Client transport retries (standalone servers) --------------------------

TEST(ClientFailoverTest, RetriesAcrossNodeListOnTransportError) {
  Console console_a;
  Console console_b;
  ServerOptions server_options;
  Server server_a(&console_a, server_options);
  Server server_b(&console_b, server_options);
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());

  ClientOptions options;
  options.host = "127.0.0.1";
  options.port = server_a.port();
  options.nodes = {"127.0.0.1:" + std::to_string(server_b.port())};
  options.max_transport_retries = 5;
  options.initial_backoff_micros = 1'000;
  options.max_backoff_micros = 20'000;
  Result<NetClient> client = NetClient::Connect(options);
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client.value().Run("SHOW MKB").value().code, 0);

  // Kill A: the next statement reconnects to B through the node list.
  server_a.Stop();
  server_a.WaitUntilStopped();
  Result<Response> response = client.value().Run("SHOW MKB");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().code, 0);
  EXPECT_GE(client.value().transport_retries(), 1u);

  server_b.Stop();
  server_b.WaitUntilStopped();
}

TEST(ClientFailoverTest, DefaultClientStillFailsFast) {
  Console console;
  Server server(&console, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions options;
  options.host = "127.0.0.1";
  options.port = server.port();
  Result<NetClient> client = NetClient::Connect(options);
  ASSERT_TRUE(client.ok());
  server.Stop();
  server.WaitUntilStopped();
  // max_transport_retries = 0: the lost connection surfaces immediately.
  EXPECT_FALSE(client.value().Run("SHOW MKB").ok());
  EXPECT_EQ(client.value().transport_retries(), 0u);
}

// --- Session controls without a cluster -------------------------------------

TEST(PlainServerTest, ReplicationStatementsDegradeGracefully) {
  Console console;
  Server server(&console, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions options;
  options.host = "127.0.0.1";
  options.port = server.port();
  Result<NetClient> client = NetClient::Connect(options);
  ASSERT_TRUE(client.ok());

  Result<Response> show = client.value().Run("SHOW REPLICATION");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show.value().output, "replication: disabled\n");

  Result<Response> bound = client.value().Run("READ STALENESS 42");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound.value().output, "read staleness bound = 42\n");

  // Without a hub the bound never gates anything.
  EXPECT_EQ(client.value().Run("SHOW MKB").value().code, 0);
  server.Stop();
  server.WaitUntilStopped();
}

// --- Metrics endpoint --------------------------------------------------------

TEST_F(ClusterTest, MetricsEndpointServesReplicationGauges) {
  Plan(3);
  // Start the primary with a metrics listener.
  {
    ClusterNode& member = nodes_[0];
    ReplicatedNodeOptions options;
    options.server.host = "127.0.0.1";
    options.server.port = member.port;
    options.repl.node_id = member.id;
    options.repl.cluster = ClusterMap();
    options.repl.data_dir = member.data_dir;
    options.repl.lease_micros = 400'000;
    options.repl.heartbeat_micros = 30'000;
    options.repl.ack_replicas = 0;
    options.metrics_port = ReservePort();
    member.node = std::make_unique<ReplicatedNode>();
    ASSERT_TRUE(member.node->Start(options).ok());
  }
  StartNode(1, "n1", /*ack_replicas=*/0);
  StartNode(2, "n1", /*ack_replicas=*/0);
  ASSERT_TRUE(WaitForPeers(0, 2));
  NetClient client = ClientFor(0);
  ASSERT_EQ(client.Run(Define(1)).value().code, 0);

  // Scrape over plain HTTP.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(nodes_[0].node->metrics_port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string body;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    body.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("eve_server_accepted_total"), std::string::npos);
  EXPECT_NE(body.find("eve_admission_submitted_total"), std::string::npos);
  EXPECT_NE(body.find("eve_repl_role 1"), std::string::npos) << body;
  EXPECT_NE(body.find("eve_repl_position 1"), std::string::npos) << body;
  EXPECT_NE(body.find("eve_repl_peer_lag{node=\"n2\"}"), std::string::npos)
      << body;
}

}  // namespace
}  // namespace net
}  // namespace eve
