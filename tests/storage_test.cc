#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/table.h"

namespace eve {
namespace {

Schema TwoColSchema() {
  return Schema({{"a", DataType::kInt}, {"b", DataType::kString}});
}

TEST(TableTest, InsertValidates) {
  Table table(TwoColSchema());
  EXPECT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  EXPECT_FALSE(table.Insert({Value::Int(1)}).ok());
  EXPECT_FALSE(table.Insert({Value::String("x"), Value::String("y")}).ok());
  EXPECT_EQ(table.NumRows(), 1u);
}

TEST(TableTest, DeduplicateRemovesExactDuplicates) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::String("y")}).ok());
  table.Deduplicate();
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(TableTest, SubsetSemantics) {
  Table small(TwoColSchema());
  Table big(TwoColSchema());
  ASSERT_TRUE(small.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(big.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(big.Insert({Value::Int(2), Value::String("y")}).ok());
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_FALSE(small.SetEquals(big));
  EXPECT_TRUE(big.SetEquals(big));
}

TEST(TableTest, SubsetIgnoresDuplicates) {
  Table a(TwoColSchema());
  Table b(TwoColSchema());
  ASSERT_TRUE(a.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(a.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(b.Insert({Value::Int(1), Value::String("x")}).ok());
  EXPECT_TRUE(a.SetEquals(b));
}

TEST(TableTest, EmptyTableIsSubsetOfAnything) {
  Table empty(TwoColSchema());
  Table other(TwoColSchema());
  ASSERT_TRUE(other.Insert({Value::Int(1), Value::String("x")}).ok());
  EXPECT_TRUE(empty.IsSubsetOf(other));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
}

TEST(TableTest, ToStringTruncates) {
  Table table(TwoColSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.Insert({Value::Int(i), Value::String("x")}).ok());
  }
  const std::string rendered = table.ToString(2);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
  EXPECT_NE(rendered.find("(5 rows)"), std::string::npos);
}

TEST(TableTest, ClearResets) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  table.Clear();
  EXPECT_EQ(table.NumRows(), 0u);
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationDef def;
    def.source = "IS1";
    def.name = "R";
    def.schema = TwoColSchema();
    ASSERT_TRUE(catalog_.AddRelation(def).ok());
    RelationDef def2;
    def2.source = "IS2";
    def2.name = "S";
    def2.schema = Schema({{"c", DataType::kInt}});
    ASSERT_TRUE(catalog_.AddRelation(def2).ok());
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(DatabaseTest, CreateAndInsert) {
  ASSERT_TRUE(db_.CreateTable(catalog_, "R").ok());
  EXPECT_TRUE(db_.HasTable("R"));
  EXPECT_TRUE(db_.Insert("R", {Value::Int(1), Value::String("x")}).ok());
  EXPECT_FALSE(db_.Insert("R", {Value::Int(1)}).ok());
  EXPECT_EQ(db_.GetTable("R").value()->NumRows(), 1u);
}

TEST_F(DatabaseTest, CreateTableErrors) {
  EXPECT_EQ(db_.CreateTable(catalog_, "gone").code(), StatusCode::kNotFound);
  ASSERT_TRUE(db_.CreateTable(catalog_, "R").ok());
  EXPECT_EQ(db_.CreateTable(catalog_, "R").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, CreateAllTables) {
  ASSERT_TRUE(db_.CreateAllTables(catalog_).ok());
  EXPECT_EQ(db_.NumTables(), 2u);
  // Idempotent: re-running skips existing tables.
  EXPECT_TRUE(db_.CreateAllTables(catalog_).ok());
}

TEST_F(DatabaseTest, DropAndRename) {
  ASSERT_TRUE(db_.CreateAllTables(catalog_).ok());
  EXPECT_TRUE(db_.DropTable("S").ok());
  EXPECT_FALSE(db_.HasTable("S"));
  EXPECT_EQ(db_.DropTable("S").code(), StatusCode::kNotFound);
  EXPECT_TRUE(db_.RenameTable("R", "R2").ok());
  EXPECT_TRUE(db_.HasTable("R2"));
  EXPECT_EQ(db_.RenameTable("gone", "x").code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, RenameClashes) {
  ASSERT_TRUE(db_.CreateAllTables(catalog_).ok());
  EXPECT_EQ(db_.RenameTable("R", "S").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(db_.RenameTable("R", "R").ok());  // self-rename is a no-op
}

TEST_F(DatabaseTest, GetTableMissing) {
  EXPECT_EQ(db_.GetTable("R").status().code(), StatusCode::kNotFound);
  const Database& const_db = db_;
  EXPECT_EQ(const_db.GetTable("R").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace eve
