#include <gtest/gtest.h>

#include "esql/binder.h"
#include "esql/evaluator.h"
#include "sql/parser.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
  }
  Mkb mkb_;
};

TEST_F(BinderTest, ResolvesAliasesToRelationNames) {
  const ViewDefinition view =
      ParseAndBindView("CREATE VIEW V AS SELECT C.Name FROM Customer C",
                       mkb_.catalog())
          .value();
  EXPECT_EQ(view.select()[0].expr->column(),
            (AttributeRef{"Customer", "Name"}));
  EXPECT_EQ(view.from()[0].name, "Customer");
}

TEST_F(BinderTest, RelationNameUsableAsQualifierAlongsideAlias) {
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT Customer.Name, C.Age FROM Customer C",
      mkb_.catalog())
                                  .value();
  EXPECT_EQ(view.select()[1].expr->column(),
            (AttributeRef{"Customer", "Age"}));
}

TEST_F(BinderTest, ResolvesUnqualifiedColumns) {
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT Airline FROM FlightRes", mkb_.catalog())
                                  .value();
  EXPECT_EQ(view.select()[0].expr->column(),
            (AttributeRef{"FlightRes", "Airline"}));
}

TEST_F(BinderTest, AmbiguousUnqualifiedColumnFails) {
  // TourID exists in both Tour and Participant.
  const auto result = ParseAndBindView(
      "CREATE VIEW V AS SELECT TourID FROM Tour, Participant "
      "WHERE Tour.TourID = Participant.TourID",
      mkb_.catalog());
  EXPECT_FALSE(result.ok());
}

TEST_F(BinderTest, UnknownRelationFails) {
  EXPECT_FALSE(
      ParseAndBindView("CREATE VIEW V AS SELECT X.a FROM Nowhere X",
                       mkb_.catalog())
          .ok());
}

TEST_F(BinderTest, UnknownAttributeFails) {
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V AS SELECT C.Nothing FROM Customer C",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, UnknownQualifierFails) {
  EXPECT_FALSE(
      ParseAndBindView("CREATE VIEW V AS SELECT Z.Name FROM Customer C",
                       mkb_.catalog())
          .ok());
}

TEST_F(BinderTest, DuplicateRelationInFromFails) {
  // The paper assumes a relation occurs at most once in FROM.
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V AS SELECT C.Name FROM Customer C, "
                   "Customer D",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, DuplicateAliasFails) {
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V AS SELECT X.Name FROM Customer X, "
                   "FlightRes X",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, ColumnNameListOverridesOutputNames) {
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V (AName, AAge) AS SELECT C.Name, C.Age FROM Customer C",
      mkb_.catalog())
                                  .value();
  EXPECT_EQ(view.InterfaceNames(),
            (std::vector<std::string>{"AName", "AAge"}));
}

TEST_F(BinderTest, ColumnNameArityMismatchFails) {
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V (A, B, C) AS SELECT C.Name FROM Customer C",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, DuplicateOutputNamesFail) {
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V AS SELECT C.Name, C.Name FROM Customer C",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, NonBooleanWhereClauseFails) {
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V AS SELECT C.Name FROM Customer C "
                   "WHERE C.Age + 1",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, TypeErrorInSelectFails) {
  EXPECT_FALSE(ParseAndBindView(
                   "CREATE VIEW V AS SELECT C.Name * 2 FROM Customer C",
                   mkb_.catalog())
                   .ok());
}

TEST_F(BinderTest, DerivedOutputNames) {
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name, C.Age + 1 FROM Customer C",
      mkb_.catalog())
                                  .value();
  EXPECT_EQ(view.InterfaceNames()[0], "Name");
  EXPECT_EQ(view.InterfaceNames()[1], "col2");
}

TEST_F(BinderTest, ViewAccessors) {
  const ViewDefinition view =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog()).value();
  EXPECT_TRUE(view.HasFromRelation("Customer"));
  EXPECT_FALSE(view.HasFromRelation("Tour"));
  EXPECT_TRUE(view.ReferencesRelation("FlightRes"));
  EXPECT_TRUE(view.ReferencesAttribute({"FlightRes", "Dest"}));
  EXPECT_FALSE(view.ReferencesAttribute({"FlightRes", "Airline"}));
  const auto attrs = view.AttributesOf("Customer");
  ASSERT_EQ(attrs.size(), 2u);  // Name, Age
  EXPECT_EQ(view.FromRelationNames(),
            (std::vector<std::string>{"Customer", "FlightRes",
                                      "Participant"}));
}

TEST_F(BinderTest, IsConjunctiveView) {
  const ViewDefinition conjunctive =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog()).value();
  EXPECT_TRUE(IsConjunctiveView(conjunctive));
  const ViewDefinition with_or = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C "
      "WHERE C.Age = 1 OR C.Age = 2",
      mkb_.catalog())
                                     .value();
  EXPECT_FALSE(IsConjunctiveView(with_or));
}

TEST_F(BinderTest, DistinguishedAttributesCheck) {
  // Name is used in an indispensable condition and preserved: OK.
  const ViewDefinition ok_view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name, F.PName FROM Customer C, "
      "FlightRes F WHERE (C.Name = F.PName) (false, true)",
      mkb_.catalog())
                                     .value();
  EXPECT_TRUE(CheckDistinguishedAttributesPreserved(ok_view).ok());

  // Dest used in an indispensable condition but not selected: violation.
  const ViewDefinition bad_view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, FlightRes F "
      "WHERE (C.Name = F.PName) (false, true) "
      "AND (F.Dest = 'Asia') (false, true)",
      mkb_.catalog())
                                      .value();
  EXPECT_FALSE(CheckDistinguishedAttributesPreserved(bad_view).ok());

  // Same view with the condition dispensable: no violation.
  const ViewDefinition dispensable_view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, FlightRes F "
      "WHERE (C.Name = F.PName) (false, true) "
      "AND (F.Dest = 'Asia') (true, true)",
      mkb_.catalog())
                                              .value();
  // C.Name and F.PName are preserved? F.PName is not selected -> still a
  // violation through the first condition.
  EXPECT_FALSE(
      CheckDistinguishedAttributesPreserved(dispensable_view).ok());
}

TEST_F(BinderTest, RoundTripThroughToParsedView) {
  const ViewDefinition view =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog()).value();
  const ViewDefinition rebound =
      BindView(view.ToParsedView(), mkb_.catalog()).value();
  EXPECT_EQ(rebound.InterfaceNames(), view.InterfaceNames());
  EXPECT_EQ(rebound.FromRelationNames(), view.FromRelationNames());
  EXPECT_EQ(rebound.where().size(), view.where().size());
}

TEST_F(BinderTest, EvaluateViewOverDatabase) {
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb_, &db, 30, 11).ok());
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name, F.Dest FROM Customer C, FlightRes F "
      "WHERE C.Name = F.PName",
      mkb_.catalog())
                                  .value();
  const Table result = EvaluateView(view, db, mkb_.catalog()).value();
  EXPECT_GT(result.NumRows(), 0u);
  EXPECT_EQ(result.schema().size(), 2u);
  // Every result name must come from Customer (join semantics).
  const Table customers =
      EvaluateView(ParseAndBindView(
                       "CREATE VIEW AllC AS SELECT C.Name FROM Customer C",
                       mkb_.catalog())
                       .value(),
                   db, mkb_.catalog())
          .value();
  EXPECT_LE(result.NumRows(), customers.NumRows());
}

TEST_F(BinderTest, EmptySelectOrFromRejected) {
  ParsedView empty_select;
  empty_select.name = "V";
  empty_select.from.push_back(ParsedFromItem{"Customer", "", {}});
  EXPECT_FALSE(BindView(empty_select, mkb_.catalog()).ok());

  ParsedView empty_from;
  empty_from.name = "V";
  empty_from.select.push_back(ParsedSelectItem{
      Expr::Column(AttributeRef{"Customer", "Name"}), "", {}});
  EXPECT_FALSE(BindView(empty_from, mkb_.catalog()).ok());
}

}  // namespace
}  // namespace eve
