#include <gtest/gtest.h>

#include "cvs/cvs.h"
#include "cvs/svs_baseline.h"
#include "esql/binder.h"
#include "esql/evaluator.h"
#include "mkb/evolution.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class CvsDeleteRelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(AddAccidentInsPc(&mkb_).ok());
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
    const auto evolution =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .value();
    mkb_prime_ = evolution.mkb;
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
};

// End-to-end reproduction of paper Examples 5-10.
TEST_F(CvsDeleteRelationTest, ProducesBothPaperRewritings) {
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_prime_)
          .value();
  ASSERT_EQ(result.rewritings.size(), 2u);
  // Ranked first: the Accident-Ins rewriting (extent superset via PC-AI).
  const SynchronizedView& eq13 = result.rewritings[0];
  EXPECT_TRUE(eq13.view.HasFromRelation("Accident-Ins"));
  EXPECT_EQ(eq13.legality.inferred_extent, ExtentRelation::kSuperset);
  EXPECT_TRUE(eq13.legality.legal());
  EXPECT_FALSE(eq13.is_drop);
  // Second: the FlightRes-cover rewriting.
  const SynchronizedView& alt = result.rewritings[1];
  EXPECT_FALSE(alt.view.HasFromRelation("Accident-Ins"));
  EXPECT_TRUE(alt.legality.legal());
}

TEST_F(CvsDeleteRelationTest, RewritingsEvaluateOverDatabase) {
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb_, &db, 60, 17).ok());
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_prime_)
          .value();
  const Table original =
      EvaluateView(view_, db, mkb_.catalog()).value();
  for (const SynchronizedView& rewriting : result.rewritings) {
    const Result<Table> evaluated =
        EvaluateView(rewriting.view, db, mkb_prime_.catalog());
    ASSERT_TRUE(evaluated.ok()) << evaluated.status();
  }
  // The Accident-Ins rewriting holds every customer (PC-AI): its extent
  // contains the original on the common interface.
  const auto empirical = CompareExtentsEmpirically(
      view_, result.rewritings[0].view, db, mkb_.catalog(),
      mkb_prime_.catalog());
  ASSERT_TRUE(empirical.ok());
  EXPECT_TRUE(empirical.value() == ExtentRelation::kEqual ||
              empirical.value() == ExtentRelation::kSuperset)
      << ExtentRelationToString(empirical.value());
}

TEST_F(CvsDeleteRelationTest, UnaffectedViewReturnedUnchanged) {
  const ViewDefinition other = ParseAndBindView(
      "CREATE VIEW V AS SELECT H.City FROM Hotels H, RentACar R "
      "WHERE H.Address = R.Location",
      mkb_.catalog())
                                   .value();
  const CvsResult result =
      SynchronizeDeleteRelation(other, "Customer", mkb_, mkb_prime_)
          .value();
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].view.name(), "V");
  EXPECT_TRUE(result.rewritings[0].legality.legal());
}

TEST_F(CvsDeleteRelationTest, NonReplaceableRelationSkipsReplacementPath) {
  ViewDefinition rigid = view_;
  (*rigid.mutable_from())[0].params = EvolutionParams{false, false};
  const CvsResult result =
      SynchronizeDeleteRelation(rigid, "Customer", mkb_, mkb_prime_)
          .value();
  EXPECT_TRUE(result.rewritings.empty());
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST_F(CvsDeleteRelationTest, VeSupersetFiltersUnjustifiedCandidates) {
  ViewDefinition demanding = view_;
  demanding.set_extent(ViewExtent::kSuperset);
  const CvsResult result =
      SynchronizeDeleteRelation(demanding, "Customer", mkb_, mkb_prime_)
          .value();
  // Only the Accident-Ins rewriting has PC justification.
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_TRUE(result.rewritings[0].view.HasFromRelation("Accident-Ins"));
  // The FlightRes candidate is reported as rejected.
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST_F(CvsDeleteRelationTest, VeEqualDisablesView) {
  ViewDefinition demanding = view_;
  demanding.set_extent(ViewExtent::kEqual);
  const CvsResult result =
      SynchronizeDeleteRelation(demanding, "Customer", mkb_, mkb_prime_)
          .value();
  EXPECT_TRUE(result.rewritings.empty());
}

TEST_F(CvsDeleteRelationTest, DropPathUsedWhenAllComponentsDispensable) {
  const ViewDefinition droppable = ParseAndBindView(
      "CREATE VIEW V AS SELECT F.PName (false, true), C.Age (true, true) "
      "FROM Customer C (true, true), FlightRes F "
      "WHERE (C.Name = F.PName) (true, true) AND (F.Dest = 'Asia')",
      mkb_.catalog())
                                       .value();
  const CvsResult result =
      SynchronizeDeleteRelation(droppable, "Customer", mkb_, mkb_prime_)
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  bool has_drop = false;
  for (const SynchronizedView& rewriting : result.rewritings) {
    if (rewriting.is_drop) {
      has_drop = true;
      EXPECT_FALSE(rewriting.view.HasFromRelation("Customer"));
      EXPECT_EQ(rewriting.legality.inferred_extent,
                ExtentRelation::kSuperset);
    }
  }
  EXPECT_TRUE(has_drop);
}

TEST_F(CvsDeleteRelationTest, RenamedRewritingsGetDistinctNames) {
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_prime_)
          .value();
  ASSERT_EQ(result.rewritings.size(), 2u);
  EXPECT_NE(result.rewritings[0].view.name(),
            result.rewritings[1].view.name());
}

TEST_F(CvsDeleteRelationTest, OrConditionReferencingRIsSubstituted) {
  // A disjunctive clause over Customer attributes: outside the paper's
  // conjunctive fragment, but CVS handles it as one primitive clause and
  // substitutes R's attributes inside it.
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true) "
      "FROM Customer C (true, true), FlightRes F "
      "WHERE (C.Name = F.PName) (false, true) "
      "AND (C.Name = 'alice' OR C.Name = 'bob') (false, true)",
      mkb_.catalog())
                                  .value();
  const CvsResult result =
      SynchronizeDeleteRelation(view, "Customer", mkb_, mkb_prime_)
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  const ViewDefinition& rewritten = result.rewritings.front().view;
  EXPECT_FALSE(rewritten.ReferencesRelation("Customer"));
  // The OR clause survives with the replacement spliced into both arms.
  bool found_or = false;
  for (const ViewCondition& cond : rewritten.where()) {
    if (cond.clause->kind() == ExprKind::kBinary &&
        cond.clause->binary_op() == BinaryOp::kOr) {
      found_or = true;
      std::vector<AttributeRef> cols;
      cond.clause->CollectColumns(&cols);
      for (const AttributeRef& ref : cols) {
        EXPECT_NE(ref.relation, "Customer");
      }
    }
  }
  EXPECT_TRUE(found_or);
}

TEST_F(CvsDeleteRelationTest, DispensableOrConditionDroppedWhenUncoverable) {
  // The OR clause uses Customer.Phone (no cover); being dispensable, it is
  // dropped and the view still survives through the Name covers.
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true) "
      "FROM Customer C (true, true), FlightRes F "
      "WHERE (C.Name = F.PName) (false, true) "
      "AND (C.Phone = '1' OR C.Phone = '2') (true, true)",
      mkb_.catalog())
                                  .value();
  const CvsResult result =
      SynchronizeDeleteRelation(view, "Customer", mkb_, mkb_prime_)
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  for (const ViewCondition& cond : result.rewritings.front().view.where()) {
    EXPECT_NE(cond.clause->binary_op(), BinaryOp::kOr);
  }
}

// --- delete-attribute (paper Ex. 4) ------------------------------------------

class CvsDeleteAttributeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(AddPersonExtension(&mkb_).ok());
    view_ = ParseAndBindView(AsiaCustomerSql(), mkb_.catalog()).MoveValue();
    const auto evolution =
        EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Customer",
                                                          "Addr"))
            .value();
    mkb_prime_ = evolution.mkb;
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
};

// Paper Eq. (4): Addr replaced by Person.PAddr through JC-CP.
TEST_F(CvsDeleteAttributeTest, ProducesPaperEquation4) {
  const CvsResult result =
      SynchronizeDeleteAttribute(view_, "Customer", "Addr", mkb_,
                                 mkb_prime_, {})
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  const SynchronizedView& eq4 = result.rewritings.front();
  EXPECT_TRUE(eq4.legality.legal()) << eq4.legality.ToString();
  EXPECT_TRUE(eq4.view.HasFromRelation("Person"));
  // AAddr now reads Person.PAddr.
  bool found = false;
  for (const ViewSelectItem& item : eq4.view.select()) {
    if (item.output_name == "AAddr") {
      found = true;
      EXPECT_EQ(item.expr->column(), (AttributeRef{"Person", "PAddr"}));
      // Inherited params: still indispensable, replaceable.
      EXPECT_FALSE(item.params.dispensable);
      EXPECT_TRUE(item.params.replaceable);
    }
  }
  EXPECT_TRUE(found);
  // New join condition Customer.Name = Person.Name present.
  bool join_added = false;
  for (const ViewCondition& cond : eq4.view.where()) {
    if (cond.clause->ToString() == "(Customer.Name = Person.Name)") {
      join_added = true;
    }
  }
  EXPECT_TRUE(join_added);
  // VE = ⊇ satisfied thanks to PC-CP.
  EXPECT_EQ(eq4.legality.inferred_extent, ExtentRelation::kSuperset);
}

TEST_F(CvsDeleteAttributeTest, DispensableAttributeDropped) {
  // Deleting Customer.Phone: the Phone item is (AD = true, AR = false), so
  // the drop path applies.
  const auto evolution =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Customer", "Phone"))
          .value();
  const CvsResult result =
      SynchronizeDeleteAttribute(view_, "Customer", "Phone", mkb_,
                                 evolution.mkb, {})
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  const SynchronizedView& dropped = result.rewritings.front();
  EXPECT_TRUE(dropped.is_drop);
  EXPECT_EQ(dropped.view.select().size(), 2u);
  EXPECT_TRUE(dropped.legality.legal());
  // Pure projection drop: extent equal on the common interface.
  EXPECT_EQ(dropped.legality.inferred_extent, ExtentRelation::kEqual);
}

TEST_F(CvsDeleteAttributeTest, UnreferencedAttributeLeavesViewUnchanged) {
  const auto evolution =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("Customer", "Age"))
          .value();
  const CvsResult result =
      SynchronizeDeleteAttribute(view_, "Customer", "Age", mkb_,
                                 evolution.mkb, {})
          .value();
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].view.name(), view_.name());
}

TEST_F(CvsDeleteAttributeTest, NoCoverDisablesView) {
  // Delete FlightRes.Dest: used by a dispensable condition — so the view
  // survives by dropping it. Make the condition indispensable first.
  ViewDefinition rigid = view_;
  for (ViewCondition& cond : *rigid.mutable_where()) {
    cond.params = EvolutionParams{false, true};
  }
  const auto evolution =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("FlightRes", "Dest"))
          .value();
  const CvsResult result =
      SynchronizeDeleteAttribute(rigid, "FlightRes", "Dest", mkb_,
                                 evolution.mkb, {})
          .value();
  EXPECT_TRUE(result.rewritings.empty());
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST_F(CvsDeleteAttributeTest, DispensableConditionDroppedWidensExtent) {
  // Default AsiaCustomerSql: (F.Dest = 'Asia') is (CD = true): deleting
  // Dest drops the condition and widens the extent.
  const auto evolution =
      EvolveMkb(mkb_, CapabilityChange::DeleteAttribute("FlightRes", "Dest"))
          .value();
  const CvsResult result =
      SynchronizeDeleteAttribute(view_, "FlightRes", "Dest", mkb_,
                                 evolution.mkb, {})
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  EXPECT_TRUE(result.rewritings[0].is_drop);
  EXPECT_EQ(result.rewritings[0].legality.inferred_extent,
            ExtentRelation::kSuperset);
}

// --- Synchronize dispatch ------------------------------------------------------

class SynchronizeDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
  }
  Mkb mkb_;
  ViewDefinition view_;
};

TEST_F(SynchronizeDispatchTest, AddChangesAreNoOps) {
  RelationDef def;
  def.source = "IS9";
  def.name = "New";
  def.schema = Schema({{"x", DataType::kInt}});
  const CapabilityChange change = CapabilityChange::AddRelation(def);
  const auto evolution = EvolveMkb(mkb_, change).value();
  const CvsResult result =
      Synchronize(view_, change, mkb_, evolution.mkb, {}).value();
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].view.ToString(), view_.ToString());
}

TEST_F(SynchronizeDispatchTest, RenameRelationRewritesReferences) {
  const CapabilityChange change =
      CapabilityChange::RenameRelation("Customer", "Client");
  const auto evolution = EvolveMkb(mkb_, change).value();
  const CvsResult result =
      Synchronize(view_, change, mkb_, evolution.mkb, {}).value();
  ASSERT_EQ(result.rewritings.size(), 1u);
  const ViewDefinition& renamed = result.rewritings[0].view;
  EXPECT_TRUE(renamed.HasFromRelation("Client"));
  EXPECT_FALSE(renamed.ReferencesRelation("Customer"));
  // Rebinding against MKB' succeeds.
  EXPECT_TRUE(BindView(renamed.ToParsedView(), evolution.mkb.catalog()).ok());
}

TEST_F(SynchronizeDispatchTest, RenameAttributeRewritesReferences) {
  const CapabilityChange change =
      CapabilityChange::RenameAttribute("FlightRes", "Dest", "Destination");
  const auto evolution = EvolveMkb(mkb_, change).value();
  const CvsResult result =
      Synchronize(view_, change, mkb_, evolution.mkb, {}).value();
  const ViewDefinition& renamed = result.rewritings[0].view;
  EXPECT_TRUE(renamed.ReferencesAttribute({"FlightRes", "Destination"}));
  EXPECT_FALSE(renamed.ReferencesAttribute({"FlightRes", "Dest"}));
}

TEST_F(SynchronizeDispatchTest, DeleteDispatchesToCvs) {
  const CapabilityChange change =
      CapabilityChange::DeleteRelation("Customer");
  const auto evolution = EvolveMkb(mkb_, change).value();
  const CvsResult result =
      Synchronize(view_, change, mkb_, evolution.mkb, {}).value();
  EXPECT_FALSE(result.rewritings.empty());
  EXPECT_FALSE(result.rewritings[0].view.ReferencesRelation("Customer"));
}

// --- SVS baseline ----------------------------------------------------------------

TEST(SvsBaselineTest, OneStepReplacementStillFound) {
  // Travel agency: both covers are one step away, so SVS matches CVS.
  Mkb mkb = MakeTravelAgencyMkb().value();
  const ViewDefinition view =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb.catalog()).value();
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("Customer")).value();
  const CvsResult svs =
      SvsSynchronizeDeleteRelation(view, "Customer", mkb, evolution.mkb)
          .value();
  EXPECT_EQ(svs.rewritings.size(), 2u);
}

TEST(SvsBaselineTest, MultiHopCoverOnlyFoundByCvs) {
  // Chain R0-R1-...; view over {R0, R1}; delete R1. The cover of R1.P1
  // sits at distance 3 (on R4), reachable only through intermediates.
  ChainMkbSpec spec;
  spec.length = 8;
  spec.skip_edges = true;
  spec.cover_distance = 3;
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 0, 2).value();
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1")).value();

  const CvsResult svs =
      SvsSynchronizeDeleteRelation(view, "R1", mkb, evolution.mkb).value();
  EXPECT_TRUE(svs.rewritings.empty());

  const CvsResult cvs =
      SynchronizeDeleteRelation(view, "R1", mkb, evolution.mkb).value();
  ASSERT_FALSE(cvs.rewritings.empty());
  // The cover relation R4 must be joined in.
  EXPECT_TRUE(cvs.rewritings[0].view.HasFromRelation("R4"));
}

TEST(SvsBaselineTest, DirectCoverFoundByBoth) {
  ChainMkbSpec spec;
  spec.length = 6;
  spec.skip_edges = true;
  spec.cover_distance = 1;  // cover of R1.P1 lives on R2, adjacent to R0?
  const Mkb mkb = MakeChainMkb(spec).value();
  const ViewDefinition view = MakeChainView(mkb, 0, 2).value();
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("R1")).value();
  // Cover of R1.P1 is on R2; R0—R2 are joined by the skip edge JS0, so
  // even the one-step SVS succeeds.
  const CvsResult svs =
      SvsSynchronizeDeleteRelation(view, "R1", mkb, evolution.mkb).value();
  EXPECT_FALSE(svs.rewritings.empty());
}

}  // namespace
}  // namespace eve
