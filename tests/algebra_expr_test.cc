#include <gtest/gtest.h>

#include "algebra/expr.h"

namespace eve {
namespace {

ExprPtr Col(const std::string& rel, const std::string& attr) {
  return Expr::Column(AttributeRef{rel, attr});
}

TEST(ExprTest, BuildersSetKinds) {
  EXPECT_EQ(Col("R", "a")->kind(), ExprKind::kColumn);
  EXPECT_EQ(Expr::Lit(Value::Int(1))->kind(), ExprKind::kLiteral);
  EXPECT_EQ(Expr::Unary(UnaryOp::kNot, Expr::Lit(Value::Bool(true)))->kind(),
            ExprKind::kUnary);
  EXPECT_EQ(Expr::Binary(BinaryOp::kAdd, Expr::Lit(Value::Int(1)),
                         Expr::Lit(Value::Int(2)))
                ->kind(),
            ExprKind::kBinary);
  EXPECT_EQ(Expr::Func("f", {Col("R", "a")})->kind(),
            ExprKind::kFunctionCall);
}

TEST(ExprTest, ToStringRendersInfix) {
  const ExprPtr expr = Expr::Binary(
      BinaryOp::kEq, Col("Customer", "Name"), Col("FlightRes", "PName"));
  EXPECT_EQ(expr->ToString(), "(Customer.Name = FlightRes.PName)");
}

TEST(ExprTest, CollectColumnsWalksTree) {
  const ExprPtr expr = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "b")),
      Expr::Binary(BinaryOp::kGt, Col("R", "c"), Expr::Lit(Value::Int(1))));
  std::vector<AttributeRef> cols;
  expr->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], (AttributeRef{"R", "a"}));
  EXPECT_EQ(cols[1], (AttributeRef{"S", "b"}));
  EXPECT_EQ(cols[2], (AttributeRef{"R", "c"}));
}

TEST(ExprTest, ReferencedRelationsDeduplicates) {
  const ExprPtr expr = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "b")),
      Expr::Binary(BinaryOp::kEq, Col("R", "c"), Col("S", "d")));
  EXPECT_EQ(expr->ReferencedRelations(),
            (std::vector<std::string>{"R", "S"}));
}

TEST(ExprTest, EqualsIsStructural) {
  const ExprPtr a =
      Expr::Binary(BinaryOp::kEq, Col("R", "a"), Expr::Lit(Value::Int(1)));
  const ExprPtr b =
      Expr::Binary(BinaryOp::kEq, Col("R", "a"), Expr::Lit(Value::Int(1)));
  const ExprPtr c =
      Expr::Binary(BinaryOp::kEq, Col("R", "a"), Expr::Lit(Value::Int(2)));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*Col("R", "a")));
}

TEST(ExprTest, EqualsDistinguishesOpsAndFunctions) {
  const ExprPtr add =
      Expr::Binary(BinaryOp::kAdd, Col("R", "a"), Col("R", "b"));
  const ExprPtr sub =
      Expr::Binary(BinaryOp::kSub, Col("R", "a"), Col("R", "b"));
  EXPECT_FALSE(add->Equals(*sub));
  EXPECT_FALSE(Expr::Func("f", {Col("R", "a")})
                   ->Equals(*Expr::Func("g", {Col("R", "a")})));
}

TEST(ExprTest, SubstituteColumnReplacesAllOccurrences) {
  const ExprPtr expr = Expr::Binary(
      BinaryOp::kAdd, Col("R", "a"),
      Expr::Binary(BinaryOp::kMul, Col("R", "a"), Expr::Lit(Value::Int(2))));
  const ExprPtr replaced =
      expr->SubstituteColumn(AttributeRef{"R", "a"}, Col("S", "b"));
  EXPECT_EQ(replaced->ToString(), "(S.b + (S.b * 2))");
  // Original untouched (immutability).
  EXPECT_EQ(expr->ToString(), "(R.a + (R.a * 2))");
}

TEST(ExprTest, SubstituteColumnCanInsertExpressions) {
  const ExprPtr expr = Col("Customer", "Age");
  const ExprPtr f = Expr::Binary(
      BinaryOp::kDiv,
      Expr::Binary(BinaryOp::kSub, Expr::Lit(Value::Int(100)),
                   Col("Ins", "Birthday")),
      Expr::Lit(Value::Int(365)));
  const ExprPtr replaced =
      expr->SubstituteColumn(AttributeRef{"Customer", "Age"}, f);
  EXPECT_TRUE(replaced->Equals(*f));
}

TEST(ExprTest, TransformColumnsRenamesRelations) {
  const ExprPtr expr =
      Expr::Binary(BinaryOp::kEq, Col("Old", "a"), Col("Other", "b"));
  const ExprPtr renamed =
      expr->TransformColumns([](const AttributeRef& ref) -> AttributeRef {
        if (ref.relation == "Old") return {"New", ref.attribute};
        return ref;
      });
  EXPECT_EQ(renamed->ToString(), "(New.a = Other.b)");
}

TEST(ExprTest, FlattenConjunctionSplitsAndSpine) {
  const ExprPtr a = Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "b"));
  const ExprPtr b = Expr::Binary(BinaryOp::kGt, Col("R", "c"),
                                 Expr::Lit(Value::Int(1)));
  const ExprPtr c = Expr::Binary(BinaryOp::kLt, Col("S", "d"),
                                 Expr::Lit(Value::Int(9)));
  const ExprPtr conj = Expr::Binary(
      BinaryOp::kAnd, Expr::Binary(BinaryOp::kAnd, a, b), c);
  std::vector<ExprPtr> flat;
  FlattenConjunction(conj, &flat);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_TRUE(flat[0]->Equals(*a));
  EXPECT_TRUE(flat[1]->Equals(*b));
  EXPECT_TRUE(flat[2]->Equals(*c));
}

TEST(ExprTest, FlattenConjunctionStopsAtOr) {
  const ExprPtr disj = Expr::Binary(
      BinaryOp::kOr, Expr::Lit(Value::Bool(true)),
      Expr::Lit(Value::Bool(false)));
  std::vector<ExprPtr> flat;
  FlattenConjunction(disj, &flat);
  EXPECT_EQ(flat.size(), 1u);
}

TEST(ExprTest, MakeConjunctionRoundTrips) {
  const ExprPtr a = Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "b"));
  const ExprPtr b = Expr::Binary(BinaryOp::kGt, Col("R", "c"),
                                 Expr::Lit(Value::Int(1)));
  const ExprPtr conj = MakeConjunction({a, b});
  std::vector<ExprPtr> flat;
  FlattenConjunction(conj, &flat);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_TRUE(flat[0]->Equals(*a));
  EXPECT_TRUE(flat[1]->Equals(*b));
}

TEST(ExprTest, MakeConjunctionEmptyIsTrue) {
  const ExprPtr conj = MakeConjunction({});
  ASSERT_EQ(conj->kind(), ExprKind::kLiteral);
  EXPECT_EQ(conj->literal(), Value::Bool(true));
}

TEST(ExprTest, ClausesEquivalentHandlesSymmetry) {
  const ExprPtr ab = Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "b"));
  const ExprPtr ba = Expr::Binary(BinaryOp::kEq, Col("S", "b"), Col("R", "a"));
  EXPECT_TRUE(ClausesEquivalent(*ab, *ba));
  EXPECT_TRUE(ClausesEquivalent(*ab, *ab));
}

TEST(ExprTest, ClausesEquivalentFlipsInequalities) {
  const ExprPtr lt = Expr::Binary(BinaryOp::kLt, Col("R", "a"), Col("S", "b"));
  const ExprPtr gt = Expr::Binary(BinaryOp::kGt, Col("S", "b"), Col("R", "a"));
  const ExprPtr ge = Expr::Binary(BinaryOp::kGe, Col("S", "b"), Col("R", "a"));
  EXPECT_TRUE(ClausesEquivalent(*lt, *gt));
  EXPECT_FALSE(ClausesEquivalent(*lt, *ge));
}

TEST(ExprTest, ClausesEquivalentRejectsDifferentOperands) {
  const ExprPtr a = Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "b"));
  const ExprPtr b = Expr::Binary(BinaryOp::kEq, Col("R", "a"), Col("S", "c"));
  EXPECT_FALSE(ClausesEquivalent(*a, *b));
}

TEST(ExprTest, FlipComparison) {
  EXPECT_EQ(FlipComparison(BinaryOp::kLt), BinaryOp::kGt);
  EXPECT_EQ(FlipComparison(BinaryOp::kLe), BinaryOp::kGe);
  EXPECT_EQ(FlipComparison(BinaryOp::kGt), BinaryOp::kLt);
  EXPECT_EQ(FlipComparison(BinaryOp::kGe), BinaryOp::kLe);
  EXPECT_EQ(FlipComparison(BinaryOp::kEq), BinaryOp::kEq);
  EXPECT_EQ(FlipComparison(BinaryOp::kNe), BinaryOp::kNe);
}

TEST(ExprTest, IsComparisonOp) {
  EXPECT_TRUE(IsComparisonOp(BinaryOp::kEq));
  EXPECT_TRUE(IsComparisonOp(BinaryOp::kGe));
  EXPECT_FALSE(IsComparisonOp(BinaryOp::kAdd));
  EXPECT_FALSE(IsComparisonOp(BinaryOp::kAnd));
}

TEST(ExprTest, ColumnsEqualHelper) {
  const ExprPtr eq =
      Expr::ColumnsEqual(AttributeRef{"R", "a"}, AttributeRef{"S", "b"});
  EXPECT_EQ(eq->ToString(), "(R.a = S.b)");
}

}  // namespace
}  // namespace eve
