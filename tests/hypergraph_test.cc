#include <gtest/gtest.h>

#include "hypergraph/hypergraph.h"
#include "hypergraph/join_graph.h"
#include "mkb/builder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

// --- Hypergraph (Fig. 4 reproduction) ------------------------------------

TEST(HypergraphTest, Fig4NodeAndEdgeCounts) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const Hypergraph graph = Hypergraph::Build(mkb);
  // 7 relations with 4+4+4+6+4+3+4 = 29 attributes.
  EXPECT_EQ(graph.NumNodes(), 29u);
  EXPECT_EQ(graph.NumEdges(HyperedgeKind::kRelation), 7u);
  EXPECT_EQ(graph.NumEdges(HyperedgeKind::kJoinConstraint), 6u);
  EXPECT_EQ(graph.NumEdges(HyperedgeKind::kFunctionOf), 7u);
}

TEST(HypergraphTest, Fig4TwoConnectedComponents) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const auto components = Hypergraph::Build(mkb).RelationComponents();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0],
            (std::vector<std::string>{"Accident-Ins", "Customer",
                                      "FlightRes", "Participant", "Tour"}));
  EXPECT_EQ(components[1],
            (std::vector<std::string>{"Hotels", "RentACar"}));
}

TEST(HypergraphTest, Fig4PrimeAfterDeletingCustomer) {
  // H'(MKB'): deleting Customer splits the big component.
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const auto report =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("Customer")).value();
  const auto components =
      Hypergraph::Build(report.mkb).RelationComponents();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0],
            (std::vector<std::string>{"Accident-Ins", "FlightRes"}));
  EXPECT_EQ(components[1], (std::vector<std::string>{"Hotels", "RentACar"}));
  EXPECT_EQ(components[2], (std::vector<std::string>{"Participant", "Tour"}));
}

TEST(HypergraphTest, SummaryMentionsComponents) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const std::string summary = Hypergraph::Build(mkb).Summary();
  EXPECT_NE(summary.find("29 attribute nodes"), std::string::npos);
  EXPECT_NE(summary.find("connected components (2)"), std::string::npos);
}

// --- JoinGraph -----------------------------------------------------------

class JoinGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    graph_ = JoinGraph::Build(mkb_);
  }
  Mkb mkb_;
  JoinGraph graph_;
};

TEST_F(JoinGraphTest, NeighborsFollowJoinConstraints) {
  const auto neighbors = graph_.Neighbors("Customer");
  ASSERT_EQ(neighbors.size(), 3u);  // JC1, JC2, JC3
  std::vector<std::string> names;
  for (const auto& n : neighbors) names.push_back(n.relation);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"Accident-Ins", "FlightRes",
                                             "Participant"}));
}

TEST_F(JoinGraphTest, ComponentOfMatchesFig4) {
  EXPECT_EQ(graph_.ComponentOf("Customer"),
            (std::vector<std::string>{"Accident-Ins", "Customer",
                                      "FlightRes", "Participant", "Tour"}));
  EXPECT_EQ(graph_.ComponentOf("Hotels"),
            (std::vector<std::string>{"Hotels", "RentACar"}));
  EXPECT_TRUE(graph_.ComponentOf("Nowhere").empty());
}

TEST_F(JoinGraphTest, SameComponent) {
  EXPECT_TRUE(graph_.SameComponent("Customer", "Tour"));
  EXPECT_FALSE(graph_.SameComponent("Customer", "Hotels"));
}

TEST_F(JoinGraphTest, ComponentsAreSortedPartition) {
  const auto components = graph_.Components();
  ASSERT_EQ(components.size(), 2u);
  size_t total = 0;
  for (const auto& c : components) total += c.size();
  EXPECT_EQ(total, 7u);
}

TEST_F(JoinGraphTest, EraseRelationRemovesEdges) {
  const JoinGraph pruned = graph_.EraseRelation("Customer");
  EXPECT_FALSE(pruned.HasRelation("Customer"));
  EXPECT_TRUE(pruned.HasRelation("FlightRes"));
  // FlightRes keeps only JC6.
  const auto neighbors = pruned.Neighbors("FlightRes");
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].relation, "Accident-Ins");
  EXPECT_FALSE(pruned.SameComponent("FlightRes", "Participant"));
}

TEST_F(JoinGraphTest, FindConnectingTreesSingleRelation) {
  const auto trees = graph_.FindConnectingTrees({"FlightRes"}, {}, {});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].relations, (std::vector<std::string>{"FlightRes"}));
  EXPECT_TRUE(trees[0].edges.empty());
}

TEST_F(JoinGraphTest, FindConnectingTreesDirectEdge) {
  const auto trees =
      graph_.FindConnectingTrees({"FlightRes", "Accident-Ins"}, {}, {});
  ASSERT_GE(trees.size(), 1u);
  EXPECT_EQ(trees[0].relations.size(), 2u);
  ASSERT_EQ(trees[0].edges.size(), 1u);
  EXPECT_EQ(trees[0].edges[0].id, "JC6");
}

TEST_F(JoinGraphTest, FindConnectingTreesMultiHop) {
  // Tour to FlightRes requires Participant and Customer as Steiner nodes.
  JoinTreeSearchOptions options;
  options.max_extra_relations = 3;
  const auto trees =
      graph_.FindConnectingTrees({"Tour", "FlightRes"}, {}, options);
  ASSERT_GE(trees.size(), 1u);
  const JoinTree& best = trees[0];
  EXPECT_EQ(best.relations.size(), 4u);
  EXPECT_EQ(best.edges.size(), 3u);
}

TEST_F(JoinGraphTest, FindConnectingTreesRespectsBound) {
  JoinTreeSearchOptions options;
  options.max_extra_relations = 1;  // not enough for Tour—FlightRes
  const auto trees =
      graph_.FindConnectingTrees({"Tour", "FlightRes"}, {}, options);
  EXPECT_TRUE(trees.empty());
}

TEST_F(JoinGraphTest, FindConnectingTreesAcrossComponentsFails) {
  const auto trees =
      graph_.FindConnectingTrees({"Customer", "Hotels"}, {}, {});
  EXPECT_TRUE(trees.empty());
}

TEST_F(JoinGraphTest, FindConnectingTreesMissingRelationFails) {
  const auto trees = graph_.FindConnectingTrees({"Ghost"}, {}, {});
  EXPECT_TRUE(trees.empty());
}

TEST_F(JoinGraphTest, MandatoryEdgesAreIncluded) {
  const JoinConstraint* jc4 = mkb_.GetJoinConstraint("JC4").value();
  const auto trees = graph_.FindConnectingTrees(
      {"Participant", "Tour", "Customer"}, {*jc4}, {});
  ASSERT_GE(trees.size(), 1u);
  bool found_jc4 = false;
  for (const JoinConstraint& edge : trees[0].edges) {
    if (edge.id == "JC4") found_jc4 = true;
  }
  EXPECT_TRUE(found_jc4);
  EXPECT_EQ(trees[0].edges.size(), 2u);  // JC4 + JC3
}

TEST_F(JoinGraphTest, MandatoryEdgeOutsideRequiredSetRejected) {
  const JoinConstraint* jc4 = mkb_.GetJoinConstraint("JC4").value();
  const auto trees =
      graph_.FindConnectingTrees({"Customer", "FlightRes"}, {*jc4}, {});
  EXPECT_TRUE(trees.empty());
}

TEST_F(JoinGraphTest, MaxResultsBoundsOutput) {
  JoinTreeSearchOptions options;
  options.max_results = 1;
  const auto trees = graph_.FindConnectingTrees(
      {"Customer", "Accident-Ins"}, {}, options);
  EXPECT_EQ(trees.size(), 1u);
}

TEST(JoinGraphParallelEdgesTest, AlternativeJoinConstraintsBothUsable) {
  Mkb mkb;
  RelationDef r;
  r.source = "IS1";
  r.name = "R";
  r.schema = Schema({{"a", DataType::kInt}, {"b", DataType::kInt}});
  ASSERT_TRUE(mkb.AddRelation(r).ok());
  RelationDef s;
  s.source = "IS2";
  s.name = "S";
  s.schema = Schema({{"a", DataType::kInt}, {"b", DataType::kInt}});
  ASSERT_TRUE(mkb.AddRelation(s).ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "J1", "R", "S", "R.a = S.a").ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "J2", "R", "S", "R.b = S.b").ok());
  const JoinGraph graph = JoinGraph::Build(mkb);
  EXPECT_EQ(graph.Neighbors("R").size(), 2u);
  const auto trees = graph.FindConnectingTrees({"R", "S"}, {}, {});
  ASSERT_EQ(trees.size(), 1u);  // one spanning tree per relation set
  EXPECT_EQ(trees[0].edges.size(), 1u);
}

TEST(JoinTreeTest, ToStringSmoke) {
  JoinTree tree;
  tree.relations = {"A", "B"};
  JoinConstraint jc;
  jc.id = "J";
  jc.lhs = "A";
  jc.rhs = "B";
  tree.edges.push_back(jc);
  EXPECT_NE(tree.ToString().find("J"), std::string::npos);
  EXPECT_EQ(JoinTree{}.ToString(), "(empty)");
}

}  // namespace
}  // namespace eve
