// eved's serving loop, end to end over real sockets: remote statements
// are byte-identical to the local console, snapshot reads and writers
// multiplex across concurrent sessions, overload sheds explicitly (and
// NetClient's backoff absorbs it), slow-loris and flooding sessions are
// evicted, corrupt bytes resync without dropping the connection, graceful
// drain says goodbye — and every net.* failpoint site is exercised in
// error mode (the server keeps serving) and crash mode (crashed_site()).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/console.h"
#include "net/protocol.h"
#include "net/server.h"

namespace eve {
namespace net {
namespace {

// Inline MKB so no test depends on files or the working directory.
const char* const kDefineCustomer =
    "DEFINE SOURCE IS1 RELATION Customer (Name string, Age int)";
const char* const kDefineFlight =
    "DEFINE SOURCE IS2 RELATION FlightRes (PName string, Dest string)";
const char* const kCreateView =
    "CREATE VIEW V1 (VE = ~) AS "
    "SELECT C.Name (true, true), C.Age (true, true) "
    "FROM Customer C (true, true) "
    "WHERE (C.Age = 30) (true, true)";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().Reset(); }
  void TearDown() override {
    Failpoints::Instance().Reset();
    if (server_) {
      server_->Stop();
      server_->WaitUntilStopped();
    }
  }

  Server& StartServer(ServerOptions options = {}) {
    console_ = std::make_unique<Console>();
    server_ = std::make_unique<Server>(console_.get(), options);
    const Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return *server_;
  }

  NetClient MustConnect(ClientOptions options = {}) {
    options.port = server_->port();
    Result<NetClient> client = NetClient::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.MoveValue();
  }

  // A raw TCP connection for byte-level protocol abuse.
  int RawConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  // Spins (bounded) until `probe` returns true; server counters are
  // updated by the I/O thread, so tests observe them asynchronously.
  template <class Probe>
  bool WaitFor(Probe probe, int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; ++waited) {
      if (probe()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return probe();
  }

  std::unique_ptr<Console> console_;
  std::unique_ptr<Server> server_;
};

// --- Remote execution -------------------------------------------------------

TEST_F(ServerTest, RemoteOutputIsByteIdenticalToLocalConsole) {
  const std::vector<std::string> script = {
      kDefineCustomer, kDefineFlight, kCreateView,
      "SHOW MKB",     "SHOW VIEWS", "SHOW VIEW V1",
      "SHOW SYNC STATS"};

  // Local: the same statements against a private console.
  Console local;
  std::ostringstream local_out;
  for (const std::string& statement : script) {
    std::ostringstream err;
    EXPECT_TRUE(local.Run(statement, local_out, err)) << err.str();
  }

  StartServer();
  NetClient client = MustConnect();
  std::string remote_out;
  for (const std::string& statement : script) {
    Result<Response> response = client.Run(statement);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->code, 0) << response->error;
    remote_out += response->output;
  }
  EXPECT_EQ(remote_out, local_out.str());
}

TEST_F(ServerTest, FailedStatementCarriesCodeAndDiagnostic) {
  StartServer();
  NetClient client = MustConnect();
  Result<Response> response = client.Run("SHOW VIEW NoSuchView");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->code, 0);
  EXPECT_NE(response->error.find("NoSuchView"), std::string::npos)
      << response->error;
}

TEST_F(ServerTest, ShowServerStatsAnswersFromCounters) {
  StartServer();
  NetClient client = MustConnect();
  Result<Response> response = client.Run("SHOW SERVER STATS");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0);
  EXPECT_NE(response->output.find("server: accepted=1"), std::string::npos)
      << response->output;
  EXPECT_NE(response->output.find("shed_overload=0"), std::string::npos);
}

TEST_F(ServerTest, PerRequestWorkBudgetPropagatesAndRestores) {
  StartServer();
  NetClient setup = MustConnect();
  ASSERT_TRUE(setup.Run(kDefineCustomer).ok());
  ASSERT_TRUE(setup.Run(kCreateView).ok());

  // A budgeted session: its DRAIN runs under a per-request work budget of
  // 7 units (the enumeration stats echo "spent N/7 units" afterwards).
  ClientOptions budgeted;
  budgeted.work_budget = 7;
  NetClient limited = MustConnect(budgeted);
  ASSERT_TRUE(limited.Run("ENQUEUE DELETE ATTRIBUTE Customer.Age").ok());
  Result<Response> drained = limited.Run("DRAIN");
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->code, 0) << drained->error;

  Result<Response> stats = setup.Run("SHOW SYNC STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->output.find("/7 units"), std::string::npos)
      << "the request budget did not reach the sync: " << stats->output;

  // The override was per-request: the default-limits session's next drain
  // runs with NO deadline clause in its stats (unlimited again).
  ASSERT_TRUE(setup.Run("ENQUEUE DELETE ATTRIBUTE Customer.Name").ok());
  Result<Response> redrained = setup.Run("DRAIN");
  ASSERT_TRUE(redrained.ok()) << redrained.status().ToString();
  EXPECT_EQ(redrained->code, 0) << redrained->error;
  Result<Response> after = setup.Run("SHOW SYNC STATS");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->output.find("deadline:"), std::string::npos)
      << "the budget override leaked past its request: " << after->output;
}

// --- Concurrency ------------------------------------------------------------

TEST_F(ServerTest, ConcurrentSessionsMixReadersAndWriters) {
  StartServer();
  {
    NetClient setup = MustConnect();
    ASSERT_TRUE(setup.Run(kDefineCustomer).ok());
    ASSERT_TRUE(setup.Run(kCreateView).ok());
  }
  constexpr int kSessions = 8;
  constexpr int kStatementsEach = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([this, t, &failures] {
      ClientOptions options;
      options.port = server_->port();
      Result<NetClient> client = NetClient::Connect(options);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kStatementsEach; ++i) {
        // Even sessions hammer snapshot reads (shared lock), odd sessions
        // interleave writers (exclusive lock).
        const std::string statement =
            (t % 2 == 0) ? "SHOW VIEWS"
            : (i % 2 == 0)
                ? "SHOW SYNC STATS"
                : ("DEFINE SOURCE S" + std::to_string(t) + "_" +
                   std::to_string(i) + " RELATION R" + std::to_string(t) +
                   "_" + std::to_string(i) + " (A int)");
        Result<Response> response = client.value().Run(statement);
        if (!response.ok() || response->code != 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = server_->stats();
  EXPECT_GE(stats.accepted, static_cast<uint64_t>(kSessions));
  EXPECT_GE(stats.responses,
            static_cast<uint64_t>(kSessions * kStatementsEach));
}

// --- Overload and shedding --------------------------------------------------

TEST_F(ServerTest, OverloadShedsExplicitlyAndClientBacksOff) {
  ServerOptions options;
  options.max_pending_per_session = 0;  // shed every statement
  StartServer(options);

  ClientOptions retrying;
  retrying.max_shed_retries = 2;
  retrying.initial_backoff_micros = 1'000;
  NetClient client = MustConnect(retrying);
  Result<Response> response = client.Run("SHOW MKB");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code,
            static_cast<int32_t>(StatusCode::kResourceExhausted));
  EXPECT_GT(response->retry_after_micros, 0u);
  // The client retried (and re-sent) before surfacing the shed.
  EXPECT_EQ(client.sheds_retried(), 2u);
  EXPECT_GE(server_->stats().shed_overload, 3u);
}

TEST_F(ServerTest, SessionCapRefusesTheExtraConnection) {
  ServerOptions options;
  options.max_sessions = 2;
  StartServer(options);
  NetClient first = MustConnect();
  NetClient second = MustConnect();
  // Make sure both sessions are registered before the third connects.
  ASSERT_TRUE(WaitFor([this] { return server_->stats().sessions_now == 2; }));

  ClientOptions options3;
  options3.port = server_->port();
  Result<NetClient> third = NetClient::Connect(options3);
  // TCP connect itself succeeds (backlog), but the server refuses the
  // session: the first statement dies on a closed connection.
  if (third.ok()) {
    EXPECT_FALSE(third.value().Run("SHOW MKB").ok());
  }
  EXPECT_TRUE(WaitFor([this] { return server_->stats().refused >= 1; }));
}

// --- Byte-level robustness --------------------------------------------------

TEST_F(ServerTest, CorruptBytesResyncWithoutDroppingTheConnection) {
  StartServer();
  const int fd = RawConnect();

  // Garbage, then a valid request: the decoder must resync and serve it.
  const std::string garbage = "this is not a frame at all...";
  const std::string request = EncodeFrame(
      FrameType::kRequest, EncodeRequest(Request{7, 0, 0, "SHOW MKB"}));
  ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  FrameDecoder decoder;
  std::optional<Frame> frame;
  char buf[4096];
  while (!frame) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server closed the connection on garbage";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    frame = decoder.Next();
  }
  ASSERT_EQ(frame->type, FrameType::kResponse);
  Result<Response> response = DecodeResponse(frame->payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, 7u);
  EXPECT_EQ(response->code, 0);
  EXPECT_TRUE(WaitFor([this] { return server_->stats().resyncs >= 1; }));
  ::close(fd);
}

TEST_F(ServerTest, SlowLorisPartialFrameIsEvicted) {
  ServerOptions options;
  options.idle_timeout_micros = 30'000;  // 30ms
  StartServer(options);
  const int fd = RawConnect();

  // Half a frame, then silence: the sweep must evict this session.
  const std::string wire = EncodeFrame(
      FrameType::kRequest, EncodeRequest(Request{1, 0, 0, "SHOW MKB"}));
  ASSERT_EQ(::write(fd, wire.data(), wire.size() / 2),
            static_cast<ssize_t>(wire.size() / 2));
  EXPECT_TRUE(WaitFor(
      [this] { return server_->stats().evicted_slow_loris >= 1; }));

  // The listener is unaffected: a fresh well-behaved client still works.
  NetClient client = MustConnect();
  Result<Response> response = client.Run("SHOW MKB");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0);
  ::close(fd);
}

TEST_F(ServerTest, CleanIdleBetweenFramesIsNotSlowLoris) {
  ServerOptions options;
  options.idle_timeout_micros = 30'000;
  StartServer(options);
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());
  // Idle far past the timeout with NO partial frame buffered.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Result<Response> response = client.Run("SHOW MKB");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0);
  EXPECT_EQ(server_->stats().evicted_slow_loris, 0u);
}

TEST_F(ServerTest, FloodingSessionIsEvictedForOverflow) {
  ServerOptions options;
  options.max_read_buffer_bytes = 4096;
  StartServer(options);
  const int fd = RawConnect();
  // One giant partial frame: a header promising 1 MiB, then the bytes —
  // the read-buffer bound trips long before the payload completes.
  std::string header = EncodeFrame(FrameType::kRequest, "x");
  // Rewrite the length field to claim 1 MiB (CRC never checked: the
  // payload stays incomplete past the buffer bound).
  const uint32_t huge = 1u << 20;
  header[5] = static_cast<char>(huge & 0xff);
  header[6] = static_cast<char>((huge >> 8) & 0xff);
  header[7] = static_cast<char>((huge >> 16) & 0xff);
  header[8] = static_cast<char>((huge >> 24) & 0xff);
  const std::string flood = header.substr(0, kHeaderSize) +
                            std::string(64 * 1024, 'z');
  (void)!::write(fd, flood.data(), flood.size());
  EXPECT_TRUE(
      WaitFor([this] { return server_->stats().evicted_overflow >= 1; }));
  ::close(fd);
}

// --- Graceful drain ---------------------------------------------------------

TEST_F(ServerTest, DrainSaysGoodbyeAndStops) {
  StartServer();
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());

  server_->BeginDrain();
  server_->WaitUntilStopped();
  EXPECT_TRUE(server_->stopped());
  EXPECT_GE(server_->stats().goodbyes, 1u);
  EXPECT_TRUE(server_->crashed_site().empty());

  // The drained server answers nothing.
  EXPECT_FALSE(client.Run("SHOW MKB").ok());
}

TEST_F(ServerTest, DrainRefusesNewConnections) {
  ServerOptions options;
  options.drain_timeout_micros = 2'000'000;
  StartServer(options);
  // Park a raw connection holding HALF a frame so the drain has a live
  // session to wait on (pending stays 0, so drain completes fast — but
  // the accept-refusal window is what we probe here).
  server_->BeginDrain();
  server_->WaitUntilStopped();
  ClientOptions late;
  late.port = server_->port();
  Result<NetClient> client = NetClient::Connect(late);
  if (client.ok()) {
    EXPECT_FALSE(client.value().Run("SHOW MKB").ok());
  }
}

// --- Failpoints: error mode (the server keeps serving) ----------------------

TEST_F(ServerTest, ServerFailpointAcceptErrorRefusesOneConnection) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetAccept, FailpointAction::kError);
  ClientOptions options;
  options.port = server_->port();
  Result<NetClient> refused = NetClient::Connect(options);
  if (refused.ok()) {
    EXPECT_FALSE(refused.value().Run("SHOW MKB").ok());
  }
  EXPECT_TRUE(WaitFor([this] { return server_->stats().refused >= 1; }));

  // One-shot: the next connection is served normally.
  NetClient client = MustConnect();
  Result<Response> response = client.Run("SHOW MKB");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, 0);
}

TEST_F(ServerTest, ServerFailpointSessionStartErrorRefusesOneConnection) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetSessionStart, FailpointAction::kError);
  ClientOptions options;
  options.port = server_->port();
  Result<NetClient> refused = NetClient::Connect(options);
  if (refused.ok()) {
    EXPECT_FALSE(refused.value().Run("SHOW MKB").ok());
  }
  EXPECT_TRUE(WaitFor([this] { return server_->stats().refused >= 1; }));
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());
}

TEST_F(ServerTest, ServerFailpointFrameReadErrorEvictsTheSession) {
  StartServer();
  NetClient victim = MustConnect();
  ASSERT_TRUE(victim.Run("SHOW MKB").ok());
  Failpoints::Instance().Arm(fp::kNetFrameRead, FailpointAction::kError);
  EXPECT_FALSE(victim.Run("SHOW MKB").ok());
  EXPECT_TRUE(
      WaitFor([this] { return server_->stats().evicted_io_error >= 1; }));
  // The server survives the eviction.
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());
}

TEST_F(ServerTest, ServerFailpointFrameWriteErrorEvictsTheSession) {
  StartServer();
  NetClient victim = MustConnect();
  ASSERT_TRUE(victim.Run("SHOW MKB").ok());
  Failpoints::Instance().Arm(fp::kNetFrameWrite, FailpointAction::kError);
  EXPECT_FALSE(victim.Run("SHOW MKB").ok());
  EXPECT_TRUE(
      WaitFor([this] { return server_->stats().evicted_io_error >= 1; }));
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());
}

TEST_F(ServerTest, ServerFailpointDrainErrorIsAbsorbed) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetDrain, FailpointAction::kError);
  server_->BeginDrain();  // a drain cannot be refused
  server_->WaitUntilStopped();
  EXPECT_TRUE(server_->stopped());
  EXPECT_TRUE(server_->crashed_site().empty());
}

TEST_F(ServerTest, ServerFailpointShutdownErrorIsAbsorbed) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetShutdown, FailpointAction::kError);
  server_->Stop();
  server_->WaitUntilStopped();
  EXPECT_TRUE(server_->stopped());
  EXPECT_TRUE(server_->crashed_site().empty());
}

// --- Failpoints: crash mode (simulated process death) -----------------------

TEST_F(ServerTest, ServerFailpointFrameReadCrashStopsTheServer) {
  StartServer();
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());
  Failpoints::Instance().Arm(fp::kNetFrameRead, FailpointAction::kCrash);
  (void)client.Run("SHOW MKB");  // dies mid-crash; outcome is a transport error
  server_->WaitUntilStopped();
  EXPECT_EQ(server_->crashed_site(), fp::kNetFrameRead);
}

TEST_F(ServerTest, ServerFailpointAcceptCrashStopsTheServer) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetAccept, FailpointAction::kCrash);
  ClientOptions options;
  options.port = server_->port();
  (void)NetClient::Connect(options);
  server_->WaitUntilStopped();
  EXPECT_EQ(server_->crashed_site(), fp::kNetAccept);
}

TEST_F(ServerTest, ServerFailpointDrainCrashRecordsTheSite) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetDrain, FailpointAction::kCrash);
  server_->BeginDrain();
  server_->WaitUntilStopped();
  EXPECT_EQ(server_->crashed_site(), fp::kNetDrain);
}

TEST_F(ServerTest, ServerFailpointShutdownCrashRecordsTheSite) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetShutdown, FailpointAction::kCrash);
  server_->Stop();
  server_->WaitUntilStopped();
  EXPECT_EQ(server_->crashed_site(), fp::kNetShutdown);
}

TEST_F(ServerTest, ServerFailpointSessionStartCrashStopsTheServer) {
  StartServer();
  Failpoints::Instance().Arm(fp::kNetSessionStart, FailpointAction::kCrash);
  ClientOptions options;
  options.port = server_->port();
  (void)NetClient::Connect(options);
  server_->WaitUntilStopped();
  EXPECT_EQ(server_->crashed_site(), fp::kNetSessionStart);
}

TEST_F(ServerTest, ServerFailpointFrameWriteCrashStopsTheServer) {
  StartServer();
  NetClient client = MustConnect();
  ASSERT_TRUE(client.Run("SHOW MKB").ok());
  Failpoints::Instance().Arm(fp::kNetFrameWrite, FailpointAction::kCrash);
  (void)client.Run("SHOW MKB");
  server_->WaitUntilStopped();
  EXPECT_EQ(server_->crashed_site(), fp::kNetFrameWrite);
}

// --- SplitStatements line accounting (the evectl file:line contract) --------

TEST(SplitStatementsTest, TracksTheStartingLineOfEachStatement) {
  const std::string script =
      "-- comment line\n"
      "SHOW MKB;\n"
      "\n"
      "SHOW\n  VIEWS;\n"
      "-- trailing\nSHOW SYNC STATS";
  const std::vector<Statement> statements = SplitStatements(script);
  ASSERT_EQ(statements.size(), 3u);
  EXPECT_EQ(statements[0].text, "SHOW MKB");
  EXPECT_EQ(statements[0].line, 2u);
  EXPECT_EQ(statements[1].line, 4u);
  EXPECT_EQ(statements[2].text, "SHOW SYNC STATS");
  EXPECT_EQ(statements[2].line, 7u);
}

TEST(SplitStatementsTest, SemicolonsInsideQuotesDoNotSplit) {
  const std::vector<Statement> statements =
      SplitStatements("LOAD MISD 'a;b.misd';\nSHOW MKB");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0].text, "LOAD MISD 'a;b.misd'");
}

}  // namespace
}  // namespace net
}  // namespace eve
