#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace eve {
namespace {

RelationDef Rel(std::string source, std::string name,
                std::vector<AttributeDef> attrs) {
  RelationDef def;
  def.source = std::move(source);
  def.name = std::move(name);
  def.schema = Schema(std::move(attrs));
  return def;
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddRelation(Rel("IS1", "Customer", {{"Name", DataType::kString},
                                                  {"Age", DataType::kInt}}))
          .ok());
  EXPECT_TRUE(catalog.HasRelation("Customer"));
  EXPECT_FALSE(catalog.HasRelation("Nope"));
  EXPECT_TRUE(catalog.HasAttribute({"Customer", "Name"}));
  EXPECT_FALSE(catalog.HasAttribute({"Customer", "Nope"}));
  EXPECT_EQ(catalog.TypeOf({"Customer", "Age"}).value(), DataType::kInt);
  EXPECT_FALSE(catalog.TypeOf({"Customer", "Nope"}).ok());
  EXPECT_FALSE(catalog.TypeOf({"Nope", "Name"}).ok());
  EXPECT_EQ(catalog.GetRelation("Customer").value()->QualifiedName(),
            "IS1.Customer");
}

TEST(CatalogTest, RejectsDuplicatesAndEmptyNames) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "R", {{"a", DataType::kInt}}))
                  .ok());
  EXPECT_EQ(catalog.AddRelation(Rel("IS2", "R", {{"b", DataType::kInt}}))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.AddRelation(Rel("IS1", "", {})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddRelation(Rel("", "S", {})).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, SameNameSameTypeConventionEnforced) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddRelation(Rel("IS1", "A", {{"Name", DataType::kString}}))
          .ok());
  // Same attribute name with a different type in another relation: rejected.
  EXPECT_EQ(
      catalog.AddRelation(Rel("IS2", "B", {{"Name", DataType::kInt}})).code(),
      StatusCode::kTypeError);
  // Same type: fine.
  EXPECT_TRUE(
      catalog.AddRelation(Rel("IS2", "C", {{"Name", DataType::kString}}))
          .ok());
}

TEST(CatalogTest, DropRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "R", {{"a", DataType::kInt}}))
                  .ok());
  EXPECT_TRUE(catalog.DropRelation("R").ok());
  EXPECT_FALSE(catalog.HasRelation("R"));
  EXPECT_EQ(catalog.DropRelation("R").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RenameRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "R", {{"a", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "S", {{"b", DataType::kInt}}))
                  .ok());
  EXPECT_TRUE(catalog.RenameRelation("R", "R2").ok());
  EXPECT_TRUE(catalog.HasRelation("R2"));
  EXPECT_FALSE(catalog.HasRelation("R"));
  // Name clash and missing-source errors.
  EXPECT_EQ(catalog.RenameRelation("R2", "S").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.RenameRelation("gone", "X").code(),
            StatusCode::kNotFound);
  // Renaming to itself is a no-op.
  EXPECT_TRUE(catalog.RenameRelation("R2", "R2").ok());
}

TEST(CatalogTest, AddAttribute) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "R", {{"a", DataType::kInt}}))
                  .ok());
  EXPECT_TRUE(catalog.AddAttribute("R", {"b", DataType::kString}).ok());
  EXPECT_TRUE(catalog.HasAttribute({"R", "b"}));
  EXPECT_EQ(catalog.AddAttribute("R", {"b", DataType::kString}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.AddAttribute("gone", {"c", DataType::kInt}).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, DropAttribute) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(Rel("IS1", "R",
                                   {{"a", DataType::kInt},
                                    {"b", DataType::kString}}))
                  .ok());
  EXPECT_TRUE(catalog.DropAttribute("R", "a").ok());
  EXPECT_FALSE(catalog.HasAttribute({"R", "a"}));
  EXPECT_TRUE(catalog.HasAttribute({"R", "b"}));
  EXPECT_EQ(catalog.DropAttribute("R", "a").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropAttributeUpdatesOrderConstraint) {
  Catalog catalog;
  RelationDef def = Rel("IS1", "R",
                        {{"a", DataType::kInt}, {"b", DataType::kInt}});
  def.ordered_by = {"a", "b"};
  ASSERT_TRUE(catalog.AddRelation(def).ok());
  ASSERT_TRUE(catalog.DropAttribute("R", "a").ok());
  EXPECT_EQ(catalog.GetRelation("R").value()->ordered_by,
            (std::vector<std::string>{"b"}));
}

TEST(CatalogTest, OrderConstraintMustReferenceKnownAttributes) {
  Catalog catalog;
  RelationDef def = Rel("IS1", "R", {{"a", DataType::kInt}});
  def.ordered_by = {"zz"};
  EXPECT_EQ(catalog.AddRelation(def).code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RenameAttribute) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation(Rel("IS1", "R",
                                   {{"a", DataType::kInt},
                                    {"b", DataType::kString}}))
                  .ok());
  EXPECT_TRUE(catalog.RenameAttribute("R", "a", "a2").ok());
  EXPECT_TRUE(catalog.HasAttribute({"R", "a2"}));
  EXPECT_FALSE(catalog.HasAttribute({"R", "a"}));
  EXPECT_EQ(catalog.RenameAttribute("R", "a2", "b").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.RenameAttribute("R", "gone", "x").code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, RenameAttributeChecksCrossRelationTypes) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddRelation(Rel("IS1", "A", {{"Name", DataType::kString}}))
          .ok());
  ASSERT_TRUE(catalog.AddRelation(Rel("IS2", "B", {{"x", DataType::kInt}}))
                  .ok());
  // Renaming B.x to "Name" would violate same-name-same-type.
  EXPECT_EQ(catalog.RenameAttribute("B", "x", "Name").code(),
            StatusCode::kTypeError);
}

TEST(CatalogTest, RelationNamesSortedAndSourceFilter) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(Rel("IS2", "B", {{"b", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "A", {{"a", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(catalog.AddRelation(Rel("IS1", "C", {{"c", DataType::kInt}}))
                  .ok());
  EXPECT_EQ(catalog.RelationNames(),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(catalog.RelationsOfSource("IS1"),
            (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(catalog.NumRelations(), 3u);
}

}  // namespace
}  // namespace eve
