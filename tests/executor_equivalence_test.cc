// Differential testing of the executor strategies and of incremental view
// maintenance:
//  * randomized conjunctive queries (joins, 3VL predicates, expression
//    projections, NULL-heavy data) must produce byte-identical result
//    tables under kNestedLoop (the oracle), kHash, kVectorized and kAuto;
//  * MaterializedViewStore::IncrementalRefresh must produce an extent
//    byte-identical (after Deduplicate) to a full Refresh for every CVS
//    verdict — Equal (wholesale reuse, incl. permuted interfaces),
//    Superset (dropped-condition deltas, incl. NULL rows the partition
//    rule must not lose), Subset (added-condition filter over the stored
//    extent) and Unknown (full-recompute fallback).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "algebra/executor.h"
#include "cvs/extent.h"
#include "eve/materialization.h"
#include "storage/database.h"
#include "workload/generator.h"

namespace eve {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddRelation({"IS0",
                                "R",
                                Schema({{"k", DataType::kInt},
                                        {"p", DataType::kInt},
                                        {"q", DataType::kInt},
                                        {"d", DataType::kDouble},
                                        {"s", DataType::kString}}),
                                {}})
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation({"IS1",
                                "A",
                                Schema({{"k", DataType::kInt},
                                        {"w", DataType::kInt}}),
                                {}})
                  .ok());
  EXPECT_TRUE(catalog
                  .AddRelation({"IS2",
                                "B",
                                Schema({{"j", DataType::kInt},
                                        {"u", DataType::kInt}}),
                                {}})
                  .ok());
  return catalog;
}

// NULL-heavy random data: every cell is NULL with probability ~0.15, so
// three-valued comparison and join-key semantics get exercised.
Value MaybeNullInt(std::mt19937_64* rng, int64_t domain) {
  if ((*rng)() % 100 < 15) return Value::Null();
  return Value::Int(static_cast<int64_t>((*rng)() % domain));
}

Database MakeDatabase(const Catalog& catalog, std::mt19937_64* rng,
                      size_t r_rows, size_t a_rows, size_t b_rows) {
  Database db;
  EXPECT_TRUE(db.CreateAllTables(catalog).ok());
  static const char* kStrings[] = {"ann", "bob", "cat", "dee", "eel"};
  Table* r = db.GetTable("R").value();
  for (size_t i = 0; i < r_rows; ++i) {
    Tuple t;
    t.push_back(MaybeNullInt(rng, 8));
    t.push_back(MaybeNullInt(rng, 40));
    t.push_back(MaybeNullInt(rng, 40));
    t.push_back((*rng)() % 100 < 15
                    ? Value::Null()
                    : Value::Double(static_cast<double>((*rng)() % 400) / 4));
    t.push_back((*rng)() % 100 < 15
                    ? Value::Null()
                    : Value::String(kStrings[(*rng)() % 5]));
    r->InsertUnchecked(std::move(t));
  }
  Table* a = db.GetTable("A").value();
  for (size_t i = 0; i < a_rows; ++i) {
    Tuple t;
    t.push_back(MaybeNullInt(rng, 8));
    t.push_back(MaybeNullInt(rng, 40));
    a->InsertUnchecked(std::move(t));
  }
  Table* b = db.GetTable("B").value();
  for (size_t i = 0; i < b_rows; ++i) {
    Tuple t;
    t.push_back(MaybeNullInt(rng, 8));
    t.push_back(MaybeNullInt(rng, 40));
    b->InsertUnchecked(std::move(t));
  }
  return db;
}

ExprPtr Col(const std::string& rel, const std::string& attr) {
  return Expr::Column(AttributeRef{rel, attr});
}

// One random primitive predicate over the given relations' int columns:
// column-vs-literal or column-vs-column comparison, an arithmetic
// comparison, an OR of two comparisons, or a negation.
ExprPtr RandomPredicate(const std::vector<std::string>& rels,
                        std::mt19937_64* rng) {
  static const BinaryOp kCmp[] = {BinaryOp::kEq, BinaryOp::kNe,
                                  BinaryOp::kLt, BinaryOp::kLe,
                                  BinaryOp::kGt, BinaryOp::kGe};
  auto random_col = [&]() -> ExprPtr {
    const std::string& rel = rels[(*rng)() % rels.size()];
    if (rel == "R") {
      static const char* kAttrs[] = {"k", "p", "q", "d"};
      return Col(rel, kAttrs[(*rng)() % 4]);
    }
    if (rel == "A") return Col(rel, (*rng)() % 2 ? "k" : "w");
    return Col(rel, (*rng)() % 2 ? "j" : "u");
  };
  const BinaryOp op = kCmp[(*rng)() % 6];
  ExprPtr pred;
  switch ((*rng)() % 5) {
    case 0:
      pred = Expr::Binary(op, random_col(),
                          Expr::Lit(Value::Int((*rng)() % 40)));
      break;
    case 1:
      pred = Expr::Binary(op, random_col(), random_col());
      break;
    case 2:
      pred = Expr::Binary(
          op, Expr::Binary(BinaryOp::kAdd, random_col(), random_col()),
          Expr::Lit(Value::Int((*rng)() % 60)));
      break;
    case 3:
      pred = Expr::Binary(
          BinaryOp::kOr,
          Expr::Binary(op, random_col(), Expr::Lit(Value::Int((*rng)() % 40))),
          Expr::Binary(kCmp[(*rng)() % 6], random_col(),
                       Expr::Lit(Value::Int((*rng)() % 40))));
      break;
    default:
      pred = Expr::Unary(UnaryOp::kNot,
                         Expr::Binary(op, random_col(),
                                      Expr::Lit(Value::Int((*rng)() % 40))));
      break;
  }
  return pred;
}

ConjunctiveQuery RandomQuery(std::mt19937_64* rng) {
  ConjunctiveQuery q;
  const size_t shape = (*rng)() % 4;
  if (shape == 0) {
    q.relations = {"R"};
  } else if (shape == 1) {
    q.relations = {"R", "A"};
    q.conjuncts.push_back(Expr::ColumnsEqual({"R", "k"}, {"A", "k"}));
  } else if (shape == 2) {
    // Deliberately join-free pair: exercises the cartesian fallback in the
    // hash and vectorized paths (tables are small).
    q.relations = {"A", "B"};
  } else {
    q.relations = {"R", "A", "B"};
    q.conjuncts.push_back(Expr::ColumnsEqual({"R", "k"}, {"A", "k"}));
    q.conjuncts.push_back(Expr::ColumnsEqual({"A", "k"}, {"B", "j"}));
  }
  const size_t num_filters = (*rng)() % 3;
  for (size_t i = 0; i < num_filters; ++i) {
    q.conjuncts.push_back(RandomPredicate(q.relations, rng));
  }
  // Projections: every relation contributes one bare column, plus one
  // computed expression so the projection evaluators are exercised too.
  for (const std::string& rel : q.relations) {
    if (rel == "R") {
      q.projections.push_back(Col("R", "p"));
      q.output_names.push_back("P");
      q.projections.push_back(Col("R", "s"));
      q.output_names.push_back("S");
    } else if (rel == "A") {
      q.projections.push_back(Col("A", "w"));
      q.output_names.push_back("W");
    } else {
      q.projections.push_back(Col("B", "u"));
      q.output_names.push_back("U");
    }
  }
  q.projections.push_back(
      Expr::Binary(BinaryOp::kAdd, Col(q.relations.front(), "k"),
                   Expr::Lit(Value::Int(1))));
  q.output_names.push_back("E");
  q.distinct = true;
  return q;
}

// Byte-identity after Deduplicate: same schema, same row count, and
// strictly equal Values cell by cell in dedup-sorted order.
void ExpectTablesIdentical(const Table& got, const Table& want,
                           const std::string& context) {
  ASSERT_EQ(got.schema().ToString(), want.schema().ToString()) << context;
  Table a = got;
  Table b = want;
  a.Deduplicate();
  b.Deduplicate();
  ASSERT_EQ(a.NumRows(), b.NumRows()) << context;
  for (size_t row = 0; row < a.NumRows(); ++row) {
    for (size_t col = 0; col < a.NumColumns(); ++col) {
      const Value va = a.column(col).GetValue(row);
      const Value vb = b.column(col).GetValue(row);
      ASSERT_TRUE(va == vb || (va.is_null() && vb.is_null()))
          << context << ": row " << row << " col " << col << " differ: "
          << va.ToString() << " vs " << vb.ToString();
    }
  }
}

TEST(ExecutorEquivalenceTest, RandomizedDifferentialAcrossStrategies) {
  const Catalog catalog = MakeCatalog();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937_64 rng(seed * 7919 + 1);
    const Database db =
        MakeDatabase(catalog, &rng, /*r_rows=*/60 + seed % 64,
                     /*a_rows=*/20 + seed % 16, /*b_rows=*/6);
    const ConjunctiveQuery query = RandomQuery(&rng);
    const Result<Table> oracle =
        Execute(query, db, catalog, nullptr, JoinStrategy::kNestedLoop);
    ASSERT_TRUE(oracle.ok()) << "seed " << seed << ": " << oracle.status();
    for (const JoinStrategy strategy :
         {JoinStrategy::kHash, JoinStrategy::kVectorized,
          JoinStrategy::kAuto}) {
      const Result<Table> got =
          Execute(query, db, catalog, nullptr, strategy);
      ASSERT_TRUE(got.ok()) << "seed " << seed << " strategy "
                            << JoinStrategyToString(strategy) << ": "
                            << got.status();
      ExpectTablesIdentical(
          got.value(), oracle.value(),
          "seed " + std::to_string(seed) + " strategy " +
              JoinStrategyToString(strategy));
    }
  }
}

TEST(ExecutorEquivalenceTest, CartesianFallbackBumpsCounter) {
  const Catalog catalog = MakeCatalog();
  std::mt19937_64 rng(42);
  const Database db = MakeDatabase(catalog, &rng, 10, 8, 4);
  ConjunctiveQuery q;
  q.relations = {"A", "B"};
  q.projections = {Col("A", "w"), Col("B", "u")};
  q.output_names = {"W", "U"};
  GlobalExecutorCounters().Reset();
  for (const JoinStrategy strategy :
       {JoinStrategy::kHash, JoinStrategy::kVectorized}) {
    ASSERT_TRUE(Execute(q, db, catalog, nullptr, strategy).ok());
  }
  EXPECT_EQ(GlobalExecutorCounters().cartesian_fallbacks.load(), 2u);
  EXPECT_EQ(GlobalExecutorCounters().hash_queries.load(), 1u);
  EXPECT_EQ(GlobalExecutorCounters().vectorized_queries.load(), 1u);
}

TEST(ExecutorEquivalenceTest, AutoRoutesByInputSize) {
  const Catalog catalog = MakeCatalog();
  std::mt19937_64 rng(7);
  // Small inputs -> hash; >= 256-row largest input -> vectorized.
  const Database small = MakeDatabase(catalog, &rng, 50, 10, 4);
  const Database large = MakeDatabase(catalog, &rng, 400, 10, 4);
  ConjunctiveQuery q;
  q.relations = {"R"};
  q.projections = {Col("R", "p")};
  q.output_names = {"P"};
  GlobalExecutorCounters().Reset();
  ASSERT_TRUE(Execute(q, small, catalog, nullptr, JoinStrategy::kAuto).ok());
  EXPECT_EQ(GlobalExecutorCounters().hash_queries.load(), 1u);
  EXPECT_EQ(GlobalExecutorCounters().vectorized_queries.load(), 0u);
  ASSERT_TRUE(Execute(q, large, catalog, nullptr, JoinStrategy::kAuto).ok());
  EXPECT_EQ(GlobalExecutorCounters().vectorized_queries.load(), 1u);
}

// --- Incremental refresh vs full refresh ----------------------------------

ViewDefinition MakeView(const std::string& name,
                        std::vector<ViewSelectItem> select,
                        std::vector<ViewCondition> where) {
  std::vector<ViewRelation> from = {{"R", {}}, {"A", {}}};
  return ViewDefinition(name, ViewExtent::kAny, std::move(select),
                        std::move(from), std::move(where));
}

std::vector<ViewSelectItem> BaseSelect() {
  return {{Col("R", "p"), "P", {}},
          {Col("R", "q"), "Q", {}},
          {Col("A", "w"), "W", {}}};
}

ViewCondition JoinCond() {
  return {Expr::ColumnsEqual({"R", "k"}, {"A", "k"}), {}};
}

// IncrementalRefresh(old, new, verdict) must agree byte-for-byte with a
// full Refresh(new) for every verdict, including on NULL-heavy data where
// a naive NOT-based superset delta would lose rows.
TEST(IncrementalRefreshTest, MatchesFullRefreshForEveryVerdict) {
  const Catalog catalog = MakeCatalog();
  for (uint64_t seed = 0; seed < 12; ++seed) {
    std::mt19937_64 rng(seed + 100);
    const Database db = MakeDatabase(catalog, &rng, 80, 30, 4);

    const ViewCondition drop1 = {
        Expr::Binary(BinaryOp::kLt, Col("R", "q"),
                     Expr::Lit(Value::Int(30))),
        {}};
    const ViewCondition drop2 = {
        Expr::Binary(BinaryOp::kGe, Col("R", "p"),
                     Expr::Lit(Value::Int(5))),
        {}};

    struct Case {
      const char* name;
      ViewDefinition old_view;
      ViewDefinition new_view;
      ExtentRelation verdict;
      RefreshPath want_path;
    };
    const std::vector<Case> cases = {
        // Equal: identical definition under a new registration.
        {"equal-same-order",
         MakeView("v", BaseSelect(), {JoinCond(), drop1}),
         MakeView("v", BaseSelect(), {JoinCond(), drop1}),
         ExtentRelation::kEqual, RefreshPath::kReuseEqual},
        // Equal with a permuted interface: zero row work, permuted handles.
        {"equal-permuted",
         MakeView("v", BaseSelect(), {JoinCond()}),
         MakeView("v",
                  {{Col("A", "w"), "W", {}},
                   {Col("R", "q"), "Q", {}},
                   {Col("R", "p"), "P", {}}},
                  {JoinCond()}),
         ExtentRelation::kEqual, RefreshPath::kReuseEqual},
        // Superset: one dropped condition (NULL q rows must reappear).
        {"superset-one-drop",
         MakeView("v", BaseSelect(), {JoinCond(), drop1}),
         MakeView("v", BaseSelect(), {JoinCond()}),
         ExtentRelation::kSuperset, RefreshPath::kDeltaSuperset},
        // Superset: two dropped conditions (partition across delta terms).
        {"superset-two-drops",
         MakeView("v", BaseSelect(), {JoinCond(), drop1, drop2}),
         MakeView("v", BaseSelect(), {JoinCond()}),
         ExtentRelation::kSuperset, RefreshPath::kDeltaSuperset},
        // Subset: added conditions over exposed bare columns filter the
        // stored extent without touching base tables.
        {"subset-added-filter",
         MakeView("v", BaseSelect(), {JoinCond()}),
         MakeView("v", BaseSelect(), {JoinCond(), drop1, drop2}),
         ExtentRelation::kSubset, RefreshPath::kDeltaSubset},
        // Unknown: full-recompute fallback.
        {"unknown-falls-back",
         MakeView("v", BaseSelect(), {JoinCond(), drop1}),
         MakeView("v", BaseSelect(), {JoinCond()}),
         ExtentRelation::kUnknown, RefreshPath::kFull},
    };

    for (const Case& c : cases) {
      const std::string context =
          std::string(c.name) + " seed " + std::to_string(seed);
      // The claimed verdict must hold empirically (db is unchanged, so old
      // and new evaluate over the same state). Unknown claims nothing.
      if (c.verdict != ExtentRelation::kUnknown) {
        const Result<ExtentRelation> empirical = CompareExtentsEmpirically(
            c.old_view, c.new_view, db, catalog, catalog, nullptr,
            JoinStrategy::kVectorized);
        ASSERT_TRUE(empirical.ok()) << context;
        const bool compatible =
            empirical.value() == c.verdict ||
            empirical.value() == ExtentRelation::kEqual;
        EXPECT_TRUE(compatible)
            << context << ": empirical verdict "
            << ExtentRelationToString(empirical.value());
      }

      MaterializedViewStore incremental;
      incremental.SetStrategy(JoinStrategy::kVectorized);
      ASSERT_TRUE(incremental.Refresh(c.old_view, db, catalog).ok())
          << context;
      ASSERT_TRUE(incremental
                      .IncrementalRefresh(c.old_view, c.new_view, c.verdict,
                                          db, catalog)
                      .ok())
          << context;
      EXPECT_EQ(incremental.StatsFor("v").last_path, c.want_path) << context;

      MaterializedViewStore full;
      ASSERT_TRUE(full.Refresh(c.new_view, db, catalog).ok()) << context;
      ExpectTablesIdentical(*incremental.Extent("v").value(),
                            *full.Extent("v").value(), context);
    }
  }
}

// Randomized drop/add sets: old = base conditions, new = random subset
// (superset verdict) and the reverse (subset verdict); incremental must
// match full either way.
TEST(IncrementalRefreshTest, RandomizedConditionSubsets) {
  const Catalog catalog = MakeCatalog();
  for (uint64_t seed = 0; seed < 15; ++seed) {
    std::mt19937_64 rng(seed * 31 + 5);
    const Database db = MakeDatabase(catalog, &rng, 70, 25, 4);
    // A pool of conditions over exposed columns only (P, Q and W are all
    // bare select items, so the subset rule is always applicable).
    std::vector<ViewCondition> pool = {JoinCond()};
    const size_t extra = 1 + rng() % 3;
    static const char* kCols[][2] = {{"R", "p"}, {"R", "q"}, {"A", "w"}};
    static const BinaryOp kOps[] = {BinaryOp::kLt, BinaryOp::kGe,
                                    BinaryOp::kNe};
    for (size_t i = 0; i < extra; ++i) {
      const auto& col = kCols[rng() % 3];
      pool.push_back({Expr::Binary(kOps[rng() % 3], Col(col[0], col[1]),
                                   Expr::Lit(Value::Int(rng() % 40))),
                      {}});
    }
    // Narrow = all conditions; wide = join plus a strict subset of the
    // extras.
    std::vector<ViewCondition> wide = {pool.front()};
    for (size_t i = 1; i < pool.size(); ++i) {
      if (rng() % 2 == 0) wide.push_back(pool[i]);
    }
    const ViewDefinition narrow_view = MakeView("v", BaseSelect(), pool);
    const ViewDefinition wide_view = MakeView("v", BaseSelect(), wide);

    for (const bool dropping : {true, false}) {
      const ViewDefinition& old_view = dropping ? narrow_view : wide_view;
      const ViewDefinition& new_view = dropping ? wide_view : narrow_view;
      const ExtentRelation verdict =
          dropping ? ExtentRelation::kSuperset : ExtentRelation::kSubset;
      const std::string context = std::string(dropping ? "drop" : "add") +
                                  " seed " + std::to_string(seed);

      MaterializedViewStore incremental;
      incremental.SetStrategy(JoinStrategy::kAuto);
      ASSERT_TRUE(incremental.Refresh(old_view, db, catalog).ok()) << context;
      ASSERT_TRUE(incremental
                      .IncrementalRefresh(old_view, new_view, verdict, db,
                                          catalog)
                      .ok())
          << context;

      MaterializedViewStore full;
      ASSERT_TRUE(full.Refresh(new_view, db, catalog).ok()) << context;
      ExpectTablesIdentical(*incremental.Extent("v").value(),
                            *full.Extent("v").value(), context);
    }
  }
}

// Structural preconditions failing must fall back to a full refresh, not
// produce a wrong extent: a Superset verdict whose select lists differ.
TEST(IncrementalRefreshTest, InapplicableRuleFallsBackToFull) {
  const Catalog catalog = MakeCatalog();
  std::mt19937_64 rng(3);
  const Database db = MakeDatabase(catalog, &rng, 40, 15, 4);
  const ViewCondition cond = {Expr::Binary(BinaryOp::kLt, Col("R", "q"),
                                           Expr::Lit(Value::Int(20))),
                              {}};
  const ViewDefinition old_view = MakeView("v", BaseSelect(), {JoinCond(), cond});
  // New view also renames an output: pairwise select match fails.
  const ViewDefinition new_view =
      MakeView("v",
               {{Col("R", "p"), "P2", {}},
                {Col("R", "q"), "Q", {}},
                {Col("A", "w"), "W", {}}},
               {JoinCond()});
  MaterializedViewStore store;
  ASSERT_TRUE(store.Refresh(old_view, db, catalog).ok());
  ASSERT_TRUE(store
                  .IncrementalRefresh(old_view, new_view,
                                      ExtentRelation::kSuperset, db, catalog)
                  .ok());
  EXPECT_EQ(store.StatsFor("v").last_path, RefreshPath::kFull);
  MaterializedViewStore full;
  ASSERT_TRUE(full.Refresh(new_view, db, catalog).ok());
  ExpectTablesIdentical(*store.Extent("v").value(), *full.Extent("v").value(),
                        "inapplicable");
}

// The skewed workload generator is deterministic and honors its knobs.
TEST(SkewedDataTest, DeterministicAndSelective) {
  const Catalog catalog = MakeCatalog();
  SkewedDataSpec spec;
  spec.rows = 2000;
  spec.join_domain = 16;
  spec.join_selectivity = 0.25;
  spec.value_skew = 1.5;
  spec.seed = 9;
  Database db1;
  Database db2;
  ASSERT_TRUE(PopulateRelationSkewed(catalog, "A", spec, &db1).ok());
  ASSERT_TRUE(PopulateRelationSkewed(catalog, "A", spec, &db2).ok());
  const Table* t1 = db1.GetTable("A").value();
  const Table* t2 = db2.GetTable("A").value();
  ASSERT_EQ(t1->NumRows(), spec.rows);
  ExpectTablesIdentical(*t1, *t2, "determinism");
  // 'k' is a join key (name does not start with L here, so check by the
  // generator's contract on a relation whose key is L-prefixed instead).
  size_t hot = 0;
  for (size_t row = 0; row < t1->NumRows(); ++row) {
    const Value v = t1->column(0).GetValue(row);
    if (!v.is_null() && v.int_value() >= 0) ++hot;
  }
  // Non-L columns are plain skewed values, all in [0, domain): sanity.
  EXPECT_EQ(hot, t1->NumRows());
}

TEST(SkewedDataTest, JoinSelectivityControlsMatchRate) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation({"IS0",
                                "S",
                                Schema({{"L0", DataType::kInt},
                                        {"v", DataType::kInt}}),
                                {}})
                  .ok());
  SkewedDataSpec spec;
  spec.rows = 4000;
  spec.join_domain = 8;
  spec.join_selectivity = 0.3;
  spec.seed = 4;
  Database db;
  ASSERT_TRUE(PopulateRelationSkewed(catalog, "S", spec, &db).ok());
  const Table* s = db.GetTable("S").value();
  size_t hot = 0;
  for (size_t row = 0; row < s->NumRows(); ++row) {
    const Value v = s->column(0).GetValue(row);
    ASSERT_FALSE(v.is_null());
    if (v.int_value() >= 0) {
      ASSERT_LT(v.int_value(), spec.join_domain);
      ++hot;
    }
  }
  const double frac = static_cast<double>(hot) / spec.rows;
  EXPECT_NEAR(frac, spec.join_selectivity, 0.05);
}

}  // namespace
}  // namespace eve
