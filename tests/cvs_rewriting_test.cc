#include <gtest/gtest.h>

#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "cvs/rewriting.h"
#include "esql/binder.h"
#include "hypergraph/join_graph.h"
#include "mkb/evolution.h"
#include "sql/parser.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class SpliceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
    mapping_ = ComputeRMapping(view_, "Customer", mkb_).MoveValue();
    auto evolution =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .MoveValue();
    mkb_prime_ = std::move(evolution.mkb);
    candidates_ = ComputeRReplacements(view_, mapping_, mkb_,
                                       JoinGraph::Build(mkb_prime_), {})
                      .MoveValue();
  }

  const ReplacementCandidate& CandidateWith(const std::string& relation) {
    for (const ReplacementCandidate& c : candidates_) {
      if (std::binary_search(c.tree.relations.begin(),
                             c.tree.relations.end(), relation)) {
        return c;
      }
    }
    ADD_FAILURE() << "no candidate with " << relation;
    return candidates_.front();
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
  RMapping mapping_;
  std::vector<ReplacementCandidate> candidates_;
};

// Paper Ex. 10 / Eq. (13): the Accident-Ins rewriting.
TEST_F(SpliceTest, PaperEquation13Structure) {
  const ViewDefinition rewritten =
      SpliceRewriting(view_, mapping_, CandidateWith("Accident-Ins"), "V2")
          .value();
  EXPECT_EQ(rewritten.name(), "V2");
  EXPECT_EQ(rewritten.extent(), view_.extent());
  // FROM: Accident-Ins, FlightRes, Participant (Customer gone).
  EXPECT_EQ(rewritten.FromRelationNames(),
            (std::vector<std::string>{"FlightRes", "Participant",
                                      "Accident-Ins"}));
  // SELECT: Holder as Name, f(Birthday) as Age, plus the two Participant
  // items.
  ASSERT_EQ(rewritten.select().size(), 4u);
  EXPECT_EQ(rewritten.select()[0].output_name, "Name");
  EXPECT_EQ(rewritten.select()[0].expr->column(),
            (AttributeRef{"Accident-Ins", "Holder"}));
  EXPECT_EQ(rewritten.select()[1].output_name, "Age");
  EXPECT_EQ(rewritten.select()[1].expr->kind(), ExprKind::kBinary);
  // WHERE: the join clause through JC6 replaces C.Name = F.PName.
  bool has_jc6_clause = false;
  for (const ViewCondition& cond : rewritten.where()) {
    if (cond.clause->ToString() ==
        "(FlightRes.PName = Accident-Ins.Holder)") {
      has_jc6_clause = true;
      EXPECT_FALSE(cond.params.dispensable);
      EXPECT_TRUE(cond.params.replaceable);
    }
  }
  EXPECT_TRUE(has_jc6_clause);
  EXPECT_EQ(rewritten.where().size(), 4u);
  // The view no longer references Customer anywhere.
  EXPECT_FALSE(rewritten.ReferencesRelation("Customer"));
}

TEST_F(SpliceTest, ReplacementRelationInheritsRParams) {
  // Customer was (true, true) in Eq. 5; Accident-Ins inherits that.
  const ViewDefinition rewritten =
      SpliceRewriting(view_, mapping_, CandidateWith("Accident-Ins"), "V2")
          .value();
  for (const ViewRelation& rel : rewritten.from()) {
    if (rel.name == "Accident-Ins") {
      EXPECT_TRUE(rel.params.dispensable);
      EXPECT_TRUE(rel.params.replaceable);
    }
  }
}

TEST_F(SpliceTest, FlightResCandidateDropsDispensableAge) {
  const ReplacementCandidate* flightres_only = nullptr;
  for (const ReplacementCandidate& c : candidates_) {
    if (c.tree.relations == std::vector<std::string>{"FlightRes"}) {
      flightres_only = &c;
    }
  }
  ASSERT_NE(flightres_only, nullptr);
  const ViewDefinition rewritten =
      SpliceRewriting(view_, mapping_, *flightres_only, "V2").value();
  // Age dropped; Name replaced by FlightRes.PName.
  ASSERT_EQ(rewritten.select().size(), 3u);
  EXPECT_EQ(rewritten.select()[0].output_name, "Name");
  EXPECT_EQ(rewritten.select()[0].expr->column(),
            (AttributeRef{"FlightRes", "PName"}));
  EXPECT_EQ(rewritten.FromRelationNames(),
            (std::vector<std::string>{"FlightRes", "Participant"}));
}

TEST_F(SpliceTest, SurvivingConditionsKeepTheirParams) {
  const ViewDefinition rewritten =
      SpliceRewriting(view_, mapping_, CandidateWith("Accident-Ins"), "V2")
          .value();
  // (F.Dest = 'Asia') kept with its original (false, true).
  bool found = false;
  for (const ViewCondition& cond : rewritten.where()) {
    if (cond.clause->ToString() == "(FlightRes.Dest = 'Asia')") {
      found = true;
      EXPECT_FALSE(cond.params.dispensable);
    }
  }
  EXPECT_TRUE(found);
}

// --- DropRelationRewriting -------------------------------------------------

TEST(DropRelationTest, DropsDispensableComponents) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT F.PName (false, true), C.Age (true, true) "
      "FROM Customer C (true, true), FlightRes F "
      "WHERE (C.Name = F.PName) (true, true) AND (F.Dest = 'Asia')",
      mkb.catalog())
                                  .value();
  const ViewDefinition dropped =
      DropRelationRewriting(view, "Customer", "V2").value();
  EXPECT_EQ(dropped.FromRelationNames(),
            (std::vector<std::string>{"FlightRes"}));
  EXPECT_EQ(dropped.select().size(), 1u);
  EXPECT_EQ(dropped.where().size(), 1u);
}

TEST(DropRelationTest, RefusesIndispensableComponents) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name (false, true) "
      "FROM Customer C (true, true), FlightRes F WHERE C.Name = F.PName",
      mkb.catalog())
                                  .value();
  EXPECT_EQ(DropRelationRewriting(view, "Customer", "V2").status().code(),
            StatusCode::kViewDisabled);
}

TEST(DropRelationTest, RefusesIndispensableRelation) {
  const Mkb mkb = MakeTravelAgencyMkb().value();
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT F.PName FROM Customer C (false, true), "
      "FlightRes F",
      mkb.catalog())
                                  .value();
  EXPECT_EQ(DropRelationRewriting(view, "Customer", "V2").status().code(),
            StatusCode::kViewDisabled);
}

// --- Consistency check -------------------------------------------------------

std::vector<ExprPtr> Conjuncts(std::string_view text) {
  return ParseConjunction(text).value();
}

TEST(ConsistencyTest, AcceptsSatisfiableConjunctions) {
  EXPECT_TRUE(CheckConjunctionConsistency(
                  Conjuncts("R.a = S.b AND R.c > 1 AND R.c < 5"))
                  .ok());
  EXPECT_TRUE(CheckConjunctionConsistency(Conjuncts("R.a = 'Asia'")).ok());
  EXPECT_TRUE(CheckConjunctionConsistency({}).ok());
}

TEST(ConsistencyTest, DetectsConflictingConstants) {
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("R.a = 'Asia' AND R.a = 'Europe'"))
                   .ok());
  EXPECT_FALSE(
      CheckConjunctionConsistency(Conjuncts("R.a = 1 AND R.a = 2")).ok());
}

TEST(ConsistencyTest, PropagatesThroughEqualityGroups) {
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("R.a = S.b AND R.a = 1 AND S.b = 2"))
                   .ok());
  EXPECT_TRUE(CheckConjunctionConsistency(
                  Conjuncts("R.a = S.b AND R.a = 1 AND S.b = 1"))
                  .ok());
}

TEST(ConsistencyTest, DetectsEmptyRanges) {
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("R.a > 5 AND R.a < 3"))
                   .ok());
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("R.a > 5 AND R.a < 5"))
                   .ok());
  EXPECT_TRUE(CheckConjunctionConsistency(
                  Conjuncts("R.a >= 5 AND R.a <= 5"))
                  .ok());
}

TEST(ConsistencyTest, ConstantVersusRange) {
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("R.a = 10 AND R.a < 5"))
                   .ok());
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("R.a = 1 AND R.a > 1"))
                   .ok());
  EXPECT_TRUE(CheckConjunctionConsistency(
                  Conjuncts("R.a = 4 AND R.a > 1 AND R.a <= 4"))
                  .ok());
}

TEST(ConsistencyTest, ConstantOnlyClauses) {
  EXPECT_FALSE(CheckConjunctionConsistency(Conjuncts("1 = 2")).ok());
  EXPECT_TRUE(CheckConjunctionConsistency(Conjuncts("2 = 2")).ok());
  EXPECT_FALSE(CheckConjunctionConsistency(Conjuncts("'a' = 'b'")).ok());
}

TEST(ConsistencyTest, LiteralOnLeftNormalized) {
  EXPECT_FALSE(CheckConjunctionConsistency(
                   Conjuncts("5 < R.a AND R.a < 3"))
                   .ok());
}

TEST(ConsistencyTest, ComplexClausesAreIgnored) {
  // Clauses the checker cannot reason about must not trigger false alarms.
  EXPECT_TRUE(CheckConjunctionConsistency(
                  Conjuncts("R.a + 1 = S.b AND R.a = 1 AND S.b = 5"))
                  .ok());
}

}  // namespace
}  // namespace eve
