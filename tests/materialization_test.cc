#include <gtest/gtest.h>

#include "eve/eve_system.h"
#include "eve/materialization.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

// --- Table column operations ---------------------------------------------------

TEST(TableColumnsTest, DropColumnRemovesSchemaAndValues) {
  Table table(Schema({{"a", DataType::kInt}, {"b", DataType::kString}}));
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(table.DropColumn("a").ok());
  EXPECT_EQ(table.schema().size(), 1u);
  EXPECT_EQ(table.rows()[0].size(), 1u);
  EXPECT_EQ(table.rows()[0][0], Value::String("x"));
  EXPECT_FALSE(table.DropColumn("a").ok());
}

TEST(TableColumnsTest, RenameColumn) {
  Table table(Schema({{"a", DataType::kInt}, {"b", DataType::kString}}));
  ASSERT_TRUE(table.RenameColumn("a", "a2").ok());
  EXPECT_TRUE(table.schema().Contains("a2"));
  EXPECT_EQ(table.RenameColumn("a2", "b").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table.RenameColumn("gone", "x").code(), StatusCode::kNotFound);
  EXPECT_TRUE(table.RenameColumn("b", "b").ok());
}

TEST(TableColumnsTest, AddColumnFillsNulls) {
  Table table(Schema({{"a", DataType::kInt}}));
  ASSERT_TRUE(table.Insert({Value::Int(1)}).ok());
  ASSERT_TRUE(table.AddColumn({"b", DataType::kString}).ok());
  EXPECT_EQ(table.schema().size(), 2u);
  EXPECT_TRUE(table.rows()[0][1].is_null());
  EXPECT_EQ(table.AddColumn({"b", DataType::kString}).code(),
            StatusCode::kAlreadyExists);
}

// --- ApplyChangeToDatabase ------------------------------------------------------

class PhysicalChangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb_, &db_, 20, 3).ok());
  }
  Mkb mkb_;
  Database db_;
};

TEST_F(PhysicalChangeTest, DeleteRelationDropsTable) {
  ASSERT_TRUE(ApplyChangeToDatabase(
                  CapabilityChange::DeleteRelation("Customer"), &db_)
                  .ok());
  EXPECT_FALSE(db_.HasTable("Customer"));
}

TEST_F(PhysicalChangeTest, DeleteAttributeDropsColumn) {
  ASSERT_TRUE(ApplyChangeToDatabase(
                  CapabilityChange::DeleteAttribute("Customer", "Addr"),
                  &db_)
                  .ok());
  const Table* customer = db_.GetTable("Customer").value();
  EXPECT_FALSE(customer->schema().Contains("Addr"));
  EXPECT_EQ(customer->rows()[0].size(), 3u);
}

TEST_F(PhysicalChangeTest, Renames) {
  ASSERT_TRUE(ApplyChangeToDatabase(
                  CapabilityChange::RenameRelation("Customer", "Client"),
                  &db_)
                  .ok());
  EXPECT_TRUE(db_.HasTable("Client"));
  ASSERT_TRUE(ApplyChangeToDatabase(
                  CapabilityChange::RenameAttribute("Client", "Name",
                                                    "FullName"),
                  &db_)
                  .ok());
  EXPECT_TRUE(
      db_.GetTable("Client").value()->schema().Contains("FullName"));
}

TEST_F(PhysicalChangeTest, AddRelationCreatesEmptyTable) {
  RelationDef def;
  def.source = "IS9";
  def.name = "Cruise";
  def.schema = Schema({{"CruiseID", DataType::kInt}});
  ASSERT_TRUE(
      ApplyChangeToDatabase(CapabilityChange::AddRelation(def), &db_).ok());
  EXPECT_TRUE(db_.HasTable("Cruise"));
  EXPECT_EQ(db_.GetTable("Cruise").value()->NumRows(), 0u);
}

TEST_F(PhysicalChangeTest, AddAttributeAppendsNullColumn) {
  ASSERT_TRUE(ApplyChangeToDatabase(
                  CapabilityChange::AddAttribute(
                      "Customer", {"Email", DataType::kString}),
                  &db_)
                  .ok());
  const Table* customer = db_.GetTable("Customer").value();
  EXPECT_TRUE(customer->schema().Contains("Email"));
  EXPECT_TRUE(customer->rows()[0].back().is_null());
}

TEST_F(PhysicalChangeTest, ErrorsPropagate) {
  EXPECT_FALSE(ApplyChangeToDatabase(
                   CapabilityChange::DeleteRelation("Nope"), &db_)
                   .ok());
  EXPECT_FALSE(ApplyChangeToDatabase(
                   CapabilityChange::DeleteAttribute("Customer", "Nope"),
                   &db_)
                   .ok());
}

// --- End-to-end warehouse maintenance -------------------------------------------

TEST(WarehouseTest, ViewStaysServableAcrossSourceDeparture) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddAccidentInsPc(&mkb).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 50, 11).ok());

  EveSystem system(mkb);
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());

  const FunctionRegistry registry = FunctionRegistry::Default();
  MaterializedViewStore store(&registry);
  ASSERT_TRUE(store
                  .Refresh(system.GetView("CustomerPassengersAsia")
                               .value()
                               ->definition,
                           db, system.mkb().catalog())
                  .ok());
  const Table before = *store.Extent("CustomerPassengersAsia").value();
  EXPECT_GT(before.NumRows(), 0u);

  // The change hits the MKB, the view pool AND the physical data.
  const CapabilityChange change =
      CapabilityChange::DeleteRelation("Customer");
  const ChangeReport report = system.ApplyChange(change).value();
  ASSERT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  ASSERT_TRUE(ApplyChangeToDatabase(change, &db).ok());
  EXPECT_FALSE(db.HasTable("Customer"));

  // Refresh the rewritten view from the surviving sources only.
  ASSERT_TRUE(store
                  .Refresh(system.GetView("CustomerPassengersAsia")
                               .value()
                               ->definition,
                           db, system.mkb().catalog())
                  .ok());
  const Table after = *store.Extent("CustomerPassengersAsia").value();
  // PC-AI: the rewriting is complete — nothing lost on the common
  // interface (here: all four columns survive via the covers).
  EXPECT_TRUE(before.IsSubsetOf(after))
      << "before:\n"
      << before.ToString() << "after:\n"
      << after.ToString();
}

TEST(WarehouseTest, StoreBookkeeping) {
  MaterializedViewStore store;
  EXPECT_FALSE(store.Has("v"));
  EXPECT_FALSE(store.Extent("v").ok());
  store.Drop("v");  // missing is fine
  EXPECT_EQ(store.NumViews(), 0u);
}

// The post-commit materialization hook: with a store and database
// attached, ApplyChange evolves the physical tables and brings every
// affected view's stored extent to its rewritten definition — no manual
// ApplyChangeToDatabase / Refresh calls.
TEST(WarehouseTest, AttachedStoreMaintainedAcrossChange) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddAccidentInsPc(&mkb).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 50, 11).ok());

  EveSystem system(mkb);
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const FunctionRegistry registry = FunctionRegistry::Default();
  MaterializedViewStore store(&registry);
  system.SetExecutorStrategy(JoinStrategy::kAuto);
  system.AttachMaterialization(&store, &db);
  EXPECT_EQ(store.strategy(), JoinStrategy::kAuto);

  ASSERT_TRUE(store
                  .Refresh(system.GetView("CustomerPassengersAsia")
                               .value()
                               ->definition,
                           db, system.mkb().catalog())
                  .ok());
  const Table before = *store.Extent("CustomerPassengersAsia").value();

  const Result<ChangeReport> report =
      system.ApplyChange(CapabilityChange::DeleteRelation("Customer"));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report.value().CountOutcome(ViewOutcomeKind::kRewritten), 1u);

  // The data plane followed the control plane on its own.
  EXPECT_FALSE(db.HasTable("Customer"));
  const Table& after = *store.Extent("CustomerPassengersAsia").value();
  EXPECT_TRUE(before.IsSubsetOf(after));

  // The maintained extent agrees with a from-scratch refresh of the
  // rewritten definition over the evolved database.
  MaterializedViewStore fresh(&registry);
  ASSERT_TRUE(fresh
                  .Refresh(system.GetView("CustomerPassengersAsia")
                               .value()
                               ->definition,
                           db, system.mkb().catalog())
                  .ok());
  EXPECT_TRUE(
      after.SetEquals(*fresh.Extent("CustomerPassengersAsia").value()));
  // Initial manual Refresh plus the hook's maintenance pass.
  EXPECT_GE(store.StatsFor("CustomerPassengersAsia").total(), 2u);
}

// The Extent() pointer-stability contract: the returned Table* survives
// Refresh of OTHER views unchanged, and is invalidated only by a
// Refresh/Drop of the SAME view.
TEST(WarehouseTest, ExtentPointerSurvivesRefreshOfOtherViews) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 30, 7).ok());

  EveSystem system(mkb);
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const ViewDefinition base =
      system.GetView("CustomerPassengersAsia").value()->definition;
  ViewDefinition other = base;
  other.set_name("OtherView");

  const FunctionRegistry registry = FunctionRegistry::Default();
  MaterializedViewStore store(&registry);
  const Catalog& catalog = system.mkb().catalog();
  ASSERT_TRUE(store.Refresh(base, db, catalog).ok());
  const Table* pinned = store.Extent("CustomerPassengersAsia").value();
  const std::string before = pinned->ToString(1000);

  // Churn OTHER entries: new views materialized and dropped around it.
  ASSERT_TRUE(store.Refresh(other, db, catalog).ok());
  ASSERT_TRUE(store.Refresh(other, db, catalog).ok());
  store.Drop("OtherView");
  ASSERT_TRUE(store.Refresh(other, db, catalog).ok());

  // Same pointer, same bytes: std::map nodes never move, and refreshes of
  // other names never touch this view's Table.
  EXPECT_EQ(store.Extent("CustomerPassengersAsia").value(), pinned);
  EXPECT_EQ(pinned->ToString(1000), before);

  // A refresh of the SAME view replaces the mapped Table in place: the
  // address may stay (map node reuse) but the contract says the old
  // pointer's contents are no longer guaranteed — re-fetch after any
  // same-view refresh.
  ASSERT_TRUE(store.Refresh(base, db, catalog).ok());
  const Table* refetched = store.Extent("CustomerPassengersAsia").value();
  EXPECT_EQ(refetched->ToString(1000), before);  // same data, re-fetched
  store.Drop("CustomerPassengersAsia");
  EXPECT_FALSE(store.Extent("CustomerPassengersAsia").ok());
}

}  // namespace
}  // namespace eve
