#include <gtest/gtest.h>

#include "cvs/cvs.h"
#include "cvs/extent.h"
#include "esql/binder.h"
#include "mkb/builder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

// --- Lattice ------------------------------------------------------------------

TEST(ExtentLatticeTest, EqualIsNeutral) {
  for (const ExtentRelation r :
       {ExtentRelation::kEqual, ExtentRelation::kSuperset,
        ExtentRelation::kSubset, ExtentRelation::kUnknown}) {
    EXPECT_EQ(CombineExtent(ExtentRelation::kEqual, r), r);
    EXPECT_EQ(CombineExtent(r, ExtentRelation::kEqual), r);
  }
}

TEST(ExtentLatticeTest, SameDirectionIsStable) {
  EXPECT_EQ(CombineExtent(ExtentRelation::kSuperset,
                          ExtentRelation::kSuperset),
            ExtentRelation::kSuperset);
  EXPECT_EQ(CombineExtent(ExtentRelation::kSubset, ExtentRelation::kSubset),
            ExtentRelation::kSubset);
}

TEST(ExtentLatticeTest, MixedDirectionsAreUnknown) {
  EXPECT_EQ(
      CombineExtent(ExtentRelation::kSuperset, ExtentRelation::kSubset),
      ExtentRelation::kUnknown);
  EXPECT_EQ(
      CombineExtent(ExtentRelation::kUnknown, ExtentRelation::kSuperset),
      ExtentRelation::kUnknown);
}

TEST(ExtentLatticeTest, SatisfiesViewExtentMatrix) {
  // VE = ≈ accepts everything.
  for (const ExtentRelation r :
       {ExtentRelation::kEqual, ExtentRelation::kSuperset,
        ExtentRelation::kSubset, ExtentRelation::kUnknown}) {
    EXPECT_TRUE(SatisfiesViewExtent(r, ViewExtent::kAny));
  }
  // VE = ≡ only accepts equal.
  EXPECT_TRUE(SatisfiesViewExtent(ExtentRelation::kEqual, ViewExtent::kEqual));
  EXPECT_FALSE(
      SatisfiesViewExtent(ExtentRelation::kSuperset, ViewExtent::kEqual));
  // VE = ⊇ accepts equal and superset.
  EXPECT_TRUE(
      SatisfiesViewExtent(ExtentRelation::kEqual, ViewExtent::kSuperset));
  EXPECT_TRUE(
      SatisfiesViewExtent(ExtentRelation::kSuperset, ViewExtent::kSuperset));
  EXPECT_FALSE(
      SatisfiesViewExtent(ExtentRelation::kSubset, ViewExtent::kSuperset));
  EXPECT_FALSE(
      SatisfiesViewExtent(ExtentRelation::kUnknown, ViewExtent::kSuperset));
  // VE = ⊆ accepts equal and subset.
  EXPECT_TRUE(
      SatisfiesViewExtent(ExtentRelation::kSubset, ViewExtent::kSubset));
  EXPECT_FALSE(
      SatisfiesViewExtent(ExtentRelation::kSuperset, ViewExtent::kSubset));
}

TEST(ExtentLatticeTest, ToStringNames) {
  EXPECT_EQ(ExtentRelationToString(ExtentRelation::kEqual), "equal");
  EXPECT_EQ(ExtentRelationToString(ExtentRelation::kSuperset), "superset");
  EXPECT_EQ(ExtentRelationToString(ExtentRelation::kSubset), "subset");
  EXPECT_EQ(ExtentRelationToString(ExtentRelation::kUnknown), "unknown");
}

// --- PC-based inference (via full CVS runs) ---------------------------------

class ExtentInferenceTest : public ::testing::Test {
 protected:
  void SetUp() override { mkb_ = MakeTravelAgencyMkb().MoveValue(); }

  // Runs CVS for delete-relation Customer and returns the inferred extent
  // of the Accident-Ins-based rewriting.
  ExtentRelation InferredForAccidentIns() {
    const ViewDefinition view =
        ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
            .value();
    const auto evolution =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .value();
    CvsOptions options;
    options.require_view_extent = false;
    const CvsResult result =
        SynchronizeDeleteRelation(view, "Customer", mkb_, evolution.mkb,
                                  options)
            .value();
    for (const SynchronizedView& rewriting : result.rewritings) {
      if (rewriting.view.HasFromRelation("Accident-Ins")) {
        return rewriting.legality.inferred_extent;
      }
    }
    ADD_FAILURE() << "no Accident-Ins rewriting";
    return ExtentRelation::kUnknown;
  }

  Mkb mkb_;
};

TEST_F(ExtentInferenceTest, WithoutPcConstraintExtentIsUnknown) {
  EXPECT_EQ(InferredForAccidentIns(), ExtentRelation::kUnknown);
}

TEST_F(ExtentInferenceTest, PcConstraintJustifiesSuperset) {
  ASSERT_TRUE(AddAccidentInsPc(&mkb_).ok());
  EXPECT_EQ(InferredForAccidentIns(), ExtentRelation::kSuperset);
}

TEST_F(ExtentInferenceTest, EqualPcGivesEqual) {
  ASSERT_TRUE(AddProjectionPC(&mkb_, "PC-EQ", "Accident-Ins", "Holder",
                              SetRelation::kEqual, "Customer", "Name")
                  .ok());
  EXPECT_EQ(InferredForAccidentIns(), ExtentRelation::kEqual);
}

TEST_F(ExtentInferenceTest, PcOnWrongAttributePairDoesNotJustify) {
  // A PC between the right relations but certifying an unrelated
  // correspondence (Type, Type) must not justify the Name -> Holder
  // replacement.
  ASSERT_TRUE(AddProjectionPC(&mkb_, "PC-WRONG", "Accident-Ins", "Type",
                              SetRelation::kSuperset, "Customer", "Phone")
                  .ok());
  EXPECT_EQ(InferredForAccidentIns(), ExtentRelation::kUnknown);
}

TEST_F(ExtentInferenceTest, SubsetPcGivesSubset) {
  ASSERT_TRUE(AddProjectionPC(&mkb_, "PC-SUB", "Accident-Ins", "Holder",
                              SetRelation::kSubset, "Customer", "Name")
                  .ok());
  EXPECT_EQ(InferredForAccidentIns(), ExtentRelation::kSubset);
}

// --- Empirical comparison -----------------------------------------------------

class EmpiricalExtentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb_, &db_, 50, 3).ok());
  }

  ViewDefinition View(const std::string& sql) {
    return ParseAndBindView(sql, mkb_.catalog()).MoveValue();
  }

  Mkb mkb_;
  Database db_;
};

TEST_F(EmpiricalExtentTest, IdenticalViewsAreEqual) {
  const ViewDefinition v = View(
      "CREATE VIEW V AS SELECT C.Name FROM Customer C, FlightRes F "
      "WHERE C.Name = F.PName");
  EXPECT_EQ(CompareExtentsEmpirically(v, v, db_, mkb_.catalog(),
                                      mkb_.catalog())
                .value(),
            ExtentRelation::kEqual);
}

TEST_F(EmpiricalExtentTest, DroppedFilterGivesSuperset) {
  const ViewDefinition filtered = View(
      "CREATE VIEW V AS SELECT C.Name, F.Dest FROM Customer C, FlightRes F "
      "WHERE C.Name = F.PName AND F.Dest = 'Asia'");
  const ViewDefinition unfiltered = View(
      "CREATE VIEW V2 AS SELECT C.Name, F.Dest FROM Customer C, "
      "FlightRes F WHERE C.Name = F.PName");
  EXPECT_EQ(CompareExtentsEmpirically(filtered, unfiltered, db_,
                                      mkb_.catalog(), mkb_.catalog())
                .value(),
            ExtentRelation::kSuperset);
  EXPECT_EQ(CompareExtentsEmpirically(unfiltered, filtered, db_,
                                      mkb_.catalog(), mkb_.catalog())
                .value(),
            ExtentRelation::kSubset);
}

TEST_F(EmpiricalExtentTest, ProjectionOnCommonInterfaceOnly) {
  // Views with different interfaces are compared on the shared columns.
  const ViewDefinition wide = View(
      "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C");
  const ViewDefinition narrow =
      View("CREATE VIEW V2 AS SELECT C.Name FROM Customer C");
  EXPECT_EQ(CompareExtentsEmpirically(wide, narrow, db_, mkb_.catalog(),
                                      mkb_.catalog())
                .value(),
            ExtentRelation::kEqual);
}

TEST_F(EmpiricalExtentTest, DisjointInterfacesAreUnknown) {
  const ViewDefinition a =
      View("CREATE VIEW V AS SELECT C.Name FROM Customer C");
  const ViewDefinition b =
      View("CREATE VIEW V2 AS SELECT C.Age FROM Customer C");
  EXPECT_EQ(CompareExtentsEmpirically(a, b, db_, mkb_.catalog(),
                                      mkb_.catalog())
                .value(),
            ExtentRelation::kUnknown);
}

TEST_F(EmpiricalExtentTest, IncomparableExtents) {
  const ViewDefinition asia = View(
      "CREATE VIEW V AS SELECT F.PName FROM FlightRes F "
      "WHERE F.Dest = 'Asia'");
  const ViewDefinition europe = View(
      "CREATE VIEW V2 AS SELECT F.PName FROM FlightRes F "
      "WHERE F.Dest = 'Europe'");
  // With enough rows both directions contain non-shared names.
  EXPECT_EQ(CompareExtentsEmpirically(asia, europe, db_, mkb_.catalog(),
                                      mkb_.catalog())
                .value(),
            ExtentRelation::kUnknown);
}

// The paper's Ex. 4 claim: the Person-based rewriting of Asia-Customer is a
// superset of the original, validated empirically.
TEST_F(EmpiricalExtentTest, PaperExample4SupersetHoldsEmpirically) {
  Mkb extended = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddPersonExtension(&extended).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(extended, &db, 60, 9).ok());

  const ViewDefinition original =
      ParseAndBindView(AsiaCustomerSql(), extended.catalog()).value();
  const auto evolution =
      EvolveMkb(extended, CapabilityChange::DeleteAttribute("Customer",
                                                            "Addr"))
          .value();
  const CvsResult result =
      SynchronizeDeleteAttribute(original, "Customer", "Addr", extended,
                                 evolution.mkb, {})
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  // Evaluate both views against the pre-change catalog: the physical
  // tuples still carry the deleted column, and the pre-change schemas are
  // a superset of what either view references.
  const ExtentRelation empirical =
      CompareExtentsEmpirically(original, result.rewritings[0].view, db,
                                extended.catalog(), extended.catalog())
          .value();
  EXPECT_TRUE(empirical == ExtentRelation::kEqual ||
              empirical == ExtentRelation::kSuperset)
      << ExtentRelationToString(empirical);
}

}  // namespace
}  // namespace eve
