#include <gtest/gtest.h>

#include <algorithm>

#include "cvs/explain.h"
#include "esql/binder.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(AddAccidentInsPc(&mkb_).ok());
    view_ = ParseAndBindView(CustomerPassengersAsiaSql(), mkb_.catalog())
                .MoveValue();
    mkb_prime_ =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .MoveValue()
            .mkb;
    result_ =
        SynchronizeDeleteRelation(view_, "Customer", mkb_, mkb_prime_)
            .MoveValue();
  }

  const SynchronizedView& Rewriting(const std::string& relation) {
    for (const SynchronizedView& synced : result_.rewritings) {
      if (synced.view.HasFromRelation(relation)) return synced;
    }
    ADD_FAILURE() << "no rewriting with " << relation;
    return result_.rewritings.front();
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
  CvsResult result_;
};

TEST_F(ExplainTest, Equation13ExplanationIsComplete) {
  const RewritingExplanation explanation =
      ExplainRewriting(view_, Rewriting("Accident-Ins"));
  // Both attributes replaced, with constraint provenance.
  ASSERT_EQ(explanation.replaced_attributes.size(), 2u);
  EXPECT_NE(explanation.replaced_attributes[0].find("via F2"),
            std::string::npos);
  EXPECT_NE(explanation.replaced_attributes[1].find("via F3"),
            std::string::npos);
  // Nothing dropped.
  EXPECT_TRUE(explanation.dropped_attributes.empty());
  EXPECT_TRUE(explanation.dropped_conditions.empty());
  // Accident-Ins joined in through JC6's clause — which is exactly the
  // substituted image of the original (C.Name = F.PName) under
  // Name -> Holder, so it is NOT reported as an addition.
  EXPECT_EQ(explanation.added_relations,
            (std::vector<std::string>{"Accident-Ins"}));
  EXPECT_TRUE(explanation.added_conditions.empty());
  EXPECT_NE(explanation.extent_note.find("superset"), std::string::npos);
  EXPECT_NE(explanation.extent_note.find("PC-justified"),
            std::string::npos);
}

TEST_F(ExplainTest, FlightResExplanationShowsDroppedAge) {
  // The FlightRes-cover rewriting drops Age and adds no relation.
  const SynchronizedView* flightres = nullptr;
  for (const SynchronizedView& synced : result_.rewritings) {
    if (!synced.view.HasFromRelation("Accident-Ins")) flightres = &synced;
  }
  ASSERT_NE(flightres, nullptr);
  const RewritingExplanation explanation =
      ExplainRewriting(view_, *flightres);
  EXPECT_EQ(explanation.dropped_attributes,
            (std::vector<std::string>{"Age"}));
  EXPECT_TRUE(explanation.added_relations.empty());
  EXPECT_TRUE(explanation.added_conditions.empty());
  EXPECT_NE(explanation.extent_note.find("unknown"), std::string::npos);
}

TEST_F(ExplainTest, ToStringRendersSections) {
  const std::string text =
      ExplainRewriting(view_, Rewriting("Accident-Ins")).ToString();
  EXPECT_NE(text.find("replaced attributes:"), std::string::npos);
  EXPECT_NE(text.find("added relations:"), std::string::npos);
  EXPECT_NE(text.find("extent:"), std::string::npos);
  EXPECT_EQ(text.find("dropped attributes:"), std::string::npos);
}

TEST_F(ExplainTest, DropBasedRewritingNoted) {
  const ViewDefinition droppable = ParseAndBindView(
      "CREATE VIEW V AS SELECT F.PName (false, true), C.Age (true, true) "
      "FROM Customer C (true, true), FlightRes F "
      "WHERE (C.Name = F.PName) (true, true)",
      mkb_.catalog())
                                       .value();
  const CvsResult result =
      SynchronizeDeleteRelation(droppable, "Customer", mkb_, mkb_prime_)
          .value();
  const SynchronizedView* drop = nullptr;
  for (const SynchronizedView& synced : result.rewritings) {
    if (synced.is_drop) drop = &synced;
  }
  ASSERT_NE(drop, nullptr);
  const RewritingExplanation explanation =
      ExplainRewriting(droppable, *drop);
  EXPECT_EQ(explanation.dropped_attributes,
            (std::vector<std::string>{"Age"}));
  EXPECT_NE(explanation.extent_note.find("drop-based"), std::string::npos);
}

}  // namespace
}  // namespace eve
