// Property tests for the lazy best-first candidate enumeration: the
// streaming pipeline must agree with the pre-refactor eager reference
// (same candidate set), yield in nondecreasing lower-bound order with
// admissible bounds, and a top-k run must return exactly the prefix the
// exhaustive run ranks first.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "cvs/cvs.h"
#include "cvs/r_mapping.h"
#include "cvs/r_replacement.h"
#include "hypergraph/join_graph.h"
#include "mkb/evolution.h"
#include "workload/generator.h"

namespace eve {
namespace {

// Canonical identity of a candidate: the join skeleton plus the exact
// substitutions used (the same key the stream dedups on).
std::string CandidateKey(const ReplacementCandidate& candidate) {
  std::string key;
  for (const std::string& rel : candidate.tree.relations) key += rel + "|";
  key += "#";
  for (const AttributeReplacement& repl : candidate.replacements) {
    key += repl.original.ToString() + ">" + repl.constraint_id + "|";
  }
  return key;
}

std::vector<std::string> SortedKeys(
    const std::vector<ReplacementCandidate>& candidates) {
  std::vector<std::string> keys;
  keys.reserve(candidates.size());
  for (const ReplacementCandidate& candidate : candidates) {
    keys.push_back(CandidateKey(candidate));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Options wide enough that nothing is truncated: both enumerations run
// the space to exhaustion.
RReplacementOptions ExhaustiveOptions() {
  RReplacementOptions options;
  options.max_results = 100000;
  options.max_cover_combinations = 100000;
  options.max_extra_relations = 4;
  return options;
}

TEST(EnumerationEquivalence, StreamMatchesEagerOnRandomMkbs) {
  size_t comparable = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RandomMkbSpec spec;
    spec.num_relations = 10;
    spec.seed = seed;
    const Mkb mkb = MakeRandomMkb(spec).value();
    std::mt19937_64 rng(seed);
    const Result<ViewDefinition> view_or =
        MakeRandomConnectedView(mkb, &rng, 3);
    if (!view_or.ok()) continue;
    const ViewDefinition& view = view_or.value();
    const std::string victim = view.from().front().name;

    const Result<RMapping> mapping_or = ComputeRMapping(view, victim, mkb);
    if (!mapping_or.ok()) continue;
    const Result<MkbEvolutionReport> evolution =
        EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim));
    if (!evolution.ok()) continue;
    const JoinGraph graph_prime = JoinGraph::Build(evolution.value().mkb);

    const RReplacementOptions options = ExhaustiveOptions();
    const Result<std::vector<ReplacementCandidate>> eager =
        ComputeRReplacementsEager(view, mapping_or.value(), mkb, graph_prime,
                                  options);
    const Result<std::vector<ReplacementCandidate>> lazy =
        ComputeRReplacements(view, mapping_or.value(), mkb, graph_prime,
                             options);
    ASSERT_EQ(eager.ok(), lazy.ok()) << "seed " << seed;
    if (!eager.ok()) continue;
    EXPECT_EQ(SortedKeys(eager.value()), SortedKeys(lazy.value()))
        << "seed " << seed;
    if (!eager.value().empty()) ++comparable;
  }
  // The sweep must actually exercise non-trivial candidate spaces.
  EXPECT_GE(comparable, 4u);
}

TEST(EnumerationEquivalence, StreamYieldsInNondecreasingBoundOrder) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RandomMkbSpec spec;
    spec.num_relations = 10;
    spec.seed = seed;
    const Mkb mkb = MakeRandomMkb(spec).value();
    std::mt19937_64 rng(seed);
    const Result<ViewDefinition> view_or =
        MakeRandomConnectedView(mkb, &rng, 3);
    if (!view_or.ok()) continue;
    const ViewDefinition& view = view_or.value();
    const std::string victim = view.from().front().name;
    const Result<RMapping> mapping_or = ComputeRMapping(view, victim, mkb);
    if (!mapping_or.ok()) continue;
    const Result<MkbEvolutionReport> evolution =
        EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim));
    if (!evolution.ok()) continue;
    const JoinGraph graph_prime = JoinGraph::Build(evolution.value().mkb);

    Result<CandidateStream> stream_or = CandidateStream::Create(
        view, mapping_or.value(), mkb, graph_prime, ExhaustiveOptions(),
        DefaultRankingCostModel());
    if (!stream_or.ok()) continue;
    CandidateStream stream = stream_or.MoveValue();
    double last = -1.0;
    while (std::optional<ReplacementCandidate> candidate = stream.Next()) {
      EXPECT_GE(candidate->cost_lower_bound, last) << "seed " << seed;
      last = candidate->cost_lower_bound;
    }
    EXPECT_TRUE(stream.Exhausted());
    EXPECT_TRUE(stream.stats().exhausted);
  }
}

class CoverFanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoverFanMkbSpec spec;
    spec.num_covers = 8;
    mkb_ = MakeCoverFanMkb(spec).MoveValue();
    view_ = MakeCoverFanView(mkb_).MoveValue();
    mkb_prime_ = EvolveMkb(mkb_, CapabilityChange::DeleteRelation("R0"))
                     .MoveValue()
                     .mkb;
  }

  CvsOptions WideOptions() const {
    CvsOptions options;
    options.replacement.max_results = 100000;
    options.replacement.max_cover_combinations = 100000;
    options.replacement.max_extra_relations = 8;
    return options;
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  ViewDefinition view_;
};

TEST_F(CoverFanTest, CandidateCostsIncreaseWithCoverDistance) {
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, WideOptions())
          .value();
  // One rewriting per cover distance, each strictly wider than the last.
  ASSERT_GE(result.rewritings.size(), 8u);
  for (size_t i = 1; i < result.rewritings.size(); ++i) {
    EXPECT_LE(result.rewritings[i - 1].cost.total,
              result.rewritings[i].cost.total);
  }
  // The PC constraints justify every pure-path rewriting as equal-extent.
  EXPECT_EQ(result.rewritings.front().legality.inferred_extent,
            ExtentRelation::kEqual);
}

TEST_F(CoverFanTest, TopKPrefixMatchesExhaustiveRun) {
  const CvsResult full =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, WideOptions())
          .value();
  ASSERT_GE(full.rewritings.size(), 4u);

  CvsOptions top_k = WideOptions();
  top_k.top_k = 4;
  const CvsResult pruned =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, top_k)
          .value();
  ASSERT_EQ(pruned.rewritings.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pruned.rewritings[i].view.ToString(),
              full.rewritings[i].view.ToString())
        << "rank " << i;
    EXPECT_EQ(pruned.rewritings[i].cost.total, full.rewritings[i].cost.total);
  }
  // The bound must actually fire: the full space has strictly worse
  // candidates behind the k-th best.
  EXPECT_TRUE(pruned.enumeration.terminated_early);
  EXPECT_LT(pruned.enumeration.candidates_yielded,
            full.enumeration.candidates_yielded);
}

TEST_F(CoverFanTest, LowerBoundsAreAdmissible) {
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, WideOptions())
          .value();
  for (const SynchronizedView& rewriting : result.rewritings) {
    if (rewriting.is_drop) continue;
    EXPECT_LE(rewriting.candidate.cost_lower_bound,
              rewriting.cost.total + 1e-9)
        << rewriting.view.name();
  }
}

TEST_F(CoverFanTest, BudgetedRunReturnsPrefixOfUnbudgetedTopK) {
  // A run stopped by the logical work budget must return a PREFIX of what
  // the unbudgeted run ranks first — a valid best-under-budget partial
  // answer, not an arbitrary subset — and must overshoot the budget by at
  // most the one refused step.
  const CvsResult full =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, WideOptions())
          .value();
  ASSERT_GE(full.rewritings.size(), 8u);
  for (const uint64_t budget :
       {uint64_t{3}, uint64_t{8}, uint64_t{20}, uint64_t{60}}) {
    CvsOptions options = WideOptions();
    options.replacement.token = DeadlineToken::Root({budget, 0});
    const CvsResult partial =
        SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, options)
            .value();
    ASSERT_LE(partial.rewritings.size(), full.rewritings.size())
        << "budget " << budget;
    for (size_t i = 0; i < partial.rewritings.size(); ++i) {
      EXPECT_EQ(partial.rewritings[i].view.ToString(),
                full.rewritings[i].view.ToString())
          << "budget " << budget << " rank " << i;
      EXPECT_EQ(partial.rewritings[i].cost.total, full.rewritings[i].cost.total)
          << "budget " << budget << " rank " << i;
    }
    EXPECT_EQ(partial.enumeration.deadline.work_budget, budget);
    // Spend-before-step: the refused unit is counted but never executed.
    EXPECT_LE(partial.enumeration.deadline.work_spent, budget + 1);
    if (partial.rewritings.size() < full.rewritings.size()) {
      EXPECT_TRUE(partial.enumeration.deadline.partial) << "budget " << budget;
      EXPECT_EQ(partial.enumeration.deadline.stop_cause,
                StopCause::kWorkBudget);
    }
  }
}

TEST_F(CoverFanTest, CandidateBudgetReportsTruncation) {
  CvsOptions options = WideOptions();
  options.candidate_budget = 2;
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, options)
          .value();
  EXPECT_LE(result.enumeration.candidates_yielded, 2u);
  EXPECT_FALSE(result.enumeration.exhausted);
  EXPECT_GT(result.enumeration.states_pending, 0u);
  const bool noted = std::any_of(
      result.diagnostics.begin(), result.diagnostics.end(),
      [](const std::string& d) {
        return d.find("candidate_budget") != std::string::npos;
      });
  EXPECT_TRUE(noted);
}

TEST_F(CoverFanTest, ComboTruncationIsDiagnosed) {
  CvsOptions options = WideOptions();
  options.replacement.max_cover_combinations = 1;
  const CvsResult result =
      SynchronizeDeleteRelation(view_, "R0", mkb_, mkb_prime_, options)
          .value();
  EXPECT_GT(result.enumeration.combos_truncated, 0u);
  const bool noted = std::any_of(
      result.diagnostics.begin(), result.diagnostics.end(),
      [](const std::string& d) {
        return d.find("max_cover_combinations") != std::string::npos;
      });
  EXPECT_TRUE(noted);
}

}  // namespace
}  // namespace eve
