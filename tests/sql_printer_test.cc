#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace eve {
namespace {

// Structural equality of two parsed views (ignores aliases, which the
// printer intentionally normalizes into AS clauses).
void ExpectSameView(const ParsedView& a, const ParsedView& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.extent, b.extent);
  ASSERT_EQ(a.select.size(), b.select.size());
  for (size_t i = 0; i < a.select.size(); ++i) {
    EXPECT_TRUE(a.select[i].expr->Equals(*b.select[i].expr))
        << a.select[i].expr->ToString() << " vs "
        << b.select[i].expr->ToString();
    EXPECT_EQ(a.select[i].params, b.select[i].params);
  }
  ASSERT_EQ(a.from.size(), b.from.size());
  for (size_t i = 0; i < a.from.size(); ++i) {
    EXPECT_EQ(a.from[i].relation, b.from[i].relation);
    EXPECT_EQ(a.from[i].params, b.from[i].params);
  }
  ASSERT_EQ(a.where.size(), b.where.size());
  for (size_t i = 0; i < a.where.size(); ++i) {
    EXPECT_TRUE(a.where[i].clause->Equals(*b.where[i].clause))
        << a.where[i].clause->ToString() << " vs "
        << b.where[i].clause->ToString();
    EXPECT_EQ(a.where[i].params, b.where[i].params);
  }
}

void ExpectRoundTrip(std::string_view sql) {
  const Result<ParsedView> first = ParseView(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string printed = PrintView(first.value());
  const Result<ParsedView> second = ParseView(printed);
  ASSERT_TRUE(second.ok()) << second.status() << "\nprinted:\n" << printed;
  ExpectSameView(first.value(), second.value());
}

TEST(PrinterTest, QuoteIdentifierPlainNamesUntouched) {
  EXPECT_EQ(QuoteIdentifier("Customer"), "Customer");
  EXPECT_EQ(QuoteIdentifier("x_1"), "x_1");
}

TEST(PrinterTest, QuoteIdentifierHyphenated) {
  EXPECT_EQ(QuoteIdentifier("Accident-Ins"), "\"Accident-Ins\"");
}

TEST(PrinterTest, QuoteIdentifierReservedWords) {
  EXPECT_EQ(QuoteIdentifier("select"), "\"select\"");
  EXPECT_EQ(QuoteIdentifier("Date"), "\"Date\"");
  EXPECT_EQ(QuoteIdentifier("AND"), "\"AND\"");
}

TEST(PrinterTest, RoundTripMinimal) {
  ExpectRoundTrip("CREATE VIEW V AS SELECT R.a FROM R");
}

TEST(PrinterTest, RoundTripAnnotationsAndExtent) {
  ExpectRoundTrip(
      "CREATE VIEW V (VE = >=) AS "
      "SELECT R.a (true, false), R.b (false, true) "
      "FROM R (true, true) WHERE (R.a = 1) (true, true) AND R.b < 2");
}

TEST(PrinterTest, RoundTripHyphenatedNames) {
  ExpectRoundTrip(
      "CREATE VIEW V AS SELECT \"Accident-Ins\".Holder "
      "FROM \"Accident-Ins\" WHERE \"Accident-Ins\".Amount > 10.5");
}

TEST(PrinterTest, RoundTripDateLiteralsAndFunctions) {
  ExpectRoundTrip(
      "CREATE VIEW V AS SELECT f(A.Birthday), "
      "(DATE '2026-07-07' - A.Birthday) / 365 AS Age FROM A "
      "WHERE A.Birthday < DATE '2000-01-01'");
}

TEST(PrinterTest, RoundTripStringEscapes) {
  ExpectRoundTrip(
      "CREATE VIEW V AS SELECT R.a FROM R WHERE R.name = 'O''Brien'");
}

TEST(PrinterTest, RoundTripPaperEq5) {
  ExpectRoundTrip(R"sql(
    CREATE VIEW CustomerPassengersAsia (VE = ~) AS
    SELECT C.Name (false, true), C.Age (true, true),
           P.Participant (true, true), P.TourID (true, true)
    FROM Customer C (true, true), FlightRes F (true, true),
         Participant P (true, true)
    WHERE (C.Name = F.PName) (false, true)
      AND (F.Dest = 'Asia')
      AND (P.StartDate = F.Date)
      AND (P.Loc = 'Asia')
  )sql");
}

TEST(PrinterTest, RoundTripNegativeNumbersAndArithmetic) {
  ExpectRoundTrip(
      "CREATE VIEW V AS SELECT R.a + R.b * 2 AS s FROM R "
      "WHERE -R.a < 3 AND R.b <> 0");
}

TEST(PrinterTest, PrintedViewMentionsExtent) {
  const ParsedView view =
      ParseView("CREATE VIEW V (VE = <=) AS SELECT R.a FROM R").value();
  EXPECT_NE(PrintView(view).find("VE = <="), std::string::npos);
}

}  // namespace
}  // namespace eve
