#include <gtest/gtest.h>

#include "eve/view_pool_io.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

EveSystem FreshSystem() {
  Mkb mkb = MakeTravelAgencyMkb().value();
  EXPECT_TRUE(AddAccidentInsPc(&mkb).ok());
  return EveSystem(std::move(mkb));
}

TEST(ViewPoolIoTest, SaveLoadRoundTrip) {
  EveSystem original = FreshSystem();
  ASSERT_TRUE(original.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(original.RegisterViewText(
                          "CREATE VIEW HotelCars AS SELECT H.City FROM "
                          "Hotels H, RentACar R "
                          "WHERE H.Address = R.Location")
                  .ok());
  const std::string text = SaveViews(original);

  EveSystem restored = FreshSystem();
  ASSERT_TRUE(LoadViews(text, &restored).ok());
  EXPECT_EQ(restored.ViewNames(), original.ViewNames());
  for (const std::string& name : original.ViewNames()) {
    EXPECT_EQ((*restored.GetView(name))->definition.ToString(),
              (*original.GetView(name))->definition.ToString());
    EXPECT_EQ((*restored.GetView(name))->state,
              (*original.GetView(name))->state);
  }
}

TEST(ViewPoolIoTest, DisabledStateSurvivesRoundTrip) {
  EveSystem original = FreshSystem();
  ASSERT_TRUE(original.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(original
                  .SetViewState("CustomerPassengersAsia",
                                ViewState::kDisabled)
                  .ok());
  const std::string text = SaveViews(original);
  EXPECT_NE(text.find("-- VIEW disabled"), std::string::npos);

  EveSystem restored = FreshSystem();
  ASSERT_TRUE(LoadViews(text, &restored).ok());
  EXPECT_EQ((*restored.GetView("CustomerPassengersAsia"))->state,
            ViewState::kDisabled);
}

TEST(ViewPoolIoTest, LoadRejectsUnbindableViews) {
  EveSystem original = FreshSystem();
  ASSERT_TRUE(original.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const std::string text = SaveViews(original);

  // Restore into a system whose MKB lost Customer: binding fails.
  Mkb small = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(small.catalog().DropRelation("Customer").ok());
  EveSystem restored{std::move(small)};
  EXPECT_FALSE(LoadViews(text, &restored).ok());
}

TEST(ViewPoolIoTest, LoadErrorsOnMalformedHeaders) {
  EveSystem system = FreshSystem();
  EXPECT_FALSE(LoadViews("-- VIEW sideways\nCREATE VIEW V AS SELECT "
                         "C.Name FROM Customer C;",
                         &system)
                   .ok());
  EXPECT_FALSE(
      LoadViews("-- VIEW active\nCREATE VIEW V AS SELECT C.Name FROM "
                "Customer C",  // missing ';'
                &system)
          .ok());
  // Text without headers is an empty pool.
  EveSystem empty = FreshSystem();
  EXPECT_TRUE(LoadViews("nothing here", &empty).ok());
  EXPECT_EQ(empty.NumViews(), 0u);
}

TEST(BatchChangesTest, TransactionalRollbackOnFailure) {
  EveSystem system = FreshSystem();
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const std::vector<CapabilityChange> batch = {
      CapabilityChange::DeleteRelation("Tour"),
      CapabilityChange::DeleteRelation("DoesNotExist"),  // fails
  };
  const auto result = system.ApplyChanges(batch);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("batch aborted"),
            std::string::npos);
  // Rolled back: Tour is still there, the log is clean.
  EXPECT_TRUE(system.mkb().catalog().HasRelation("Tour"));
  EXPECT_TRUE(system.change_log().empty());
}

TEST(BatchChangesTest, NonTransactionalKeepsPrefix) {
  EveSystem system = FreshSystem();
  const std::vector<CapabilityChange> batch = {
      CapabilityChange::DeleteRelation("Tour"),
      CapabilityChange::DeleteRelation("DoesNotExist"),
  };
  const auto result = system.ApplyChanges(batch, /*transactional=*/false);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(system.mkb().catalog().HasRelation("Tour"));
  EXPECT_EQ(system.change_log().size(), 1u);
}

TEST(BatchChangesTest, SuccessfulBatchReportsPerChange) {
  EveSystem system = FreshSystem();
  ASSERT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const std::vector<CapabilityChange> batch = {
      CapabilityChange::RenameAttribute("FlightRes", "Dest", "Destination"),
      CapabilityChange::DeleteRelation("Customer"),
  };
  const auto reports = system.ApplyChanges(batch).value();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[1].CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  EXPECT_EQ(system.change_log().size(), 2u);
}

}  // namespace
}  // namespace eve
