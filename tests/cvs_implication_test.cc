#include <gtest/gtest.h>

#include "cvs/implication.h"
#include "cvs/r_mapping.h"
#include "esql/binder.h"
#include "mkb/builder.h"
#include "sql/parser.h"

namespace eve {
namespace {

std::vector<ExprPtr> P(std::string_view text) {
  return ParseConjunction(text).value();
}
ExprPtr E(std::string_view text) { return ParseExpression(text).value(); }

// --- Equalities -----------------------------------------------------------------

TEST(ImplicationTest, DirectEquality) {
  EXPECT_TRUE(ConjunctionImplies(P("A.x = B.y"), *E("A.x = B.y")));
  EXPECT_TRUE(ConjunctionImplies(P("A.x = B.y"), *E("B.y = A.x")));
  EXPECT_FALSE(ConjunctionImplies(P("A.x = B.y"), *E("A.x = C.z")));
}

TEST(ImplicationTest, TransitiveEquality) {
  EXPECT_TRUE(ConjunctionImplies(P("A.x = B.y AND B.y = C.z"),
                                 *E("A.x = C.z")));
  EXPECT_TRUE(ConjunctionImplies(
      P("A.x = B.y AND B.y = C.z AND C.z = D.w"), *E("D.w = A.x")));
  EXPECT_FALSE(ConjunctionImplies(P("A.x = B.y AND C.z = D.w"),
                                  *E("A.x = C.z")));
}

TEST(ImplicationTest, EqualityThroughSharedConstant) {
  EXPECT_TRUE(
      ConjunctionImplies(P("A.x = 5 AND B.y = 5"), *E("A.x = B.y")));
  EXPECT_FALSE(
      ConjunctionImplies(P("A.x = 5 AND B.y = 6"), *E("A.x = B.y")));
  EXPECT_TRUE(ConjunctionImplies(P("A.x = 'Asia' AND B.y = 'Asia'"),
                                 *E("A.x = B.y")));
}

TEST(ImplicationTest, EqualityToConstant) {
  EXPECT_TRUE(ConjunctionImplies(P("A.x = B.y AND B.y = 7"), *E("A.x = 7")));
  EXPECT_FALSE(ConjunctionImplies(P("A.x = B.y"), *E("A.x = 7")));
}

// --- Comparisons -----------------------------------------------------------------

TEST(ImplicationTest, DirectComparison) {
  EXPECT_TRUE(ConjunctionImplies(P("A.x < B.y"), *E("A.x < B.y")));
  EXPECT_TRUE(ConjunctionImplies(P("A.x < B.y"), *E("B.y > A.x")));
  EXPECT_TRUE(ConjunctionImplies(P("A.x < B.y"), *E("A.x <= B.y")));
  EXPECT_TRUE(ConjunctionImplies(P("A.x < B.y"), *E("A.x <> B.y")));
  EXPECT_FALSE(ConjunctionImplies(P("A.x <= B.y"), *E("A.x < B.y")));
}

TEST(ImplicationTest, ComparisonThroughEqualityClasses) {
  // A.x = A2.x and A2.x < B.y implies A.x < B.y.
  EXPECT_TRUE(ConjunctionImplies(P("A.x = A2.x AND A2.x < B.y"),
                                 *E("A.x < B.y")));
}

TEST(ImplicationTest, ConstantBoundStrengthening) {
  EXPECT_TRUE(ConjunctionImplies(P("C.Age > 5"), *E("C.Age > 1")));
  EXPECT_TRUE(ConjunctionImplies(P("C.Age > 5"), *E("C.Age >= 5")));
  EXPECT_TRUE(ConjunctionImplies(P("C.Age >= 6"), *E("C.Age > 5")));
  EXPECT_FALSE(ConjunctionImplies(P("C.Age > 1"), *E("C.Age > 5")));
  EXPECT_TRUE(ConjunctionImplies(P("C.Age < 3"), *E("C.Age < 10")));
  EXPECT_FALSE(ConjunctionImplies(P("C.Age < 10"), *E("C.Age < 3")));
  EXPECT_TRUE(ConjunctionImplies(P("1 < C.Age"), *E("C.Age > 0")));
}

TEST(ImplicationTest, EqualityImpliesBounds) {
  EXPECT_TRUE(ConjunctionImplies(P("C.Age = 30"), *E("C.Age > 1")));
  EXPECT_TRUE(ConjunctionImplies(P("C.Age = 30"), *E("C.Age <= 30")));
  EXPECT_TRUE(ConjunctionImplies(P("C.Age = 30"), *E("C.Age <> 7")));
  EXPECT_FALSE(ConjunctionImplies(P("C.Age = 30"), *E("C.Age > 31")));
}

TEST(ImplicationTest, ConstantConclusionEvaluates) {
  EXPECT_TRUE(ConjunctionImplies(P("A.x = 1"), *E("2 > 1")));
  EXPECT_FALSE(ConjunctionImplies(P("A.x = 1"), *E("1 > 2")));
}

// --- Soundness boundaries ----------------------------------------------------------

TEST(ImplicationTest, StaysConservative) {
  // Unknown columns: nothing can be concluded.
  EXPECT_FALSE(ConjunctionImplies(P("A.x = 1"), *E("Z.q = 1")));
  // Complex expressions fall back to equivalence only.
  EXPECT_TRUE(ConjunctionImplies(P("A.x + 1 = B.y"), *E("A.x + 1 = B.y")));
  EXPECT_FALSE(ConjunctionImplies(P("A.x + 1 = B.y"), *E("A.x = B.y - 1")));
  // Ne is not transitive.
  EXPECT_FALSE(ConjunctionImplies(P("A.x <> B.y AND B.y <> C.z"),
                                  *E("A.x <> C.z")));
}

TEST(ImplicationTest, EmptyPremisesImplyOnlyTautologies) {
  EXPECT_TRUE(ConjunctionImplies({}, *E("1 = 1")));
  EXPECT_FALSE(ConjunctionImplies({}, *E("A.x = A.x")));  // conservative
}

// --- R-mapping integration -----------------------------------------------------

TEST(SemanticRMappingTest, ConstantBridgedJoinConstraintAbsorbs) {
  // The view pins both join attributes to the same constant instead of
  // writing the join clause; the JC is semantically implied.
  Mkb mkb;
  RelationDef a;
  a.source = "IS1";
  a.name = "A";
  a.schema = Schema({{"x", DataType::kInt}, {"p", DataType::kInt}});
  ASSERT_TRUE(mkb.AddRelation(a).ok());
  RelationDef b;
  b.source = "IS2";
  b.name = "B";
  b.schema = Schema({{"y", DataType::kInt}, {"q", DataType::kInt}});
  ASSERT_TRUE(mkb.AddRelation(b).ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "J", "A", "B", "A.x = B.y").ok());

  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT A.p, B.q FROM A, B "
      "WHERE A.x = 5 AND B.y = 5",
      mkb.catalog())
                                  .value();
  const RMapping mapping = ComputeRMapping(view, "A", mkb).value();
  EXPECT_EQ(mapping.relations, (std::vector<std::string>{"A", "B"}));
  ASSERT_EQ(mapping.min_edges.size(), 1u);
  EXPECT_EQ(mapping.min_edges[0].id, "J");
  // Nothing consumed: both constant clauses stay in the view.
  EXPECT_TRUE(mapping.consumed_conditions.empty());
  EXPECT_EQ(mapping.local_conditions.size(), 2u);
}

TEST(SemanticRMappingTest, LocalClauseOfJcImpliedByStrongerBound) {
  // JC2-style constraint: crossing equality + "Age > 1". The view writes
  // the equality and a STRONGER bound (Age > 30): the JC is implied.
  Mkb mkb;
  RelationDef c;
  c.source = "IS1";
  c.name = "C";
  c.schema = Schema({{"Name", DataType::kString}, {"Age", DataType::kInt}});
  ASSERT_TRUE(mkb.AddRelation(c).ok());
  RelationDef i;
  i.source = "IS2";
  i.name = "I";
  i.schema = Schema({{"Holder", DataType::kString}});
  ASSERT_TRUE(mkb.AddRelation(i).ok());
  ASSERT_TRUE(AddJoinConstraintText(&mkb, "J", "C", "I",
                                    "C.Name = I.Holder AND C.Age > 1")
                  .ok());
  const ViewDefinition view = ParseAndBindView(
      "CREATE VIEW V AS SELECT C.Name FROM C, I "
      "WHERE C.Name = I.Holder AND C.Age > 30",
      mkb.catalog())
                                  .value();
  const RMapping mapping = ComputeRMapping(view, "C", mkb).value();
  EXPECT_EQ(mapping.relations, (std::vector<std::string>{"C", "I"}));
  // The equality clause was consumed; "Age > 30" stays local.
  EXPECT_EQ(mapping.consumed_conditions.size(), 1u);
  EXPECT_EQ(mapping.local_conditions.size(), 1u);
}

}  // namespace
}  // namespace eve
