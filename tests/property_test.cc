// Property-style suites (parameterized over seeds and topologies):
//  * print/parse/bind round-trips for generated views,
//  * MKB-evolution invariants (no dangling references in MKB'),
//  * CVS soundness: every returned rewriting independently satisfies
//    P1/P2/P4 and evaluates over a populated database,
//  * extent-inference soundness on constraint-consistent data: an inferred
//    ⊇ is never contradicted empirically.

#include <gtest/gtest.h>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "esql/evaluator.h"
#include "mkb/evolution.h"
#include "mkb/serializer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/generator.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

enum class Topology { kChain, kStar, kGrid, kRandom };

struct PropertyParam {
  Topology topology;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name;
  switch (info.param.topology) {
    case Topology::kChain:
      name = "Chain";
      break;
    case Topology::kStar:
      name = "Star";
      break;
    case Topology::kGrid:
      name = "Grid";
      break;
    case Topology::kRandom:
      name = "Random";
      break;
  }
  return name + "Seed" + std::to_string(info.param.seed);
}

Mkb BuildMkb(Topology topology, uint64_t seed) {
  switch (topology) {
    case Topology::kChain: {
      ChainMkbSpec spec;
      spec.length = 8;
      spec.skip_edges = true;
      spec.cover_distance = 2;
      return MakeChainMkb(spec).MoveValue();
    }
    case Topology::kStar:
      return MakeStarMkb(6).MoveValue();
    case Topology::kGrid:
      return MakeGridMkb(3, 3).MoveValue();
    case Topology::kRandom: {
      RandomMkbSpec spec;
      spec.num_relations = 10;
      spec.seed = seed * 1000 + 7;
      return MakeRandomMkb(spec).MoveValue();
    }
  }
  return Mkb();
}

class GeneratedWorkloadTest
    : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(GeneratedWorkloadTest, PrintParseBindRoundTrip) {
  const Mkb mkb = BuildMkb(GetParam().topology, GetParam().seed);
  std::mt19937_64 rng(GetParam().seed);
  for (int i = 0; i < 10; ++i) {
    const ViewDefinition view =
        MakeRandomConnectedView(mkb, &rng, 3).value();
    const std::string printed = view.ToString();
    const Result<ParsedView> reparsed = ParseView(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << printed;
    const Result<ViewDefinition> rebound =
        BindView(reparsed.value(), mkb.catalog());
    ASSERT_TRUE(rebound.ok()) << rebound.status() << "\n" << printed;
    EXPECT_EQ(rebound.value().ToString(), printed);
  }
}

TEST_P(GeneratedWorkloadTest, MkbEvolutionLeavesNoDanglingReferences) {
  const Mkb mkb = BuildMkb(GetParam().topology, GetParam().seed);
  std::mt19937_64 rng(GetParam().seed);
  const std::vector<std::string> relations = mkb.catalog().RelationNames();
  std::uniform_int_distribution<size_t> pick(0, relations.size() - 1);
  const std::string victim = relations[pick(rng)];

  const auto report =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim)).value();
  const Mkb& prime = report.mkb;
  EXPECT_FALSE(prime.catalog().HasRelation(victim));
  for (const JoinConstraint& jc : prime.join_constraints()) {
    EXPECT_NE(jc.lhs, victim);
    EXPECT_NE(jc.rhs, victim);
    for (const ExprPtr& clause : jc.clauses) {
      std::vector<AttributeRef> cols;
      clause->CollectColumns(&cols);
      for (const AttributeRef& ref : cols) {
        EXPECT_TRUE(prime.catalog().HasAttribute(ref)) << ref.ToString();
      }
    }
  }
  for (const FunctionOfConstraint& fc : prime.function_of_constraints()) {
    EXPECT_TRUE(prime.catalog().HasAttribute(fc.target));
    EXPECT_TRUE(prime.catalog().HasAttribute(fc.source));
  }
  for (const PCConstraint& pc : prime.pc_constraints()) {
    EXPECT_TRUE(prime.catalog().HasRelation(pc.lhs_relation));
    EXPECT_TRUE(prime.catalog().HasRelation(pc.rhs_relation));
  }
}

TEST_P(GeneratedWorkloadTest, MisdSerializationRoundTrips) {
  const Mkb mkb = BuildMkb(GetParam().topology, GetParam().seed);
  const Result<Mkb> loaded = LoadMkb(SaveMkb(mkb));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().catalog().RelationNames(),
            mkb.catalog().RelationNames());
  EXPECT_EQ(loaded.value().join_constraints().size(),
            mkb.join_constraints().size());
  EXPECT_EQ(loaded.value().function_of_constraints().size(),
            mkb.function_of_constraints().size());
  EXPECT_EQ(loaded.value().pc_constraints().size(),
            mkb.pc_constraints().size());
  // Second round trip is textually stable.
  EXPECT_EQ(SaveMkb(loaded.value()), SaveMkb(mkb));
}

TEST_P(GeneratedWorkloadTest, CvsRewritingsAreSound) {
  const Mkb mkb = BuildMkb(GetParam().topology, GetParam().seed);
  std::mt19937_64 rng(GetParam().seed);
  Database db;
  ASSERT_TRUE(PopulateSyntheticDatabase(mkb, &db, 20, GetParam().seed).ok());

  CvsOptions options;
  options.require_view_extent = false;  // soundness of P1/P2/P4 is the point
  // A handful of candidates per deletion is plenty for the soundness
  // property; full enumeration is exercised by the benches.
  options.replacement.max_results = 4;
  options.replacement.max_cover_combinations = 16;

  size_t checked = 0;
  for (int i = 0; i < 8; ++i) {
    const ViewDefinition view =
        MakeRandomConnectedView(mkb, &rng, 3).value();
    for (const std::string& victim : view.FromRelationNames()) {
      const auto evolution =
          EvolveMkb(mkb, CapabilityChange::DeleteRelation(victim)).value();
      const Result<CvsResult> result = SynchronizeDeleteRelation(
          view, victim, mkb, evolution.mkb, options);
      ASSERT_TRUE(result.ok()) << result.status();
      for (const SynchronizedView& rewriting : result.value().rewritings) {
        ++checked;
        // P1: independently verified.
        EXPECT_FALSE(rewriting.view.ReferencesRelation(victim))
            << rewriting.view.ToString();
        // P2: rebinding against MKB'.
        EXPECT_TRUE(
            BindView(rewriting.view.ToParsedView(), evolution.mkb.catalog())
                .ok())
            << rewriting.view.ToString();
        // Internal report agrees.
        EXPECT_TRUE(rewriting.legality.p1_unaffected);
        EXPECT_TRUE(rewriting.legality.p2_evaluable);
        EXPECT_TRUE(rewriting.legality.p4_parameters)
            << rewriting.legality.ToString();
        // Evaluable over the (pre-change) physical state using the
        // pre-change catalog.
        const Result<Table> evaluated =
            EvaluateView(rewriting.view, db, mkb.catalog());
        EXPECT_TRUE(evaluated.ok()) << evaluated.status();
      }
    }
  }
  // The generated topologies have covers everywhere; most deletions must
  // be curable.
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, GeneratedWorkloadTest,
    ::testing::Values(PropertyParam{Topology::kChain, 1},
                      PropertyParam{Topology::kChain, 2},
                      PropertyParam{Topology::kChain, 3},
                      PropertyParam{Topology::kStar, 1},
                      PropertyParam{Topology::kStar, 2},
                      PropertyParam{Topology::kStar, 3},
                      PropertyParam{Topology::kGrid, 1},
                      PropertyParam{Topology::kGrid, 2},
                      PropertyParam{Topology::kGrid, 3},
                      PropertyParam{Topology::kRandom, 1},
                      PropertyParam{Topology::kRandom, 2},
                      PropertyParam{Topology::kRandom, 3},
                      PropertyParam{Topology::kRandom, 4},
                      PropertyParam{Topology::kRandom, 5}),
    ParamName);

// --- Extent soundness on constraint-consistent data ------------------------

class ExtentSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtentSoundnessTest, InferredSupersetNeverContradictedEmpirically) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddAccidentInsPc(&mkb).ok());
  ASSERT_TRUE(AddFlightResPc(&mkb).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 50, GetParam()).ok());

  const ViewDefinition view =
      ParseAndBindView(CustomerPassengersAsiaSql(), mkb.catalog()).value();
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteRelation("Customer")).value();
  const CvsResult result =
      SynchronizeDeleteRelation(view, "Customer", mkb, evolution.mkb)
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  for (const SynchronizedView& rewriting : result.rewritings) {
    if (rewriting.legality.inferred_extent != ExtentRelation::kSuperset) {
      continue;
    }
    // Evaluate both over the pre-change state: the inferred ⊇ must hold.
    const ExtentRelation empirical =
        CompareExtentsEmpirically(view, rewriting.view, db, mkb.catalog(),
                                  mkb.catalog())
            .value();
    EXPECT_TRUE(empirical == ExtentRelation::kEqual ||
                empirical == ExtentRelation::kSuperset)
        << ExtentRelationToString(empirical) << "\n"
        << rewriting.view.ToString();
  }
}

TEST_P(ExtentSoundnessTest, PaperExample4AcrossSeeds) {
  Mkb mkb = MakeTravelAgencyMkb().value();
  ASSERT_TRUE(AddPersonExtension(&mkb).ok());
  Database db;
  ASSERT_TRUE(PopulateTravelAgencyDatabase(mkb, &db, 40, GetParam()).ok());
  const ViewDefinition view =
      ParseAndBindView(AsiaCustomerSql(), mkb.catalog()).value();
  const auto evolution =
      EvolveMkb(mkb, CapabilityChange::DeleteAttribute("Customer", "Addr"))
          .value();
  const CvsResult result =
      SynchronizeDeleteAttribute(view, "Customer", "Addr", mkb,
                                 evolution.mkb, {})
          .value();
  ASSERT_FALSE(result.rewritings.empty());
  const ExtentRelation empirical =
      CompareExtentsEmpirically(view, result.rewritings[0].view, db,
                                mkb.catalog(), mkb.catalog())
          .value();
  EXPECT_TRUE(empirical == ExtentRelation::kEqual ||
              empirical == ExtentRelation::kSuperset)
      << ExtentRelationToString(empirical);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentSoundnessTest,
                         ::testing::Values(1, 7, 13, 29, 57, 101, 211, 499));

}  // namespace
}  // namespace eve
