// The deadline/cancellation/admission layer: DeadlineToken semantics
// (deterministic work budgets, virtual-clock deadlines, the parent→child
// cancellation tree), hardened ThreadPool shutdown, FederationMonitor
// probe budgeting, and EveSystem admission control — bounded queue with
// explicit shedding, per-change deadlines, watchdog cancellation, and the
// cover-fan partial-result acceptance scenario at sync parallelism
// {1, 4, 8}. This binary runs under TSan and ASan/UBSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "esql/view_definition.h"
#include "eve/eve_system.h"
#include "eve/sharded_system.h"
#include "federation/monitor.h"
#include "federation/transport.h"
#include "mkb/capability_change.h"
#include "workload/generator.h"

namespace eve {
namespace {

// --- DeadlineToken ----------------------------------------------------------

TEST(DeadlineTokenTest, WorkBudgetAdmitsExactlyBudgetSteps) {
  const DeadlineToken token = DeadlineToken::Root({3, 0});
  EXPECT_TRUE(token.valid());
  EXPECT_TRUE(token.Spend(1));
  EXPECT_TRUE(token.Spend(1));
  EXPECT_TRUE(token.Spend(1));
  // The fourth unit is refused BEFORE it runs: performed work never
  // exceeds the budget.
  EXPECT_FALSE(token.Spend(1));
  EXPECT_TRUE(token.Expired());
  EXPECT_EQ(token.cause(), StopCause::kWorkBudget);
  // The cause is sticky: later checks fail fast.
  EXPECT_FALSE(token.Spend(1));
}

TEST(DeadlineTokenTest, ManualClockDrivesTheDeadline) {
  ManualClock clock;
  clock.Set(50);
  const DeadlineToken token = DeadlineToken::Root({0, 100}, &clock);
  EXPECT_TRUE(token.Spend(1));
  EXPECT_FALSE(token.Expired());
  clock.Advance(49);  // now 99 — still before the deadline
  EXPECT_TRUE(token.Spend(1));
  clock.Advance(1);  // now 100 — at the deadline
  EXPECT_FALSE(token.Spend(1));
  EXPECT_EQ(token.cause(), StopCause::kDeadline);
}

TEST(DeadlineTokenTest, BudgetCauseWinsWhenBothLimitsAreExceeded) {
  // The work budget is the deterministic limit, so it must be recorded as
  // the cause even when the wall deadline has also passed — a run with
  // both knobs set and a run with only the budget agree on diagnostics.
  ManualClock clock;
  clock.Set(1000);  // already past the deadline below
  const DeadlineToken token = DeadlineToken::Root({1, 500}, &clock);
  EXPECT_FALSE(token.Spend(2));
  EXPECT_EQ(token.cause(), StopCause::kWorkBudget);
}

TEST(DeadlineTokenTest, CancellingTheRootStopsEveryDescendant) {
  const DeadlineToken root = DeadlineToken::Root({0, 0});
  const DeadlineToken child = root.Child({0, 0});
  const DeadlineToken grandchild = child.Child({0, 0});
  EXPECT_TRUE(grandchild.Spend(1));
  root.Cancel();
  EXPECT_FALSE(grandchild.Spend(1));
  EXPECT_FALSE(child.Spend(1));
  EXPECT_EQ(grandchild.cause(), StopCause::kCancelled);
  EXPECT_TRUE(root.Expired());
}

TEST(DeadlineTokenTest, CancellingAChildLeavesTheParentRunning) {
  const DeadlineToken root = DeadlineToken::Root({0, 0});
  const DeadlineToken child = root.Child({0, 0});
  child.Cancel();
  EXPECT_FALSE(child.Spend(1));
  EXPECT_TRUE(root.Spend(1));
  EXPECT_FALSE(root.Expired());
}

TEST(DeadlineTokenTest, ChildBudgetsAreIndependentOfTheParent) {
  const DeadlineToken root = DeadlineToken::Root({0, 0});
  const DeadlineToken a = root.Child({2, 0});
  const DeadlineToken b = root.Child({2, 0});
  EXPECT_TRUE(a.Spend(2));
  EXPECT_FALSE(a.Spend(1));
  // Sibling b has its own budget; a's exhaustion does not leak.
  EXPECT_TRUE(b.Spend(2));
  EXPECT_TRUE(root.Spend(1));
}

TEST(DeadlineTokenTest, DefaultTokenIsFree) {
  const DeadlineToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_TRUE(token.Spend(1000000));
  EXPECT_FALSE(token.Expired());
  EXPECT_EQ(token.cause(), StopCause::kNone);
  EXPECT_TRUE(token.ToStatus("sync").ok());
}

TEST(DeadlineTokenTest, ToStatusReportsResourceExhausted) {
  const DeadlineToken token = DeadlineToken::Root({1, 0});
  EXPECT_TRUE(token.ToStatus("sync").ok());  // not yet expired
  EXPECT_FALSE(token.Spend(2));
  const Status status = token.ToStatus("per-view sync");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("work-budget"), std::string::npos);
}

// --- ThreadPool shutdown semantics -----------------------------------------

TEST(ThreadPoolShutdownTest, DiscardShutdownCountsUnstartedTasks) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  // Occupy the single worker so the next three tasks stay queued; wait
  // until it is actually running so the discard below cannot claim it.
  pool.Submit([&] {
    started.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    ran.fetch_add(1);
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&] { ran.fetch_add(1); }, "queued");
  }
  // Discard from another thread (Shutdown joins, and the running task is
  // still blocked). Wait until the queue has been cleared before releasing
  // the latch — otherwise the freed worker could race Shutdown to a queued
  // task — then unblock; the three queued tasks must be dropped and counted.
  size_t discarded = 0;
  std::thread shutter([&] { discarded = pool.Shutdown(/*drain=*/false); });
  while (pool.discarded_tasks() < 3) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  shutter.join();
  EXPECT_EQ(discarded, 3u);
  EXPECT_EQ(pool.discarded_tasks(), 3u);
  EXPECT_EQ(ran.load(), 1);  // only the running task completed
  // Idempotent: the second call has nothing left to discard.
  EXPECT_EQ(pool.Shutdown(false), 0u);
}

TEST(ThreadPoolShutdownTest, DrainShutdownRunsEveryQueuedTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] { ran.fetch_add(1); }, "drained");
  }
  EXPECT_EQ(pool.Shutdown(/*drain=*/true), 0u);
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.discarded_tasks(), 0u);
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownIsCountedNotSilentlyDropped) {
  ThreadPool pool(1);
  pool.Shutdown(true);
  pool.Submit([] {}, "late");
  EXPECT_EQ(pool.discarded_tasks(), 1u);
}

TEST(ThreadPoolDeathTest, EscapedExceptionReportsTaskProvenance) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A task that lets an exception escape must terminate the process —
  // but only after naming the task and the exception on stderr, so the
  // crash is attributable.
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([] { throw std::runtime_error("boom"); },
                    "exploding-task");
        pool.Shutdown(true);
      },
      "exploding-task.*boom");
}

// --- FederationMonitor probe budgeting -------------------------------------

TEST(MonitorDeadlineTest, ProbeFanOutIsBudgetedDeterministically) {
  ChainMkbSpec spec;
  spec.length = 5;
  EveSystem system(MakeChainMkb(spec).MoveValue());
  federation::SimulatedTransport transport;
  federation::FederationMonitor monitor(&system, &transport);
  ASSERT_TRUE(monitor.TrackSources().ok());
  ASSERT_EQ(system.source_membership().size(), 5u);

  // Budget three probe units: at the first due tick all five sources are
  // due; the first three (name order, decided on the calling thread before
  // the fan-out) probe, the last two are skipped and stay due.
  monitor.SetDeadlineToken(DeadlineToken::Root({3, 0}));
  ASSERT_TRUE(monitor.AdvanceTo(10).ok());  // default probe cadence is 10
  EXPECT_EQ(monitor.stats().probes, 3u);
  EXPECT_EQ(monitor.stats().probes_skipped, 2u);

  // The token is sticky: every later due probe is skipped, none run.
  ASSERT_TRUE(monitor.AdvanceTo(25).ok());
  EXPECT_EQ(monitor.stats().probes, 3u);
  EXPECT_GT(monitor.stats().probes_skipped, 2u);

  // A fresh unlimited token lifts the limit again.
  monitor.SetDeadlineToken(DeadlineToken());
  const uint64_t skipped = monitor.stats().probes_skipped;
  ASSERT_TRUE(monitor.AdvanceTo(40).ok());
  EXPECT_GT(monitor.stats().probes, 3u);
  EXPECT_EQ(monitor.stats().probes_skipped, skipped);
}

// --- EveSystem admission control -------------------------------------------

// Chain system matching parallel_sync_test's batch workload: deleting R1
// affects the even-numbered views.
EveSystem MakeChainSystem(size_t num_views) {
  ChainMkbSpec spec;
  spec.length = 24;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  EveSystem system(mkb);
  for (size_t i = 0; i < num_views; ++i) {
    const size_t start = (i % 2 == 0) ? (i / 2) % 2 : 10 + (i / 2) % 10;
    ViewDefinition view = MakeChainView(mkb, start, 3).MoveValue();
    view.set_name("BV" + std::to_string(i));
    EXPECT_TRUE(system.RegisterView(view).ok());
  }
  return system;
}

void ExpectAdmissionInvariant(const EveSystem& system) {
  const AdmissionStats& stats = system.admission_stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.queued_now)
      << stats.ToString();
}

TEST(AdmissionTest, FullQueueShedsTheNewestSubmissionExplicitly) {
  EveSystem system = MakeChainSystem(4);
  system.SetSyncQueueLimit(2);
  EXPECT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("R1")).ok());
  EXPECT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteAttribute("R10", "P10"))
          .ok());
  const Status shed =
      system.EnqueueChange(CapabilityChange::DeleteRelation("R20"));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(system.queued_changes(), 2u);
  EXPECT_EQ(system.admission_stats().shed, 1u);
  ExpectAdmissionInvariant(system);

  const Result<std::vector<ChangeReport>> reports = system.DrainSyncQueue();
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value().size(), 2u);
  EXPECT_EQ(system.queued_changes(), 0u);
  EXPECT_EQ(system.admission_stats().completed, 2u);
  EXPECT_EQ(system.admission_stats().failed, 0u);
  ExpectAdmissionInvariant(system);

  // Capacity freed: new submissions are admitted again.
  EXPECT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("R20")).ok());
  ExpectAdmissionInvariant(system);
}

TEST(AdmissionTest, DrainStopsAtAFailingChangeAndKeepsTheRemainder) {
  EveSystem system = MakeChainSystem(4);
  EXPECT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("NoSuchRelation"))
          .ok());
  EXPECT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("R1")).ok());
  const Result<std::vector<ChangeReport>> first = system.DrainSyncQueue();
  EXPECT_FALSE(first.ok());
  // The failing change was consumed (completed + failed); the survivor is
  // still queued.
  EXPECT_EQ(system.admission_stats().failed, 1u);
  EXPECT_EQ(system.queued_changes(), 1u);
  ExpectAdmissionInvariant(system);

  const Result<std::vector<ChangeReport>> second = system.DrainSyncQueue();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().size(), 1u);
  EXPECT_EQ(system.queued_changes(), 0u);
  ExpectAdmissionInvariant(system);
}

// The acceptance workload: a cover-fan view whose rewriting search fans
// over 8 covers at increasing join distance (expensive), next to an anchor
// view whose only replaceable attribute is covered at distance zero
// (cheap). Both reference the victim R0.
EveSystem MakeFanSystem() {
  CoverFanMkbSpec spec;
  spec.num_covers = 8;
  const Mkb mkb = MakeCoverFanMkb(spec).MoveValue();
  EveSystem system(mkb);
  ViewDefinition fan = MakeCoverFanView(mkb).MoveValue();
  fan.set_name("fan_view");
  EXPECT_TRUE(system.RegisterView(fan).ok());

  std::vector<ViewSelectItem> select;
  select.push_back(ViewSelectItem{Expr::Column(AttributeRef{"A0", "PA"}),
                                  "PA", EvolutionParams{false, true}});
  std::vector<ViewRelation> from{
      ViewRelation{"R0", EvolutionParams{false, true}},
      ViewRelation{"A0", EvolutionParams{false, true}}};
  std::vector<ViewCondition> where{
      ViewCondition{Expr::ColumnsEqual(AttributeRef{"R0", "L0"},
                                       AttributeRef{"A0", "L0"}),
                    EvolutionParams{false, true}}};
  const ViewDefinition cheap("anchor_view", ViewExtent::kAny,
                             std::move(select), std::move(from),
                             std::move(where));
  EXPECT_TRUE(system.RegisterView(cheap).ok());
  return system;
}

TEST(AdmissionTest, TightBudgetYieldsPartialFanCompleteAnchorAtAnyParallelism) {
  // First establish the unbudgeted reference: both views rewrite, nothing
  // is deadline-stopped.
  const CapabilityChange change = CapabilityChange::DeleteRelation("R0");
  std::string unbudgeted_fingerprint;
  {
    EveSystem system = MakeFanSystem();
    const Result<ChangeReport> report = system.ApplyChange(change);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().CountOutcome(ViewOutcomeKind::kRewritten), 2u);
    EXPECT_TRUE(system.last_sync_diagnostics().deadline_views.empty());
    unbudgeted_fingerprint = report.value().ToString();
  }

  std::string reference_report;
  std::string reference_stats;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    EveSystem system = MakeFanSystem();
    system.SetSyncWorkBudget(40);
    system.SetSyncParallelism(threads);
    const Result<ChangeReport> report = system.ApplyChange(change);
    ASSERT_TRUE(report.ok()) << "threads=" << threads;

    // The fan view ran out of budget and returned a partial (best-prefix)
    // result; the anchor view completed inside the same budget.
    const SyncDiagnostics& diagnostics = system.last_sync_diagnostics();
    EXPECT_EQ(diagnostics.deadline_views,
              std::vector<std::string>{"fan_view"})
        << "threads=" << threads;
    EXPECT_TRUE(system.last_sync_stats().deadline.partial);
    EXPECT_EQ(system.last_sync_stats().deadline.stop_cause,
              StopCause::kWorkBudget);
    // Both views still end up rewritten: the budgeted prefix contains the
    // best candidate.
    EXPECT_EQ(report.value().CountOutcome(ViewOutcomeKind::kRewritten), 2u);

    const std::string fingerprint = report.value().ToString();
    const std::string stats = system.last_sync_stats().ToString();
    if (threads == 1) {
      reference_report = fingerprint;
      reference_stats = stats;
    } else {
      EXPECT_EQ(fingerprint, reference_report) << "threads=" << threads;
      EXPECT_EQ(stats, reference_stats) << "threads=" << threads;
    }
  }
  // The budgeted runs are real partials, not the unbudgeted answer in
  // disguise (the fan view's chosen rewriting may still coincide; the
  // stats prove the search was cut).
  EXPECT_FALSE(reference_stats.empty());
}

// A clock stuck at time zero that sleeps on every read: the cooperative
// wall deadline never passes, and each safe-point check yields the CPU
// long enough that a pending watchdog is guaranteed to get scheduled
// while the sync is still running.
class StallClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return 0;
  }
};

TEST(AdmissionTest, WatchdogCancelsAnOverrunningSync) {
  // The stalled virtual clock disables the cooperative deadline; the
  // real-time watchdog is the only thing that can stop the search. With a
  // 1us timeout it always beats the (slowed) fan enumeration.
  StallClock clock;
  EveSystem system = MakeFanSystem();
  system.SetClockForTesting(&clock);
  system.SetSyncDeadlineMicros(1000000);
  system.SetSyncWatchdogMicros(1);
  const Result<ChangeReport> report =
      system.ApplyChange(CapabilityChange::DeleteRelation("R0"));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(system.last_sync_diagnostics().watchdog_cancels, 1u);
  // If the cancel landed before the searches finished, the stop cause is
  // kCancelled — never a spurious budget/deadline cause.
  if (!system.last_sync_diagnostics().deadline_views.empty()) {
    EXPECT_EQ(system.last_sync_stats().deadline.stop_cause,
              StopCause::kCancelled);
  }
}

TEST(AdmissionTest, CancelActiveSyncIsSafeWhenIdle) {
  EveSystem system = MakeFanSystem();
  system.CancelActiveSync();  // no active sync: must be a no-op
  const Result<ChangeReport> report =
      system.ApplyChange(CapabilityChange::DeleteRelation("R0"));
  EXPECT_TRUE(report.ok());
}

// --- Failpoints at the admission/cancellation safe points -------------------

class AdmissionFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(AdmissionFailpointTest, InjectedEnqueueFaultIsCountedAsShed) {
  EveSystem system = MakeChainSystem(2);
  Failpoints::Instance().Arm(fp::kAdmissionEnqueue, FailpointAction::kError);
  const Status status =
      system.EnqueueChange(CapabilityChange::DeleteRelation("R1"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(system.admission_stats().shed, 1u);
  EXPECT_EQ(system.queued_changes(), 0u);
  ExpectAdmissionInvariant(system);
  // The site auto-disarms: the retry is admitted.
  EXPECT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("R1")).ok());
  ExpectAdmissionInvariant(system);
}

TEST_F(AdmissionFailpointTest, InjectedDrainFaultLeavesTheQueueIntact) {
  EveSystem system = MakeChainSystem(2);
  ASSERT_TRUE(
      system.EnqueueChange(CapabilityChange::DeleteRelation("R1")).ok());
  Failpoints::Instance().Arm(fp::kAdmissionDrain, FailpointAction::kError);
  EXPECT_FALSE(system.DrainSyncQueue().ok());
  EXPECT_EQ(system.queued_changes(), 1u);  // nothing was consumed
  EXPECT_EQ(system.admission_stats().completed, 0u);
  ExpectAdmissionInvariant(system);
  const Result<std::vector<ChangeReport>> retry = system.DrainSyncQueue();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().size(), 1u);
  ExpectAdmissionInvariant(system);
}

TEST_F(AdmissionFailpointTest, ViewStartErrorFailsTheChangeBeforeCommit) {
  EveSystem system = MakeChainSystem(4);
  const std::vector<std::string> before = system.ViewNames();
  Failpoints::Instance().Arm(fp::kSyncViewStart, FailpointAction::kError);
  EXPECT_FALSE(system.ApplyChange(CapabilityChange::DeleteRelation("R1")).ok());
  // The failure surfaced before journaling/commit: state is untouched.
  EXPECT_EQ(system.ViewNames(), before);
  EXPECT_TRUE(system.change_log().empty());
  for (const std::string& name : before) {
    EXPECT_EQ(system.GetView(name).value()->state, ViewState::kActive);
  }
}

TEST_F(AdmissionFailpointTest, ViewStartCrashIsParkedAndRethrownOnTheCaller) {
  // With parallel sync the crash fires on a worker thread; the task must
  // park it and ApplyChange rethrows it on the calling thread — the pool
  // itself never sees an exception (which would terminate the process).
  EveSystem system = MakeChainSystem(8);
  system.SetSyncParallelism(4);
  Failpoints::Instance().Arm(fp::kSyncViewStart, FailpointAction::kCrash);
  EXPECT_THROW(system.ApplyChange(CapabilityChange::DeleteRelation("R1")),
               SimulatedCrash);
  // The interrupted change left no trace.
  EXPECT_TRUE(system.change_log().empty());
}

TEST_F(AdmissionFailpointTest, DeadlineExpiredSiteFiresOnPartialViews) {
  EveSystem system = MakeFanSystem();
  system.SetSyncWorkBudget(40);
  Failpoints::Instance().Arm(fp::kSyncDeadlineExpired,
                             FailpointAction::kError);
  // The fan view is deadline-stopped, so the site fires during aggregation
  // and the injected error aborts the change pre-commit.
  EXPECT_FALSE(system.ApplyChange(CapabilityChange::DeleteRelation("R0")).ok());
  EXPECT_TRUE(system.change_log().empty());

  // Without a budget no view is deadline-stopped and the site never fires.
  Failpoints::Instance().Reset();
  Failpoints::Instance().Arm(fp::kSyncDeadlineExpired,
                             FailpointAction::kError);
  system.SetSyncWorkBudget(0);
  EXPECT_TRUE(system.ApplyChange(CapabilityChange::DeleteRelation("R0")).ok());
}

// --- Concurrent admission (runs under TSan in CI) ---------------------------
//
// Many producer threads race EnqueueChange against a drainer and a
// stats sampler. The shedding invariant
//
//   submitted == completed + shed + queued_now
//
// must hold at EVERY sampled instant, not just at quiescence: enqueue
// accounts atomically under the admission lock, and a drain keeps the
// in-flight change counted as queued until its completion is recorded.

template <class System>
void RaceAdmission(System& system) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 150;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> samples{0};

  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const AdmissionStats stats = system.admission_stats();
      if (stats.submitted !=
          stats.completed + stats.shed + stats.queued_now) {
        violations.fetch_add(1);
      }
      samples.fetch_add(1);
      (void)system.queued_changes();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Outcomes intentionally vary: the first drain of R1 applies it,
        // re-deletes fail (completed-with-failure), and the queue bound
        // sheds bursts — every path must stay balanced.
        (void)system.EnqueueChange(CapabilityChange::DeleteRelation("R1"));
      }
    });
  }
  std::thread drainer([&] {
    for (int i = 0; i < 40; ++i) (void)system.DrainSyncQueue();
  });

  for (std::thread& producer : producers) producer.join();
  drainer.join();
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(samples.load(), 0u);

  // Quiesce: drain whatever the racing drains left behind. A drain stops
  // at the first failing change (remainder stays queued), so failures
  // need repeated calls — each consumes at least the failing change.
  while (system.queued_changes() > 0) {
    (void)system.DrainSyncQueue();
  }
  const AdmissionStats stats = system.admission_stats();
  EXPECT_EQ(stats.queued_now, 0u);
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
}

TEST(AdmissionConcurrencyTest, InvariantHoldsUnderRacingEnqueueAndDrain) {
  EveSystem system = MakeChainSystem(4);
  system.SetSyncQueueLimit(8);  // small enough that bursts shed
  RaceAdmission(system);
}

TEST(AdmissionConcurrencyTest, ShardedInvariantHoldsUnderRacingEnqueueAndDrain) {
  ChainMkbSpec spec;
  spec.length = 24;
  spec.skip_edges = true;
  spec.cover_distance = 2;
  const Mkb mkb = MakeChainMkb(spec).MoveValue();
  ShardedEveSystem system(mkb, {}, 2);
  for (size_t i = 0; i < 4; ++i) {
    const size_t start = (i % 2 == 0) ? (i / 2) % 2 : 10 + (i / 2) % 10;
    ViewDefinition view = MakeChainView(mkb, start, 3).MoveValue();
    view.set_name("BV" + std::to_string(i));
    ASSERT_TRUE(system.RegisterView(view).ok());
  }
  system.SetSyncQueueLimit(8);
  RaceAdmission(system);
}

}  // namespace
}  // namespace eve
