#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "eve/eve_system.h"
#include "eve/view_pool_io.h"
#include "mkb/serializer.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class EveSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Mkb mkb = MakeTravelAgencyMkb().MoveValue();
    ASSERT_TRUE(AddAccidentInsPc(&mkb).ok());
    system_ = std::make_unique<EveSystem>(std::move(mkb));
  }

  std::unique_ptr<EveSystem> system_;
};

TEST_F(EveSystemTest, RegisterAndLookup) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  EXPECT_EQ(system_->NumViews(), 1u);
  EXPECT_EQ(system_->NumActiveViews(), 1u);
  const RegisteredView* view =
      system_->GetView("CustomerPassengersAsia").value();
  EXPECT_EQ(view->state, ViewState::kActive);
  EXPECT_FALSE(system_->GetView("nope").ok());
  EXPECT_EQ(system_->ViewNames(),
            (std::vector<std::string>{"CustomerPassengersAsia"}));
}

TEST_F(EveSystemTest, RejectsDuplicateNamesAndBadViews) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  EXPECT_EQ(system_->RegisterViewText(CustomerPassengersAsiaSql()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(
      system_->RegisterViewText("CREATE VIEW X AS SELECT A.b FROM Nope A")
          .ok());
  EXPECT_FALSE(system_->RegisterViewText("garbage").ok());
}

TEST_F(EveSystemTest, AffectedViewDetection) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(system_->RegisterViewText(
                         "CREATE VIEW HotelCars AS SELECT H.City FROM "
                         "Hotels H, RentACar R WHERE H.Address = R.Location")
                  .ok());
  EXPECT_EQ(
      system_->AffectedViews(CapabilityChange::DeleteRelation("Customer")),
      (std::vector<std::string>{"CustomerPassengersAsia"}));
  EXPECT_EQ(
      system_->AffectedViews(CapabilityChange::DeleteRelation("Hotels")),
      (std::vector<std::string>{"HotelCars"}));
  EXPECT_TRUE(
      system_->AffectedViews(CapabilityChange::DeleteRelation("Tour"))
          .empty());
  EXPECT_EQ(system_
                ->AffectedViews(CapabilityChange::DeleteAttribute(
                    "FlightRes", "Dest"))
                .size(),
            1u);
  RelationDef def;
  def.source = "IS9";
  def.name = "X";
  def.schema = Schema({{"x", DataType::kInt}});
  EXPECT_TRUE(
      system_->AffectedViews(CapabilityChange::AddRelation(def)).empty());
}

TEST_F(EveSystemTest, ApplyChangeRewritesAffectedViews) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  ASSERT_TRUE(system_->RegisterViewText(
                         "CREATE VIEW HotelCars AS SELECT H.City FROM "
                         "Hotels H, RentACar R WHERE H.Address = R.Location")
                  .ok());
  const ChangeReport report =
      system_->ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kUnaffected), 1u);
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kDisabled), 0u);
  // The view keeps its registered name but no longer uses Customer.
  const RegisteredView* view =
      system_->GetView("CustomerPassengersAsia").value();
  EXPECT_EQ(view->state, ViewState::kActive);
  EXPECT_EQ(view->definition.name(), "CustomerPassengersAsia");
  EXPECT_FALSE(view->definition.ReferencesRelation("Customer"));
  EXPECT_EQ(view->history.size(), 1u);
  // The MKB evolved.
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Customer"));
  EXPECT_EQ(system_->change_log().size(), 1u);
}

TEST_F(EveSystemTest, ApplyChangeDisablesIncurableViews) {
  // A view demanding VE = ≡ cannot be preserved under delete-relation.
  ASSERT_TRUE(system_->RegisterViewText(
                         "CREATE VIEW Rigid (VE = =) AS "
                         "SELECT C.Name (false, true) FROM Customer C, "
                         "FlightRes F WHERE C.Name = F.PName")
                  .ok());
  const ChangeReport report =
      system_->ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kDisabled), 1u);
  const RegisteredView* view = system_->GetView("Rigid").value();
  EXPECT_EQ(view->state, ViewState::kDisabled);
  // Disabled views are skipped by later change processing.
  const ChangeReport second =
      system_->ApplyChange(CapabilityChange::DeleteRelation("Tour")).value();
  EXPECT_TRUE(second.outcomes.empty());
}

TEST_F(EveSystemTest, RenameChangeKeepsViewsActive) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const ChangeReport report =
      system_
          ->ApplyChange(
              CapabilityChange::RenameRelation("Customer", "Client"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  const RegisteredView* view =
      system_->GetView("CustomerPassengersAsia").value();
  EXPECT_TRUE(view->definition.HasFromRelation("Client"));
}

TEST_F(EveSystemTest, CascadingChangesSurviveWhilePossible) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  // 1. Rename FlightRes.Dest -> Destination: survive.
  ASSERT_TRUE(system_
                  ->ApplyChange(CapabilityChange::RenameAttribute(
                      "FlightRes", "Dest", "Destination"))
                  .ok());
  EXPECT_EQ(system_->NumActiveViews(), 1u);
  // 2. Delete Customer: rewrite through Accident-Ins or FlightRes.
  ASSERT_TRUE(
      system_->ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .ok());
  EXPECT_EQ(system_->NumActiveViews(), 1u);
  // 3. Delete Participant: Participant and TourID items are dispensable,
  //    so the view survives by dropping them.
  const ChangeReport report =
      system_->ApplyChange(CapabilityChange::DeleteRelation("Participant"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten) +
                report.CountOutcome(ViewOutcomeKind::kDisabled),
            1u);
  const RegisteredView* view =
      system_->GetView("CustomerPassengersAsia").value();
  if (view->state == ViewState::kActive) {
    EXPECT_FALSE(view->definition.ReferencesRelation("Participant"));
  }
}

TEST_F(EveSystemTest, ChangeReportToStringReadable) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const ChangeReport report =
      system_->ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  const std::string text = report.ToString();
  EXPECT_NE(text.find("delete-relation Customer"), std::string::npos);
  EXPECT_NE(text.find("rewritten"), std::string::npos);
  EXPECT_NE(text.find("dropped constraints"), std::string::npos);
}

TEST_F(EveSystemTest, RegisterValidatesAgainstCurrentMkb) {
  ASSERT_TRUE(
      system_->ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .ok());
  // Registering a Customer view after the deletion fails at bind time.
  EXPECT_FALSE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
}

TEST_F(EveSystemTest, SourceLeavesDropsEveryExportedRelation) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  // IS1 exports only Customer; its departure triggers the Ex. 9 rewrite.
  const auto reports = system_->SourceLeaves("IS1").value();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Customer"));
  EXPECT_EQ(system_->NumActiveViews(), 1u);
}

TEST_F(EveSystemTest, SourceLeavesMidCascadeFailureRollsBack) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  // Two relations under one source: the cascade applies two delete-relation
  // changes and passes its between-changes failpoint once in between.
  ASSERT_TRUE(system_
                  ->ExtendMkb("SOURCE ExtraIS RELATION Extra1 "
                              "(Name string, X int)\n"
                              "SOURCE ExtraIS RELATION Extra2 "
                              "(Name string, Y int)")
                  .ok());
  const std::string mkb_before = SaveMkb(system_->mkb());
  const std::string views_before = SaveViews(*system_);
  const size_t log_before = system_->change_log().size();

  Failpoints::Instance().Reset();
  Failpoints::Instance().Arm(fp::kSourceLeavesBetweenChanges,
                             FailpointAction::kError);
  EXPECT_FALSE(system_->SourceLeaves("ExtraIS").ok());
  Failpoints::Instance().Reset();

  // The first relation was already deleted when the failpoint fired; the
  // transactional cascade must have rolled that back.
  EXPECT_TRUE(system_->mkb().catalog().HasRelation("Extra1"));
  EXPECT_TRUE(system_->mkb().catalog().HasRelation("Extra2"));
  EXPECT_EQ(SaveMkb(system_->mkb()), mkb_before);
  EXPECT_EQ(SaveViews(*system_), views_before);
  EXPECT_EQ(system_->change_log().size(), log_before);

  // A clean retry goes through: the failure left no poison behind.
  ASSERT_TRUE(system_->SourceLeaves("ExtraIS").ok());
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Extra1"));
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Extra2"));
}

TEST_F(EveSystemTest, ExtendMkbIsAdditiveAndAtomic) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  // A new source joins and publishes a relation plus semantics.
  ASSERT_TRUE(system_
                  ->ExtendMkb(R"misd(
        SOURCE IS8 RELATION Person (Name string, SSN string, PAddr string)
        JOIN CONSTRAINT JCP BETWEEN Customer AND Person
            WHERE Customer.Name = Person.Name
        FUNCTION FADDR Customer.Addr = Person.PAddr
      )misd")
                  .ok());
  EXPECT_TRUE(system_->mkb().catalog().HasRelation("Person"));
  EXPECT_EQ(system_->mkb().CoversOf({"Customer", "Addr"}).size(), 1u);
  EXPECT_EQ(system_->NumActiveViews(), 1u);  // nothing affected

  // A failing extension leaves the MKB untouched.
  const size_t relations_before = system_->mkb().catalog().NumRelations();
  EXPECT_FALSE(system_
                   ->ExtendMkb("SOURCE IS9 RELATION Broken (x int)\n"
                               "JOIN CONSTRAINT bad BETWEEN Broken AND "
                               "Ghost WHERE Broken.x = Ghost.x")
                   .ok());
  EXPECT_EQ(system_->mkb().catalog().NumRelations(), relations_before);
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Broken"));
}

TEST_F(EveSystemTest, ExtendedMkbEnablesNewRewritings) {
  // Without the Person extension, deleting Customer.Addr from AsiaCustomer
  // would disable it; after ExtendMkb the Ex. 4 rewriting applies.
  ASSERT_TRUE(system_->RegisterViewText(AsiaCustomerSql()).ok());
  ASSERT_TRUE(system_
                  ->ExtendMkb(R"misd(
        SOURCE IS8 RELATION Person (Name string, SSN string, PAddr string)
        JOIN CONSTRAINT JCP BETWEEN Customer AND Person
            WHERE Customer.Name = Person.Name
        FUNCTION FADDR Customer.Addr = Person.PAddr
        PC PCP Person (Name, PAddr) SUPERSET Customer (Name, Addr)
      )misd")
                  .ok());
  const ChangeReport report =
      system_
          ->ApplyChange(CapabilityChange::DeleteAttribute("Customer",
                                                          "Addr"))
          .value();
  EXPECT_EQ(report.CountOutcome(ViewOutcomeKind::kRewritten), 1u)
      << report.ToString();
  EXPECT_TRUE(system_->GetView("AsiaCustomer")
                  .value()
                  ->definition.HasFromRelation("Person"));
}

TEST_F(EveSystemTest, PreviewChangeDoesNotMutate) {
  ASSERT_TRUE(system_->RegisterViewText(CustomerPassengersAsiaSql()).ok());
  const ChangeReport preview =
      system_->PreviewChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  EXPECT_EQ(preview.CountOutcome(ViewOutcomeKind::kRewritten), 1u);
  // Nothing changed.
  EXPECT_TRUE(system_->mkb().catalog().HasRelation("Customer"));
  EXPECT_TRUE(system_->change_log().empty());
  EXPECT_TRUE(system_->GetView("CustomerPassengersAsia")
                  .value()
                  ->definition.ReferencesRelation("Customer"));
  // Applying for real matches the preview's outcome counts.
  const ChangeReport applied =
      system_->ApplyChange(CapabilityChange::DeleteRelation("Customer"))
          .value();
  EXPECT_EQ(applied.CountOutcome(ViewOutcomeKind::kRewritten),
            preview.CountOutcome(ViewOutcomeKind::kRewritten));
}

TEST_F(EveSystemTest, SourceLeavesUnknownSourceFails) {
  EXPECT_EQ(system_->SourceLeaves("IS99").status().code(),
            StatusCode::kNotFound);
}

TEST_F(EveSystemTest, EmptyNameRejected) {
  ViewDefinition anonymous;
  EXPECT_EQ(system_->RegisterView(anonymous).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EveSystemTest, NonTransactionalBatchKeepsAppliedPrefix) {
  // A rigid view that the first change disables (see
  // ApplyChangeDisablesIncurableViews).
  ASSERT_TRUE(system_->RegisterViewText(
                         "CREATE VIEW Rigid (VE = =) AS "
                         "SELECT C.Name (false, true) FROM Customer C, "
                         "FlightRes F WHERE C.Name = F.PName")
                  .ok());
  const size_t log_before = system_->change_log().size();
  // Change 1 succeeds and disables Rigid; change 2 succeeds; change 3
  // fails (Customer is already gone).
  const Result<std::vector<ChangeReport>> result = system_->ApplyChanges(
      {CapabilityChange::DeleteRelation("Customer"),
       CapabilityChange::DeleteRelation("Tour"),
       CapabilityChange::DeleteRelation("Customer")},
      /*transactional=*/false);
  ASSERT_FALSE(result.ok());

  // Without rollback, the applied prefix sticks: both deletions are live...
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Customer"));
  EXPECT_FALSE(system_->mkb().catalog().HasRelation("Tour"));
  // ...the view disabled mid-batch stays disabled...
  EXPECT_EQ(system_->GetView("Rigid").value()->state, ViewState::kDisabled);
  // ...and the change log reflects exactly the applied prefix.
  ASSERT_EQ(system_->change_log().size(), log_before + 2);
  EXPECT_EQ(system_->change_log()[log_before].change.ToString(),
            CapabilityChange::DeleteRelation("Customer").ToString());
  EXPECT_EQ(system_->change_log()[log_before + 1].change.ToString(),
            CapabilityChange::DeleteRelation("Tour").ToString());
}

TEST_F(EveSystemTest, TransactionalBatchRollsBackOnFailure) {
  ASSERT_TRUE(system_->RegisterViewText(
                         "CREATE VIEW Rigid (VE = =) AS "
                         "SELECT C.Name (false, true) FROM Customer C, "
                         "FlightRes F WHERE C.Name = F.PName")
                  .ok());
  const size_t log_before = system_->change_log().size();
  const Result<std::vector<ChangeReport>> result = system_->ApplyChanges(
      {CapabilityChange::DeleteRelation("Customer"),
       CapabilityChange::DeleteRelation("Customer")},
      /*transactional=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(system_->mkb().catalog().HasRelation("Customer"));
  EXPECT_EQ(system_->GetView("Rigid").value()->state, ViewState::kActive);
  EXPECT_EQ(system_->change_log().size(), log_before);
}

}  // namespace
}  // namespace eve
