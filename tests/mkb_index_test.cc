// Property suite for the MKB lookup indexes: on randomized MKBs, every
// indexed query (JoinConstraintsOf / JoinConstraintsBetween / CoversOf /
// PCConstraintsBetween / GetJoinConstraint / GetFunctionOf) must return
// exactly what a brute-force scan over the constraint vectors returns —
// same elements, same (registration) order, same addresses — and must
// stay consistent through constraint removals and MKB copies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mkb/mkb.h"
#include "workload/generator.h"

namespace eve {
namespace {

std::vector<const JoinConstraint*> BruteJoinsOf(const Mkb& mkb,
                                                const std::string& relation) {
  std::vector<const JoinConstraint*> out;
  for (const JoinConstraint& jc : mkb.join_constraints()) {
    if (jc.Involves(relation)) out.push_back(&jc);
  }
  return out;
}

std::vector<const JoinConstraint*> BruteJoinsBetween(const Mkb& mkb,
                                                     const std::string& a,
                                                     const std::string& b) {
  std::vector<const JoinConstraint*> out;
  for (const JoinConstraint& jc : mkb.join_constraints()) {
    if ((jc.lhs == a && jc.rhs == b) || (jc.lhs == b && jc.rhs == a)) {
      out.push_back(&jc);
    }
  }
  return out;
}

std::vector<const FunctionOfConstraint*> BruteCoversOf(
    const Mkb& mkb, const AttributeRef& attr) {
  std::vector<const FunctionOfConstraint*> out;
  for (const FunctionOfConstraint& fc : mkb.function_of_constraints()) {
    if (fc.target == attr) out.push_back(&fc);
  }
  return out;
}

std::vector<const PCConstraint*> BrutePcsBetween(const Mkb& mkb,
                                                 const std::string& a,
                                                 const std::string& b) {
  std::vector<const PCConstraint*> out;
  for (const PCConstraint& pc : mkb.pc_constraints()) {
    if ((pc.lhs_relation == a && pc.rhs_relation == b) ||
        (pc.lhs_relation == b && pc.rhs_relation == a)) {
      out.push_back(&pc);
    }
  }
  return out;
}

// Compares every indexed lookup on `mkb` against its brute-force twin,
// over all relations, all relation pairs (both orders), all catalog
// attributes, and a guaranteed-absent key.
void ExpectIndexMatchesBruteForce(const Mkb& mkb) {
  std::vector<std::string> relations = mkb.catalog().RelationNames();
  relations.push_back("NoSuchRelation");
  for (const std::string& a : relations) {
    EXPECT_EQ(mkb.JoinConstraintsOf(a), BruteJoinsOf(mkb, a)) << a;
    for (const std::string& b : relations) {
      EXPECT_EQ(mkb.JoinConstraintsBetween(a, b), BruteJoinsBetween(mkb, a, b))
          << a << " vs " << b;
      EXPECT_EQ(mkb.PCConstraintsBetween(a, b), BrutePcsBetween(mkb, a, b))
          << a << " vs " << b;
    }
    if (const auto rel = mkb.catalog().GetRelation(a); rel.ok()) {
      for (const AttributeDef& attr : rel.value()->schema.attributes()) {
        const AttributeRef ref{a, attr.name};
        EXPECT_EQ(mkb.CoversOf(ref), BruteCoversOf(mkb, ref)) << ref.ToString();
      }
    }
    EXPECT_EQ(mkb.CoversOf(AttributeRef{a, "NoSuchAttr"}),
              BruteCoversOf(mkb, AttributeRef{a, "NoSuchAttr"}));
  }
  for (const JoinConstraint& jc : mkb.join_constraints()) {
    const auto found = mkb.GetJoinConstraint(jc.id);
    ASSERT_TRUE(found.ok()) << jc.id;
    EXPECT_EQ(found.value(), &jc);
  }
  for (const FunctionOfConstraint& fc : mkb.function_of_constraints()) {
    const auto found = mkb.GetFunctionOf(fc.id);
    ASSERT_TRUE(found.ok()) << fc.id;
    EXPECT_EQ(found.value(), &fc);
  }
  EXPECT_FALSE(mkb.GetJoinConstraint("no-such-id").ok());
  EXPECT_FALSE(mkb.GetFunctionOf("no-such-id").ok());
}

class MkbIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MkbIndexPropertyTest, IndexedLookupsMatchBruteForce) {
  RandomMkbSpec spec;
  spec.num_relations = 14;
  spec.extra_edge_probability = 0.25;
  spec.cover_probability = 0.8;
  spec.seed = GetParam();
  const Mkb mkb = MakeRandomMkb(spec).MoveValue();
  ASSERT_FALSE(mkb.join_constraints().empty());
  ExpectIndexMatchesBruteForce(mkb);
}

TEST_P(MkbIndexPropertyTest, IndexSurvivesRemovalsAndCopies) {
  RandomMkbSpec spec;
  spec.num_relations = 10;
  spec.extra_edge_probability = 0.3;
  spec.seed = GetParam();
  Mkb mkb = MakeRandomMkb(spec).MoveValue();

  // Removing constraints shifts vector indices: the rebuilt index must
  // still agree with brute force after every removal.
  while (mkb.join_constraints().size() > 1) {
    const std::string victim =
        mkb.join_constraints()[mkb.join_constraints().size() / 2].id;
    ASSERT_TRUE(mkb.RemoveConstraint(victim).ok());
    EXPECT_FALSE(mkb.GetJoinConstraint(victim).ok());
    ExpectIndexMatchesBruteForce(mkb);
  }
  if (!mkb.function_of_constraints().empty()) {
    ASSERT_TRUE(
        mkb.RemoveConstraint(mkb.function_of_constraints().front().id).ok());
    ExpectIndexMatchesBruteForce(mkb);
  }

  // A copy must carry working indexes that point into ITS OWN vectors
  // (index values are positions, not pointers).
  const Mkb copy = mkb;
  ExpectIndexMatchesBruteForce(copy);
  for (const JoinConstraint* jc : copy.JoinConstraintsOf(
           copy.catalog().RelationNames().front())) {
    EXPECT_GE(jc, copy.join_constraints().data());
    EXPECT_LT(jc, copy.join_constraints().data() +
                      copy.join_constraints().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MkbIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace eve
