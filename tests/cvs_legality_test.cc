#include <gtest/gtest.h>

#include "cvs/legality.h"
#include "esql/binder.h"
#include "sql/parser.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

class LegalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mkb_ = MakeTravelAgencyMkb().MoveValue();
    const auto evolution =
        EvolveMkb(mkb_, CapabilityChange::DeleteRelation("Customer"))
            .value();
    mkb_prime_ = evolution.mkb;
    change_ = CapabilityChange::DeleteRelation("Customer");
    old_view_ = ParseAndBindView(
                    "CREATE VIEW V AS SELECT C.Name (false, true), "
                    "F.Airline (true, true) "
                    "FROM Customer C (true, true), FlightRes F "
                    "WHERE (C.Name = F.PName) (false, true) "
                    "AND (F.Dest = 'Asia') (false, false)",
                    mkb_.catalog())
                    .MoveValue();
  }

  // The natural legal rewriting: Name replaced by FlightRes.PName.
  ViewDefinition GoodRewriting() {
    return ParseAndBindView(
               "CREATE VIEW V2 AS SELECT F.PName AS Name (false, true), "
               "F.Airline (true, true) FROM FlightRes F "
               "WHERE (F.Dest = 'Asia') (false, false)",
               mkb_prime_.catalog())
        .MoveValue();
  }

  std::map<AttributeRef, ExprPtr> NameSubstitution() {
    std::map<AttributeRef, ExprPtr> map;
    map.emplace(AttributeRef{"Customer", "Name"},
                Expr::Column(AttributeRef{"FlightRes", "PName"}));
    return map;
  }

  Mkb mkb_;
  Mkb mkb_prime_;
  CapabilityChange change_;
  ViewDefinition old_view_;
};

TEST_F(LegalityTest, GoodRewritingPassesAll) {
  const LegalityReport report =
      CheckLegality(old_view_, GoodRewriting(), change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_TRUE(report.p1_unaffected);
  EXPECT_TRUE(report.p2_evaluable);
  EXPECT_TRUE(report.p3_extent);
  EXPECT_TRUE(report.p4_parameters);
  EXPECT_TRUE(report.legal());
  EXPECT_TRUE(report.violations.empty()) << report.ToString();
}

TEST_F(LegalityTest, P1FailsWhenDeletedRelationStillReferenced) {
  // "Rewriting" that still uses Customer.
  const LegalityReport report =
      CheckLegality(old_view_, old_view_, change_, mkb_prime_,
                    ExtentRelation::kEqual, {});
  EXPECT_FALSE(report.p1_unaffected);
  // And P2 fails too: Customer is gone from MKB'.
  EXPECT_FALSE(report.p2_evaluable);
  EXPECT_FALSE(report.legal());
}

TEST_F(LegalityTest, P2FailsOnUnknownAttribute) {
  // Hand-build a view over a relation that exists but with a bad attr.
  ViewDefinition broken = GoodRewriting();
  (*broken.mutable_select())[0].expr =
      Expr::Column(AttributeRef{"FlightRes", "Ghost"});
  const LegalityReport report =
      CheckLegality(old_view_, broken, change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_TRUE(report.p1_unaffected);
  EXPECT_FALSE(report.p2_evaluable);
}

TEST_F(LegalityTest, P3FollowsInferredExtent) {
  ViewDefinition old_with_ve = old_view_;
  old_with_ve.set_extent(ViewExtent::kSuperset);
  const LegalityReport ok =
      CheckLegality(old_with_ve, GoodRewriting(), change_, mkb_prime_,
                    ExtentRelation::kSuperset, NameSubstitution());
  EXPECT_TRUE(ok.p3_extent);
  const LegalityReport bad =
      CheckLegality(old_with_ve, GoodRewriting(), change_, mkb_prime_,
                    ExtentRelation::kUnknown, NameSubstitution());
  EXPECT_FALSE(bad.p3_extent);
  EXPECT_FALSE(bad.legal());
}

TEST_F(LegalityTest, P4IndispensableAttributeMustSurvive) {
  // Remove the Name item from the rewriting.
  ViewDefinition missing = GoodRewriting();
  missing.mutable_select()->erase(missing.mutable_select()->begin());
  const LegalityReport report =
      CheckLegality(old_view_, missing, change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_FALSE(report.p4_parameters);
}

TEST_F(LegalityTest, P4DispensableAttributeMayVanish) {
  // Dropping the dispensable Airline item is fine.
  ViewDefinition narrowed = GoodRewriting();
  narrowed.mutable_select()->pop_back();
  const LegalityReport report =
      CheckLegality(old_view_, narrowed, change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_TRUE(report.p4_parameters) << report.ToString();
}

TEST_F(LegalityTest, P4NonReplaceableAttributeMustStayVerbatim) {
  // Make Airline non-replaceable in the old view, then change it in the
  // rewriting.
  ViewDefinition old_rigid = old_view_;
  (*old_rigid.mutable_select())[1].params = EvolutionParams{false, false};
  ViewDefinition changed = GoodRewriting();
  (*changed.mutable_select())[1].expr =
      Expr::Column(AttributeRef{"FlightRes", "Source"});
  const LegalityReport report =
      CheckLegality(old_rigid, changed, change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_FALSE(report.p4_parameters);
}

TEST_F(LegalityTest, P4IndispensableConditionMustSurvive) {
  // (F.Dest = 'Asia') is indispensable & non-replaceable; dropping it
  // violates P4.
  ViewDefinition missing_cond = GoodRewriting();
  missing_cond.mutable_where()->clear();
  const LegalityReport report =
      CheckLegality(old_view_, missing_cond, change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_FALSE(report.p4_parameters);
}

TEST_F(LegalityTest, P4NonReplaceableConditionMustStayVerbatim) {
  ViewDefinition tweaked = GoodRewriting();
  (*tweaked.mutable_where())[0].clause =
      ParseConjunction("FlightRes.Dest = 'Europe'").value()[0];
  // Old condition (Dest='Asia') is (false,false): changing it = violation;
  // also the original indispensable condition is now missing.
  const LegalityReport report =
      CheckLegality(old_view_, tweaked, change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_FALSE(report.p4_parameters);
}

TEST_F(LegalityTest, P4IndispensableRelationMustSurvive) {
  // FlightRes is indispensable (default params); drop it from the
  // rewriting's FROM (hand-built, degenerate).
  ViewDefinition no_flightres = ParseAndBindView(
      "CREATE VIEW V2 AS SELECT P.Participant AS Name FROM Participant P",
      mkb_prime_.catalog())
                                    .value();
  const LegalityReport report =
      CheckLegality(old_view_, no_flightres, change_, mkb_prime_,
                    ExtentRelation::kEqual, {});
  EXPECT_FALSE(report.p4_parameters);
}

TEST_F(LegalityTest, P4NonReplaceableDeletedRelationIsFatal) {
  ViewDefinition old_rigid = old_view_;
  (*old_rigid.mutable_from())[0].params = EvolutionParams{false, false};
  const LegalityReport report =
      CheckLegality(old_rigid, GoodRewriting(), change_, mkb_prime_,
                    ExtentRelation::kEqual, NameSubstitution());
  EXPECT_FALSE(report.p4_parameters);
}

TEST_F(LegalityTest, DeleteAttributeP1Check) {
  const CapabilityChange attr_change =
      CapabilityChange::DeleteAttribute("FlightRes", "Airline");
  // GoodRewriting still selects Airline -> P1 fails for that change.
  const auto evolution = EvolveMkb(mkb_, attr_change).value();
  const LegalityReport report =
      CheckLegality(old_view_, GoodRewriting(), attr_change, evolution.mkb,
                    ExtentRelation::kEqual, {});
  EXPECT_FALSE(report.p1_unaffected);
}

TEST_F(LegalityTest, ReportToStringListsViolations) {
  const LegalityReport report =
      CheckLegality(old_view_, old_view_, change_, mkb_prime_,
                    ExtentRelation::kUnknown, {});
  const std::string text = report.ToString();
  EXPECT_NE(text.find("P1=FAIL"), std::string::npos);
  EXPECT_NE(text.find("P2=FAIL"), std::string::npos);
}

}  // namespace
}  // namespace eve
