// The eved wire protocol: frame encode/decode roundtrips, the
// FrameDecoder's robustness contract (partial frames, torn frames, CRC
// corruption, garbage resync, hostile length fields), and the
// request/response payload codecs.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"

namespace eve {
namespace net {
namespace {

std::string Corrupt(std::string frame, size_t at) {
  frame[at] = static_cast<char>(frame[at] ^ 0x5a);
  return frame;
}

// --- CRC --------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Sensitivity: one flipped bit changes the CRC.
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

// --- Frame roundtrip --------------------------------------------------------

TEST(FrameTest, EncodeDecodeRoundtrip) {
  const std::string wire = EncodeFrame(FrameType::kRequest, "hello");
  EXPECT_EQ(wire.size(), kHeaderSize + 5);
  EXPECT_EQ(wire.substr(0, 4), "EVE1");

  FrameDecoder decoder;
  decoder.Feed(wire);
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRequest);
  EXPECT_EQ(frame->payload, "hello");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(FrameTest, EmptyPayloadIsLegal) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kGoodbye, ""));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kGoodbye);
  EXPECT_EQ(frame->payload, "");
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kRequest, "one") +
               EncodeFrame(FrameType::kResponse, "two") +
               EncodeFrame(FrameType::kGoodbye, "three"));
  ASSERT_TRUE(decoder.Next().has_value());
  std::optional<Frame> second = decoder.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, "two");
  std::optional<Frame> third = decoder.Next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->type, FrameType::kGoodbye);
  EXPECT_FALSE(decoder.Next().has_value());
}

// --- Partial / torn frames --------------------------------------------------

TEST(FrameDecoderTest, ByteAtATimeDelivery) {
  const std::string wire = EncodeFrame(FrameType::kRequest, "slow bytes");
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(std::string_view(&wire[i], 1));
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_TRUE(decoder.has_partial());
  }
  decoder.Feed(std::string_view(&wire[wire.size() - 1], 1));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "slow bytes");
  EXPECT_FALSE(decoder.has_partial());
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(FrameDecoderTest, TornFrameThenRestResumesCleanly) {
  const std::string wire = EncodeFrame(FrameType::kResponse, "torn in half");
  FrameDecoder decoder;
  decoder.Feed(wire.substr(0, kHeaderSize + 4));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.has_partial());
  decoder.Feed(wire.substr(kHeaderSize + 4));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "torn in half");
}

// --- Corruption and resync --------------------------------------------------

TEST(FrameDecoderTest, CrcCorruptionDropsOnlyTheBadFrame) {
  FrameDecoder decoder;
  decoder.Feed(Corrupt(EncodeFrame(FrameType::kRequest, "doomed"),
                       kHeaderSize + 2) +
               EncodeFrame(FrameType::kRequest, "survivor"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "survivor");
  EXPECT_GE(decoder.crc_failures(), 1u);
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, GarbagePrefixIsSkipped) {
  FrameDecoder decoder;
  decoder.Feed("!@#$ random junk before the stream ");
  decoder.Feed(EncodeFrame(FrameType::kRequest, "after junk"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "after junk");
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, UnknownFrameTypeTriggersResync) {
  std::string wire = EncodeFrame(FrameType::kRequest, "typed");
  wire[4] = 42;  // not a known FrameType
  FrameDecoder decoder;
  decoder.Feed(wire + EncodeFrame(FrameType::kRequest, "good"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "good");
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, HostileLengthFieldCannotReserveUnboundedMemory) {
  // A header claiming a payload far beyond kMaxPayload must be rejected
  // structurally — the decoder resyncs instead of waiting for 4 GiB.
  std::string header(kHeaderSize, '\0');
  std::memcpy(header.data(), kMagic, 4);
  header[4] = 1;  // kRequest
  header[5] = static_cast<char>(0xff);
  header[6] = static_cast<char>(0xff);
  header[7] = static_cast<char>(0xff);
  header[8] = static_cast<char>(0xff);
  FrameDecoder decoder;
  decoder.Feed(header + EncodeFrame(FrameType::kResponse, "sane"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "sane");
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, MagicBytesInsidePayloadDoNotConfuseTheDecoder) {
  // A payload that CONTAINS the magic marker still decodes as one frame.
  const std::string tricky = "xxEVE1yyEVE1zz";
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kRequest, tricky));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, tricky);
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(FrameDecoderTest, CorruptMagicResyncsToEmbeddedNextFrame) {
  // Corrupting the first frame's magic makes the decoder scan forward;
  // it must land exactly on the second frame's boundary.
  FrameDecoder decoder;
  decoder.Feed(Corrupt(EncodeFrame(FrameType::kRequest, "bad magic"), 1) +
               EncodeFrame(FrameType::kResponse, "found me"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "found me");
  EXPECT_GE(decoder.resyncs(), 1u);
}

// --- Request / response codecs ----------------------------------------------

TEST(RequestCodecTest, Roundtrip) {
  Request request;
  request.id = 0x1122334455667788ull;
  request.deadline_micros = 250'000;
  request.work_budget = 42;
  request.statement = "SHOW SYNC STATS;";
  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->deadline_micros, request.deadline_micros);
  EXPECT_EQ(decoded->work_budget, request.work_budget);
  EXPECT_EQ(decoded->statement, request.statement);
}

TEST(ResponseCodecTest, Roundtrip) {
  Response response;
  response.id = 7;
  response.code = static_cast<int32_t>(StatusCode::kResourceExhausted);
  response.retry_after_micros = 50'000;
  response.output = "line one\nline two\n";
  response.error = "error: resource_exhausted: queue full\n";
  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, response.id);
  EXPECT_EQ(decoded->code, response.code);
  EXPECT_EQ(decoded->retry_after_micros, response.retry_after_micros);
  EXPECT_EQ(decoded->output, response.output);
  EXPECT_EQ(decoded->error, response.error);
}

TEST(RequestCodecTest, TruncatedPayloadIsAParseError) {
  const std::string payload = EncodeRequest(Request{1, 0, 0, "DRAIN SYNC;"});
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<Request> decoded = DecodeRequest(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(ResponseCodecTest, TrailingGarbageIsAParseError) {
  const std::string payload = EncodeResponse(Response{});
  Result<Response> decoded = DecodeResponse(payload + "x");
  EXPECT_FALSE(decoded.ok());
}

// --- Replication payload codecs ---------------------------------------------

ReplHello SampleHello() {
  ReplHello hello;
  hello.node_id = "n2";
  hello.epoch = 0xDEADBEEFull;
  hello.applied_version = 0xFFFFFFFFFFFFFFFFull;
  return hello;
}

ReplRecord SampleRecord() {
  ReplRecord record;
  record.epoch = 3;
  record.seq = 0x0102030405060708ull;
  record.kind = 7;
  record.body = std::string("journal body with \0 embedded", 28);
  return record;
}

TEST(ReplCodecTest, HelloRoundtrip) {
  const ReplHello hello = SampleHello();
  Result<ReplHello> decoded = DecodeReplHello(EncodeReplHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->node_id, hello.node_id);
  EXPECT_EQ(decoded->epoch, hello.epoch);
  EXPECT_EQ(decoded->applied_version, hello.applied_version);
}

TEST(ReplCodecTest, SnapshotRoundtrip) {
  ReplSnapshot snapshot;
  snapshot.epoch = 9;
  snapshot.version = 41;
  snapshot.primary_node = "n1";
  snapshot.checkpoint = std::string("EVECKPT1\n\0binary\xff", 18);
  // A mid-transfer chunk: 18 bytes starting at offset 100 of a 300-byte
  // checkpoint.
  snapshot.offset = 100;
  snapshot.total = 300;
  Result<ReplSnapshot> decoded =
      DecodeReplSnapshot(EncodeReplSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, snapshot.epoch);
  EXPECT_EQ(decoded->version, snapshot.version);
  EXPECT_EQ(decoded->primary_node, snapshot.primary_node);
  EXPECT_EQ(decoded->checkpoint, snapshot.checkpoint);
  EXPECT_EQ(decoded->offset, snapshot.offset);
  EXPECT_EQ(decoded->total, snapshot.total);

  // A chunk that lies about its place in the transfer is rejected.
  snapshot.offset = 290;  // 18 bytes at 290 would overrun total=300
  EXPECT_FALSE(DecodeReplSnapshot(EncodeReplSnapshot(snapshot)).ok());
}

TEST(ReplCodecTest, RecordRoundtrip) {
  const ReplRecord record = SampleRecord();
  Result<ReplRecord> decoded = DecodeReplRecord(EncodeReplRecord(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, record.epoch);
  EXPECT_EQ(decoded->seq, record.seq);
  EXPECT_EQ(decoded->kind, record.kind);
  EXPECT_EQ(decoded->body, record.body);
}

TEST(ReplCodecTest, AckHeartbeatStatusRoundtrip) {
  ReplAck ack;
  ack.node_id = "n3";
  ack.epoch = 2;
  ack.applied_seq = 17;
  ack.applied_version = 4;
  Result<ReplAck> decoded_ack = DecodeReplAck(EncodeReplAck(ack));
  ASSERT_TRUE(decoded_ack.ok());
  EXPECT_EQ(decoded_ack->node_id, ack.node_id);
  EXPECT_EQ(decoded_ack->applied_seq, ack.applied_seq);

  ReplHeartbeat heartbeat;
  heartbeat.epoch = 5;
  heartbeat.tip_version = 99;
  heartbeat.primary_node = "n1";
  Result<ReplHeartbeat> decoded_hb =
      DecodeReplHeartbeat(EncodeReplHeartbeat(heartbeat));
  ASSERT_TRUE(decoded_hb.ok());
  EXPECT_EQ(decoded_hb->tip_version, heartbeat.tip_version);
  EXPECT_EQ(decoded_hb->primary_node, heartbeat.primary_node);

  ReplStatus status;
  status.node_id = "n2";
  status.role = ReplRole::kCandidate;
  status.epoch = 8;
  status.applied_version = 12;
  status.tip_version = 15;
  status.primary_hint = "127.0.0.1:4100";
  Result<ReplStatus> decoded_status =
      DecodeReplStatus(EncodeReplStatus(status));
  ASSERT_TRUE(decoded_status.ok());
  EXPECT_EQ(decoded_status->role, status.role);
  EXPECT_EQ(decoded_status->epoch, status.epoch);
  EXPECT_EQ(decoded_status->applied_version, status.applied_version);
  EXPECT_EQ(decoded_status->tip_version, status.tip_version);
  EXPECT_EQ(decoded_status->primary_hint, status.primary_hint);
}

TEST(ReplCodecTest, VoteRoundtrip) {
  ReplVoteReq request;
  request.candidate = "n2";
  request.epoch = 11;
  request.last_epoch = 10;
  request.last_position = 0x0102030405060708ull;
  Result<ReplVoteReq> decoded_req =
      DecodeReplVoteReq(EncodeReplVoteReq(request));
  ASSERT_TRUE(decoded_req.ok());
  EXPECT_EQ(decoded_req->candidate, request.candidate);
  EXPECT_EQ(decoded_req->epoch, request.epoch);
  EXPECT_EQ(decoded_req->last_epoch, request.last_epoch);
  EXPECT_EQ(decoded_req->last_position, request.last_position);

  for (const bool granted : {true, false}) {
    ReplVote vote;
    vote.voter = "n3";
    vote.epoch = 11;
    vote.granted = granted;
    Result<ReplVote> decoded = DecodeReplVote(EncodeReplVote(vote));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->voter, vote.voter);
    EXPECT_EQ(decoded->epoch, vote.epoch);
    EXPECT_EQ(decoded->granted, granted);
  }
}

TEST(ReplCodecTest, TruncatedReplPayloadsAreParseErrors) {
  // A torn stream must never yield a partially-decoded replication
  // payload: every strict prefix of every repl codec is an explicit error.
  const std::string hello = EncodeReplHello(SampleHello());
  for (size_t cut = 0; cut < hello.size(); ++cut) {
    EXPECT_FALSE(DecodeReplHello(hello.substr(0, cut)).ok())
        << "hello cut at " << cut;
  }
  const std::string record = EncodeReplRecord(SampleRecord());
  for (size_t cut = 0; cut < record.size(); ++cut) {
    EXPECT_FALSE(DecodeReplRecord(record.substr(0, cut)).ok())
        << "record cut at " << cut;
  }
  EXPECT_FALSE(DecodeReplAck(record).ok());       // cross-type decode fails
  EXPECT_FALSE(DecodeReplRecord(record + "x").ok());  // trailing garbage

  ReplVoteReq vote_req;
  vote_req.candidate = "n2";
  vote_req.epoch = 11;
  vote_req.last_epoch = 10;
  vote_req.last_position = 42;
  const std::string vote_req_bytes = EncodeReplVoteReq(vote_req);
  for (size_t cut = 0; cut < vote_req_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeReplVoteReq(vote_req_bytes.substr(0, cut)).ok())
        << "vote-req cut at " << cut;
  }
  ReplVote vote;
  vote.voter = "n3";
  vote.epoch = 11;
  vote.granted = true;
  const std::string vote_bytes = EncodeReplVote(vote);
  for (size_t cut = 0; cut < vote_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeReplVote(vote_bytes.substr(0, cut)).ok())
        << "vote cut at " << cut;
  }
  EXPECT_FALSE(DecodeReplVote(vote_bytes + "x").ok());  // trailing garbage
  // A granted flag outside {0, 1} is rejected, not coerced.
  std::string bad_flag = vote_bytes;
  bad_flag[bad_flag.size() - 4] = 2;
  EXPECT_FALSE(DecodeReplVote(bad_flag).ok());
}

// The wire bytes of one frame of each replication type, used by the
// decoder fuzz tests below.
std::vector<std::pair<FrameType, std::string>> ReplFrames() {
  ReplSnapshot snapshot;
  snapshot.epoch = 2;
  snapshot.version = 7;
  snapshot.primary_node = "n1";
  snapshot.checkpoint = "checkpoint bytes";
  ReplAck ack;
  ack.node_id = "n2";
  ack.epoch = 2;
  ack.applied_seq = 7;
  ReplHeartbeat heartbeat;
  heartbeat.epoch = 2;
  heartbeat.tip_version = 7;
  heartbeat.primary_node = "n1";
  ReplStatus status;
  status.node_id = "n1";
  status.role = ReplRole::kPrimary;
  status.epoch = 2;
  ReplVoteReq vote_req;
  vote_req.candidate = "n3";
  vote_req.epoch = 3;
  vote_req.last_epoch = 2;
  vote_req.last_position = 7;
  ReplVote vote;
  vote.voter = "n1";
  vote.epoch = 3;
  vote.granted = true;
  return {
      {FrameType::kReplHello, EncodeReplHello(SampleHello())},
      {FrameType::kReplSnapshot, EncodeReplSnapshot(snapshot)},
      {FrameType::kReplRecord, EncodeReplRecord(SampleRecord())},
      {FrameType::kReplAck, EncodeReplAck(ack)},
      {FrameType::kReplHeartbeat, EncodeReplHeartbeat(heartbeat)},
      {FrameType::kReplStatusReq, ""},
      {FrameType::kReplStatus, EncodeReplStatus(status)},
      {FrameType::kReplVoteReq, EncodeReplVoteReq(vote_req)},
      {FrameType::kReplVote, EncodeReplVote(vote)},
  };
}

TEST(ReplFrameFuzzTest, EveryCutPointDeliversExactlyOneIntactFrame) {
  for (const auto& [type, payload] : ReplFrames()) {
    const std::string wire = EncodeFrame(type, payload);
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(wire.substr(0, cut));
      // The torn prefix alone never surfaces a frame.
      if (cut < wire.size()) {
        EXPECT_FALSE(decoder.Next().has_value())
            << "type " << static_cast<int>(type) << " cut " << cut;
      }
      decoder.Feed(wire.substr(cut));
      std::optional<Frame> frame = decoder.Next();
      ASSERT_TRUE(frame.has_value())
          << "type " << static_cast<int>(type) << " cut " << cut;
      EXPECT_EQ(frame->type, type);
      EXPECT_EQ(frame->payload, payload);
      EXPECT_FALSE(decoder.Next().has_value());
      EXPECT_EQ(decoder.resyncs(), 0u);
    }
  }
}

TEST(ReplFrameFuzzTest, EveryCorruptByteResyncsToTheNextFrame) {
  // Flip each byte of each repl frame in turn, follow it with a good
  // kReplHeartbeat, and require: the good frame is always delivered, and
  // any frame delivered before it carries the ORIGINAL intact payload
  // (the CRC rejects every corrupted payload — a torn or bit-flipped
  // record can never reach the apply path).
  ReplHeartbeat sentinel_heartbeat;
  sentinel_heartbeat.epoch = 42;
  sentinel_heartbeat.tip_version = 4242;
  sentinel_heartbeat.primary_node = "sentinel";
  const std::string sentinel_payload =
      EncodeReplHeartbeat(sentinel_heartbeat);
  const std::string sentinel =
      EncodeFrame(FrameType::kReplHeartbeat, sentinel_payload);
  for (const auto& [type, payload] : ReplFrames()) {
    const std::string wire = EncodeFrame(type, payload);
    for (size_t at = 0; at < wire.size(); ++at) {
      FrameDecoder decoder;
      decoder.Feed(Corrupt(wire, at) + sentinel);
      bool saw_sentinel = false;
      int delivered = 0;
      const auto drain = [&] {
        while (std::optional<Frame> frame = decoder.Next()) {
          ++delivered;
          ASSERT_LE(delivered, 4) << "type " << static_cast<int>(type)
                                  << " corrupt at " << at;
          if (frame->type == FrameType::kReplHeartbeat &&
              frame->payload == sentinel_payload) {
            saw_sentinel = true;
            continue;
          }
          // Anything else delivered must be the original frame, intact:
          // the CRC rejects every corrupted payload, so only type-byte or
          // resync-discarded corruptions can change WHAT is delivered,
          // never its contents.
          EXPECT_EQ(frame->payload, payload)
              << "type " << static_cast<int>(type) << " corrupt at " << at;
        }
      };
      drain();
      if (!saw_sentinel) {
        // A corrupted length field can inflate the frame by up to ~23KB
        // while staying under kMaxPayload; the decoder rightly waits for
        // the rest. Keep the stream flowing (as a live primary would) —
        // once the monster frame fills up, its CRC fails, the decoder
        // resyncs, and the sentinel embedded in the buffer surfaces.
        decoder.Feed(std::string(1u << 16, '\0') + sentinel);
        drain();
      }
      EXPECT_TRUE(saw_sentinel)
          << "type " << static_cast<int>(type) << " corrupt at " << at;
    }
  }
}

TEST(ReplFrameFuzzTest, InterleavedTornRecordNeverAppliesPartially) {
  // A record stream torn mid-record and then resumed by a NEW frame (the
  // primary never retransmits the torn tail) must drop the torn record
  // entirely: the decoder resyncs to the next frame boundary.
  const ReplRecord record = SampleRecord();
  const std::string torn =
      EncodeFrame(FrameType::kReplRecord, EncodeReplRecord(record));
  ReplRecord next = record;
  next.seq = record.seq + 1;
  const std::string following =
      EncodeFrame(FrameType::kReplRecord, EncodeReplRecord(next));
  for (size_t keep = 1; keep < torn.size(); ++keep) {
    FrameDecoder decoder;
    decoder.Feed(torn.substr(0, keep));
    EXPECT_FALSE(decoder.Next().has_value());
    decoder.Feed(following);
    // Depending on where the tear fell the decoder may need more input to
    // conclude the old frame is dead; feeding a second clean frame always
    // flushes it out.
    decoder.Feed(following);
    std::optional<Frame> frame = decoder.Next();
    ASSERT_TRUE(frame.has_value()) << "keep " << keep;
    EXPECT_EQ(frame->type, FrameType::kReplRecord);
    Result<ReplRecord> decoded = DecodeReplRecord(frame->payload);
    ASSERT_TRUE(decoded.ok()) << "keep " << keep;
    // Never the torn record: always the complete following one.
    EXPECT_EQ(decoded->seq, next.seq) << "keep " << keep;
  }
}

}  // namespace
}  // namespace net
}  // namespace eve
