// The eved wire protocol: frame encode/decode roundtrips, the
// FrameDecoder's robustness contract (partial frames, torn frames, CRC
// corruption, garbage resync, hostile length fields), and the
// request/response payload codecs.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>

#include "net/protocol.h"

namespace eve {
namespace net {
namespace {

std::string Corrupt(std::string frame, size_t at) {
  frame[at] = static_cast<char>(frame[at] ^ 0x5a);
  return frame;
}

// --- CRC --------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Sensitivity: one flipped bit changes the CRC.
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

// --- Frame roundtrip --------------------------------------------------------

TEST(FrameTest, EncodeDecodeRoundtrip) {
  const std::string wire = EncodeFrame(FrameType::kRequest, "hello");
  EXPECT_EQ(wire.size(), kHeaderSize + 5);
  EXPECT_EQ(wire.substr(0, 4), "EVE1");

  FrameDecoder decoder;
  decoder.Feed(wire);
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRequest);
  EXPECT_EQ(frame->payload, "hello");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(FrameTest, EmptyPayloadIsLegal) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kGoodbye, ""));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kGoodbye);
  EXPECT_EQ(frame->payload, "");
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kRequest, "one") +
               EncodeFrame(FrameType::kResponse, "two") +
               EncodeFrame(FrameType::kGoodbye, "three"));
  ASSERT_TRUE(decoder.Next().has_value());
  std::optional<Frame> second = decoder.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, "two");
  std::optional<Frame> third = decoder.Next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->type, FrameType::kGoodbye);
  EXPECT_FALSE(decoder.Next().has_value());
}

// --- Partial / torn frames --------------------------------------------------

TEST(FrameDecoderTest, ByteAtATimeDelivery) {
  const std::string wire = EncodeFrame(FrameType::kRequest, "slow bytes");
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(std::string_view(&wire[i], 1));
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_TRUE(decoder.has_partial());
  }
  decoder.Feed(std::string_view(&wire[wire.size() - 1], 1));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "slow bytes");
  EXPECT_FALSE(decoder.has_partial());
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(FrameDecoderTest, TornFrameThenRestResumesCleanly) {
  const std::string wire = EncodeFrame(FrameType::kResponse, "torn in half");
  FrameDecoder decoder;
  decoder.Feed(wire.substr(0, kHeaderSize + 4));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.has_partial());
  decoder.Feed(wire.substr(kHeaderSize + 4));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "torn in half");
}

// --- Corruption and resync --------------------------------------------------

TEST(FrameDecoderTest, CrcCorruptionDropsOnlyTheBadFrame) {
  FrameDecoder decoder;
  decoder.Feed(Corrupt(EncodeFrame(FrameType::kRequest, "doomed"),
                       kHeaderSize + 2) +
               EncodeFrame(FrameType::kRequest, "survivor"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "survivor");
  EXPECT_GE(decoder.crc_failures(), 1u);
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, GarbagePrefixIsSkipped) {
  FrameDecoder decoder;
  decoder.Feed("!@#$ random junk before the stream ");
  decoder.Feed(EncodeFrame(FrameType::kRequest, "after junk"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "after junk");
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, UnknownFrameTypeTriggersResync) {
  std::string wire = EncodeFrame(FrameType::kRequest, "typed");
  wire[4] = 42;  // not a known FrameType
  FrameDecoder decoder;
  decoder.Feed(wire + EncodeFrame(FrameType::kRequest, "good"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "good");
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, HostileLengthFieldCannotReserveUnboundedMemory) {
  // A header claiming a payload far beyond kMaxPayload must be rejected
  // structurally — the decoder resyncs instead of waiting for 4 GiB.
  std::string header(kHeaderSize, '\0');
  std::memcpy(header.data(), kMagic, 4);
  header[4] = 1;  // kRequest
  header[5] = static_cast<char>(0xff);
  header[6] = static_cast<char>(0xff);
  header[7] = static_cast<char>(0xff);
  header[8] = static_cast<char>(0xff);
  FrameDecoder decoder;
  decoder.Feed(header + EncodeFrame(FrameType::kResponse, "sane"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "sane");
  EXPECT_GE(decoder.resyncs(), 1u);
}

TEST(FrameDecoderTest, MagicBytesInsidePayloadDoNotConfuseTheDecoder) {
  // A payload that CONTAINS the magic marker still decodes as one frame.
  const std::string tricky = "xxEVE1yyEVE1zz";
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kRequest, tricky));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, tricky);
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(FrameDecoderTest, CorruptMagicResyncsToEmbeddedNextFrame) {
  // Corrupting the first frame's magic makes the decoder scan forward;
  // it must land exactly on the second frame's boundary.
  FrameDecoder decoder;
  decoder.Feed(Corrupt(EncodeFrame(FrameType::kRequest, "bad magic"), 1) +
               EncodeFrame(FrameType::kResponse, "found me"));
  std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "found me");
  EXPECT_GE(decoder.resyncs(), 1u);
}

// --- Request / response codecs ----------------------------------------------

TEST(RequestCodecTest, Roundtrip) {
  Request request;
  request.id = 0x1122334455667788ull;
  request.deadline_micros = 250'000;
  request.work_budget = 42;
  request.statement = "SHOW SYNC STATS;";
  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->deadline_micros, request.deadline_micros);
  EXPECT_EQ(decoded->work_budget, request.work_budget);
  EXPECT_EQ(decoded->statement, request.statement);
}

TEST(ResponseCodecTest, Roundtrip) {
  Response response;
  response.id = 7;
  response.code = static_cast<int32_t>(StatusCode::kResourceExhausted);
  response.retry_after_micros = 50'000;
  response.output = "line one\nline two\n";
  response.error = "error: resource_exhausted: queue full\n";
  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, response.id);
  EXPECT_EQ(decoded->code, response.code);
  EXPECT_EQ(decoded->retry_after_micros, response.retry_after_micros);
  EXPECT_EQ(decoded->output, response.output);
  EXPECT_EQ(decoded->error, response.error);
}

TEST(RequestCodecTest, TruncatedPayloadIsAParseError) {
  const std::string payload = EncodeRequest(Request{1, 0, 0, "DRAIN SYNC;"});
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<Request> decoded = DecodeRequest(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(ResponseCodecTest, TrailingGarbageIsAParseError) {
  const std::string payload = EncodeResponse(Response{});
  Result<Response> decoded = DecodeResponse(payload + "x");
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace net
}  // namespace eve
