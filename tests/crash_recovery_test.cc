// Crash-recovery identity: for EVERY registered failpoint site, a simulated
// crash at that site followed by RecoverFromFiles must yield exactly the
// pre-operation or post-operation clean state — never a third state. The
// error action additionally checks the write-ahead invariant: after an
// injected error, the in-memory state and a fresh recovery from disk agree.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/file_io.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/sharded_system.h"
#include "eve/view_pool_io.h"
#include "federation/membership.h"
#include "mkb/serializer.h"
#include "workload/travel_agency.h"

namespace eve {
namespace {

// Full durable state, rendered to text for bit-identical comparison.
struct Snapshot {
  std::string mkb;
  std::string views;
  std::string federation;
  size_t log_size = 0;
  bool operator==(const Snapshot&) const = default;
};

Snapshot Snap(const EveSystem& system) {
  return Snapshot{SaveMkb(system.mkb()), SaveViews(system),
                  SaveFederation(system), system.change_log().size()};
}

// Two relations under one source so SourceLeaves applies two changes (and
// hits its between-changes failpoint).
const char kExtraMisd[] =
    "SOURCE ExtraIS RELATION Extra1 (Name string, X int)\n"
    "SOURCE ExtraIS RELATION Extra2 (Name string, Y int)";

using Op = std::function<Status(EveSystem*)>;

// Deterministic federation membership rows for the script: IS4 tracked,
// then suspected after one probe failure, then healed. Absolute tick
// values, so journal replay lands on identical bytes.
federation::SourceMembership Is4Degraded() {
  return federation::OnProbeFailure(federation::MakeHealthy({}, 0), "IS4", 5);
}

// The scenario script: one entry per client-visible operation, covering
// every journaled mutation kind. Kept in lockstep with BuildCleanStates.
// IS4 is degraded while the delete-relation ops run, so their rewritings
// pick up provisional marks that the later heal clears — both sides of the
// degraded-mode bookkeeping ride through journal replay.
std::vector<Op> ScriptOps() {
  return {
      [](EveSystem* s) { return s->ExtendMkb(kExtraMisd); },
      [](EveSystem* s) { return s->RegisterViewText(AsiaCustomerSql()); },
      [](EveSystem* s) {
        return s->SetSourceMembership("ExtraIS",
                                      federation::MakeHealthy({}, 0));
      },
      [](EveSystem* s) { return s->SetSourceMembership("IS4", Is4Degraded()); },
      [](EveSystem* s) {
        return s->ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
            .status();
      },
      [](EveSystem* s) { return s->RetractConstraint("JC6"); },
      [](EveSystem* s) {
        return s
            ->ApplyChanges({CapabilityChange::DeleteRelation("Hotels"),
                            CapabilityChange::DeleteRelation("Tour")},
                           /*transactional=*/true)
            .status();
      },
      [](EveSystem* s) { return s->SourceLeaves("ExtraIS").status(); },
      // Point-in-time rollback to the version RetractConstraint committed
      // (v5: RentACar deleted, JC6 retracted, everything later restored).
      // Journaled as kRollback and committed as a NEW version, so a crash
      // on either side of the journal append recovers to pre or post.
      [](EveSystem* s) { return s->RollbackToVersion(5).status(); },
      [](EveSystem* s) {
        return s->SetSourceMembership(
            "IS4", federation::OnProbeSuccess(Is4Degraded(), "IS4", 9));
      },
      [](EveSystem* s) {
        return s->SetViewState("CustomerPassengersAsia",
                               ViewState::kDisabled);
      },
  };
}

EveSystem MakeBaseSystem() {
  EveSystem system(MakeTravelAgencyMkb().MoveValue());
  EXPECT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  return system;
}

// Runs the script cleanly (no journal, no failpoints), recording the state
// after every ATOMIC durable step. `ranges[i]` is the inclusive range of
// state indices a crash inside op i may legally recover to: exactly the
// pre-op and post-op states. Every op is atomic — including SourceLeaves,
// whose multi-relation cascade commits as one batch.
void BuildCleanStates(EveSystem* system, std::vector<Snapshot>* states,
                      std::vector<std::pair<size_t, size_t>>* ranges) {
  states->push_back(Snap(*system));
  const std::vector<Op> ops = ScriptOps();
  for (size_t i = 0; i < ops.size(); ++i) {
    const size_t before = states->size() - 1;
    const Status status = ops[i](system);
    ASSERT_TRUE(status.ok()) << "clean op " << i << ": " << status;
    states->push_back(Snap(*system));
    ranges->push_back({before, states->size() - 1});
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().Reset();
    const std::string base =
        ::testing::TempDir() + "crash_recovery_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    checkpoint_path_ = base + ".ckpt";
    journal_path_ = base + ".wal";
    RemoveFiles();
  }
  void TearDown() override {
    Failpoints::Instance().Reset();
    RemoveFiles();
  }
  void RemoveFiles() {
    std::remove(checkpoint_path_.c_str());
    std::remove((checkpoint_path_ + ".tmp").c_str());
    std::remove(journal_path_.c_str());
  }

  // Checkpoints a fresh base system and reattaches a fresh journal.
  EveSystem StartJournaledRun(std::optional<Journal>* journal) {
    RemoveFiles();
    EveSystem system = MakeBaseSystem();
    EXPECT_TRUE(WriteCheckpoint(system, checkpoint_path_).ok());
    Result<Journal> opened = Journal::Open(journal_path_);
    EXPECT_TRUE(opened.ok()) << opened.status();
    *journal = opened.MoveValue();
    system.AttachJournal(&**journal);
    return system;
  }

  // How often each site fires during one journaled run of the script.
  std::map<std::string, uint64_t> MeasureHits() {
    std::optional<Journal> journal;
    EveSystem system = StartJournaledRun(&journal);
    Failpoints::Instance().Reset();
    for (const Op& op : ScriptOps()) {
      EXPECT_TRUE(op(&system).ok());
    }
    std::map<std::string, uint64_t> hits;
    for (const std::string& site : Failpoints::KnownSites()) {
      hits[site] = Failpoints::Instance().HitCount(site);
    }
    Failpoints::Instance().Reset();
    return hits;
  }

  std::string checkpoint_path_;
  std::string journal_path_;
};

TEST_F(CrashRecoveryTest, CrashAtEverySiteRecoversToPreOrPostState) {
  std::vector<Snapshot> states;
  std::vector<std::pair<size_t, size_t>> ranges;
  {
    EveSystem clean = MakeBaseSystem();
    BuildCleanStates(&clean, &states, &ranges);
  }
  if (HasFailure()) return;
  const std::map<std::string, uint64_t> hits = MeasureHits();

  size_t crash_runs = 0;
  for (const std::string& site : Failpoints::KnownSites()) {
    for (uint64_t n = 1; n <= hits.at(site); ++n) {
      SCOPED_TRACE(site + " @ hit " + std::to_string(n));
      std::optional<Journal> journal;
      EveSystem system = StartJournaledRun(&journal);
      Failpoints::Instance().Reset();
      Failpoints::Instance().Arm(site, FailpointAction::kCrash,
                                 static_cast<int>(n));
      const std::vector<Op> ops = ScriptOps();
      size_t crashed_op = ops.size();
      for (size_t i = 0; i < ops.size(); ++i) {
        try {
          const Status status = ops[i](&system);
          ASSERT_TRUE(status.ok()) << "op " << i << ": " << status;
        } catch (const SimulatedCrash&) {
          crashed_op = i;
          break;
        }
      }
      Failpoints::Instance().Reset();
      ASSERT_LT(crashed_op, ops.size()) << "armed crash never fired";
      ++crash_runs;

      RecoveryReport report;
      const Result<EveSystem> recovered =
          RecoverFromFiles(checkpoint_path_, journal_path_, &report);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      const Snapshot got = Snap(recovered.value());
      const auto [lo, hi] = ranges[crashed_op];
      bool matched = false;
      for (size_t s = lo; s <= hi && !matched; ++s) {
        matched = got == states[s];
      }
      EXPECT_TRUE(matched)
          << "recovered state after crashing op " << crashed_op
          << " is neither its pre- nor post-state\n"
          << report.ToString();
    }
  }
  // The script must genuinely exercise the fault matrix.
  EXPECT_GE(crash_runs, 30u);
}

TEST_F(CrashRecoveryTest, InjectedErrorKeepsMemoryAndJournalInAgreement) {
  std::vector<Snapshot> states;
  std::vector<std::pair<size_t, size_t>> ranges;
  {
    EveSystem clean = MakeBaseSystem();
    BuildCleanStates(&clean, &states, &ranges);
  }
  if (HasFailure()) return;
  const std::map<std::string, uint64_t> hits = MeasureHits();

  for (const std::string& site : Failpoints::KnownSites()) {
    for (uint64_t n = 1; n <= hits.at(site); ++n) {
      SCOPED_TRACE(site + " @ hit " + std::to_string(n));
      std::optional<Journal> journal;
      EveSystem system = StartJournaledRun(&journal);
      Failpoints::Instance().Reset();
      Failpoints::Instance().Arm(site, FailpointAction::kError,
                                 static_cast<int>(n));
      const std::vector<Op> ops = ScriptOps();
      size_t failed_op = ops.size();
      for (size_t i = 0; i < ops.size(); ++i) {
        const Status status = ops[i](&system);
        if (!status.ok()) {
          EXPECT_NE(status.message().find("failpoint"), std::string::npos)
              << "unexpected real failure: " << status;
          failed_op = i;
          break;
        }
      }
      Failpoints::Instance().Reset();
      ASSERT_LT(failed_op, ops.size()) << "armed error never fired";

      // The surviving in-memory state must be the pre- or post-state of the
      // failed op...
      const Snapshot live = Snap(system);
      const auto [lo, hi] = ranges[failed_op];
      bool matched = false;
      for (size_t s = lo; s <= hi && !matched; ++s) {
        matched = live == states[s];
      }
      EXPECT_TRUE(matched) << "live state after failing op " << failed_op
                           << " is neither its pre- nor post-state";
      // ...and the journal must describe exactly that state (write-ahead
      // invariant: memory never runs ahead of or behind the disk).
      const Result<EveSystem> recovered =
          RecoverFromFiles(checkpoint_path_, journal_path_);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      EXPECT_TRUE(Snap(recovered.value()) == live)
          << "recovery disagrees with the live system after an injected "
             "error";
    }
  }
}

TEST_F(CrashRecoveryTest, TornFinalRecordRecoversToLastCompleteRecord) {
  std::optional<Journal> journal;
  EveSystem system = StartJournaledRun(&journal);
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  const Snapshot after_first = Snap(system);

  // Crash halfway through writing the next record's frame.
  Failpoints::Instance().Arm(fp::kJournalAppendPartialWrite,
                             FailpointAction::kCrash);
  EXPECT_THROW(
      (void)system.ApplyChange(CapabilityChange::DeleteRelation("Hotels")),
      SimulatedCrash);
  Failpoints::Instance().Reset();

  RecoveryReport report;
  const Result<EveSystem> recovered =
      RecoverFromFiles(checkpoint_path_, journal_path_, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_TRUE(Snap(recovered.value()) == after_first)
      << "torn tail must be dropped, recovering to the last complete record";
}

TEST_F(CrashRecoveryTest, CrashDuringCheckpointKeepsOldCheckpointUsable) {
  for (const char* site :
       {fp::kAtomicWriteAfterTemp, fp::kAtomicWriteBeforeRename}) {
    SCOPED_TRACE(site);
    std::optional<Journal> journal;
    EveSystem system = StartJournaledRun(&journal);
    ASSERT_TRUE(
        system.ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
            .ok());
    const Snapshot after_change = Snap(system);

    // Crash inside the atomic rewrite of the checkpoint: the old checkpoint
    // file must survive untouched, and checkpoint + journal still recover
    // the post-change state.
    Failpoints::Instance().Arm(site, FailpointAction::kCrash);
    EXPECT_THROW((void)WriteCheckpoint(system, checkpoint_path_),
                 SimulatedCrash);
    Failpoints::Instance().Reset();

    const Result<EveSystem> recovered =
        RecoverFromFiles(checkpoint_path_, journal_path_);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_TRUE(Snap(recovered.value()) == after_change);

    // The error action must leave the destination untouched as well.
    const std::string before_bytes =
        ReadFileToString(checkpoint_path_).MoveValue();
    Failpoints::Instance().Arm(site, FailpointAction::kError);
    EXPECT_FALSE(WriteCheckpoint(system, checkpoint_path_).ok());
    Failpoints::Instance().Reset();
    EXPECT_EQ(ReadFileToString(checkpoint_path_).MoveValue(), before_bytes);
  }
}

TEST_F(CrashRecoveryTest, RecoveryItselfSurvivesInjectedLoadFaults) {
  std::optional<Journal> journal;
  EveSystem system = StartJournaledRun(&journal);
  ASSERT_TRUE(system.RegisterViewText(AsiaCustomerSql()).ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  const Snapshot expected = Snap(system);

  for (const char* site :
       {fp::kCheckpointLoadValidate, fp::kViewPoolLoadValidate}) {
    SCOPED_TRACE(site);
    // Injected error: recovery reports it and changes nothing on disk.
    Failpoints::Instance().Arm(site, FailpointAction::kError);
    EXPECT_FALSE(RecoverFromFiles(checkpoint_path_, journal_path_).ok());
    Failpoints::Instance().Reset();
    // Crash during recovery: recovery is read-only, so simply retry.
    Failpoints::Instance().Arm(site, FailpointAction::kCrash);
    EXPECT_THROW((void)RecoverFromFiles(checkpoint_path_, journal_path_),
                 SimulatedCrash);
    Failpoints::Instance().Reset();
    const Result<EveSystem> retried =
        RecoverFromFiles(checkpoint_path_, journal_path_);
    ASSERT_TRUE(retried.ok()) << retried.status();
    EXPECT_TRUE(Snap(retried.value()) == expected);
  }
}

TEST_F(CrashRecoveryTest, CheckpointResetsJournalAndRecoveryStillAgrees) {
  std::optional<Journal> journal;
  EveSystem system = StartJournaledRun(&journal);
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("RentACar")).ok());
  // Checkpoint subsumes the journal so far.
  ASSERT_TRUE(WriteCheckpoint(system, checkpoint_path_).ok());
  ASSERT_TRUE(journal->Reset().ok());
  ASSERT_TRUE(
      system.ApplyChange(CapabilityChange::DeleteRelation("Hotels")).ok());

  const Result<EveSystem> recovered =
      RecoverFromFiles(checkpoint_path_, journal_path_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(Snap(recovered.value()) == Snap(system));
}

// Every site in the catalog is exercised by this suite: either it fires
// during the script runs above, or a dedicated test covers it.
TEST_F(CrashRecoveryTest, EveryKnownSiteIsExercised) {
  std::vector<Snapshot> states;
  std::vector<std::pair<size_t, size_t>> ranges;
  {
    EveSystem clean = MakeBaseSystem();
    BuildCleanStates(&clean, &states, &ranges);
  }
  if (HasFailure()) return;
  const std::map<std::string, uint64_t> hits = MeasureHits();

  const std::set<std::string> dedicated = {
      fp::kAtomicWriteAfterTemp,    // CrashDuringCheckpoint...
      fp::kAtomicWriteBeforeRename,
      fp::kCheckpointLoadValidate,  // RecoveryItselfSurvives...
      fp::kViewPoolLoadValidate,
      // Transport sites need a probe in flight; federation_test drives them
      // (TransportFailpoints*) through FederationMonitor.
      fp::kFederationProbeSend,
      fp::kFederationProbeTimeout,
      fp::kFederationProbeSlow,
      fp::kFederationProbeCorrupt,
      fp::kFederationProbeFlap,
      // The script's deletions affect no registered view, so the per-view
      // fan-out and the admission queue never run here; admission_test
      // (AdmissionFailpointTest*) arms each of these in both modes.
      fp::kSyncViewStart,
      fp::kSyncDeadlineExpired,
      fp::kAdmissionEnqueue,
      fp::kAdmissionDrain,
      // The script never scrubs; versioning_test (ScrubFailpoint*) arms the
      // scrub site in both modes.
      fp::kVersionScrub,
      // The sharded commit/publish/checkpoint windows are exercised by the
      // ShardedCrashRecoveryTest suite below against
      // RecoverShardedFromFiles.
      fp::kShardedCommitShard,
      fp::kShardedPublish,
      fp::kShardedCheckpointManifest,
      fp::kShardedJournalReset,
      // The network front end only exists inside eved; net_server_test
      // (ServerFailpoint*) arms each site in error mode against a live
      // server, and the eved crash/RECOVER shell test covers crash mode.
      fp::kNetAccept,
      fp::kNetSessionStart,
      fp::kNetFrameRead,
      fp::kNetFrameWrite,
      fp::kNetDrain,
      fp::kNetShutdown,
      // Replication sites only fire inside a clustered eved;
      // replication_test (ReplicationFailpoint*) arms them against live
      // in-process nodes, and bench_repl's chaos matrix covers crash mode
      // across real processes.
      fp::kReplHello,
      fp::kReplSnapshotRender,
      fp::kReplShipRecord,
      fp::kReplApplyRecord,
      fp::kReplAckSend,
      fp::kReplPromote,
  };
  for (const std::string& site : Failpoints::KnownSites()) {
    if (dedicated.count(site) > 0) continue;
    EXPECT_GT(hits.at(site), 0u)
        << "site " << site << " is never hit by the scenario script; "
        << "extend ScriptOps so its crash/error behavior is tested";
  }
}

// --- Sharded crash recovery -------------------------------------------------
//
// The same crash-at-every-site identity, against ShardedEveSystem and its
// per-shard journals: a crash at ANY hit of the sharded commit, publish
// and checkpoint sites must recover (RecoverShardedFromFiles, which
// applies the cross-shard barrier) to exactly the pre- or post-state of
// the interrupted op on EVERY shard — never a mixed fan-out.

using ShardedOp = std::function<Status(ShardedEveSystem*)>;

std::string SnapSharded(const ShardedEveSystem& system) {
  std::string out;
  for (size_t i = 0; i < system.shard_count(); ++i) {
    out += "==== shard " + std::to_string(i) + "\n" +
           SaveMkb(system.shard(i).mkb()) + SaveViews(system.shard(i)) +
           "log " + std::to_string(system.shard(i).change_log().size()) +
           "\n";
  }
  return out;
}

constexpr size_t kShardCount = 4;

ShardedEveSystem MakeShardedBase() {
  ShardedEveSystem system(MakeTravelAgencyMkb().MoveValue(), {}, kShardCount);
  EXPECT_TRUE(system.RegisterViewText(CustomerPassengersAsiaSql()).ok());
  return system;
}

// One entry per client-visible operation, covering every sharded crash
// window: cross-shard fan-out commits, snapshot publication, batch
// brackets, and the checkpoint manifest/reset protocol.
std::vector<ShardedOp> ShardedScriptOps(const std::string& ckpt_base) {
  return {
      [](ShardedEveSystem* s) { return s->ExtendMkb(kExtraMisd); },
      [](ShardedEveSystem* s) {
        return s->RegisterViewText(AsiaCustomerSql());
      },
      [](ShardedEveSystem* s) {
        return s->ApplyChange(CapabilityChange::DeleteRelation("RentACar"))
            .status();
      },
      [](ShardedEveSystem* s) { return s->RetractConstraint("JC6"); },
      [ckpt_base](ShardedEveSystem* s) {
        return s->WriteShardedCheckpoint(ckpt_base);
      },
      [](ShardedEveSystem* s) {
        return s
            ->ApplyChanges({CapabilityChange::DeleteRelation("Hotels"),
                            CapabilityChange::DeleteRelation("Tour")})
            .status();
      },
      [](ShardedEveSystem* s) {
        return s->SetViewState("CustomerPassengersAsia",
                               ViewState::kDisabled);
      },
  };
}

class ShardedCrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().Reset();
    const std::string base =
        ::testing::TempDir() + "sharded_crash_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ckpt_base_ = base + ".ckpt";
    wal_base_ = base + ".wal";
    RemoveFiles();
  }
  void TearDown() override {
    Failpoints::Instance().Reset();
    RemoveFiles();
  }
  void RemoveFiles() {
    std::remove((ckpt_base_ + ".manifest").c_str());
    std::remove((ckpt_base_ + ".manifest.tmp").c_str());
    for (size_t i = 0; i < kShardCount; ++i) {
      const std::string suffix = ".shard" + std::to_string(i);
      std::remove((wal_base_ + suffix).c_str());
      std::remove((wal_base_ + suffix + ".tmp").c_str());
      for (uint64_t g = 1; g <= 4; ++g) {
        std::remove(
            (ckpt_base_ + suffix + ".g" + std::to_string(g)).c_str());
      }
    }
  }

  // Bootstraps the durable pair: base system, journals, and the initial
  // checkpoint the journals replay on top of (the constructor-seeded MKB
  // is not itself journaled).
  ShardedEveSystem StartJournaledRun() {
    RemoveFiles();
    ShardedEveSystem system = MakeShardedBase();
    EXPECT_TRUE(system.AttachJournals(wal_base_).ok());
    EXPECT_TRUE(system.WriteShardedCheckpoint(ckpt_base_).ok());
    return system;
  }

  // The clean per-op pre/post states (no journals, no faults).
  void BuildCleanStates(std::vector<std::string>* states) {
    ShardedEveSystem clean = MakeShardedBase();
    states->push_back(SnapSharded(clean));
    // The clean pass must checkpoint somewhere real but disposable.
    const std::string scratch = ckpt_base_ + ".clean";
    for (const ShardedOp& op : ShardedScriptOps(scratch)) {
      ASSERT_TRUE(op(&clean).ok());
      states->push_back(SnapSharded(clean));
    }
    for (size_t i = 0; i < kShardCount; ++i) {
      for (uint64_t g = 1; g <= 4; ++g) {
        std::remove((scratch + ".shard" + std::to_string(i) + ".g" +
                     std::to_string(g))
                        .c_str());
      }
    }
    std::remove((scratch + ".manifest").c_str());
  }

  // Hits per sharded site during one journaled run.
  std::map<std::string, uint64_t> MeasureHits() {
    ShardedEveSystem system = StartJournaledRun();
    Failpoints::Instance().Reset();
    for (const ShardedOp& op : ShardedScriptOps(ckpt_base_)) {
      EXPECT_TRUE(op(&system).ok());
    }
    std::map<std::string, uint64_t> hits;
    for (const char* site : kShardedSites) {
      hits[site] = Failpoints::Instance().HitCount(site);
    }
    Failpoints::Instance().Reset();
    return hits;
  }

  static constexpr const char* kShardedSites[] = {
      fp::kShardedCommitShard,
      fp::kShardedPublish,
      fp::kShardedCheckpointManifest,
      fp::kShardedJournalReset,
  };

  std::string ckpt_base_;
  std::string wal_base_;
};

constexpr const char* ShardedCrashRecoveryTest::kShardedSites[];

TEST_F(ShardedCrashRecoveryTest, CrashAtEverySiteRecoversToPreOrPostState) {
  std::vector<std::string> states;
  BuildCleanStates(&states);
  if (HasFailure()) return;
  const std::map<std::string, uint64_t> hits = MeasureHits();

  size_t crash_runs = 0;
  for (const char* site : kShardedSites) {
    ASSERT_GT(hits.at(site), 0u) << site << " never fires in the script";
    for (uint64_t n = 1; n <= hits.at(site); ++n) {
      SCOPED_TRACE(std::string(site) + " @ hit " + std::to_string(n));
      ShardedEveSystem system = StartJournaledRun();
      Failpoints::Instance().Reset();
      Failpoints::Instance().Arm(site, FailpointAction::kCrash,
                                 static_cast<int>(n));
      const std::vector<ShardedOp> ops = ShardedScriptOps(ckpt_base_);
      size_t crashed_op = ops.size();
      for (size_t i = 0; i < ops.size(); ++i) {
        try {
          const Status status = ops[i](&system);
          ASSERT_TRUE(status.ok()) << "op " << i << ": " << status;
        } catch (const SimulatedCrash&) {
          crashed_op = i;
          break;
        }
      }
      Failpoints::Instance().Reset();
      ASSERT_LT(crashed_op, ops.size()) << "armed crash never fired";
      ++crash_runs;

      RecoveryReport report;
      const Result<ShardedEveSystem> recovered =
          ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_,
                                                    &report);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      const std::string got = SnapSharded(recovered.value());
      EXPECT_TRUE(got == states[crashed_op] || got == states[crashed_op + 1])
          << "recovered state after crashing op " << crashed_op
          << " is neither its pre- nor post-state\n"
          << report.ToString();
    }
  }
  EXPECT_GE(crash_runs, 12u);
}

TEST_F(ShardedCrashRecoveryTest, InjectedErrorsRecoverConsistently) {
  std::vector<std::string> states;
  BuildCleanStates(&states);
  if (HasFailure()) return;
  const std::map<std::string, uint64_t> hits = MeasureHits();

  for (const char* site : kShardedSites) {
    for (uint64_t n = 1; n <= hits.at(site); ++n) {
      SCOPED_TRACE(std::string(site) + " @ hit " + std::to_string(n));
      ShardedEveSystem system = StartJournaledRun();
      Failpoints::Instance().Reset();
      Failpoints::Instance().Arm(site, FailpointAction::kError,
                                 static_cast<int>(n));
      const std::vector<ShardedOp> ops = ShardedScriptOps(ckpt_base_);
      size_t failed_op = ops.size();
      for (size_t i = 0; i < ops.size(); ++i) {
        const Status status = ops[i](&system);
        if (!status.ok()) {
          EXPECT_NE(status.message().find("failpoint"), std::string::npos)
              << "unexpected real failure: " << status;
          failed_op = i;
          break;
        }
      }
      Failpoints::Instance().Reset();
      ASSERT_LT(failed_op, ops.size()) << "armed error never fired";

      // Recovery from the journals must land on the failed op's pre- or
      // post-state. (The live system may be poisoned — a mid-fan-out
      // error legitimately leaves the replicas diverged until exactly
      // this recovery; when it is NOT poisoned, it must agree with disk.)
      const Result<ShardedEveSystem> recovered =
          ShardedEveSystem::RecoverShardedFromFiles(ckpt_base_, wal_base_);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      const std::string got = SnapSharded(recovered.value());
      EXPECT_TRUE(got == states[failed_op] || got == states[failed_op + 1])
          << "recovered state after failing op " << failed_op
          << " is neither its pre- nor post-state";
      if (!system.poisoned()) {
        EXPECT_EQ(got, SnapSharded(system))
            << "recovery disagrees with the unpoisoned live system";
      }
    }
  }
}

}  // namespace
}  // namespace eve
