// eved: the EVE network daemon.
//
// Serves the full evectl statement language to concurrent TCP clients over
// the framed wire protocol (net/protocol.h). Statement semantics, output
// bytes and failure modes are identical to a local evectl run — the same
// net::Console executes both.
//
// Usage:
//   eved [--host <addr>] [--port <n>] [--port-file <path>]
//        [--workers <n>] [--max-sessions <n>] [--max-pending <n>]
//        [--idle-timeout-micros <n>] [--drain-timeout-micros <n>]
//        [--init <script>]
//        [--node-id <id> --cluster <n1=h:p,...> --data-dir <dir>
//         [--replica-of <id>] [--lease-micros <n>] [--heartbeat-micros <n>]
//         [--ack-replicas <n>] [--ack-timeout-micros <n>]]
//
//   --ack-replicas is a floor, not the exact quorum: a non-zero value is
//   clamped UP to floor(cluster/2) so the acked set intersects every
//   election vote majority (0 opts out of semi-sync entirely).
//        [--metrics-port <n> [--metrics-host <addr>]]
//
//   --port 0 (the default) binds an ephemeral port; --port-file writes the
//   chosen port as a decimal line once the server is listening, so test
//   harnesses can rendezvous without racing.
//   --init runs a script through the console BEFORE serving (e.g. LOAD
//   MISD + CREATE VIEW + JOURNAL bring-up); any failure aborts startup.
//
// Replicated mode (--node-id + --cluster + --data-dir, docs/REPLICATION.md):
//   the node RECOVERs from <data-dir>/checkpoint + <data-dir>/wal, attaches
//   the WAL, and joins the cluster — as the journal-shipping primary when
//   --replica-of is absent, otherwise as a replica following that node
//   (with automatic failover either way). --metrics-port serves the
//   plaintext /metrics document (also available without a cluster).
//
// Lifecycle: SIGTERM or SIGINT begins a graceful drain — stop accepting,
// shed statements that have not started, finish in-flight ones, flush
// journaled state (every mutation was already journaled synchronously at
// commit), close sessions — then the process exits 0. A second signal
// forces an immediate stop. An armed crash-mode failpoint (EVE_FAILPOINTS)
// that fires anywhere in the serving path stops the server abruptly and
// exits 3, leaving durable state for RECOVER — exactly like evectl.
//
// Exit status: 0 = clean drain/stop; 1 = failed statement in --init;
// 2 = usage/startup problem; 3 = simulated crash.

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/failpoint.h"
#include "net/console.h"
#include "net/metrics.h"
#include "net/replication.h"
#include "net/server.h"

namespace eve {
namespace {

// Signal flag, written by the handler, polled by the main thread.
std::atomic<int> g_signals{0};

void OnSignal(int) { g_signals.fetch_add(1); }

// Serving thousands of sessions needs thousands of fds; lift the soft
// limit to the hard limit so the default 1024 does not cap the server.
void RaiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

int Main(int argc, char** argv) {
  net::ServerOptions options;
  net::ReplicationOptions repl;
  std::string cluster_spec;
  uint16_t metrics_port = 0;
  std::string metrics_host = "127.0.0.1";
  std::string port_file;
  std::string init_script;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--workers" && has_value) {
      options.worker_threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-sessions" && has_value) {
      options.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-pending" && has_value) {
      options.max_pending_per_session =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--idle-timeout-micros" && has_value) {
      options.idle_timeout_micros =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--drain-timeout-micros" && has_value) {
      options.drain_timeout_micros =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--init" && has_value) {
      init_script = argv[++i];
    } else if (arg == "--node-id" && has_value) {
      repl.node_id = argv[++i];
    } else if (arg == "--cluster" && has_value) {
      cluster_spec = argv[++i];
    } else if (arg == "--replica-of" && has_value) {
      repl.primary_of = argv[++i];
    } else if (arg == "--data-dir" && has_value) {
      repl.data_dir = argv[++i];
    } else if (arg == "--lease-micros" && has_value) {
      repl.lease_micros = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--heartbeat-micros" && has_value) {
      repl.heartbeat_micros = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--ack-replicas" && has_value) {
      repl.ack_replicas = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--ack-timeout-micros" && has_value) {
      repl.ack_timeout_micros = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--metrics-port" && has_value) {
      metrics_port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--metrics-host" && has_value) {
      metrics_host = argv[++i];
    } else {
      std::cerr << "usage: eved [--host <addr>] [--port <n>] "
                   "[--port-file <path>] [--workers <n>] "
                   "[--max-sessions <n>] [--max-pending <n>] "
                   "[--idle-timeout-micros <n>] "
                   "[--drain-timeout-micros <n>] [--init <script>] "
                   "[--node-id <id> --cluster <spec> --data-dir <dir> "
                   "[--replica-of <id>] [--lease-micros <n>] "
                   "[--heartbeat-micros <n>] [--ack-replicas <n>] "
                   "[--ack-timeout-micros <n>]] "
                   "[--metrics-port <n>] [--metrics-host <addr>]\n";
      return 2;
    }
  }
  RaiseFdLimit();
  const bool replicated = !repl.node_id.empty() || !cluster_spec.empty();
  if (replicated &&
      (repl.node_id.empty() || cluster_spec.empty() ||
       repl.data_dir.empty())) {
    std::cerr << "error: replicated mode needs --node-id, --cluster and "
                 "--data-dir together\n";
    return 2;
  }
  if (replicated && !init_script.empty()) {
    std::cerr << "error: --init is not supported in replicated mode (state "
                 "comes from --data-dir recovery and the primary)\n";
    return 2;
  }
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status status = Failpoints::Instance().ArmFromSpec(spec);
    if (!status.ok()) {
      std::cerr << "error: bad EVE_FAILPOINTS: " << status << "\n";
      return 2;
    }
  }

  if (replicated) {
    Result<std::map<std::string, net::NodeAddress>> cluster =
        net::ParseCluster(cluster_spec);
    if (!cluster.ok()) {
      std::cerr << "error: bad --cluster: " << cluster.status() << "\n";
      return 2;
    }
    repl.cluster = cluster.MoveValue();
    net::ReplicatedNodeOptions node_options;
    node_options.server = options;
    node_options.repl = std::move(repl);
    node_options.metrics_port = metrics_port;
    node_options.metrics_host = metrics_host;
    net::ReplicatedNode node;
    const Status started = node.Start(node_options);
    if (!started.ok()) {
      std::cerr << "error: " << started << "\n";
      return 2;
    }
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << node.port() << "\n";
      if (!out) {
        std::cerr << "error: cannot write " << port_file << "\n";
        return 2;
      }
    }
    std::cout << "eved node " << node_options.repl.node_id << " ("
              << net::ReplRoleToString(node.hub().role()) << ", epoch "
              << node.hub().epoch() << ") listening on " << options.host
              << ":" << node.port();
    if (node.metrics_port() != 0) {
      std::cout << ", metrics on " << metrics_host << ":"
                << node.metrics_port();
    }
    std::cout << std::endl;

    struct sigaction action{};
    action.sa_handler = OnSignal;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    int handled_signals = 0;
    while (!node.stopped()) {
      const int seen = g_signals.load();
      if (seen > handled_signals) {
        handled_signals = seen;
        if (seen == 1) {
          std::cout << "eved draining (signal)" << std::endl;
          node.BeginDrain();
        } else {
          std::cout << "eved stopping (repeated signal)" << std::endl;
          node.Stop();
        }
      }
      usleep(20'000);
    }
    node.Stop();  // join the agent/metrics threads
    node.WaitUntilStopped();
    const std::string crashed = node.crashed_site();
    if (!crashed.empty()) {
      std::cerr << "simulated crash at failpoint " << crashed << "\n";
      return 3;
    }
    std::cout << "eved exited cleanly" << std::endl;
    return 0;
  }

  net::Console console;
  if (!init_script.empty()) {
    std::ifstream in(init_script);
    if (!in) {
      std::cerr << "error: cannot open " << init_script << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    for (const net::Statement& statement :
         net::SplitStatements(buffer.str())) {
      bool ok = false;
      try {
        ok = console.Run(statement.text, std::cout, std::cerr);
      } catch (const SimulatedCrash& crash) {
        std::cerr << "simulated crash at failpoint " << crash.site() << "\n";
        return 3;
      }
      if (!ok) {
        std::cerr << init_script << ":" << statement.line
                  << ": error: init statement failed: " << statement.text
                  << "\n";
        return 1;
      }
    }
  }

  net::Server server(&console, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started << "\n";
    return 2;
  }
  std::unique_ptr<net::MetricsServer> metrics;
  if (metrics_port != 0) {
    metrics = std::make_unique<net::MetricsServer>(
        metrics_host, metrics_port, [&server, &console] {
          return net::RenderMetricsText(server, console, nullptr);
        });
    const Status metrics_started = metrics->Start();
    if (!metrics_started.ok()) {
      std::cerr << "error: " << metrics_started << "\n";
      return 2;
    }
    std::cout << "eved metrics on " << metrics_host << ":"
              << metrics->port() << std::endl;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
    if (!out) {
      std::cerr << "error: cannot write " << port_file << "\n";
      return 2;
    }
  }
  std::cout << "eved listening on " << options.host << ":" << server.port()
            << std::endl;

  struct sigaction action{};
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);  // dead peers surface as write errors, not death

  // Tick until teardown: the first signal starts a graceful drain, a
  // second forces an immediate stop, and a crash-mode failpoint stops the
  // server on its own (noticed here through stopped()).
  int handled_signals = 0;
  while (!server.stopped()) {
    const int seen = g_signals.load();
    if (seen > handled_signals) {
      handled_signals = seen;
      if (seen == 1) {
        std::cout << "eved draining (signal)" << std::endl;
        server.BeginDrain();
      } else {
        std::cout << "eved stopping (repeated signal)" << std::endl;
        server.Stop();
      }
    }
    usleep(20'000);  // signal latency without busy-waiting
  }
  server.WaitUntilStopped();
  if (metrics != nullptr) metrics->Stop();
  const std::string crashed = server.crashed_site();
  if (!crashed.empty()) {
    std::cerr << "simulated crash at failpoint " << crashed << "\n";
    return 3;
  }
  std::cout << "eved exited cleanly" << std::endl;
  return 0;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
