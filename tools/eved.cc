// eved: the EVE network daemon.
//
// Serves the full evectl statement language to concurrent TCP clients over
// the framed wire protocol (net/protocol.h). Statement semantics, output
// bytes and failure modes are identical to a local evectl run — the same
// net::Console executes both.
//
// Usage:
//   eved [--host <addr>] [--port <n>] [--port-file <path>]
//        [--workers <n>] [--max-sessions <n>] [--max-pending <n>]
//        [--idle-timeout-micros <n>] [--drain-timeout-micros <n>]
//        [--init <script>]
//
//   --port 0 (the default) binds an ephemeral port; --port-file writes the
//   chosen port as a decimal line once the server is listening, so test
//   harnesses can rendezvous without racing.
//   --init runs a script through the console BEFORE serving (e.g. LOAD
//   MISD + CREATE VIEW + JOURNAL bring-up); any failure aborts startup.
//
// Lifecycle: SIGTERM or SIGINT begins a graceful drain — stop accepting,
// shed statements that have not started, finish in-flight ones, flush
// journaled state (every mutation was already journaled synchronously at
// commit), close sessions — then the process exits 0. A second signal
// forces an immediate stop. An armed crash-mode failpoint (EVE_FAILPOINTS)
// that fires anywhere in the serving path stops the server abruptly and
// exits 3, leaving durable state for RECOVER — exactly like evectl.
//
// Exit status: 0 = clean drain/stop; 1 = failed statement in --init;
// 2 = usage/startup problem; 3 = simulated crash.

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/failpoint.h"
#include "net/console.h"
#include "net/server.h"

namespace eve {
namespace {

// Signal flag, written by the handler, polled by the main thread.
std::atomic<int> g_signals{0};

void OnSignal(int) { g_signals.fetch_add(1); }

// Serving thousands of sessions needs thousands of fds; lift the soft
// limit to the hard limit so the default 1024 does not cap the server.
void RaiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

int Main(int argc, char** argv) {
  net::ServerOptions options;
  std::string port_file;
  std::string init_script;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--workers" && has_value) {
      options.worker_threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-sessions" && has_value) {
      options.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-pending" && has_value) {
      options.max_pending_per_session =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--idle-timeout-micros" && has_value) {
      options.idle_timeout_micros =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--drain-timeout-micros" && has_value) {
      options.drain_timeout_micros =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--init" && has_value) {
      init_script = argv[++i];
    } else {
      std::cerr << "usage: eved [--host <addr>] [--port <n>] "
                   "[--port-file <path>] [--workers <n>] "
                   "[--max-sessions <n>] [--max-pending <n>] "
                   "[--idle-timeout-micros <n>] "
                   "[--drain-timeout-micros <n>] [--init <script>]\n";
      return 2;
    }
  }
  RaiseFdLimit();
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status status = Failpoints::Instance().ArmFromSpec(spec);
    if (!status.ok()) {
      std::cerr << "error: bad EVE_FAILPOINTS: " << status << "\n";
      return 2;
    }
  }

  net::Console console;
  if (!init_script.empty()) {
    std::ifstream in(init_script);
    if (!in) {
      std::cerr << "error: cannot open " << init_script << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    for (const net::Statement& statement :
         net::SplitStatements(buffer.str())) {
      bool ok = false;
      try {
        ok = console.Run(statement.text, std::cout, std::cerr);
      } catch (const SimulatedCrash& crash) {
        std::cerr << "simulated crash at failpoint " << crash.site() << "\n";
        return 3;
      }
      if (!ok) {
        std::cerr << init_script << ":" << statement.line
                  << ": error: init statement failed: " << statement.text
                  << "\n";
        return 1;
      }
    }
  }

  net::Server server(&console, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started << "\n";
    return 2;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
    if (!out) {
      std::cerr << "error: cannot write " << port_file << "\n";
      return 2;
    }
  }
  std::cout << "eved listening on " << options.host << ":" << server.port()
            << std::endl;

  struct sigaction action{};
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);  // dead peers surface as write errors, not death

  // Tick until teardown: the first signal starts a graceful drain, a
  // second forces an immediate stop, and a crash-mode failpoint stops the
  // server on its own (noticed here through stopped()).
  int handled_signals = 0;
  while (!server.stopped()) {
    const int seen = g_signals.load();
    if (seen > handled_signals) {
      handled_signals = seen;
      if (seen == 1) {
        std::cout << "eved draining (signal)" << std::endl;
        server.BeginDrain();
      } else {
        std::cout << "eved stopping (repeated signal)" << std::endl;
        server.Stop();
      }
    }
    usleep(20'000);  // signal latency without busy-waiting
  }
  server.WaitUntilStopped();
  const std::string crashed = server.crashed_site();
  if (!crashed.empty()) {
    std::cerr << "simulated crash at failpoint " << crashed << "\n";
    return 3;
  }
  std::cout << "eved exited cleanly" << std::endl;
  return 0;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
