// evectl: a script-driven console for the EVE/CVS system.
//
// Usage:
//   evectl <script>       run statements from a file
//   evectl -              run statements from stdin
//
// Statements are ';'-terminated:
//   LOAD MISD '<path>';                   -- load IS descriptions (MISD text)
//   SAVE MISD '<path>';                   -- write the current MKB
//   LOAD VIEWS '<path>';                  -- restore a saved view pool
//   SAVE VIEWS '<path>';                  -- persist the view pool
//   SHOW MKB;                             -- dump relations + constraints
//   SHOW HYPERGRAPH;                      -- H(MKB) summary (Fig. 4 style)
//   SHOW VIEWS;                           -- registered views and states
//   SHOW VIEW <name>;                     -- one view's E-SQL text
//   SET SHARDS <n>;                       -- partition the view pool over n
//                                            hash shards; rejected once any
//                                            view is registered, a journal
//                                            is attached or sources are
//                                            tracked (placement is fixed)
//   SHOW SHARD STATS;                     -- per-shard view counts, commits,
//                                            queue depth, version tips
//   CREATE VIEW ... ;                     -- register an E-SQL view
//   DEFINE <MISD statement>;              -- a source publishes a relation
//                                            or constraint (additive)
//   RETRACT <constraint id>;              -- a source withdraws a constraint
//   SET SYNC TOPK <k>;                    -- keep only the k best rewritings
//                                            per view (0 = all); enables
//                                            early termination in CVS
//   SET SYNC BUDGET <n>;                  -- cap candidates pulled per view
//                                            synchronization (0 = no cap)
//   SET SYNC PARALLELISM <n>;             -- threads for batch sync (0/1 =
//                                            sequential; reports identical)
//   SET SYNC WORKBUDGET <n>;              -- per-view logical work budget
//                                            (0 = unlimited): deterministic
//                                            best-under-budget partials
//   SET SYNC DEADLINE <micros>;           -- wall-clock deadline per change
//                                            (0 = none; best effort)
//   SET SYNC WATCHDOG <micros>;           -- real-time backstop that cancels
//                                            a stuck sync (0 = off)
//   SET SYNC QUEUE <n>;                   -- admission queue bound (0 = no
//                                            bound); a full queue sheds the
//                                            newest ENQUEUE with an explicit
//                                            resource-exhausted error
//   ENQUEUE DELETE ...;                   -- admit a capability change into
//   ENQUEUE RENAME ...;                      the bounded sync queue
//   DRAIN;                                -- apply queued changes FIFO, each
//                                            under a fresh deadline
//   SHOW SYNC STATS;                      -- enumeration counters, deadline
//                                            block, per-view truncation list
//                                            and admission counters for the
//                                            last change/preview
//   SET EXECUTOR <strategy>;              -- join/executor strategy for view
//                                            evaluation on every shard:
//                                            NESTED_LOOP, HASH, VECTORIZED
//                                            or AUTO
//   SHOW EXECUTOR STATS;                  -- configured strategy + process-
//                                            wide executor counters (per-
//                                            strategy query counts and
//                                            cartesian fallbacks)
//   PREVIEW DELETE RELATION <name>;       -- what-if: report without applying
//   SYNC DRYRUN DELETE|RENAME ... [AT VERSION <n>];
//                                         -- full what-if synchronization:
//                                            the exact report a commit from
//                                            the tip (or retained version n)
//                                            would produce; commits nothing
//   SHOW VERSIONS;                        -- the copy-on-write version chain
//   SHOW MKB AT VERSION <n>;              -- pin and dump an old MKB
//   SHOW VIEWS AT VERSION <n>;            -- the view pool frozen at n
//   ROLLBACK TO VERSION <n>;              -- restore MKB + views to version
//                                            n, committed as a NEW version
//   SCRUB;                                -- verify the whole version chain
//                                            (checksums, links, view stamps);
//                                            fails on any corruption
//   SHOW SCRUB STATS;                     -- counters of the last SCRUB
//   DELETE RELATION <name>;               -- capability change
//   DELETE ATTRIBUTE <rel>.<attr>;        -- capability change
//   RENAME RELATION <old> TO <new>;       -- capability change
//   RENAME ATTRIBUTE <rel>.<a> TO <b>;    -- capability change
//   TRACK SOURCES;                        -- admit every catalog source to
//                                            federation monitoring (healthy)
//   SHOW SOURCES;                         -- membership table: state,
//                                            breaker, failures, lease left
//   SET SOURCE <name> LEASE <n>;          -- lease length (also renews the
//                                            lease to now + n); auto-tracks
//   SET SOURCE <name> PROBE <n>;          -- probe cadence (next probe at
//                                            now + n); auto-tracks
//   SET SOURCE <name> BREAKER <n>;        -- breaker cooldown; auto-tracks
//   FAULT SOURCE <name> TIMEOUT|SLOW|CORRUPT|FLAP FROM <a> TO <b>;
//                                         -- transport fault for federation
//                                            ticks [a, b)
//   TICK <n>;                             -- advance the federation monitor
//                                            n logical ticks; lease expiry
//                                            departs the source (cascade)
//   JOURNAL '<path>';                     -- attach a write-ahead journal;
//                                            subsequent mutations are durable
//   CHECKPOINT '<path>';                  -- atomically write a checkpoint
//                                            and truncate the journal
//   RECOVER '<ckpt>' '<journal>';         -- rebuild state from checkpoint +
//                                            journal replay (crash recovery)
//   -- comments run to end of line
//
// Every capability change prints the EVE change report (rewritten /
// disabled views, dropped constraints).
//
// The console drives a ShardedEveSystem. At the default SET SHARDS 1 it
// delegates to shard 0 for exact legacy single-system behavior (same
// bytes, same journal format); at higher shard counts mutations fan out
// across the partition and SHOW MKB / SHOW HYPERGRAPH / SHOW VIEWS answer
// from the last published RCU snapshot (one atomic load, no shard locks).
// File persistence, versioning, federation and what-if commands operate on
// the classic single system and require SET SHARDS 1.
//
// Setting EVE_FAILPOINTS (e.g. "eve.apply_change.after_journal=crash") arms
// fault-injection sites; a fired crash site aborts the script with exit
// code 3, leaving on-disk state for a later RECOVER run.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "algebra/executor.h"
#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/str_util.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/sharded_system.h"
#include "eve/view_pool_io.h"
#include "federation/membership.h"
#include "federation/monitor.h"
#include "federation/transport.h"
#include "hypergraph/hypergraph.h"
#include "mkb/serializer.h"

namespace eve {
namespace {

// Splits a script into ';'-terminated statements, honoring single-quoted
// strings, double-quoted identifiers, and "--" comments.
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> statements;
  std::string current;
  for (size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (c == '-' && i + 1 < script.size() && script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      current += ' ';
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      current += c;
      ++i;
      while (i < script.size()) {
        current += script[i];
        if (script[i] == quote) {
          if (quote == '\'' && i + 1 < script.size() &&
              script[i + 1] == '\'') {
            current += script[++i];
          } else {
            break;
          }
        }
        ++i;
      }
      continue;
    }
    if (c == ';') {
      if (!Trim(current).empty()) {
        statements.emplace_back(Trim(current));
      }
      current.clear();
      continue;
    }
    current += c;
  }
  if (!Trim(current).empty()) statements.emplace_back(Trim(current));
  return statements;
}

// One view block extracted from a pinned VIEWS segment (the SaveViews
// format of view_pool_io.h): the name, the state word, and the CREATE VIEW
// statement exactly as the committing version rendered it.
struct PinnedViewBlock {
  std::string name;
  bool active = true;
  std::string definition;  // without the terminating ';'
};

// Parses the view name from "CREATE VIEW <name> ...", handling the
// printer's double-quote escaping for non-plain identifiers.
std::string PinnedViewName(std::string_view definition) {
  constexpr std::string_view kPrefix = "CREATE VIEW ";
  if (definition.substr(0, kPrefix.size()) != kPrefix) return "";
  std::string_view rest = definition.substr(kPrefix.size());
  if (!rest.empty() && rest[0] == '"') {
    std::string name;
    for (size_t i = 1; i < rest.size(); ++i) {
      if (rest[i] == '"') {
        if (i + 1 < rest.size() && rest[i + 1] == '"') {
          name += '"';
          ++i;
        } else {
          return name;
        }
      } else {
        name += rest[i];
      }
    }
    return name;
  }
  const size_t end = rest.find_first_of(" \t\n(");
  return std::string(rest.substr(0, end));
}

// Extracts the view blocks of one shard's pinned VIEWS segment. Reads only
// the snapshot's immutable bytes — no shard lock, no live-state access.
void AppendPinnedViews(const std::string& text,
                       std::vector<PinnedViewBlock>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t header = text.find("-- VIEW ", pos);
    if (header == std::string::npos) break;
    const size_t header_end = text.find('\n', header);
    if (header_end == std::string::npos) break;
    const std::string_view header_rest = Trim(std::string_view(text).substr(
        header + 8, header_end - header - 8));
    size_t next = text.find("-- VIEW ", header_end);
    if (next == std::string::npos) next = text.size();
    std::string body(Trim(std::string_view(text).substr(
        header_end + 1, next - header_end - 1)));
    if (!body.empty() && body.back() == ';') {
      body.pop_back();
      body = std::string(Trim(body));
    }
    PinnedViewBlock block;
    block.active = header_rest.substr(0, 6) != "disabl";
    block.definition = std::move(body);
    block.name = PinnedViewName(block.definition);
    if (!block.name.empty()) out->push_back(std::move(block));
    pos = next;
  }
}

// Splits a statement head into whitespace-separated words (enough for the
// non-SQL commands; CREATE VIEW statements go to the E-SQL parser whole).
std::vector<std::string> Words(const std::string& statement) {
  std::vector<std::string> words;
  std::istringstream is(statement);
  std::string word;
  while (is >> word) words.push_back(word);
  return words;
}

// Strips surrounding single quotes from a path argument.
std::string Unquote(const std::string& word) {
  if (word.size() >= 2 && word.front() == '\'' && word.back() == '\'') {
    return word.substr(1, word.size() - 2);
  }
  return word;
}

class Console {
 public:
  // Returns false when the statement failed.
  bool Run(const std::string& statement) {
    const std::vector<std::string> words = Words(statement);
    if (words.empty()) return true;
    const std::string head = ToLower(words[0]);

    if (head == "create") {
      return Report(sharded_.RegisterViewText(statement), statement);
    }
    if (head == "retract" && words.size() >= 2) {
      return Report(sharded_.RetractConstraint(words[1]), statement);
    }
    if (head == "define") {
      const std::string body(Trim(
          std::string_view(statement).substr(std::string("define").size())));
      return Report(sharded_.ExtendMkb(body), statement);
    }
    if (head == "load" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "MISD")) {
      return LoadMisd(Unquote(words[2]));
    }
    if (head == "save" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "MISD")) {
      return SaveMisd(Unquote(words[2]));
    }
    if (head == "load" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "VIEWS")) {
      return LoadViewPool(Unquote(words[2]));
    }
    if (head == "save" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "VIEWS")) {
      return SaveViewPool(Unquote(words[2]));
    }
    if (head == "journal" && words.size() >= 2) {
      return OpenJournal(Unquote(words[1]));
    }
    if (head == "checkpoint" && words.size() >= 2) {
      return Checkpoint(Unquote(words[1]));
    }
    if (head == "recover" && words.size() >= 3) {
      return Recover(Unquote(words[1]), Unquote(words[2]));
    }
    if (head == "set" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "SHARDS")) {
      return SetShards(words[2]);
    }
    if (head == "set" && words.size() >= 4 &&
        EqualsIgnoreCase(words[1], "SYNC")) {
      return SetSync(words[2], words[3]);
    }
    if (head == "set" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "EXECUTOR")) {
      return SetExecutor(words[2]);
    }
    if (head == "set" && words.size() >= 5 &&
        EqualsIgnoreCase(words[1], "SOURCE")) {
      return SetSource(words[2], words[3], words[4]);
    }
    if (head == "track" && words.size() >= 2 &&
        EqualsIgnoreCase(words[1], "SOURCES")) {
      return TrackSources();
    }
    if (head == "fault" && words.size() >= 8 &&
        EqualsIgnoreCase(words[1], "SOURCE") &&
        EqualsIgnoreCase(words[4], "FROM") &&
        EqualsIgnoreCase(words[6], "TO")) {
      return FaultSource(words[2], words[3], words[5], words[7]);
    }
    if (head == "tick" && words.size() >= 2) {
      return Tick(words[1]);
    }
    if (head == "show") {
      return Show(words);
    }
    if (head == "enqueue" && words.size() >= 4) {
      const std::vector<std::string> rest(words.begin() + 1, words.end());
      const std::string sub = ToLower(rest[0]);
      if (sub == "delete" && rest.size() >= 3) {
        return Enqueue(MakeDelete(rest));
      }
      if (sub == "rename" && rest.size() >= 5 &&
          EqualsIgnoreCase(rest[3], "TO")) {
        return Enqueue(MakeRename(rest));
      }
      std::cerr << "error: ENQUEUE expects DELETE or RENAME\n";
      return false;
    }
    if (head == "drain") {
      return Drain();
    }
    if (head == "delete" && words.size() >= 3) {
      return Change(MakeDelete(words), /*preview=*/false);
    }
    if (head == "rename" && words.size() >= 5 &&
        EqualsIgnoreCase(words[3], "TO")) {
      return Change(MakeRename(words), /*preview=*/false);
    }
    if (head == "sync" && words.size() >= 5 &&
        EqualsIgnoreCase(words[1], "DRYRUN")) {
      return DryRun(std::vector<std::string>(words.begin() + 2, words.end()));
    }
    if (head == "rollback" && words.size() >= 4 &&
        EqualsIgnoreCase(words[1], "TO") &&
        EqualsIgnoreCase(words[2], "VERSION")) {
      return Rollback(words[3]);
    }
    if (head == "scrub") {
      return Scrub();
    }
    if (head == "preview" && words.size() >= 4) {
      const std::vector<std::string> rest(words.begin() + 1, words.end());
      const std::string sub = ToLower(rest[0]);
      if (sub == "delete" && rest.size() >= 3) {
        return Change(MakeDelete(rest), /*preview=*/true);
      }
      if (sub == "rename" && rest.size() >= 5 &&
          EqualsIgnoreCase(rest[3], "TO")) {
        return Change(MakeRename(rest), /*preview=*/true);
      }
      std::cerr << "error: PREVIEW expects DELETE or RENAME\n";
      return false;
    }
    std::cerr << "error: unrecognized statement: " << statement << "\n";
    return false;
  }

 private:
  bool Report(const Status& status, const std::string& context) {
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n  in: " << context << "\n";
      return false;
    }
    return true;
  }

  // Shard 0 of a 1-shard system IS the classic single EveSystem; the
  // commands that predate sharding operate on it directly.
  EveSystem& sys() { return sharded_.shard(0); }

  // Sync tuning knobs apply uniformly to every shard replica.
  template <class Fn>
  void ForEachShard(Fn fn) {
    for (size_t i = 0; i < sharded_.shard_count(); ++i) fn(sharded_.shard(i));
  }

  // File persistence, version-chain, what-if and federation commands have
  // single-system semantics (their formats and state live on one system).
  bool RequireSingleShard(const std::string& what) {
    if (sharded_.shard_count() == 1) return true;
    std::cerr << "error: " << what << " requires SET SHARDS 1 (currently "
              << sharded_.shard_count() << " shards)\n";
    return false;
  }

  bool SetShards(const std::string& value) {
    uint64_t count = 0;
    if (!ParseTicks(value, &count)) return false;
    if (journal_.has_value()) {
      std::cerr << "error: SET SHARDS after JOURNAL is not allowed (journal "
                   "records are placed per shard)\n";
      return false;
    }
    if (!sys().source_membership().empty()) {
      std::cerr << "error: SET SHARDS after TRACK SOURCES is not allowed\n";
      return false;
    }
    const Status status = sharded_.SetShardCount(static_cast<size_t>(count));
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "shards = " << count << "\n";
    return true;
  }

  bool LoadMisd(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Result<Mkb> mkb = LoadMkb(buffer.str());
    if (!mkb.ok()) {
      std::cerr << "error: " << mkb.status() << "\n";
      return false;
    }
    // Rebuilding keeps the configured shard count: SET SHARDS n; LOAD
    // MISD ...; CREATE VIEW ... is the sharded bring-up sequence.
    sharded_ = ShardedEveSystem(mkb.value(), {}, sharded_.shard_count());
    if (journal_.has_value()) sys().AttachJournal(&*journal_);
    std::cout << "loaded " << mkb.value().catalog().NumRelations()
              << " relations, " << mkb.value().join_constraints().size()
              << " join constraints, "
              << mkb.value().function_of_constraints().size()
              << " function-of constraints, "
              << mkb.value().pc_constraints().size()
              << " PC constraints from " << path << "\n";
    return true;
  }

  bool SaveMisd(const std::string& path) {
    // The MKB replicas agree byte-for-byte; save from the pinned snapshot.
    const Status status =
        AtomicWriteFile(path, SaveMkb(*sharded_.PinPublished()->mkb));
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "saved MKB to " << path << "\n";
    return true;
  }

  bool LoadViewPool(const std::string& path) {
    if (!RequireSingleShard("LOAD VIEWS")) return false;
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Status status = LoadViews(buffer.str(), &sys());
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    sharded_.PublishSnapshot();
    std::cout << "loaded " << sys().NumViews() << " views from " << path
              << "\n";
    return true;
  }

  bool SaveViewPool(const std::string& path) {
    if (!RequireSingleShard("SAVE VIEWS")) return false;
    const Status status = AtomicWriteFile(path, SaveViews(sys()));
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "saved " << sys().NumViews() << " views to " << path
              << "\n";
    return true;
  }

  bool OpenJournal(const std::string& path) {
    if (!RequireSingleShard("JOURNAL")) return false;
    Result<Journal> journal = Journal::Open(path);
    if (!journal.ok()) {
      std::cerr << "error: " << journal.status() << "\n";
      return false;
    }
    journal_ = std::move(journal.value());
    sys().AttachJournal(&*journal_);
    std::cout << "journaling to " << path << "\n";
    return true;
  }

  bool Checkpoint(const std::string& path) {
    if (!RequireSingleShard("CHECKPOINT")) return false;
    const Status status = WriteCheckpoint(sys(), path);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    // The checkpoint subsumes the journaled history.
    if (journal_.has_value()) {
      const Status reset = journal_->Reset();
      if (!reset.ok()) {
        std::cerr << "error: " << reset << "\n";
        return false;
      }
    }
    std::cout << "checkpointed to " << path << "\n";
    return true;
  }

  bool Recover(const std::string& checkpoint_path,
               const std::string& journal_path) {
    if (!RequireSingleShard("RECOVER")) return false;
    RecoveryReport report;
    Result<EveSystem> recovered =
        RecoverFromFiles(checkpoint_path, journal_path, &report);
    if (!recovered.ok()) {
      std::cerr << "error: " << recovered.status() << "\n";
      return false;
    }
    sys() = std::move(recovered.value());
    if (journal_.has_value()) sys().AttachJournal(&*journal_);
    sharded_.PublishSnapshot();
    std::cout << report.ToString();
    std::cout << "recovered " << sys().NumViews() << " views, "
              << sys().mkb().catalog().NumRelations() << " relations\n";
    return true;
  }

  bool SetSync(const std::string& knob, const std::string& value) {
    uint64_t parsed = 0;
    try {
      parsed = std::stoull(value);
    } catch (...) {
      std::cerr << "error: SET SYNC " << knob
                << " expects a non-negative integer, got " << value << "\n";
      return false;
    }
    // Per-shard sync knobs fan out to every replica so behavior is uniform
    // no matter which shard a view lands on.
    if (EqualsIgnoreCase(knob, "TOPK")) {
      ForEachShard([&](EveSystem& s) {
        s.SetSyncTopK(static_cast<size_t>(parsed));
      });
      std::cout << "sync top-k = " << parsed << "\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "BUDGET")) {
      ForEachShard([&](EveSystem& s) {
        s.SetSyncCandidateBudget(static_cast<size_t>(parsed));
      });
      std::cout << "sync candidate budget = " << parsed << "\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "PARALLELISM")) {
      sharded_.SetSyncParallelism(static_cast<size_t>(parsed));
      std::cout << "sync parallelism = " << parsed << "\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "WORKBUDGET")) {
      ForEachShard([&](EveSystem& s) { s.SetSyncWorkBudget(parsed); });
      std::cout << "sync work budget = " << parsed << " units/view\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "DEADLINE")) {
      ForEachShard([&](EveSystem& s) { s.SetSyncDeadlineMicros(parsed); });
      std::cout << "sync deadline = " << parsed << " us\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "WATCHDOG")) {
      ForEachShard([&](EveSystem& s) { s.SetSyncWatchdogMicros(parsed); });
      std::cout << "sync watchdog = " << parsed << " us\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "QUEUE")) {
      sharded_.SetSyncQueueLimit(static_cast<size_t>(parsed));
      std::cout << "sync queue limit = " << parsed << "\n";
      return true;
    }
    std::cerr << "error: SET SYNC expects TOPK, BUDGET, PARALLELISM, "
                 "WORKBUDGET, DEADLINE, WATCHDOG or QUEUE\n";
    return false;
  }

  bool SetExecutor(const std::string& value) {
    const Result<JoinStrategy> strategy = ParseJoinStrategy(value);
    if (!strategy.ok()) {
      std::cerr << "error: " << strategy.status() << "\n";
      return false;
    }
    sharded_.SetExecutorStrategy(strategy.value());
    std::cout << "executor strategy = "
              << JoinStrategyToString(strategy.value()) << "\n";
    return true;
  }

  // A shed change is an EXPECTED admission outcome (the error is explicit,
  // the counters account for it), so it does not fail the script; any
  // other enqueue error does.
  bool Enqueue(const Result<CapabilityChange>& change) {
    if (!change.ok()) {
      std::cerr << "error: " << change.status() << "\n";
      return false;
    }
    const Status status = sharded_.EnqueueChange(change.value());
    if (status.ok()) {
      std::cout << "enqueued (" << sharded_.queued_changes() << " queued)\n";
      return true;
    }
    // Any admission rejection (capacity or an injected fault) is counted
    // as shed by EnqueueChange, so it is an accounted-for outcome.
    std::cout << "SHED: " << status << "\n";
    std::cout << "admission: " << sharded_.admission_stats().ToString()
              << "\n";
    return true;
  }

  bool Drain() {
    const Result<std::vector<ChangeReport>> reports =
        sharded_.DrainSyncQueue();
    if (!reports.ok()) {
      std::cerr << "error: " << reports.status() << "\n";
      return false;
    }
    for (const ChangeReport& report : reports.value()) {
      std::cout << report.ToString();
    }
    std::cout << "admission: " << sharded_.admission_stats().ToString()
              << "\n";
    return true;
  }

  bool Show(const std::vector<std::string>& words) {
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SHARD") &&
        EqualsIgnoreCase(words[2], "STATS")) {
      std::cout << sharded_.RenderShardStats();
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "VERSIONS")) {
      if (!RequireSingleShard("SHOW VERSIONS")) return false;
      std::cout << sys().versions().Render();
      return true;
    }
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SCRUB") &&
        EqualsIgnoreCase(words[2], "STATS")) {
      if (!last_scrub_.has_value()) {
        std::cout << "no scrub has run yet (use SCRUB)\n";
        return true;
      }
      std::cout << last_scrub_->ToString() << "\n";
      return true;
    }
    if (words.size() >= 5 && EqualsIgnoreCase(words[1], "MKB") &&
        EqualsIgnoreCase(words[2], "AT") &&
        EqualsIgnoreCase(words[3], "VERSION")) {
      if (!RequireSingleShard("SHOW MKB AT VERSION")) return false;
      uint64_t version = 0;
      if (!ParseTicks(words[4], &version)) return false;
      const Result<PinnedMkb> pinned = sys().PinVersion(version);
      if (!pinned.ok()) {
        std::cerr << "error: " << pinned.status() << "\n";
        return false;
      }
      std::cout << "-- version " << pinned.value().id() << "\n"
                << pinned.value().mkb->ToString();
      return true;
    }
    if (words.size() >= 5 && EqualsIgnoreCase(words[1], "VIEWS") &&
        EqualsIgnoreCase(words[2], "AT") &&
        EqualsIgnoreCase(words[3], "VERSION")) {
      if (!RequireSingleShard("SHOW VIEWS AT VERSION")) return false;
      uint64_t version = 0;
      if (!ParseTicks(words[4], &version)) return false;
      const Result<std::string> views = sys().ViewsTextAt(version);
      if (!views.ok()) {
        std::cerr << "error: " << views.status() << "\n";
        return false;
      }
      std::cout << "-- view pool at version " << version << "\n"
                << views.value();
      return true;
    }
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "EXECUTOR") &&
        EqualsIgnoreCase(words[2], "STATS")) {
      const ExecutorCounters& counters = GlobalExecutorCounters();
      std::cout << "strategy: "
                << JoinStrategyToString(sharded_.executor_strategy()) << "\n"
                << "queries: nested_loop "
                << counters.nested_loop_queries.load() << ", hash "
                << counters.hash_queries.load() << ", vectorized "
                << counters.vectorized_queries.load()
                << "; cartesian fallbacks "
                << counters.cartesian_fallbacks.load() << "\n";
      return true;
    }
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SYNC") &&
        EqualsIgnoreCase(words[2], "STATS")) {
      std::cout << "enumeration: " << sys().last_sync_stats().ToString()
                << "\n";
      // Per-view truncation/deadline lists and watchdog count for the last
      // change or preview (name-ordered, deterministic).
      const std::string diagnostics = sys().last_sync_diagnostics().ToString();
      if (!diagnostics.empty()) std::cout << "sync: " << diagnostics << "\n";
      std::cout << "admission: " << sharded_.admission_stats().ToString()
                << "\n";
      return true;
    }
    // MKB and hypergraph reads answer from the last published snapshot:
    // one atomic pin, no shard locks, stable against concurrent commits.
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "MKB")) {
      std::cout << sharded_.PinPublished()->mkb->ToString();
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "HYPERGRAPH")) {
      std::cout << Hypergraph::Build(*sharded_.PinPublished()->mkb).Summary();
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "VIEWS")) {
      // Served from the pinned snapshot: one atomic load, then only the
      // snapshot's immutable segment bytes — no shard lock is taken, and
      // the listing is byte-stable across any concurrent commit.
      const auto snapshot = sharded_.PinPublished();
      std::vector<PinnedViewBlock> views;
      for (size_t i = 0; i < sharded_.shard_count(); ++i) {
        AppendPinnedViews(snapshot->ViewsText(i), &views);
      }
      std::sort(views.begin(), views.end(),
                [](const PinnedViewBlock& a, const PinnedViewBlock& b) {
                  return a.name < b.name;
                });
      for (const PinnedViewBlock& view : views) {
        std::cout << "  [" << (view.active ? "active" : "DISABLED") << "] "
                  << view.name << "\n";
      }
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "SOURCES")) {
      return ShowSources();
    }
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "VIEW")) {
      // The definition is served from the pinned snapshot (the owning
      // shard's immutable VIEWS segment), lock-free like SHOW VIEWS.
      const auto snapshot = sharded_.PinPublished();
      const size_t shard = sharded_.ShardOfView(words[2]);
      std::vector<PinnedViewBlock> views;
      AppendPinnedViews(snapshot->ViewsText(shard), &views);
      const PinnedViewBlock* found = nullptr;
      for (const PinnedViewBlock& view : views) {
        if (view.name == words[2]) found = &view;
      }
      if (found == nullptr) {
        std::cerr << "error: not_found: view not registered: " << words[2]
                  << "\n";
        return false;
      }
      std::cout << found->definition << "\n";
      // History is live provenance (not part of the versioned bytes); it
      // rides along from the owning shard for the console's benefit.
      const Result<const RegisteredView*> view = sharded_.GetView(words[2]);
      if (view.ok()) {
        for (const std::string& event : view.value()->history) {
          std::cout << "  history: " << event << "\n";
        }
      }
      return true;
    }
    std::cerr << "error: SHOW expects MKB, HYPERGRAPH, VIEWS, VIEW <name>, "
                 "VERSIONS, MKB|VIEWS AT VERSION <n>, SHARD STATS, SCRUB "
                 "STATS or SYNC STATS\n";
    return false;
  }

  // SYNC DRYRUN <change words> [AT VERSION n]: the full what-if pipeline.
  bool DryRun(std::vector<std::string> rest) {
    if (!RequireSingleShard("SYNC DRYRUN")) return false;
    std::optional<uint64_t> at_version;
    if (rest.size() >= 3 && EqualsIgnoreCase(rest[rest.size() - 3], "AT") &&
        EqualsIgnoreCase(rest[rest.size() - 2], "VERSION")) {
      uint64_t version = 0;
      if (!ParseTicks(rest.back(), &version)) return false;
      at_version = version;
      rest.resize(rest.size() - 3);
    }
    Result<CapabilityChange> change =
        Status::InvalidArgument("SYNC DRYRUN expects DELETE or RENAME");
    if (rest.size() >= 3 && EqualsIgnoreCase(rest[0], "DELETE")) {
      change = MakeDelete(rest);
    } else if (rest.size() >= 5 && EqualsIgnoreCase(rest[0], "RENAME") &&
               EqualsIgnoreCase(rest[3], "TO")) {
      change = MakeRename(rest);
    }
    if (!change.ok()) {
      std::cerr << "error: " << change.status() << "\n";
      return false;
    }
    const Result<DryRunReport> report =
        at_version.has_value()
            ? sys().DryRunChangeAt(change.value(), *at_version)
            : sys().DryRunChange(change.value());
    if (!report.ok()) {
      std::cerr << "error: " << report.status() << "\n";
      return false;
    }
    std::cout << report.value().ToString();
    return true;
  }

  bool Rollback(const std::string& version_word) {
    if (!RequireSingleShard("ROLLBACK")) return false;
    uint64_t version = 0;
    if (!ParseTicks(version_word, &version)) return false;
    const Result<uint64_t> committed = sys().RollbackToVersion(version);
    if (!committed.ok()) {
      std::cerr << "error: " << committed.status() << "\n";
      return false;
    }
    sharded_.PublishSnapshot();
    std::cout << "rolled back to version " << version << " (committed as v"
              << committed.value() << ")\n";
    return true;
  }

  // SCRUB fails the script on any detected corruption, so CI chaos jobs can
  // gate on its exit code.
  bool Scrub() {
    if (!RequireSingleShard("SCRUB")) return false;
    last_scrub_ = sys().ScrubVersions();
    std::cout << last_scrub_->ToString() << "\n";
    if (last_scrub_->corruptions > 0) {
      std::cerr << "error: scrub found " << last_scrub_->corruptions
                << " corruption(s)\n";
      return false;
    }
    return true;
  }

  Result<CapabilityChange> MakeDelete(
      const std::vector<std::string>& words) {
    if (EqualsIgnoreCase(words[1], "RELATION")) {
      return CapabilityChange::DeleteRelation(words[2]);
    }
    if (EqualsIgnoreCase(words[1], "ATTRIBUTE")) {
      const std::vector<std::string> parts = Split(words[2], '.');
      if (parts.size() != 2) {
        return Status::InvalidArgument(
            "DELETE ATTRIBUTE expects <relation>.<attribute>");
      }
      return CapabilityChange::DeleteAttribute(parts[0], parts[1]);
    }
    return Status::InvalidArgument(
        "DELETE expects RELATION or ATTRIBUTE");
  }

  Result<CapabilityChange> MakeRename(
      const std::vector<std::string>& words) {
    if (EqualsIgnoreCase(words[1], "RELATION")) {
      return CapabilityChange::RenameRelation(words[2], words[4]);
    }
    if (EqualsIgnoreCase(words[1], "ATTRIBUTE")) {
      const std::vector<std::string> parts = Split(words[2], '.');
      if (parts.size() != 2) {
        return Status::InvalidArgument(
            "RENAME ATTRIBUTE expects <relation>.<attribute>");
      }
      return CapabilityChange::RenameAttribute(parts[0], parts[1],
                                               words[4]);
    }
    return Status::InvalidArgument(
        "RENAME expects RELATION or ATTRIBUTE");
  }

  // Parses a non-negative integer command argument.
  bool ParseTicks(const std::string& word, uint64_t* out) {
    try {
      *out = std::stoull(word);
      return true;
    } catch (...) {
      std::cerr << "error: expected a non-negative integer, got " << word
                << "\n";
      return false;
    }
  }

  // A fresh monitor aligned to the console's federation clock. Stats are
  // accumulated per command into fed_stats_.
  federation::FederationMonitor MakeMonitor() {
    federation::FederationMonitor monitor(&sys(), &transport_);
    monitor.SetNow(federation_now_);
    return monitor;
  }

  bool TrackSources() {
    if (!RequireSingleShard("TRACK SOURCES")) return false;
    federation::FederationMonitor monitor = MakeMonitor();
    const Status status = monitor.TrackSources();
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "tracking " << sys().source_membership().size()
              << " sources at tick " << federation_now_ << "\n";
    return true;
  }

  bool ShowSources() {
    if (!RequireSingleShard("SHOW SOURCES")) return false;
    if (sys().source_membership().empty()) {
      std::cout << "no tracked sources (use TRACK SOURCES)\n";
      return true;
    }
    for (const auto& [source, m] : sys().source_membership()) {
      std::cout << "  " << source << "  "
                << federation::SourceStateToString(m.state)
                << "  breaker=" << federation::BreakerStateToString(m.breaker)
                << " failures=" << m.consecutive_failures;
      if (m.state == federation::SourceState::kDeparted) {
        std::cout << " lease=departed";
      } else if (m.lease_expires > federation_now_) {
        std::cout << " lease=+" << (m.lease_expires - federation_now_)
                  << " next_probe=+"
                  << (m.next_probe > federation_now_
                          ? m.next_probe - federation_now_
                          : 0);
      } else {
        std::cout << " lease=EXPIRED";
      }
      std::cout << "\n";
    }
    return true;
  }

  bool SetSource(const std::string& source, const std::string& knob,
                 const std::string& value) {
    if (!RequireSingleShard("SET SOURCE")) return false;
    uint64_t ticks = 0;
    if (!ParseTicks(value, &ticks)) return false;
    const std::vector<std::string> sources =
        sys().mkb().catalog().SourceNames();
    if (std::find(sources.begin(), sources.end(), source) == sources.end()) {
      std::cerr << "error: unknown source " << source << "\n";
      return false;
    }
    const auto& table = sys().source_membership();
    const auto it = table.find(source);
    federation::SourceMembership m =
        it != table.end()
            ? it->second
            : federation::MakeHealthy({}, federation_now_);
    if (EqualsIgnoreCase(knob, "LEASE")) {
      m.config.lease_ticks = ticks;
      m.lease_expires = federation_now_ + ticks;
    } else if (EqualsIgnoreCase(knob, "PROBE")) {
      m.config.probe_interval_ticks = ticks;
      m.next_probe = federation_now_ + ticks;
    } else if (EqualsIgnoreCase(knob, "BREAKER")) {
      m.config.breaker_open_ticks = ticks;
    } else {
      std::cerr << "error: SET SOURCE expects LEASE, PROBE or BREAKER\n";
      return false;
    }
    const Status status = sys().SetSourceMembership(source, m);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "source " << source << " " << ToLower(knob) << " = " << ticks
              << " ticks\n";
    return true;
  }

  bool FaultSource(const std::string& source, const std::string& kind_word,
                   const std::string& from_word, const std::string& to_word) {
    const Result<federation::SimulatedTransport::FaultKind> kind =
        federation::ParseFaultKind(kind_word);
    if (!kind.ok()) {
      std::cerr << "error: " << kind.status() << "\n";
      return false;
    }
    federation::SimulatedTransport::FaultWindow window;
    if (!ParseTicks(from_word, &window.from) ||
        !ParseTicks(to_word, &window.to)) {
      return false;
    }
    window.kind = kind.value();
    transport_.AddFault(source, window);
    std::cout << "fault " << federation::FaultKindToString(window.kind)
              << " on " << source << " for ticks [" << window.from << ", "
              << window.to << ")\n";
    return true;
  }

  bool Tick(const std::string& count_word) {
    if (!RequireSingleShard("TICK")) return false;
    uint64_t count = 0;
    if (!ParseTicks(count_word, &count)) return false;
    federation::FederationMonitor monitor = MakeMonitor();
    const Status status = monitor.AdvanceTo(federation_now_ + count);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    federation_now_ += count;
    // Departure cascades committed capability changes on shard 0 directly;
    // republish so snapshot readers see them.
    sharded_.PublishSnapshot();
    const federation::MonitorStats& stats = monitor.stats();
    std::cout << "tick " << federation_now_ << ": probes=" << stats.probes
              << " ok=" << stats.successes << " failed=" << stats.failures
              << " transitions=" << stats.state_transitions
              << " departures=" << stats.departures << "\n";
    // A departure ran the SourceLeaves cascade: show its reports.
    if (stats.departures > 0) {
      const auto& log = sys().change_log();
      const size_t shown = std::min<size_t>(log.size(), stats.departures);
      for (size_t i = log.size() - shown; i < log.size(); ++i) {
        std::cout << log[i].ToString();
      }
    }
    return true;
  }

  bool Change(const Result<CapabilityChange>& change, bool preview) {
    if (!change.ok()) {
      std::cerr << "error: " << change.status() << "\n";
      return false;
    }
    if (preview && !RequireSingleShard("PREVIEW")) return false;
    const Result<ChangeReport> report =
        preview ? sys().PreviewChange(change.value())
                : sharded_.ApplyChange(change.value());
    if (!report.ok()) {
      std::cerr << "error: " << report.status() << "\n";
      return false;
    }
    if (preview) std::cout << "(preview — nothing applied)\n";
    std::cout << report.value().ToString();
    // Enumeration counters ride along after the report (never inside it:
    // ChangeReport bytes are journaled/checkpointed and must not change).
    // With several shards the per-shard counters are not meaningful as a
    // single line, so they are only printed in the classic 1-shard mode.
    if (sharded_.shard_count() == 1) {
      const EnumerationStats& stats = sys().last_sync_stats();
      if (stats.combos_generated > 0 || stats.candidates_yielded > 0) {
        std::cout << "enumeration: " << stats.ToString() << "\n";
      }
      const std::string diagnostics = sys().last_sync_diagnostics().ToString();
      if (!diagnostics.empty()) std::cout << "sync: " << diagnostics << "\n";
    }
    return true;
  }

  // The serving core. SET SHARDS 1 (the default) delegates to shard 0,
  // which behaves exactly like the classic single EveSystem.
  ShardedEveSystem sharded_{Mkb()};
  std::optional<Journal> journal_;
  std::optional<VersionScrubStats> last_scrub_;
  // Federation console state: one simulated transport and a logical clock
  // that persists across TICK commands (monitors are per-command).
  federation::SimulatedTransport transport_;
  uint64_t federation_now_ = 0;
};

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: evectl <script>|-\n";
    return 2;
  }
  std::string script;
  if (std::string(argv[1]) == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "error: cannot open " << argv[1] << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
  }
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status status = Failpoints::Instance().ArmFromSpec(spec);
    if (!status.ok()) {
      std::cerr << "error: bad EVE_FAILPOINTS: " << status << "\n";
      return 2;
    }
  }
  Console console;
  bool ok = true;
  for (const std::string& statement : SplitStatements(script)) {
    std::cout << "evectl> " << statement << "\n";
    try {
      ok = console.Run(statement) && ok;
    } catch (const SimulatedCrash& crash) {
      // Model a process death at the armed site: abandon the script, keep
      // whatever durable files were already written.
      std::cerr << "simulated crash at failpoint " << crash.site() << "\n";
      return 3;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
