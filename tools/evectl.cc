// evectl: a script-driven console for the EVE/CVS system.
//
// Usage:
//   evectl <script>       run statements from a file
//   evectl -              run statements from stdin
//
// Statements are ';'-terminated:
//   LOAD MISD '<path>';                   -- load IS descriptions (MISD text)
//   SAVE MISD '<path>';                   -- write the current MKB
//   LOAD VIEWS '<path>';                  -- restore a saved view pool
//   SAVE VIEWS '<path>';                  -- persist the view pool
//   SHOW MKB;                             -- dump relations + constraints
//   SHOW HYPERGRAPH;                      -- H(MKB) summary (Fig. 4 style)
//   SHOW VIEWS;                           -- registered views and states
//   SHOW VIEW <name>;                     -- one view's E-SQL text
//   CREATE VIEW ... ;                     -- register an E-SQL view
//   DEFINE <MISD statement>;              -- a source publishes a relation
//                                            or constraint (additive)
//   RETRACT <constraint id>;              -- a source withdraws a constraint
//   SET SYNC TOPK <k>;                    -- keep only the k best rewritings
//                                            per view (0 = all); enables
//                                            early termination in CVS
//   SET SYNC BUDGET <n>;                  -- cap candidates pulled per view
//                                            synchronization (0 = no cap)
//   SET SYNC PARALLELISM <n>;             -- threads for batch sync (0/1 =
//                                            sequential; reports identical)
//   SHOW SYNC STATS;                      -- enumeration counters aggregated
//                                            over the last change/preview
//   PREVIEW DELETE RELATION <name>;       -- what-if: report without applying
//   DELETE RELATION <name>;               -- capability change
//   DELETE ATTRIBUTE <rel>.<attr>;        -- capability change
//   RENAME RELATION <old> TO <new>;       -- capability change
//   RENAME ATTRIBUTE <rel>.<a> TO <b>;    -- capability change
//   JOURNAL '<path>';                     -- attach a write-ahead journal;
//                                            subsequent mutations are durable
//   CHECKPOINT '<path>';                  -- atomically write a checkpoint
//                                            and truncate the journal
//   RECOVER '<ckpt>' '<journal>';         -- rebuild state from checkpoint +
//                                            journal replay (crash recovery)
//   -- comments run to end of line
//
// Every capability change prints the EVE change report (rewritten /
// disabled views, dropped constraints).
//
// Setting EVE_FAILPOINTS (e.g. "eve.apply_change.after_journal=crash") arms
// fault-injection sites; a fired crash site aborts the script with exit
// code 3, leaving on-disk state for a later RECOVER run.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/str_util.h"
#include "eve/eve_system.h"
#include "eve/journal.h"
#include "eve/view_pool_io.h"
#include "hypergraph/hypergraph.h"
#include "mkb/serializer.h"

namespace eve {
namespace {

// Splits a script into ';'-terminated statements, honoring single-quoted
// strings, double-quoted identifiers, and "--" comments.
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> statements;
  std::string current;
  for (size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (c == '-' && i + 1 < script.size() && script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      current += ' ';
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      current += c;
      ++i;
      while (i < script.size()) {
        current += script[i];
        if (script[i] == quote) {
          if (quote == '\'' && i + 1 < script.size() &&
              script[i + 1] == '\'') {
            current += script[++i];
          } else {
            break;
          }
        }
        ++i;
      }
      continue;
    }
    if (c == ';') {
      if (!Trim(current).empty()) {
        statements.emplace_back(Trim(current));
      }
      current.clear();
      continue;
    }
    current += c;
  }
  if (!Trim(current).empty()) statements.emplace_back(Trim(current));
  return statements;
}

// Splits a statement head into whitespace-separated words (enough for the
// non-SQL commands; CREATE VIEW statements go to the E-SQL parser whole).
std::vector<std::string> Words(const std::string& statement) {
  std::vector<std::string> words;
  std::istringstream is(statement);
  std::string word;
  while (is >> word) words.push_back(word);
  return words;
}

// Strips surrounding single quotes from a path argument.
std::string Unquote(const std::string& word) {
  if (word.size() >= 2 && word.front() == '\'' && word.back() == '\'') {
    return word.substr(1, word.size() - 2);
  }
  return word;
}

class Console {
 public:
  // Returns false when the statement failed.
  bool Run(const std::string& statement) {
    const std::vector<std::string> words = Words(statement);
    if (words.empty()) return true;
    const std::string head = ToLower(words[0]);

    if (head == "create") {
      return Report(system_.RegisterViewText(statement), statement);
    }
    if (head == "retract" && words.size() >= 2) {
      return Report(system_.RetractConstraint(words[1]), statement);
    }
    if (head == "define") {
      const std::string body(Trim(
          std::string_view(statement).substr(std::string("define").size())));
      return Report(system_.ExtendMkb(body), statement);
    }
    if (head == "load" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "MISD")) {
      return LoadMisd(Unquote(words[2]));
    }
    if (head == "save" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "MISD")) {
      return SaveMisd(Unquote(words[2]));
    }
    if (head == "load" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "VIEWS")) {
      return LoadViewPool(Unquote(words[2]));
    }
    if (head == "save" && words.size() >= 3 &&
        EqualsIgnoreCase(words[1], "VIEWS")) {
      return SaveViewPool(Unquote(words[2]));
    }
    if (head == "journal" && words.size() >= 2) {
      return OpenJournal(Unquote(words[1]));
    }
    if (head == "checkpoint" && words.size() >= 2) {
      return Checkpoint(Unquote(words[1]));
    }
    if (head == "recover" && words.size() >= 3) {
      return Recover(Unquote(words[1]), Unquote(words[2]));
    }
    if (head == "set" && words.size() >= 4 &&
        EqualsIgnoreCase(words[1], "SYNC")) {
      return SetSync(words[2], words[3]);
    }
    if (head == "show") {
      return Show(words);
    }
    if (head == "delete" && words.size() >= 3) {
      return Change(MakeDelete(words), /*preview=*/false);
    }
    if (head == "rename" && words.size() >= 5 &&
        EqualsIgnoreCase(words[3], "TO")) {
      return Change(MakeRename(words), /*preview=*/false);
    }
    if (head == "preview" && words.size() >= 4) {
      const std::vector<std::string> rest(words.begin() + 1, words.end());
      const std::string sub = ToLower(rest[0]);
      if (sub == "delete" && rest.size() >= 3) {
        return Change(MakeDelete(rest), /*preview=*/true);
      }
      if (sub == "rename" && rest.size() >= 5 &&
          EqualsIgnoreCase(rest[3], "TO")) {
        return Change(MakeRename(rest), /*preview=*/true);
      }
      std::cerr << "error: PREVIEW expects DELETE or RENAME\n";
      return false;
    }
    std::cerr << "error: unrecognized statement: " << statement << "\n";
    return false;
  }

 private:
  bool Report(const Status& status, const std::string& context) {
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n  in: " << context << "\n";
      return false;
    }
    return true;
  }

  bool LoadMisd(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Result<Mkb> mkb = LoadMkb(buffer.str());
    if (!mkb.ok()) {
      std::cerr << "error: " << mkb.status() << "\n";
      return false;
    }
    system_ = EveSystem(mkb.value());
    if (journal_.has_value()) system_.AttachJournal(&*journal_);
    std::cout << "loaded " << mkb.value().catalog().NumRelations()
              << " relations, " << mkb.value().join_constraints().size()
              << " join constraints, "
              << mkb.value().function_of_constraints().size()
              << " function-of constraints, "
              << mkb.value().pc_constraints().size()
              << " PC constraints from " << path << "\n";
    return true;
  }

  bool SaveMisd(const std::string& path) {
    const Status status = AtomicWriteFile(path, SaveMkb(system_.mkb()));
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "saved MKB to " << path << "\n";
    return true;
  }

  bool LoadViewPool(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Status status = LoadViews(buffer.str(), &system_);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "loaded " << system_.NumViews() << " views from " << path
              << "\n";
    return true;
  }

  bool SaveViewPool(const std::string& path) {
    const Status status = AtomicWriteFile(path, SaveViews(system_));
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    std::cout << "saved " << system_.NumViews() << " views to " << path
              << "\n";
    return true;
  }

  bool OpenJournal(const std::string& path) {
    Result<Journal> journal = Journal::Open(path);
    if (!journal.ok()) {
      std::cerr << "error: " << journal.status() << "\n";
      return false;
    }
    journal_ = std::move(journal.value());
    system_.AttachJournal(&*journal_);
    std::cout << "journaling to " << path << "\n";
    return true;
  }

  bool Checkpoint(const std::string& path) {
    const Status status = WriteCheckpoint(system_, path);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return false;
    }
    // The checkpoint subsumes the journaled history.
    if (journal_.has_value()) {
      const Status reset = journal_->Reset();
      if (!reset.ok()) {
        std::cerr << "error: " << reset << "\n";
        return false;
      }
    }
    std::cout << "checkpointed to " << path << "\n";
    return true;
  }

  bool Recover(const std::string& checkpoint_path,
               const std::string& journal_path) {
    RecoveryReport report;
    Result<EveSystem> recovered =
        RecoverFromFiles(checkpoint_path, journal_path, &report);
    if (!recovered.ok()) {
      std::cerr << "error: " << recovered.status() << "\n";
      return false;
    }
    system_ = std::move(recovered.value());
    if (journal_.has_value()) system_.AttachJournal(&*journal_);
    std::cout << report.ToString();
    std::cout << "recovered " << system_.NumViews() << " views, "
              << system_.mkb().catalog().NumRelations() << " relations\n";
    return true;
  }

  bool SetSync(const std::string& knob, const std::string& value) {
    size_t parsed = 0;
    try {
      parsed = std::stoul(value);
    } catch (...) {
      std::cerr << "error: SET SYNC " << knob
                << " expects a non-negative integer, got " << value << "\n";
      return false;
    }
    if (EqualsIgnoreCase(knob, "TOPK")) {
      system_.SetSyncTopK(parsed);
      std::cout << "sync top-k = " << parsed << "\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "BUDGET")) {
      system_.SetSyncCandidateBudget(parsed);
      std::cout << "sync candidate budget = " << parsed << "\n";
      return true;
    }
    if (EqualsIgnoreCase(knob, "PARALLELISM")) {
      system_.SetSyncParallelism(parsed);
      std::cout << "sync parallelism = " << parsed << "\n";
      return true;
    }
    std::cerr << "error: SET SYNC expects TOPK, BUDGET or PARALLELISM\n";
    return false;
  }

  bool Show(const std::vector<std::string>& words) {
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "SYNC") &&
        EqualsIgnoreCase(words[2], "STATS")) {
      std::cout << "enumeration: " << system_.last_sync_stats().ToString()
                << "\n";
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "MKB")) {
      std::cout << system_.mkb().ToString();
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "HYPERGRAPH")) {
      std::cout << Hypergraph::Build(system_.mkb()).Summary();
      return true;
    }
    if (words.size() >= 2 && EqualsIgnoreCase(words[1], "VIEWS")) {
      for (const std::string& name : system_.ViewNames()) {
        const RegisteredView* view = *system_.GetView(name);
        std::cout << "  ["
                  << (view->state == ViewState::kActive ? "active"
                                                        : "DISABLED")
                  << "] " << name << "\n";
      }
      return true;
    }
    if (words.size() >= 3 && EqualsIgnoreCase(words[1], "VIEW")) {
      const Result<const RegisteredView*> view = system_.GetView(words[2]);
      if (!view.ok()) {
        std::cerr << "error: " << view.status() << "\n";
        return false;
      }
      std::cout << view.value()->definition.ToString() << "\n";
      for (const std::string& event : view.value()->history) {
        std::cout << "  history: " << event << "\n";
      }
      return true;
    }
    std::cerr << "error: SHOW expects MKB, HYPERGRAPH, VIEWS, VIEW <name> "
                 "or SYNC STATS\n";
    return false;
  }

  Result<CapabilityChange> MakeDelete(
      const std::vector<std::string>& words) {
    if (EqualsIgnoreCase(words[1], "RELATION")) {
      return CapabilityChange::DeleteRelation(words[2]);
    }
    if (EqualsIgnoreCase(words[1], "ATTRIBUTE")) {
      const std::vector<std::string> parts = Split(words[2], '.');
      if (parts.size() != 2) {
        return Status::InvalidArgument(
            "DELETE ATTRIBUTE expects <relation>.<attribute>");
      }
      return CapabilityChange::DeleteAttribute(parts[0], parts[1]);
    }
    return Status::InvalidArgument(
        "DELETE expects RELATION or ATTRIBUTE");
  }

  Result<CapabilityChange> MakeRename(
      const std::vector<std::string>& words) {
    if (EqualsIgnoreCase(words[1], "RELATION")) {
      return CapabilityChange::RenameRelation(words[2], words[4]);
    }
    if (EqualsIgnoreCase(words[1], "ATTRIBUTE")) {
      const std::vector<std::string> parts = Split(words[2], '.');
      if (parts.size() != 2) {
        return Status::InvalidArgument(
            "RENAME ATTRIBUTE expects <relation>.<attribute>");
      }
      return CapabilityChange::RenameAttribute(parts[0], parts[1],
                                               words[4]);
    }
    return Status::InvalidArgument(
        "RENAME expects RELATION or ATTRIBUTE");
  }

  bool Change(const Result<CapabilityChange>& change, bool preview) {
    if (!change.ok()) {
      std::cerr << "error: " << change.status() << "\n";
      return false;
    }
    const Result<ChangeReport> report =
        preview ? system_.PreviewChange(change.value())
                : system_.ApplyChange(change.value());
    if (!report.ok()) {
      std::cerr << "error: " << report.status() << "\n";
      return false;
    }
    if (preview) std::cout << "(preview — nothing applied)\n";
    std::cout << report.value().ToString();
    // Enumeration counters ride along after the report (never inside it:
    // ChangeReport bytes are journaled/checkpointed and must not change).
    const EnumerationStats& stats = system_.last_sync_stats();
    if (stats.combos_generated > 0 || stats.candidates_yielded > 0) {
      std::cout << "enumeration: " << stats.ToString() << "\n";
    }
    return true;
  }

  EveSystem system_{Mkb()};
  std::optional<Journal> journal_;
};

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: evectl <script>|-\n";
    return 2;
  }
  std::string script;
  if (std::string(argv[1]) == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "error: cannot open " << argv[1] << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
  }
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status status = Failpoints::Instance().ArmFromSpec(spec);
    if (!status.ok()) {
      std::cerr << "error: bad EVE_FAILPOINTS: " << status << "\n";
      return 2;
    }
  }
  Console console;
  bool ok = true;
  for (const std::string& statement : SplitStatements(script)) {
    std::cout << "evectl> " << statement << "\n";
    try {
      ok = console.Run(statement) && ok;
    } catch (const SimulatedCrash& crash) {
      // Model a process death at the armed site: abandon the script, keep
      // whatever durable files were already written.
      std::cerr << "simulated crash at failpoint " << crash.site() << "\n";
      return 3;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
