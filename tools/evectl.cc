// evectl: a script-driven console for the EVE/CVS system.
//
// Usage:
//   evectl <script>                      run statements locally
//   evectl -                             run statements from stdin
//   evectl --connect <host:port> <script>|-
//                                        run the same statements against a
//                                        running eved (net/server.h); the
//                                        output is byte-identical to the
//                                        local run for the same script
//   evectl --connect <h:p,h:p,...> <script>|-
//                                        cluster mode: the extra endpoints
//                                        are failover candidates — lost
//                                        connections are retried across the
//                                        list and "not primary" redirects
//                                        are chased to the leader (see
//                                        docs/REPLICATION.md; SHOW
//                                        REPLICATION and READ STALENESS <n>
//                                        are the replication session knobs)
//
// Statements are ';'-terminated:
//   LOAD MISD '<path>';                   -- load IS descriptions (MISD text)
//   SAVE MISD '<path>';                   -- write the current MKB
//   LOAD VIEWS '<path>';                  -- restore a saved view pool
//   SAVE VIEWS '<path>';                  -- persist the view pool
//   SHOW MKB;                             -- dump relations + constraints
//   SHOW HYPERGRAPH;                      -- H(MKB) summary (Fig. 4 style)
//   SHOW VIEWS;                           -- registered views and states
//   SHOW VIEW <name>;                     -- one view's E-SQL text
//   SET SHARDS <n>;                       -- partition the view pool over n
//                                            hash shards; rejected once any
//                                            view is registered, a journal
//                                            is attached or sources are
//                                            tracked (placement is fixed)
//   SHOW SHARD STATS;                     -- per-shard view counts, commits,
//                                            queue depth, version tips
//   CREATE VIEW ... ;                     -- register an E-SQL view
//   DEFINE <MISD statement>;              -- a source publishes a relation
//                                            or constraint (additive)
//   RETRACT <constraint id>;              -- a source withdraws a constraint
//   SET SYNC TOPK <k>;                    -- keep only the k best rewritings
//                                            per view (0 = all); enables
//                                            early termination in CVS
//   SET SYNC BUDGET <n>;                  -- cap candidates pulled per view
//                                            synchronization (0 = no cap)
//   SET SYNC PARALLELISM <n>;             -- threads for batch sync (0/1 =
//                                            sequential; reports identical)
//   SET SYNC WORKBUDGET <n>;              -- per-view logical work budget
//                                            (0 = unlimited): deterministic
//                                            best-under-budget partials
//   SET SYNC DEADLINE <micros>;           -- wall-clock deadline per change
//                                            (0 = none; best effort)
//   SET SYNC WATCHDOG <micros>;           -- real-time backstop that cancels
//                                            a stuck sync (0 = off)
//   SET SYNC QUEUE <n>;                   -- admission queue bound (0 = no
//                                            bound); a full queue sheds the
//                                            newest ENQUEUE with an explicit
//                                            resource-exhausted error
//   ENQUEUE DELETE ...;                   -- admit a capability change into
//   ENQUEUE RENAME ...;                      the bounded sync queue
//   DRAIN;                                -- apply queued changes FIFO, each
//                                            under a fresh deadline
//   SHOW SYNC STATS;                      -- enumeration counters, deadline
//                                            block, per-view truncation list
//                                            and admission counters for the
//                                            last change/preview
//   SET EXECUTOR <strategy>;              -- join/executor strategy for view
//                                            evaluation on every shard:
//                                            NESTED_LOOP, HASH, VECTORIZED
//                                            or AUTO
//   SHOW EXECUTOR STATS;                  -- configured strategy + process-
//                                            wide executor counters (per-
//                                            strategy query counts and
//                                            cartesian fallbacks)
//   PREVIEW DELETE RELATION <name>;       -- what-if: report without applying
//   SYNC DRYRUN DELETE|RENAME ... [AT VERSION <n>];
//                                         -- full what-if synchronization:
//                                            the exact report a commit from
//                                            the tip (or retained version n)
//                                            would produce; commits nothing
//   SHOW VERSIONS;                        -- the copy-on-write version chain
//   SHOW MKB AT VERSION <n>;              -- pin and dump an old MKB
//   SHOW VIEWS AT VERSION <n>;            -- the view pool frozen at n
//   ROLLBACK TO VERSION <n>;              -- restore MKB + views to version
//                                            n, committed as a NEW version
//   SCRUB;                                -- verify the whole version chain
//                                            (checksums, links, view stamps);
//                                            fails on any corruption
//   SHOW SCRUB STATS;                     -- counters of the last SCRUB
//   DELETE RELATION <name>;               -- capability change
//   DELETE ATTRIBUTE <rel>.<attr>;        -- capability change
//   RENAME RELATION <old> TO <new>;       -- capability change
//   RENAME ATTRIBUTE <rel>.<a> TO <b>;    -- capability change
//   TRACK SOURCES;                        -- admit every catalog source to
//                                            federation monitoring (healthy)
//   SHOW SOURCES;                         -- membership table: state,
//                                            breaker, failures, lease left
//   SET SOURCE <name> LEASE <n>;          -- lease length (also renews the
//                                            lease to now + n); auto-tracks
//   SET SOURCE <name> PROBE <n>;          -- probe cadence (next probe at
//                                            now + n); auto-tracks
//   SET SOURCE <name> BREAKER <n>;        -- breaker cooldown; auto-tracks
//   FAULT SOURCE <name> TIMEOUT|SLOW|CORRUPT|FLAP FROM <a> TO <b>;
//                                         -- transport fault for federation
//                                            ticks [a, b)
//   TICK <n>;                             -- advance the federation monitor
//                                            n logical ticks; lease expiry
//                                            departs the source (cascade)
//   JOURNAL '<path>';                     -- attach a write-ahead journal;
//                                            subsequent mutations are durable
//   CHECKPOINT '<path>';                  -- atomically write a checkpoint
//                                            and truncate the journal
//   RECOVER '<ckpt>' '<journal>';         -- rebuild state from checkpoint +
//                                            journal replay (crash recovery)
//   -- comments run to end of line
//
// The statement language is implemented by net/console.h (shared with
// eved). Every capability change prints the EVE change report (rewritten /
// disabled views, dropped constraints).
//
// Exit status: 0 = every statement succeeded; 1 = at least one failed (a
// one-line "<script>:<line>: error: ..." pointing at the FIRST failure is
// printed to stderr before exit); 2 = usage/startup problem; 3 = an armed
// crash failpoint fired (durable state is left for a later RECOVER run).
//
// Setting EVE_FAILPOINTS (e.g. "eve.apply_change.after_journal=crash") arms
// fault-injection sites; in --connect mode the spec arms the CLIENT process
// (the server arms its own from its own environment).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/console.h"

namespace eve {
namespace {

// Runs every statement against a remote eved, mirroring the local loop's
// output byte-for-byte: the response's output/error fields are exactly
// what the local console would have written to stdout/stderr.
bool RunRemote(const std::string& endpoint,
               const std::vector<net::Statement>& statements,
               const std::string& script_name, std::string* first_failure) {
  // --connect takes one endpoint, or a comma-separated cluster list: the
  // first entry is dialed, the rest are failover candidates the client
  // retries across (with leader-redirect chasing) when a node dies.
  std::vector<std::string> endpoints;
  std::istringstream parts(endpoint);
  std::string part;
  while (std::getline(parts, part, ',')) {
    if (!part.empty()) endpoints.push_back(part);
  }
  if (endpoints.empty()) {
    std::cerr << "error: --connect expects <host>:<port>[,<host>:<port>...]\n";
    return false;
  }
  const size_t colon = endpoints[0].rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "error: --connect expects <host>:<port>\n";
    return false;
  }
  net::ClientOptions options;
  options.host = endpoints[0].substr(0, colon);
  options.port = static_cast<uint16_t>(
      std::strtoul(endpoints[0].c_str() + colon + 1, nullptr, 10));
  if (endpoints.size() > 1) {
    options.nodes.assign(endpoints.begin() + 1, endpoints.end());
    options.max_transport_retries = 8;
  }
  Result<net::NetClient> client = net::NetClient::Connect(options);
  if (!client.ok()) {
    std::cerr << "error: " << client.status() << "\n";
    return false;
  }
  bool ok = true;
  for (const net::Statement& statement : statements) {
    std::cout << "evectl> " << statement.text << "\n";
    const Result<net::Response> response =
        client.value().Run(statement.text);
    if (!response.ok()) {
      std::cerr << "error: " << response.status() << "\n";
      if (first_failure->empty()) {
        *first_failure = script_name + ":" + std::to_string(statement.line) +
                         ": error: transport failed: " +
                         response.status().ToString();
      }
      return false;
    }
    std::cout << response.value().output;
    std::cerr << response.value().error;
    if (response.value().code != 0) {
      ok = false;
      if (first_failure->empty()) {
        *first_failure = script_name + ":" + std::to_string(statement.line) +
                         ": error: statement failed: " + statement.text;
      }
    }
  }
  return ok;
}

int Main(int argc, char** argv) {
  std::string connect;
  std::string source;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (source.empty()) {
      source = arg;
    } else {
      source.clear();
      break;
    }
  }
  if (source.empty()) {
    std::cerr << "usage: evectl [--connect <host:port>[,<host:port>...]] "
                 "<script>|-\n";
    return 2;
  }
  std::string script;
  if (source == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  } else {
    std::ifstream in(source);
    if (!in) {
      std::cerr << "error: cannot open " << source << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
  }
  const std::string script_name = source == "-" ? "<stdin>" : source;
  if (const char* spec = std::getenv("EVE_FAILPOINTS")) {
    const Status status = Failpoints::Instance().ArmFromSpec(spec);
    if (!status.ok()) {
      std::cerr << "error: bad EVE_FAILPOINTS: " << status << "\n";
      return 2;
    }
  }
  const std::vector<net::Statement> statements = net::SplitStatements(script);
  // The first failing statement, as "<script>:<line>: error: ...". The
  // script keeps running past failures (later statements often still make
  // sense, and CI asserts on final counters), but the exit status and this
  // one-line pointer make the failure impossible to miss.
  std::string first_failure;
  bool ok = true;
  if (!connect.empty()) {
    ok = RunRemote(connect, statements, script_name, &first_failure);
  } else {
    net::Console console;
    for (const net::Statement& statement : statements) {
      std::cout << "evectl> " << statement.text << "\n";
      bool this_ok = false;
      try {
        this_ok = console.Run(statement.text, std::cout, std::cerr);
      } catch (const SimulatedCrash& crash) {
        // Model a process death at the armed site: abandon the script,
        // keep whatever durable files were already written.
        std::cerr << "simulated crash at failpoint " << crash.site() << "\n";
        return 3;
      }
      if (!this_ok) {
        ok = false;
        if (first_failure.empty()) {
          first_failure = script_name + ":" +
                          std::to_string(statement.line) +
                          ": error: statement failed: " + statement.text;
        }
      }
    }
  }
  if (!ok && !first_failure.empty()) {
    std::cerr << first_failure << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eve

int main(int argc, char** argv) { return eve::Main(argc, argv); }
