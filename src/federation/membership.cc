#include "federation/membership.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace eve {
namespace federation {

std::string_view SourceStateToString(SourceState state) {
  switch (state) {
    case SourceState::kHealthy:
      return "healthy";
    case SourceState::kSuspect:
      return "suspect";
    case SourceState::kQuarantined:
      return "quarantined";
    case SourceState::kDeparted:
      return "departed";
  }
  return "unknown";
}

std::string_view BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Result<SourceState> ParseSourceState(std::string_view word) {
  if (word == "healthy") return SourceState::kHealthy;
  if (word == "suspect") return SourceState::kSuspect;
  if (word == "quarantined") return SourceState::kQuarantined;
  if (word == "departed") return SourceState::kDeparted;
  return Status::ParseError("unknown source state: " + std::string(word));
}

Result<BreakerState> ParseBreakerState(std::string_view word) {
  if (word == "closed") return BreakerState::kClosed;
  if (word == "open") return BreakerState::kOpen;
  if (word == "half-open") return BreakerState::kHalfOpen;
  return Status::ParseError("unknown breaker state: " + std::string(word));
}

SourceMembership MakeHealthy(const SourceConfig& config, uint64_t now) {
  SourceMembership m;
  m.config = config;
  m.state = SourceState::kHealthy;
  m.breaker = BreakerState::kClosed;
  m.consecutive_failures = 0;
  m.probe_attempt = 0;
  m.lease_expires = now + config.lease_ticks;
  m.next_probe = now + config.probe_interval_ticks;
  return m;
}

uint64_t DeterministicJitter(std::string_view source, uint64_t attempt,
                             uint64_t width) {
  if (width == 0) return 0;
  // FNV-1a over the source name and the attempt counter.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (const char c : source) mix(static_cast<uint8_t>(c));
  for (int shift = 0; shift < 64; shift += 8) {
    mix(static_cast<uint8_t>(attempt >> shift));
  }
  return hash % width;
}

uint64_t BackoffDelay(const SourceConfig& config, std::string_view source,
                      uint64_t attempt) {
  const uint64_t exponent = attempt == 0 ? 0 : attempt - 1;
  uint64_t delay = config.backoff_cap_ticks;
  // base * 2^exponent without overflow: stop doubling at the cap.
  if (exponent < 63) {
    const uint64_t factor = 1ull << exponent;
    if (config.backoff_base_ticks <= config.backoff_cap_ticks / factor) {
      delay = config.backoff_base_ticks * factor;
    }
  }
  delay += DeterministicJitter(source, attempt, config.jitter_ticks);
  return delay == 0 ? 1 : delay;
}

SourceMembership OnProbeSuccess(const SourceMembership& m,
                                std::string_view /*source*/, uint64_t now) {
  SourceMembership out = m;
  out.state = SourceState::kHealthy;
  out.breaker = BreakerState::kClosed;
  out.consecutive_failures = 0;
  out.probe_attempt = 0;
  out.lease_expires = now + out.config.lease_ticks;
  out.next_probe = now + out.config.probe_interval_ticks;
  return out;
}

SourceMembership OnProbeFailure(const SourceMembership& m,
                                std::string_view source, uint64_t now) {
  SourceMembership out = m;
  ++out.consecutive_failures;
  ++out.probe_attempt;
  const bool half_open_failed = m.breaker == BreakerState::kHalfOpen;
  const bool threshold_reached =
      m.breaker == BreakerState::kClosed &&
      out.consecutive_failures >= out.config.breaker_threshold;
  if (half_open_failed || threshold_reached) {
    out.breaker = BreakerState::kOpen;
    out.state = SourceState::kQuarantined;
    out.next_probe =
        now + out.config.breaker_open_ticks +
        DeterministicJitter(source, out.probe_attempt, out.config.jitter_ticks);
  } else {
    out.state = SourceState::kSuspect;
    out.next_probe = now + BackoffDelay(out.config, source, out.probe_attempt);
  }
  return out;
}

bool LeaseExpired(const SourceMembership& m, uint64_t now) {
  return m.state != SourceState::kDeparted && m.lease_expires <= now;
}

std::string SerializeMembership(const std::string& source,
                                const SourceMembership& m) {
  std::ostringstream os;
  os << source << " " << SourceStateToString(m.state) << " "
     << BreakerStateToString(m.breaker) << " failures="
     << m.consecutive_failures << " lease=" << m.lease_expires
     << " next=" << m.next_probe << " attempt=" << m.probe_attempt
     << " cfg=" << m.config.lease_ticks << "," << m.config.probe_interval_ticks
     << "," << m.config.backoff_base_ticks << "," << m.config.backoff_cap_ticks
     << "," << m.config.jitter_ticks << "," << m.config.breaker_threshold
     << "," << m.config.breaker_open_ticks << ","
     << m.config.slow_threshold_ticks;
  return os.str();
}

namespace {

Result<uint64_t> ParseU64(std::string_view text, std::string_view what) {
  uint64_t value = 0;
  if (text.empty()) {
    return Status::ParseError("empty " + std::string(what));
  }
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::ParseError("bad " + std::string(what) + ": " +
                                std::string(text));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// Extracts the value of a "key=value" token, verifying the key.
Result<uint64_t> KeyedU64(const std::string& token, std::string_view key) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || std::string_view(token).substr(0, eq) != key) {
    return Status::ParseError("membership record expects '" +
                              std::string(key) + "=...', got: " + token);
  }
  return ParseU64(std::string_view(token).substr(eq + 1), key);
}

}  // namespace

Result<NamedMembership> ParseMembership(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream is{std::string(Trim(line))};
  std::string token;
  while (is >> token) tokens.push_back(token);
  if (tokens.size() != 8) {
    return Status::ParseError("malformed membership record: " +
                              std::string(line));
  }
  NamedMembership named;
  named.source = tokens[0];
  SourceMembership& m = named.membership;
  EVE_ASSIGN_OR_RETURN(m.state, ParseSourceState(tokens[1]));
  EVE_ASSIGN_OR_RETURN(m.breaker, ParseBreakerState(tokens[2]));
  EVE_ASSIGN_OR_RETURN(const uint64_t failures,
                       KeyedU64(tokens[3], "failures"));
  m.consecutive_failures = static_cast<uint32_t>(failures);
  EVE_ASSIGN_OR_RETURN(m.lease_expires, KeyedU64(tokens[4], "lease"));
  EVE_ASSIGN_OR_RETURN(m.next_probe, KeyedU64(tokens[5], "next"));
  EVE_ASSIGN_OR_RETURN(m.probe_attempt, KeyedU64(tokens[6], "attempt"));
  const size_t eq = tokens[7].find('=');
  if (eq == std::string::npos ||
      std::string_view(tokens[7]).substr(0, eq) != "cfg") {
    return Status::ParseError("membership record missing cfg=: " + tokens[7]);
  }
  const std::vector<std::string> cfg =
      Split(std::string_view(tokens[7]).substr(eq + 1), ',');
  if (cfg.size() != 8) {
    return Status::ParseError("membership cfg expects 8 fields: " + tokens[7]);
  }
  SourceConfig& c = m.config;
  EVE_ASSIGN_OR_RETURN(c.lease_ticks, ParseU64(cfg[0], "cfg.lease"));
  EVE_ASSIGN_OR_RETURN(c.probe_interval_ticks, ParseU64(cfg[1], "cfg.probe"));
  EVE_ASSIGN_OR_RETURN(c.backoff_base_ticks, ParseU64(cfg[2], "cfg.base"));
  EVE_ASSIGN_OR_RETURN(c.backoff_cap_ticks, ParseU64(cfg[3], "cfg.cap"));
  EVE_ASSIGN_OR_RETURN(c.jitter_ticks, ParseU64(cfg[4], "cfg.jitter"));
  EVE_ASSIGN_OR_RETURN(const uint64_t threshold,
                       ParseU64(cfg[5], "cfg.threshold"));
  c.breaker_threshold = static_cast<uint32_t>(threshold);
  EVE_ASSIGN_OR_RETURN(c.breaker_open_ticks, ParseU64(cfg[6], "cfg.open"));
  EVE_ASSIGN_OR_RETURN(c.slow_threshold_ticks, ParseU64(cfg[7], "cfg.slow"));
  return named;
}

}  // namespace federation
}  // namespace eve
