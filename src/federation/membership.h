// Federation membership: the per-source state machine that turns an
// unreliable probe stream into crisp membership states. The paper assumes
// sources announce departures cleanly; real federations see sources that
// time out, flap and return garbage long before they truly leave, so a
// source moves through
//
//   HEALTHY --probe failure--> SUSPECT --threshold failures--> QUARANTINED
//      ^            |                          |
//      +--success---+------------(half-open probe succeeds)----+
//
//   any state --lease expiry--> DEPARTED   (the only transition that fires
//                                           the SourceLeaves CVS cascade)
//
// and only DEPARTED triggers rewriting churn: a transient outage that heals
// within the lease never touches a view. All time is a logical tick count —
// no wall clocks anywhere — so every schedule is replayable bit-for-bit.
//
// This header is dependency-light (common/ only): the structs here are
// stored inside EveSystem, journaled as kSourceMembership records, and
// checkpointed in the FEDERATION section (see eve/journal.h). The probe
// scheduler driving the transitions lives in federation/monitor.h.

#ifndef EVE_FEDERATION_MEMBERSHIP_H_
#define EVE_FEDERATION_MEMBERSHIP_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace eve {
namespace federation {

enum class SourceState { kHealthy, kSuspect, kQuarantined, kDeparted };

// Per-source circuit breaker. kClosed: probes flow on the normal/backoff
// schedule. kOpen: tripped after `breaker_threshold` consecutive failures;
// no probes until the cooldown elapses. kHalfOpen: cooldown elapsed, one
// trial probe in flight — success closes the breaker, failure re-opens it.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view SourceStateToString(SourceState state);
std::string_view BreakerStateToString(BreakerState state);
Result<SourceState> ParseSourceState(std::string_view word);
Result<BreakerState> ParseBreakerState(std::string_view word);

// Per-source knobs (all in logical ticks). Defaults keep the invariant
// lease_ticks >> backoff_cap_ticks + breaker_open_ticks, so a single
// healed outage can never expire the lease between two probes.
struct SourceConfig {
  uint64_t lease_ticks = 120;          // departure deadline after last success
  uint64_t probe_interval_ticks = 10;  // healthy probing cadence
  uint64_t backoff_base_ticks = 2;     // first retry delay after a failure
  uint64_t backoff_cap_ticks = 32;     // exponential backoff ceiling
  uint64_t jitter_ticks = 3;           // deterministic jitter width (0 = none)
  uint32_t breaker_threshold = 3;      // consecutive failures that trip
  uint64_t breaker_open_ticks = 24;    // cooldown before the half-open probe
  uint64_t slow_threshold_ticks = 4;   // slower replies count as failures

  bool operator==(const SourceConfig&) const = default;
};

// The durable per-source record. Absolute tick values, so a "set" journal
// record replays idempotently to the exact same state.
struct SourceMembership {
  SourceState state = SourceState::kHealthy;
  BreakerState breaker = BreakerState::kClosed;
  uint32_t consecutive_failures = 0;
  uint64_t lease_expires = 0;  // tick at which the lease lapses
  uint64_t next_probe = 0;     // next scheduled probe tick
  uint64_t probe_attempt = 0;  // failures since last success (backoff exp.)
  SourceConfig config;

  bool operator==(const SourceMembership&) const = default;

  // SUSPECT or QUARANTINED: constraints stay usable from the last-known
  // snapshot, but rewritings that depend on this source are provisional.
  bool Degraded() const {
    return state == SourceState::kSuspect ||
           state == SourceState::kQuarantined;
  }
};

// A freshly (re-)admitted source: healthy, lease and first probe scheduled
// from `now`.
SourceMembership MakeHealthy(const SourceConfig& config, uint64_t now);

// Deterministic jitter in [0, width): a pure function of (source, attempt),
// so two runs of the same schedule probe at identical ticks while distinct
// sources never thunder in lockstep. FNV-1a; width 0 yields 0.
uint64_t DeterministicJitter(std::string_view source, uint64_t attempt,
                             uint64_t width);

// Capped exponential backoff + jitter for the `attempt`-th consecutive
// failure (1-based): min(cap, base * 2^(attempt-1)) + jitter, at least 1.
uint64_t BackoffDelay(const SourceConfig& config, std::string_view source,
                      uint64_t attempt);

// Pure transition functions (the monitor applies them, EveSystem journals
// the result). Success renews the lease and fully heals: breaker closed,
// counters reset, next probe on the healthy cadence. Failure escalates:
// below the breaker threshold the source turns SUSPECT and retries on the
// backoff schedule; at the threshold (or on a failed half-open probe) the
// breaker opens, the source is QUARANTINED, and the next probe waits out
// the cooldown. Neither renews the lease: only real replies do.
SourceMembership OnProbeSuccess(const SourceMembership& m,
                                std::string_view source, uint64_t now);
SourceMembership OnProbeFailure(const SourceMembership& m,
                                std::string_view source, uint64_t now);

bool LeaseExpired(const SourceMembership& m, uint64_t now);

// Single-line lossless text encoding for journal records, checkpoints and
// tests. ParseMembership inverts SerializeMembership exactly. Source names
// are MISD identifiers, so they never contain whitespace.
std::string SerializeMembership(const std::string& source,
                                const SourceMembership& m);

struct NamedMembership {
  std::string source;
  SourceMembership membership;
};

Result<NamedMembership> ParseMembership(std::string_view line);

}  // namespace federation
}  // namespace eve

#endif  // EVE_FEDERATION_MEMBERSHIP_H_
