#include "federation/monitor.h"

#include <optional>
#include <vector>

#include "common/failpoint.h"

namespace eve {
namespace federation {

FederationMonitor::FederationMonitor(EveSystem* system,
                                     SourceTransport* transport,
                                     SourceConfig default_config)
    : system_(system),
      transport_(transport),
      default_config_(default_config) {}

Status FederationMonitor::TrackSources() {
  for (const std::string& source : system_->mkb().catalog().SourceNames()) {
    EVE_RETURN_IF_ERROR(TrackSource(source));
  }
  return Status::OK();
}

Status FederationMonitor::TrackSource(const std::string& source) {
  if (system_->source_membership().count(source) > 0) return Status::OK();
  return system_->SetSourceMembership(source,
                                      MakeHealthy(default_config_, now_));
}

Status FederationMonitor::AdvanceTo(uint64_t now) {
  while (now_ < now) {
    EVE_RETURN_IF_ERROR(Step(now_ + 1));
    ++now_;
  }
  return Status::OK();
}

void FederationMonitor::SetProbeParallelism(size_t threads) {
  if (threads <= 1) {
    probe_pool_.reset();
  } else {
    // The calling thread participates in ParallelFor, so the pool carries
    // one worker fewer than the requested parallelism.
    probe_pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
}

Status FederationMonitor::Step(uint64_t tick) {
  // Stage 1: lease expiries. Departure wins over any probe at the same
  // tick — a reply arriving at the expiry instant is already too late.
  // Collect names first: DepartSource mutates the membership table.
  std::vector<std::string> expired;
  for (const auto& [source, membership] : system_->source_membership()) {
    if (LeaseExpired(membership, tick)) expired.push_back(source);
  }
  for (const std::string& source : expired) {
    EVE_RETURN_IF_ERROR(system_->DepartSource(source).status());
    ++stats_.departures;
  }

  // Stage 2: half-open tripped breakers whose cooldown elapsed, journaled
  // BEFORE the trial probe so a crash during the probe recovers to a row
  // that says the trial was already underway.
  std::vector<std::string> due;
  for (const auto& [source, membership] : system_->source_membership()) {
    if (membership.state == SourceState::kDeparted) continue;
    if (tick < membership.next_probe) continue;
    if (membership.breaker == BreakerState::kOpen) {
      SourceMembership half_open = membership;
      half_open.breaker = BreakerState::kHalfOpen;
      EVE_RETURN_IF_ERROR(system_->SetSourceMembership(source, half_open));
    }
    due.push_back(source);  // map iteration: name-sorted
  }

  // Deadline gate: spend one unit per due probe here, on the calling
  // thread, in name order — the skip set is fixed BEFORE the fan-out, so
  // it cannot depend on probe parallelism or worker timing. A skipped
  // probe's row is untouched; it stays due and retries next tick.
  if (token_.valid()) {
    std::vector<std::string> admitted;
    admitted.reserve(due.size());
    for (std::string& source : due) {
      if (token_.Spend(1)) {
        admitted.push_back(std::move(source));
      } else {
        ++stats_.probes_skipped;
      }
    }
    due = std::move(admitted);
  }

  // Stage 3: fan the due probes out. ParallelFor tasks must not throw, so
  // a SimulatedCrash in the transport is parked in its slot and rethrown
  // on this thread (lowest index first) once every worker has finished.
  std::vector<std::optional<Result<ProbeReply>>> replies(due.size());
  std::vector<std::optional<SimulatedCrash>> crashes(due.size());
  ParallelFor(probe_pool_.get(), due.size(), [&](size_t i) {
    try {
      replies[i].emplace(transport_->Probe(due[i], tick));
    } catch (const SimulatedCrash& crash) {
      crashes[i].emplace(crash);
    }
  });
  for (const std::optional<SimulatedCrash>& crash : crashes) {
    if (crash.has_value()) throw *crash;
  }

  // Stage 4: fold replies through the transition functions, sequentially
  // in source-name order.
  for (size_t i = 0; i < due.size(); ++i) {
    const std::string& source = due[i];
    const SourceMembership current = system_->source_membership().at(source);
    const Result<ProbeReply>& reply = *replies[i];
    ++stats_.probes;
    bool healthy_reply = reply.ok();
    if (healthy_reply) {
      healthy_reply =
          reply->digest == ExpectedDigest(source) &&
          reply->latency_ticks <= current.config.slow_threshold_ticks;
    }
    const SourceMembership next =
        healthy_reply ? OnProbeSuccess(current, source, tick)
                      : OnProbeFailure(current, source, tick);
    if (healthy_reply) {
      ++stats_.successes;
    } else {
      ++stats_.failures;
    }
    if (next.state != current.state) ++stats_.state_transitions;
    EVE_RETURN_IF_ERROR(system_->SetSourceMembership(source, next));
  }
  return Status::OK();
}

}  // namespace federation
}  // namespace eve
