// FederationMonitor: the probe scheduler that turns transport replies into
// membership transitions. Each logical tick it (1) departs sources whose
// lease lapsed (the only path into the SourceLeaves CVS cascade),
// (2) half-opens tripped breakers whose cooldown elapsed, (3) fans the due
// probes out over a thread pool, and (4) folds the replies through the pure
// transition functions in membership.h, journaling every changed row via
// EveSystem::SetSourceMembership. Probing is parallel but evaluation is
// sequential in source-name order on the calling thread, so the journal,
// the membership table and the stats are byte-identical at any parallelism.

#ifndef EVE_FEDERATION_MONITOR_H_
#define EVE_FEDERATION_MONITOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "eve/eve_system.h"
#include "federation/membership.h"
#include "federation/transport.h"

namespace eve {
namespace federation {

struct MonitorStats {
  uint64_t probes = 0;
  uint64_t successes = 0;
  uint64_t failures = 0;
  // Membership rows whose SourceState changed (HEALTHY→SUSPECT, ...).
  uint64_t state_transitions = 0;
  // Lease expiries that ran the departure cascade.
  uint64_t departures = 0;
  // Due probes skipped because the deadline token refused them. Skipped
  // probes stay due and are retried on a later tick.
  uint64_t probes_skipped = 0;

  bool operator==(const MonitorStats&) const = default;
};

class FederationMonitor {
 public:
  // Neither pointer is owned; both must outlive the monitor.
  FederationMonitor(EveSystem* system, SourceTransport* transport,
                    SourceConfig default_config = {});

  // Admits every catalog source not already tracked, healthy as of now().
  // Each admission is journaled like any other membership write.
  Status TrackSources();
  Status TrackSource(const std::string& source);

  // Runs the scheduler for ticks now()+1 .. now. No-op when now <= now().
  Status AdvanceTo(uint64_t now);

  // One tick of the scheduler (see class comment for the four stages).
  Status Step(uint64_t tick);

  uint64_t now() const { return now_; }
  // Re-aligns the logical clock, e.g. after recovery to the journaled
  // schedule's current tick. Does not probe.
  void SetNow(uint64_t now) { now_ = now; }

  // Number of threads (including the caller) probing concurrently;
  // 0 and 1 both mean sequential. Results are identical at any setting.
  void SetProbeParallelism(size_t threads);

  // Budgets the probe fan-out: each due probe costs one unit, spent on the
  // CALLING thread in source-name order before the fan-out starts, so the
  // skip set is deterministic at any probe parallelism (a wall-clock
  // deadline on the token is best effort, like everywhere else). A default
  // token removes the limit.
  void SetDeadlineToken(DeadlineToken token) { token_ = std::move(token); }
  const DeadlineToken& deadline_token() const { return token_; }

  const MonitorStats& stats() const { return stats_; }
  const SourceConfig& default_config() const { return default_config_; }

 private:
  EveSystem* system_;         // non-owning
  SourceTransport* transport_;  // non-owning
  SourceConfig default_config_;
  uint64_t now_ = 0;
  std::unique_ptr<ThreadPool> probe_pool_;
  DeadlineToken token_;
  MonitorStats stats_;
};

}  // namespace federation
}  // namespace eve

#endif  // EVE_FEDERATION_MONITOR_H_
