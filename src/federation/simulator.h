// FederationSimulator: the end-to-end fault-schedule harness. It drives one
// EveSystem through a scripted (or seeded-random) schedule of capability
// changes and transport faults, advancing the federation monitor tick by
// tick, then checks the convergence property the federation layer promises:
// every view ends correctly rewritten (its definition still binds against
// the final MKB), explicitly disabled, or provisional with every underlying
// lease still live — never silently wrong. Everything is keyed off the
// logical clock and a caller-supplied seed, so any run replays bit-for-bit.

#ifndef EVE_FEDERATION_SIMULATOR_H_
#define EVE_FEDERATION_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "eve/eve_system.h"
#include "federation/membership.h"
#include "federation/monitor.h"
#include "federation/transport.h"
#include "mkb/capability_change.h"

namespace eve {
namespace federation {

struct SimOptions {
  uint64_t ticks = 400;
  uint64_t seed = 1;
  // Per-tick, per-source probability that a fault window opens.
  double fault_rate = 0.05;
  // Caps randomized windows so every faulted source provably recovers
  // before its lease expires (and before the run ends): transient outages
  // then never cause departures, and the final report log must converge to
  // the fault-free run's, byte for byte.
  bool heal_within_lease = true;
  SourceConfig config;
  size_t probe_parallelism = 1;
};

struct SimResult {
  MonitorStats stats;
  uint64_t fault_windows = 0;
  uint64_t changes_applied = 0;
  // Scheduled changes whose application failed — e.g. the relation was
  // already dropped by a departure cascade racing the schedule.
  uint64_t changes_rejected = 0;
  // Rewriting churn over the run's change reports.
  uint64_t views_rewritten = 0;
  uint64_t views_disabled = 0;
  // Outcomes that carried provisional marks when their report was appended.
  // Sampled at append time: a later heal erases the marks from the log in
  // place, so a healed run still records that it went provisional.
  uint64_t provisional_outcomes = 0;
  // Convergence-property violations; empty means the run converged.
  std::vector<std::string> violations;
  // Final durable state, for byte-identity comparisons across schedules.
  std::string final_mkb;        // SaveMkb
  std::string final_views;      // SaveViews (includes provisional marks)
  std::string final_membership; // SaveFederation (includes schedule fields)
  std::vector<std::string> report_log;  // ChangeReport::ToString, run only

  // The state two schedules must agree on when both healed within lease:
  // MKB + view pool + report log + per-source health. Membership
  // scheduling fields (next_probe, lease_expires) legitimately differ
  // between schedules and are excluded.
  std::string Fingerprint() const;
};

class FederationSimulator {
 public:
  // `system` is not owned and should carry the MKB and views under test.
  explicit FederationSimulator(EveSystem* system, SimOptions options = {});

  // Scripted events. Changes at one tick apply in insertion order, before
  // that tick's probes run.
  void ScheduleChange(uint64_t tick, CapabilityChange change);
  void ScheduleFault(const std::string& source,
                     SimulatedTransport::FaultWindow window);

  // Seeds std::mt19937_64(options.seed) and scatters fault windows of
  // random kind over every catalog source at options.fault_rate. With
  // heal_within_lease, window lengths and end ticks are capped so every
  // source heals before its lease (and the run) ends.
  void RandomizeFaults();

  SimulatedTransport& transport() { return transport_; }

  // Tracks all sources, runs the schedule, checks convergence.
  Result<SimResult> Run();

 private:
  void CheckConvergence(uint64_t now, std::vector<std::string>* violations);

  EveSystem* system_;  // non-owning
  SimOptions options_;
  SimulatedTransport transport_;
  std::map<uint64_t, std::vector<CapabilityChange>> scheduled_changes_;
  uint64_t fault_windows_ = 0;
};

}  // namespace federation
}  // namespace eve

#endif  // EVE_FEDERATION_SIMULATOR_H_
