#include "federation/simulator.h"

#include <algorithm>
#include <random>
#include <sstream>

#include "common/str_util.h"
#include "esql/binder.h"
#include "eve/journal.h"
#include "eve/view_pool_io.h"
#include "mkb/serializer.h"

namespace eve {
namespace federation {

std::string SimResult::Fingerprint() const {
  std::ostringstream os;
  os << final_mkb << "\n" << final_views << "\n";
  for (const std::string& report : report_log) os << report;
  for (const std::string& line : Split(final_membership, '\n')) {
    // "<source> <state> ..." — keep only the health part; scheduling
    // fields phase-shift between schedules.
    const std::vector<std::string> tokens = Split(Trim(line), ' ');
    if (tokens.size() >= 2) os << tokens[0] << " " << tokens[1] << "\n";
  }
  return os.str();
}

FederationSimulator::FederationSimulator(EveSystem* system, SimOptions options)
    : system_(system), options_(options) {}

void FederationSimulator::ScheduleChange(uint64_t tick,
                                         CapabilityChange change) {
  scheduled_changes_[tick].push_back(std::move(change));
}

void FederationSimulator::ScheduleFault(
    const std::string& source, SimulatedTransport::FaultWindow window) {
  transport_.AddFault(source, window);
  ++fault_windows_;
}

void FederationSimulator::RandomizeFaults() {
  std::mt19937_64 rng(options_.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> kind_die(0, 3);
  const SourceConfig& cfg = options_.config;
  // Worst-case ticks from window end to the next (succeeding) probe: the
  // larger of a capped backoff retry and a breaker cooldown, plus jitter.
  const uint64_t recovery_margin =
      std::max(cfg.backoff_cap_ticks, cfg.breaker_open_ticks) +
      cfg.jitter_ticks + 1;
  // Length cap so the lease (renewed at most probe_interval before the
  // window opened) outlives the window plus the recovery probe.
  const uint64_t heal_len_cap =
      cfg.lease_ticks > cfg.probe_interval_ticks + recovery_margin + 1
          ? cfg.lease_ticks - cfg.probe_interval_ticks - recovery_margin - 1
          : 1;
  for (const std::string& source : system_->mkb().catalog().SourceNames()) {
    uint64_t tick = 1;
    while (tick + 1 < options_.ticks) {
      if (coin(rng) >= options_.fault_rate) {
        ++tick;
        continue;
      }
      uint64_t max_len = options_.ticks - tick;
      if (options_.heal_within_lease) {
        max_len = std::min(max_len, heal_len_cap);
        // Leave room at the end of the run for the recovery probe, so a
        // healed schedule finishes all-healthy.
        if (tick + max_len + recovery_margin >= options_.ticks) {
          if (options_.ticks < tick + recovery_margin + 2) break;
          max_len = options_.ticks - tick - recovery_margin - 1;
        }
      }
      if (max_len == 0) break;
      std::uniform_int_distribution<uint64_t> len_die(1, max_len);
      const uint64_t length = len_die(rng);
      SimulatedTransport::FaultWindow window;
      window.from = tick;
      window.to = tick + length;
      window.kind = static_cast<SimulatedTransport::FaultKind>(kind_die(rng));
      ScheduleFault(source, window);
      tick += length + 1;
      // In heal mode consecutive windows need a gap wide enough for the
      // recovery probe to land (and succeed, renewing the lease) and the
      // healthy cadence to resume — a 1-tick gap lets a backoff or breaker
      // delay jump straight into the next window, starving the lease
      // across what the caps treated as independent outages.
      if (options_.heal_within_lease) {
        tick += recovery_margin + cfg.probe_interval_ticks;
      }
    }
  }
}

void FederationSimulator::CheckConvergence(
    uint64_t now, std::vector<std::string>* violations) {
  const auto& membership = system_->source_membership();
  for (const std::string& name : system_->ViewNames()) {
    const RegisteredView* view = *system_->GetView(name);
    if (view->state == ViewState::kDisabled) continue;  // explicitly out
    if (view->provisional_sources.empty()) {
      // Claims to be correctly rewritten: the definition must still bind
      // against the final MKB.
      const Result<ViewDefinition> bound =
          BindView(view->definition.ToParsedView(), system_->mkb().catalog());
      if (!bound.ok()) {
        violations->push_back("view " + name +
                              " is active and non-provisional but does not "
                              "bind: " +
                              bound.status().message());
      }
      continue;
    }
    // Provisional: every underlying source must still be degraded (not
    // healed, not departed) with a live lease — otherwise the mark should
    // have been cleared or the view synchronized.
    for (const std::string& source : view->provisional_sources) {
      const auto it = membership.find(source);
      if (it == membership.end()) {
        violations->push_back("view " + name +
                              " is provisional on untracked source " + source);
        continue;
      }
      if (!it->second.Degraded()) {
        violations->push_back(
            "view " + name + " is provisional on source " + source +
            " in state " + std::string(SourceStateToString(it->second.state)));
      } else if (it->second.lease_expires <= now) {
        violations->push_back("view " + name + " is provisional on source " +
                              source + " whose lease lapsed");
      }
    }
  }
}

Result<SimResult> FederationSimulator::Run() {
  SimResult result;
  FederationMonitor monitor(system_, &transport_, options_.config);
  monitor.SetProbeParallelism(options_.probe_parallelism);
  EVE_RETURN_IF_ERROR(monitor.TrackSources());
  const size_t log_before = system_->change_log().size();
  // Provisional marks must be sampled when a report is appended: a later
  // heal erases them from the log in place (that is the whole point), so a
  // post-run scan of a healed schedule would always count zero.
  size_t scanned = log_before;
  const auto scan_new_reports = [&] {
    for (; scanned < system_->change_log().size(); ++scanned) {
      for (const ViewOutcome& outcome :
           system_->change_log()[scanned].outcomes) {
        if (!outcome.provisional_sources.empty()) {
          ++result.provisional_outcomes;
        }
      }
    }
  };
  for (uint64_t tick = 1; tick <= options_.ticks; ++tick) {
    const auto scheduled = scheduled_changes_.find(tick);
    if (scheduled != scheduled_changes_.end()) {
      for (const CapabilityChange& change : scheduled->second) {
        // A schedule can race a departure cascade (the relation is already
        // gone); that rejection is part of federation life, not a harness
        // failure.
        if (system_->ApplyChange(change).ok()) {
          ++result.changes_applied;
        } else {
          ++result.changes_rejected;
        }
      }
      scan_new_reports();
    }
    EVE_RETURN_IF_ERROR(monitor.AdvanceTo(tick));
    scan_new_reports();  // departure cascades append reports too
  }
  result.stats = monitor.stats();
  result.fault_windows = fault_windows_;
  for (size_t i = log_before; i < system_->change_log().size(); ++i) {
    const ChangeReport& report = system_->change_log()[i];
    result.views_rewritten += report.CountOutcome(ViewOutcomeKind::kRewritten);
    result.views_disabled += report.CountOutcome(ViewOutcomeKind::kDisabled);
    result.report_log.push_back(report.ToString());
  }
  result.final_mkb = SaveMkb(system_->mkb());
  result.final_views = SaveViews(*system_);
  result.final_membership = SaveFederation(*system_);
  CheckConvergence(options_.ticks, &result.violations);
  return result;
}

}  // namespace federation
}  // namespace eve
