// SourceTransport: the probe channel between the federation monitor and an
// information source. Production deployments would put an RPC client here;
// this repo ships a deterministic in-process simulation whose faults —
// probe timeout, slow response, alternating flap, byte corruption — are
// injected either from scripted per-source tick windows or through
// common/failpoint sites (EVE_FAILPOINTS), so randomized fault schedules
// replay bit-for-bit and chaos CI can steer the transport from the
// environment.

#ifndef EVE_FEDERATION_TRANSPORT_H_
#define EVE_FEDERATION_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace eve {
namespace federation {

struct ProbeReply {
  // How long the source took to answer, in logical ticks. The monitor
  // counts replies slower than SourceConfig::slow_threshold_ticks as
  // failures — a source that answers but too late is not healthy.
  uint64_t latency_ticks = 0;
  // Capability digest; a healthy source echoes ExpectedDigest(source).
  // Anything else is byte corruption and counts as a failure.
  std::string digest;
};

// The digest a healthy source returns for itself.
std::string ExpectedDigest(std::string_view source);

class SourceTransport {
 public:
  virtual ~SourceTransport() = default;

  // Sends one probe at logical time `tick`. A transport-level fault
  // (timeout, connection loss) is a non-OK Status; degraded replies (slow,
  // corrupt) come back as OK replies the monitor inspects.
  virtual Result<ProbeReply> Probe(const std::string& source,
                                   uint64_t tick) = 0;
};

// Deterministic simulated federation link. Thread-safe: the monitor fans
// probes out over common/thread_pool.
class SimulatedTransport final : public SourceTransport {
 public:
  enum class FaultKind { kTimeout, kSlow, kCorrupt, kFlap };

  // Ticks in [from, to) misbehave with `kind`. kFlap alternates: every
  // other probe inside the window times out, the rest succeed.
  struct FaultWindow {
    uint64_t from = 0;
    uint64_t to = 0;
    FaultKind kind = FaultKind::kTimeout;
  };

  void AddFault(const std::string& source, FaultWindow window);
  void ClearFaults();

  Result<ProbeReply> Probe(const std::string& source, uint64_t tick) override;

  uint64_t probes_sent() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<FaultWindow>> faults_;
  std::map<std::string, uint64_t> flap_counter_;
  uint64_t probes_ = 0;
};

std::string_view FaultKindToString(SimulatedTransport::FaultKind kind);
Result<SimulatedTransport::FaultKind> ParseFaultKind(std::string_view word);

}  // namespace federation
}  // namespace eve

#endif  // EVE_FEDERATION_TRANSPORT_H_
