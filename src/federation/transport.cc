#include "federation/transport.h"

#include <optional>

#include "common/failpoint.h"
#include "common/str_util.h"

namespace eve {
namespace federation {

namespace {

// Latency of a "slow response" fault: far beyond any sane
// slow_threshold_ticks, so the monitor always classifies it as a failure.
constexpr uint64_t kSlowLatencyTicks = 1000;

}  // namespace

std::string ExpectedDigest(std::string_view source) {
  return "ok:" + std::string(source);
}

void SimulatedTransport::AddFault(const std::string& source,
                                  FaultWindow window) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[source].push_back(window);
}

void SimulatedTransport::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  flap_counter_.clear();
}

uint64_t SimulatedTransport::probes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_;
}

Result<ProbeReply> SimulatedTransport::Probe(const std::string& source,
                                             uint64_t tick) {
  // Generic send-path fault: an armed error here is a lost probe (the
  // monitor sees a timeout-class failure); a crash models the monitor
  // process dying mid-probe.
  EVE_FAILPOINT(fp::kFederationProbeSend);
  // Fault-kind sites: arming one with the error action (EVE_FAILPOINTS or
  // tests) converts the Nth upcoming probe into that fault, independent of
  // any scripted window.
  std::optional<FaultKind> fault;
  if (!Failpoints::Instance().Hit(fp::kFederationProbeTimeout).ok()) {
    fault = FaultKind::kTimeout;
  } else if (!Failpoints::Instance().Hit(fp::kFederationProbeSlow).ok()) {
    fault = FaultKind::kSlow;
  } else if (!Failpoints::Instance().Hit(fp::kFederationProbeCorrupt).ok()) {
    fault = FaultKind::kCorrupt;
  } else if (!Failpoints::Instance().Hit(fp::kFederationProbeFlap).ok()) {
    fault = FaultKind::kFlap;
  }
  bool flap_fails = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++probes_;
    if (!fault.has_value()) {
      const auto it = faults_.find(source);
      if (it != faults_.end()) {
        for (const FaultWindow& window : it->second) {
          if (tick >= window.from && tick < window.to) {
            fault = window.kind;
            break;
          }
        }
      }
    }
    if (fault == FaultKind::kFlap) {
      flap_fails = (flap_counter_[source]++ % 2) == 0;
    }
  }
  if (fault.has_value()) {
    switch (*fault) {
      case FaultKind::kTimeout:
        return Status::FailedPrecondition("probe timed out: " + source);
      case FaultKind::kSlow: {
        ProbeReply reply;
        reply.latency_ticks = kSlowLatencyTicks;
        reply.digest = ExpectedDigest(source);
        return reply;
      }
      case FaultKind::kCorrupt: {
        // Byte corruption: the digest comes back with one byte flipped at a
        // tick-dependent position.
        ProbeReply reply;
        reply.latency_ticks = 1;
        reply.digest = ExpectedDigest(source);
        reply.digest[tick % reply.digest.size()] ^= 0x5A;
        return reply;
      }
      case FaultKind::kFlap:
        if (flap_fails) {
          return Status::FailedPrecondition("probe timed out (flap): " +
                                            source);
        }
        break;  // the other half of the flap succeeds
    }
  }
  ProbeReply reply;
  reply.latency_ticks = 1;
  reply.digest = ExpectedDigest(source);
  return reply;
}

std::string_view FaultKindToString(SimulatedTransport::FaultKind kind) {
  switch (kind) {
    case SimulatedTransport::FaultKind::kTimeout:
      return "timeout";
    case SimulatedTransport::FaultKind::kSlow:
      return "slow";
    case SimulatedTransport::FaultKind::kCorrupt:
      return "corrupt";
    case SimulatedTransport::FaultKind::kFlap:
      return "flap";
  }
  return "unknown";
}

Result<SimulatedTransport::FaultKind> ParseFaultKind(std::string_view word) {
  if (EqualsIgnoreCase(word, "timeout")) {
    return SimulatedTransport::FaultKind::kTimeout;
  }
  if (EqualsIgnoreCase(word, "slow")) {
    return SimulatedTransport::FaultKind::kSlow;
  }
  if (EqualsIgnoreCase(word, "corrupt")) {
    return SimulatedTransport::FaultKind::kCorrupt;
  }
  if (EqualsIgnoreCase(word, "flap")) {
    return SimulatedTransport::FaultKind::kFlap;
  }
  return Status::ParseError("unknown fault kind: " + std::string(word));
}

}  // namespace federation
}  // namespace eve
