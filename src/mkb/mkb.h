// Mkb: the meta-knowledge base — the catalog of IS descriptions plus all
// MISD semantic constraints, with lookup APIs used by the hypergraph and
// the CVS algorithm.

#ifndef EVE_MKB_MKB_H_
#define EVE_MKB_MKB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "mkb/constraints.h"

namespace eve {

class Mkb {
 public:
  Mkb() = default;

  // --- Structural descriptions (delegated to the catalog) ---------------
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  Status AddRelation(RelationDef def) {
    return catalog_.AddRelation(std::move(def));
  }

  // --- Constraint registration (validated against the catalog) ----------
  // Rejects: unknown relations/attributes, ids already in use, self-joins,
  // clause attributes outside {lhs, rhs}.
  Status AddJoinConstraint(JoinConstraint jc);
  // Rejects: unknown endpoints, identical target and source relation,
  // fn referencing anything but `source`.
  Status AddFunctionOf(FunctionOfConstraint fc);
  // Rejects: unknown relations/attributes, attribute list arity mismatch.
  Status AddPCConstraint(PCConstraint pc);

  // Removes the constraint (of any kind) with the given id — a source
  // withdrawing a previously published semantic relationship. NotFound if
  // no constraint carries the id.
  Status RemoveConstraint(const std::string& id);

  // --- Queries -----------------------------------------------------------
  const std::vector<JoinConstraint>& join_constraints() const {
    return join_constraints_;
  }
  const std::vector<FunctionOfConstraint>& function_of_constraints() const {
    return function_of_constraints_;
  }
  const std::vector<PCConstraint>& pc_constraints() const {
    return pc_constraints_;
  }

  // All lookups below are served from hash indexes maintained through
  // every mutation (O(1) amortized, results in registration order — the
  // same order the former linear scans produced). See docs/PERFORMANCE.md
  // for the index invariants.

  // All join constraints with `relation` as an endpoint.
  std::vector<const JoinConstraint*> JoinConstraintsOf(
      const std::string& relation) const;

  // All join constraints between `a` and `b` (either orientation).
  std::vector<const JoinConstraint*> JoinConstraintsBetween(
      const std::string& a, const std::string& b) const;

  // Function-of constraints whose target is `attr` — the candidate covers
  // for `attr` (paper Def. 3 (IV)).
  std::vector<const FunctionOfConstraint*> CoversOf(
      const AttributeRef& attr) const;

  // PC constraints mentioning both `a` and `b` (either orientation).
  std::vector<const PCConstraint*> PCConstraintsBetween(
      const std::string& a, const std::string& b) const;

  Result<const JoinConstraint*> GetJoinConstraint(const std::string& id) const;
  Result<const FunctionOfConstraint*> GetFunctionOf(
      const std::string& id) const;

  // Multi-line dump of all descriptions and constraints.
  std::string ToString() const;

 private:
  enum class ConstraintKind { kJoin, kFunctionOf, kPc };
  struct ConstraintSlot {
    ConstraintKind kind;
    size_t index;  // into the kind's constraint vector
  };

  Status ValidateAttribute(const AttributeRef& ref,
                           const std::string& context) const;
  bool IdInUse(const std::string& id) const;

  // Records a freshly appended constraint in the lookup indexes.
  void IndexJoinConstraint(size_t index);
  void IndexFunctionOf(size_t index);
  void IndexPCConstraint(size_t index);
  // Rebuilds every index from the constraint vectors (after a removal,
  // which shifts vector indices).
  void Reindex();

  Catalog catalog_;
  std::vector<JoinConstraint> join_constraints_;
  std::vector<FunctionOfConstraint> function_of_constraints_;
  std::vector<PCConstraint> pc_constraints_;

  // Lookup indexes, derived from the vectors above and kept in sync by
  // every mutation. All values are indices (not pointers) so the default
  // copy of an Mkb keeps working indexes.
  std::unordered_map<std::string, ConstraintSlot> constraint_by_id_;
  // relation -> join constraints touching it.
  std::unordered_map<std::string, std::vector<size_t>> joins_by_relation_;
  // unordered relation pair -> join / PC constraints between them.
  std::unordered_map<std::string, std::vector<size_t>> joins_by_pair_;
  std::unordered_map<std::string, std::vector<size_t>> pcs_by_pair_;
  // target attribute -> function-of constraints covering it.
  std::unordered_map<std::string, std::vector<size_t>> covers_by_target_;
};

}  // namespace eve

#endif  // EVE_MKB_MKB_H_
