// MISD text format: a human-readable description language for IS
// capabilities and semantics (paper Sec. 2 presents MISD as exactly such a
// language). An MKB can be saved to and reloaded from this format, so
// source administrators can author descriptions in text:
//
//   SOURCE IS1 RELATION Customer (Name string, Addr string, Age int)
//       ORDER BY (Name)
//   JOIN CONSTRAINT JC1 BETWEEN Customer AND FlightRes
//       WHERE Customer.Name = FlightRes.PName
//   FUNCTION F3 Customer.Age = (DATE '2026-07-07' - "Accident-Ins".Birthday) / 365
//   PC PC1 Person (Name, PAddr) SUPERSET Customer (Name, Addr)
//
// Blank lines and "--" comments are ignored. Statements may span lines;
// each starts with one of the keywords SOURCE / JOIN / FUNCTION / PC.

#ifndef EVE_MKB_SERIALIZER_H_
#define EVE_MKB_SERIALIZER_H_

#include <array>
#include <string>
#include <string_view>

#include "common/result.h"
#include "mkb/mkb.h"

namespace eve {

// Renders the full MKB in MISD text form; LoadMkb(SaveMkb(m)) reproduces m.
std::string SaveMkb(const Mkb& mkb);

// The four MISD blocks of SaveMkb, rendered separately (relations, join
// constraints, function-of constraints, PC constraints — in that order).
// Concatenating all four reparses to the same MKB; the version store
// checksums and shares these segments individually so that a change
// touching only one block reuses the other three byte-for-byte.
std::array<std::string, 4> RenderMkbSegments(const Mkb& mkb);

// Renders one relation as its MISD SOURCE statement (no trailing newline).
// Also used to encode add-relation capability changes in the change journal.
std::string RenderRelationMisd(const RelationDef& def);

// Parses MISD text into a fresh MKB; all validation of Mkb::Add* applies.
Result<Mkb> LoadMkb(std::string_view text);

// Parses MISD statements into an EXISTING MKB — how new sources joining
// the environment publish their descriptions and semantics (paper Sec. 1:
// ISs join and leave frequently). Statements are applied in order; the
// first failure aborts (already-applied statements stay).
Status AppendMisd(Mkb* mkb, std::string_view text);

}  // namespace eve

#endif  // EVE_MKB_SERIALIZER_H_
