// Text-based authoring helpers for MKB constraints, so IS administrators
// (and tests) can write conditions in E-SQL syntax instead of building
// expression trees by hand.

#ifndef EVE_MKB_BUILDER_H_
#define EVE_MKB_BUILDER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "mkb/mkb.h"

namespace eve {

// Adds JC `id` between `lhs` and `rhs` with clauses parsed from
// `condition_text`, e.g. "Customer.Name = Person.Name AND Customer.Age > 1".
Status AddJoinConstraintText(Mkb* mkb, std::string id, std::string lhs,
                             std::string rhs, std::string_view condition_text);

// Adds F `id`: target = fn, with both sides parsed from text, e.g.
// target_text = "Customer.Age",
// fn_text     = "(DATE '2026-07-07' - \"Accident-Ins\".Birthday) / 365".
Status AddFunctionOfText(Mkb* mkb, std::string id,
                         std::string_view target_text,
                         std::string_view fn_text);

// Adds an identity F `id`: target = source.
Status AddIdentityFunctionOf(Mkb* mkb, std::string id, AttributeRef target,
                             AttributeRef source);

// Adds a PC constraint between projections without selections:
// π_{lhs_attrs}(lhs_rel) θ π_{rhs_attrs}(rhs_rel). Attribute lists are
// comma-separated unqualified names resolved against each relation.
Status AddProjectionPC(Mkb* mkb, std::string id, const std::string& lhs_rel,
                       std::string_view lhs_attrs, SetRelation relation,
                       const std::string& rhs_rel,
                       std::string_view rhs_attrs);

}  // namespace eve

#endif  // EVE_MKB_BUILDER_H_
