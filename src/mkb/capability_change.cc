#include "mkb/capability_change.h"

#include "common/str_util.h"
#include "mkb/serializer.h"
#include "sql/lexer.h"
#include "sql/printer.h"
#include "types/data_type.h"

namespace eve {

CapabilityChange CapabilityChange::AddRelation(RelationDef def) {
  CapabilityChange ch;
  ch.kind = Kind::kAddRelation;
  ch.relation = def.name;
  ch.new_relation = std::move(def);
  return ch;
}

CapabilityChange CapabilityChange::DeleteRelation(std::string relation) {
  CapabilityChange ch;
  ch.kind = Kind::kDeleteRelation;
  ch.relation = std::move(relation);
  return ch;
}

CapabilityChange CapabilityChange::RenameRelation(std::string relation,
                                                  std::string new_name) {
  CapabilityChange ch;
  ch.kind = Kind::kRenameRelation;
  ch.relation = std::move(relation);
  ch.new_name = std::move(new_name);
  return ch;
}

CapabilityChange CapabilityChange::AddAttribute(std::string relation,
                                                AttributeDef attr) {
  CapabilityChange ch;
  ch.kind = Kind::kAddAttribute;
  ch.relation = std::move(relation);
  ch.attribute = attr.name;
  ch.new_attribute = std::move(attr);
  return ch;
}

CapabilityChange CapabilityChange::DeleteAttribute(std::string relation,
                                                   std::string attribute) {
  CapabilityChange ch;
  ch.kind = Kind::kDeleteAttribute;
  ch.relation = std::move(relation);
  ch.attribute = std::move(attribute);
  return ch;
}

CapabilityChange CapabilityChange::RenameAttribute(std::string relation,
                                                   std::string attribute,
                                                   std::string new_name) {
  CapabilityChange ch;
  ch.kind = Kind::kRenameAttribute;
  ch.relation = std::move(relation);
  ch.attribute = std::move(attribute);
  ch.new_name = std::move(new_name);
  return ch;
}

std::string CapabilityChange::ToString() const {
  switch (kind) {
    case Kind::kAddRelation:
      return "add-relation " + relation;
    case Kind::kDeleteRelation:
      return "delete-relation " + relation;
    case Kind::kRenameRelation:
      return "rename-relation " + relation + " -> " + new_name;
    case Kind::kAddAttribute:
      return "add-attribute " + relation + "." + attribute;
    case Kind::kDeleteAttribute:
      return "delete-attribute " + relation + "." + attribute;
    case Kind::kRenameAttribute:
      return "rename-attribute " + relation + "." + attribute + " -> " +
             relation + "." + new_name;
  }
  return "?";
}

std::string SerializeChange(const CapabilityChange& change) {
  switch (change.kind) {
    case CapabilityChange::Kind::kAddRelation:
      return "add-relation " + RenderRelationMisd(change.new_relation);
    case CapabilityChange::Kind::kDeleteRelation:
      return "delete-relation " + QuoteIdentifier(change.relation);
    case CapabilityChange::Kind::kRenameRelation:
      return "rename-relation " + QuoteIdentifier(change.relation) + " " +
             QuoteIdentifier(change.new_name);
    case CapabilityChange::Kind::kAddAttribute:
      return "add-attribute " + QuoteIdentifier(change.relation) + " " +
             QuoteIdentifier(change.new_attribute.name) + " " +
             std::string(DataTypeToString(change.new_attribute.type));
    case CapabilityChange::Kind::kDeleteAttribute:
      return "delete-attribute " + QuoteIdentifier(change.relation) + " " +
             QuoteIdentifier(change.attribute);
    case CapabilityChange::Kind::kRenameAttribute:
      return "rename-attribute " + QuoteIdentifier(change.relation) + " " +
             QuoteIdentifier(change.attribute) + " " +
             QuoteIdentifier(change.new_name);
  }
  return "?";
}

namespace {

// Reads exactly `count` identifier tokens followed by end-of-input.
Result<std::vector<std::string>> ParseIdentifiers(std::string_view text,
                                                  size_t count) {
  EVE_ASSIGN_OR_RETURN(const std::vector<Token> tokens, Tokenize(text));
  std::vector<std::string> out;
  for (const Token& token : tokens) {
    if (token.is(TokenType::kEnd)) break;
    if (!token.is(TokenType::kIdentifier)) {
      return Status::ParseError("expected identifier in change encoding: " +
                                std::string(text));
    }
    out.push_back(token.text);
  }
  if (out.size() != count) {
    return Status::ParseError("change encoding expects " +
                              std::to_string(count) + " identifiers: " +
                              std::string(text));
  }
  return out;
}

}  // namespace

Result<CapabilityChange> ParseChange(std::string_view text) {
  const std::string_view trimmed = Trim(text);
  const size_t space = trimmed.find_first_of(" \t\n");
  if (space == std::string_view::npos) {
    return Status::ParseError("change encoding missing arguments: " +
                              std::string(trimmed));
  }
  const std::string_view kind = trimmed.substr(0, space);
  const std::string_view rest = Trim(trimmed.substr(space + 1));
  if (kind == "add-relation") {
    // The arguments are a complete MISD SOURCE statement.
    EVE_ASSIGN_OR_RETURN(const Mkb parsed, LoadMkb(rest));
    const std::vector<std::string> names = parsed.catalog().RelationNames();
    if (names.size() != 1) {
      return Status::ParseError(
          "add-relation encoding must define exactly one relation");
    }
    return CapabilityChange::AddRelation(
        *parsed.catalog().GetRelation(names[0]).value());
  }
  if (kind == "delete-relation") {
    EVE_ASSIGN_OR_RETURN(const std::vector<std::string> ids,
                         ParseIdentifiers(rest, 1));
    return CapabilityChange::DeleteRelation(ids[0]);
  }
  if (kind == "rename-relation") {
    EVE_ASSIGN_OR_RETURN(const std::vector<std::string> ids,
                         ParseIdentifiers(rest, 2));
    return CapabilityChange::RenameRelation(ids[0], ids[1]);
  }
  if (kind == "add-attribute") {
    EVE_ASSIGN_OR_RETURN(const std::vector<std::string> ids,
                         ParseIdentifiers(rest, 3));
    AttributeDef attr;
    attr.name = ids[1];
    EVE_ASSIGN_OR_RETURN(attr.type, DataTypeFromString(ids[2]));
    return CapabilityChange::AddAttribute(ids[0], std::move(attr));
  }
  if (kind == "delete-attribute") {
    EVE_ASSIGN_OR_RETURN(const std::vector<std::string> ids,
                         ParseIdentifiers(rest, 2));
    return CapabilityChange::DeleteAttribute(ids[0], ids[1]);
  }
  if (kind == "rename-attribute") {
    EVE_ASSIGN_OR_RETURN(const std::vector<std::string> ids,
                         ParseIdentifiers(rest, 3));
    return CapabilityChange::RenameAttribute(ids[0], ids[1], ids[2]);
  }
  return Status::ParseError("unknown change kind: " + std::string(kind));
}

}  // namespace eve
