#include "mkb/capability_change.h"

namespace eve {

CapabilityChange CapabilityChange::AddRelation(RelationDef def) {
  CapabilityChange ch;
  ch.kind = Kind::kAddRelation;
  ch.relation = def.name;
  ch.new_relation = std::move(def);
  return ch;
}

CapabilityChange CapabilityChange::DeleteRelation(std::string relation) {
  CapabilityChange ch;
  ch.kind = Kind::kDeleteRelation;
  ch.relation = std::move(relation);
  return ch;
}

CapabilityChange CapabilityChange::RenameRelation(std::string relation,
                                                  std::string new_name) {
  CapabilityChange ch;
  ch.kind = Kind::kRenameRelation;
  ch.relation = std::move(relation);
  ch.new_name = std::move(new_name);
  return ch;
}

CapabilityChange CapabilityChange::AddAttribute(std::string relation,
                                                AttributeDef attr) {
  CapabilityChange ch;
  ch.kind = Kind::kAddAttribute;
  ch.relation = std::move(relation);
  ch.attribute = attr.name;
  ch.new_attribute = std::move(attr);
  return ch;
}

CapabilityChange CapabilityChange::DeleteAttribute(std::string relation,
                                                   std::string attribute) {
  CapabilityChange ch;
  ch.kind = Kind::kDeleteAttribute;
  ch.relation = std::move(relation);
  ch.attribute = std::move(attribute);
  return ch;
}

CapabilityChange CapabilityChange::RenameAttribute(std::string relation,
                                                   std::string attribute,
                                                   std::string new_name) {
  CapabilityChange ch;
  ch.kind = Kind::kRenameAttribute;
  ch.relation = std::move(relation);
  ch.attribute = std::move(attribute);
  ch.new_name = std::move(new_name);
  return ch;
}

std::string CapabilityChange::ToString() const {
  switch (kind) {
    case Kind::kAddRelation:
      return "add-relation " + relation;
    case Kind::kDeleteRelation:
      return "delete-relation " + relation;
    case Kind::kRenameRelation:
      return "rename-relation " + relation + " -> " + new_name;
    case Kind::kAddAttribute:
      return "add-attribute " + relation + "." + attribute;
    case Kind::kDeleteAttribute:
      return "delete-attribute " + relation + "." + attribute;
    case Kind::kRenameAttribute:
      return "rename-attribute " + relation + "." + attribute + " -> " +
             relation + "." + new_name;
  }
  return "?";
}

}  // namespace eve
