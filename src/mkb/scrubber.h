// Online integrity scrubber for the MKB version chain. Periodically (or on
// demand) walks every retained version verifying segment checksums,
// version checksums and parent links via MkbVersionStore::Scrub. The store
// hands the scrubber an immutable snapshot of the chain, so a scrub pass
// never blocks — and is never torn by — a concurrent commit; the two only
// contend for the store mutex for the duration of one vector copy.
//
// View-level consistency (every view's synced_at_version pointing at a
// retained version) is layered on top by EveSystem::ScrubVersions, which
// owns the view pool; this class covers the chain itself so it can run
// against a store without a system around it.

#ifndef EVE_MKB_SCRUBBER_H_
#define EVE_MKB_SCRUBBER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "mkb/version_store.h"

namespace eve {

class MkbScrubber {
 public:
  // The store must outlive the scrubber.
  explicit MkbScrubber(const MkbVersionStore* store) : store_(store) {}
  ~MkbScrubber() { Stop(); }

  MkbScrubber(const MkbScrubber&) = delete;
  MkbScrubber& operator=(const MkbScrubber&) = delete;

  // Runs one synchronous pass on the calling thread and records it.
  VersionScrubStats RunOnce();

  // Starts a background thread scrubbing every `interval`. No-op if
  // already running.
  void Start(std::chrono::milliseconds interval);
  void Stop();

  // The most recent completed pass and the number of passes since
  // construction.
  VersionScrubStats last_stats() const;
  uint64_t passes() const;
  // Corruptions summed over every pass (a transiently-injected finding is
  // not erased by a later clean pass).
  uint64_t total_corruptions() const;

 private:
  const MkbVersionStore* store_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  bool running_ = false;
  VersionScrubStats last_;
  uint64_t passes_ = 0;
  uint64_t total_corruptions_ = 0;
};

}  // namespace eve

#endif  // EVE_MKB_SCRUBBER_H_
