#include "mkb/mkb.h"

#include <algorithm>
#include <sstream>

namespace eve {

namespace {

// Index key for an unordered relation pair. '\x1f' (ASCII unit separator)
// cannot appear in parsed identifiers, so keys never collide.
std::string PairKey(const std::string& a, const std::string& b) {
  return a <= b ? a + '\x1f' + b : b + '\x1f' + a;
}

std::string AttrKey(const AttributeRef& ref) {
  return ref.relation + '\x1f' + ref.attribute;
}

}  // namespace

Status Mkb::ValidateAttribute(const AttributeRef& ref,
                              const std::string& context) const {
  if (!catalog_.HasAttribute(ref)) {
    return Status::NotFound(context + " references unknown attribute " +
                            ref.ToString());
  }
  return Status::OK();
}

bool Mkb::IdInUse(const std::string& id) const {
  return constraint_by_id_.count(id) > 0;
}

void Mkb::IndexJoinConstraint(size_t index) {
  const JoinConstraint& jc = join_constraints_[index];
  constraint_by_id_.emplace(jc.id,
                            ConstraintSlot{ConstraintKind::kJoin, index});
  joins_by_relation_[jc.lhs].push_back(index);
  joins_by_relation_[jc.rhs].push_back(index);
  joins_by_pair_[PairKey(jc.lhs, jc.rhs)].push_back(index);
}

void Mkb::IndexFunctionOf(size_t index) {
  const FunctionOfConstraint& fc = function_of_constraints_[index];
  constraint_by_id_.emplace(
      fc.id, ConstraintSlot{ConstraintKind::kFunctionOf, index});
  covers_by_target_[AttrKey(fc.target)].push_back(index);
}

void Mkb::IndexPCConstraint(size_t index) {
  const PCConstraint& pc = pc_constraints_[index];
  constraint_by_id_.emplace(pc.id,
                            ConstraintSlot{ConstraintKind::kPc, index});
  pcs_by_pair_[PairKey(pc.lhs_relation, pc.rhs_relation)].push_back(index);
}

void Mkb::Reindex() {
  constraint_by_id_.clear();
  joins_by_relation_.clear();
  joins_by_pair_.clear();
  pcs_by_pair_.clear();
  covers_by_target_.clear();
  for (size_t i = 0; i < join_constraints_.size(); ++i) {
    IndexJoinConstraint(i);
  }
  for (size_t i = 0; i < function_of_constraints_.size(); ++i) {
    IndexFunctionOf(i);
  }
  for (size_t i = 0; i < pc_constraints_.size(); ++i) IndexPCConstraint(i);
}

Status Mkb::AddJoinConstraint(JoinConstraint jc) {
  if (jc.id.empty()) {
    return Status::InvalidArgument("join constraint needs a non-empty id");
  }
  if (IdInUse(jc.id)) {
    return Status::AlreadyExists("constraint id already in use: " + jc.id);
  }
  if (jc.lhs == jc.rhs) {
    return Status::InvalidArgument("join constraint " + jc.id +
                                   " joins a relation with itself");
  }
  for (const std::string& rel : {jc.lhs, jc.rhs}) {
    if (!catalog_.HasRelation(rel)) {
      return Status::NotFound("join constraint " + jc.id +
                              " references unknown relation " + rel);
    }
  }
  if (jc.clauses.empty()) {
    return Status::InvalidArgument("join constraint " + jc.id +
                                   " has no clauses");
  }
  bool crosses = false;
  for (const ExprPtr& clause : jc.clauses) {
    std::vector<AttributeRef> cols;
    clause->CollectColumns(&cols);
    bool touches_lhs = false;
    bool touches_rhs = false;
    for (const AttributeRef& ref : cols) {
      EVE_RETURN_IF_ERROR(
          ValidateAttribute(ref, "join constraint " + jc.id));
      if (ref.relation == jc.lhs) {
        touches_lhs = true;
      } else if (ref.relation == jc.rhs) {
        touches_rhs = true;
      } else {
        return Status::InvalidArgument(
            "join constraint " + jc.id + " clause references relation " +
            ref.relation + " outside {" + jc.lhs + ", " + jc.rhs + "}");
      }
    }
    crosses = crosses || (touches_lhs && touches_rhs);
  }
  if (!crosses) {
    return Status::InvalidArgument(
        "join constraint " + jc.id +
        " has no clause relating the two relations");
  }
  join_constraints_.push_back(std::move(jc));
  IndexJoinConstraint(join_constraints_.size() - 1);
  return Status::OK();
}

Status Mkb::AddFunctionOf(FunctionOfConstraint fc) {
  if (fc.id.empty()) {
    return Status::InvalidArgument(
        "function-of constraint needs a non-empty id");
  }
  if (IdInUse(fc.id)) {
    return Status::AlreadyExists("constraint id already in use: " + fc.id);
  }
  EVE_RETURN_IF_ERROR(
      ValidateAttribute(fc.target, "function-of constraint " + fc.id));
  EVE_RETURN_IF_ERROR(
      ValidateAttribute(fc.source, "function-of constraint " + fc.id));
  if (fc.target.relation == fc.source.relation) {
    return Status::InvalidArgument(
        "function-of constraint " + fc.id +
        " relates attributes of the same relation; it must bridge two "
        "relations");
  }
  if (fc.fn == nullptr) {
    return Status::InvalidArgument("function-of constraint " + fc.id +
                                   " has no function body");
  }
  std::vector<AttributeRef> cols;
  fc.fn->CollectColumns(&cols);
  for (const AttributeRef& ref : cols) {
    if (ref != fc.source) {
      return Status::InvalidArgument(
          "function-of constraint " + fc.id +
          " body may only reference its source attribute " +
          fc.source.ToString() + ", found " + ref.ToString());
    }
  }
  function_of_constraints_.push_back(std::move(fc));
  IndexFunctionOf(function_of_constraints_.size() - 1);
  return Status::OK();
}

Status Mkb::AddPCConstraint(PCConstraint pc) {
  if (pc.id.empty()) {
    return Status::InvalidArgument("PC constraint needs a non-empty id");
  }
  if (IdInUse(pc.id)) {
    return Status::AlreadyExists("constraint id already in use: " + pc.id);
  }
  for (const std::string& rel : {pc.lhs_relation, pc.rhs_relation}) {
    if (!catalog_.HasRelation(rel)) {
      return Status::NotFound("PC constraint " + pc.id +
                              " references unknown relation " + rel);
    }
  }
  if (pc.lhs_attrs.size() != pc.rhs_attrs.size() || pc.lhs_attrs.empty()) {
    return Status::InvalidArgument(
        "PC constraint " + pc.id +
        " needs matching, non-empty attribute lists");
  }
  for (const AttributeRef& ref : pc.lhs_attrs) {
    EVE_RETURN_IF_ERROR(ValidateAttribute(ref, "PC constraint " + pc.id));
    if (ref.relation != pc.lhs_relation) {
      return Status::InvalidArgument("PC constraint " + pc.id +
                                     " lhs attribute " + ref.ToString() +
                                     " is not from " + pc.lhs_relation);
    }
  }
  for (const AttributeRef& ref : pc.rhs_attrs) {
    EVE_RETURN_IF_ERROR(ValidateAttribute(ref, "PC constraint " + pc.id));
    if (ref.relation != pc.rhs_relation) {
      return Status::InvalidArgument("PC constraint " + pc.id +
                                     " rhs attribute " + ref.ToString() +
                                     " is not from " + pc.rhs_relation);
    }
  }
  pc_constraints_.push_back(std::move(pc));
  IndexPCConstraint(pc_constraints_.size() - 1);
  return Status::OK();
}

Status Mkb::RemoveConstraint(const std::string& id) {
  const auto slot_it = constraint_by_id_.find(id);
  if (slot_it == constraint_by_id_.end()) {
    return Status::NotFound("constraint not found: " + id);
  }
  const ConstraintSlot slot = slot_it->second;
  switch (slot.kind) {
    case ConstraintKind::kJoin:
      join_constraints_.erase(join_constraints_.begin() + slot.index);
      break;
    case ConstraintKind::kFunctionOf:
      function_of_constraints_.erase(function_of_constraints_.begin() +
                                     slot.index);
      break;
    case ConstraintKind::kPc:
      pc_constraints_.erase(pc_constraints_.begin() + slot.index);
      break;
  }
  // The erase shifted every later index; removal is rare (a source
  // retracting a published constraint), so a full rebuild is fine.
  Reindex();
  return Status::OK();
}

std::vector<const JoinConstraint*> Mkb::JoinConstraintsOf(
    const std::string& relation) const {
  std::vector<const JoinConstraint*> out;
  const auto it = joins_by_relation_.find(relation);
  if (it == joins_by_relation_.end()) return out;
  out.reserve(it->second.size());
  for (const size_t index : it->second) {
    out.push_back(&join_constraints_[index]);
  }
  return out;
}

std::vector<const JoinConstraint*> Mkb::JoinConstraintsBetween(
    const std::string& a, const std::string& b) const {
  std::vector<const JoinConstraint*> out;
  const auto it = joins_by_pair_.find(PairKey(a, b));
  if (it == joins_by_pair_.end()) return out;
  out.reserve(it->second.size());
  for (const size_t index : it->second) {
    out.push_back(&join_constraints_[index]);
  }
  return out;
}

std::vector<const FunctionOfConstraint*> Mkb::CoversOf(
    const AttributeRef& attr) const {
  std::vector<const FunctionOfConstraint*> out;
  const auto it = covers_by_target_.find(AttrKey(attr));
  if (it == covers_by_target_.end()) return out;
  out.reserve(it->second.size());
  for (const size_t index : it->second) {
    out.push_back(&function_of_constraints_[index]);
  }
  return out;
}

std::vector<const PCConstraint*> Mkb::PCConstraintsBetween(
    const std::string& a, const std::string& b) const {
  std::vector<const PCConstraint*> out;
  const auto it = pcs_by_pair_.find(PairKey(a, b));
  if (it == pcs_by_pair_.end()) return out;
  out.reserve(it->second.size());
  for (const size_t index : it->second) {
    out.push_back(&pc_constraints_[index]);
  }
  return out;
}

Result<const JoinConstraint*> Mkb::GetJoinConstraint(
    const std::string& id) const {
  const auto it = constraint_by_id_.find(id);
  if (it == constraint_by_id_.end() ||
      it->second.kind != ConstraintKind::kJoin) {
    return Status::NotFound("join constraint not found: " + id);
  }
  return &join_constraints_[it->second.index];
}

Result<const FunctionOfConstraint*> Mkb::GetFunctionOf(
    const std::string& id) const {
  const auto it = constraint_by_id_.find(id);
  if (it == constraint_by_id_.end() ||
      it->second.kind != ConstraintKind::kFunctionOf) {
    return Status::NotFound("function-of constraint not found: " + id);
  }
  return &function_of_constraints_[it->second.index];
}

std::string Mkb::ToString() const {
  std::ostringstream os;
  os << "-- Relations --\n" << catalog_.ToString();
  os << "-- Join constraints --\n";
  for (const JoinConstraint& jc : join_constraints_) {
    os << jc.ToString() << "\n";
  }
  os << "-- Function-of constraints --\n";
  for (const FunctionOfConstraint& fc : function_of_constraints_) {
    os << fc.ToString() << "\n";
  }
  os << "-- PC constraints --\n";
  for (const PCConstraint& pc : pc_constraints_) {
    os << pc.ToString() << "\n";
  }
  return os.str();
}

}  // namespace eve
