#include "mkb/mkb.h"

#include <algorithm>
#include <sstream>

namespace eve {

Status Mkb::ValidateAttribute(const AttributeRef& ref,
                              const std::string& context) const {
  if (!catalog_.HasAttribute(ref)) {
    return Status::NotFound(context + " references unknown attribute " +
                            ref.ToString());
  }
  return Status::OK();
}

bool Mkb::IdInUse(const std::string& id) const {
  const auto same_id = [&](const auto& c) { return c.id == id; };
  return std::any_of(join_constraints_.begin(), join_constraints_.end(),
                     same_id) ||
         std::any_of(function_of_constraints_.begin(),
                     function_of_constraints_.end(), same_id) ||
         std::any_of(pc_constraints_.begin(), pc_constraints_.end(), same_id);
}

Status Mkb::AddJoinConstraint(JoinConstraint jc) {
  if (jc.id.empty()) {
    return Status::InvalidArgument("join constraint needs a non-empty id");
  }
  if (IdInUse(jc.id)) {
    return Status::AlreadyExists("constraint id already in use: " + jc.id);
  }
  if (jc.lhs == jc.rhs) {
    return Status::InvalidArgument("join constraint " + jc.id +
                                   " joins a relation with itself");
  }
  for (const std::string& rel : {jc.lhs, jc.rhs}) {
    if (!catalog_.HasRelation(rel)) {
      return Status::NotFound("join constraint " + jc.id +
                              " references unknown relation " + rel);
    }
  }
  if (jc.clauses.empty()) {
    return Status::InvalidArgument("join constraint " + jc.id +
                                   " has no clauses");
  }
  bool crosses = false;
  for (const ExprPtr& clause : jc.clauses) {
    std::vector<AttributeRef> cols;
    clause->CollectColumns(&cols);
    bool touches_lhs = false;
    bool touches_rhs = false;
    for (const AttributeRef& ref : cols) {
      EVE_RETURN_IF_ERROR(
          ValidateAttribute(ref, "join constraint " + jc.id));
      if (ref.relation == jc.lhs) {
        touches_lhs = true;
      } else if (ref.relation == jc.rhs) {
        touches_rhs = true;
      } else {
        return Status::InvalidArgument(
            "join constraint " + jc.id + " clause references relation " +
            ref.relation + " outside {" + jc.lhs + ", " + jc.rhs + "}");
      }
    }
    crosses = crosses || (touches_lhs && touches_rhs);
  }
  if (!crosses) {
    return Status::InvalidArgument(
        "join constraint " + jc.id +
        " has no clause relating the two relations");
  }
  join_constraints_.push_back(std::move(jc));
  return Status::OK();
}

Status Mkb::AddFunctionOf(FunctionOfConstraint fc) {
  if (fc.id.empty()) {
    return Status::InvalidArgument(
        "function-of constraint needs a non-empty id");
  }
  if (IdInUse(fc.id)) {
    return Status::AlreadyExists("constraint id already in use: " + fc.id);
  }
  EVE_RETURN_IF_ERROR(
      ValidateAttribute(fc.target, "function-of constraint " + fc.id));
  EVE_RETURN_IF_ERROR(
      ValidateAttribute(fc.source, "function-of constraint " + fc.id));
  if (fc.target.relation == fc.source.relation) {
    return Status::InvalidArgument(
        "function-of constraint " + fc.id +
        " relates attributes of the same relation; it must bridge two "
        "relations");
  }
  if (fc.fn == nullptr) {
    return Status::InvalidArgument("function-of constraint " + fc.id +
                                   " has no function body");
  }
  std::vector<AttributeRef> cols;
  fc.fn->CollectColumns(&cols);
  for (const AttributeRef& ref : cols) {
    if (ref != fc.source) {
      return Status::InvalidArgument(
          "function-of constraint " + fc.id +
          " body may only reference its source attribute " +
          fc.source.ToString() + ", found " + ref.ToString());
    }
  }
  function_of_constraints_.push_back(std::move(fc));
  return Status::OK();
}

Status Mkb::AddPCConstraint(PCConstraint pc) {
  if (pc.id.empty()) {
    return Status::InvalidArgument("PC constraint needs a non-empty id");
  }
  if (IdInUse(pc.id)) {
    return Status::AlreadyExists("constraint id already in use: " + pc.id);
  }
  for (const std::string& rel : {pc.lhs_relation, pc.rhs_relation}) {
    if (!catalog_.HasRelation(rel)) {
      return Status::NotFound("PC constraint " + pc.id +
                              " references unknown relation " + rel);
    }
  }
  if (pc.lhs_attrs.size() != pc.rhs_attrs.size() || pc.lhs_attrs.empty()) {
    return Status::InvalidArgument(
        "PC constraint " + pc.id +
        " needs matching, non-empty attribute lists");
  }
  for (const AttributeRef& ref : pc.lhs_attrs) {
    EVE_RETURN_IF_ERROR(ValidateAttribute(ref, "PC constraint " + pc.id));
    if (ref.relation != pc.lhs_relation) {
      return Status::InvalidArgument("PC constraint " + pc.id +
                                     " lhs attribute " + ref.ToString() +
                                     " is not from " + pc.lhs_relation);
    }
  }
  for (const AttributeRef& ref : pc.rhs_attrs) {
    EVE_RETURN_IF_ERROR(ValidateAttribute(ref, "PC constraint " + pc.id));
    if (ref.relation != pc.rhs_relation) {
      return Status::InvalidArgument("PC constraint " + pc.id +
                                     " rhs attribute " + ref.ToString() +
                                     " is not from " + pc.rhs_relation);
    }
  }
  pc_constraints_.push_back(std::move(pc));
  return Status::OK();
}

Status Mkb::RemoveConstraint(const std::string& id) {
  const auto same_id = [&](const auto& c) { return c.id == id; };
  if (std::erase_if(join_constraints_, same_id) > 0) return Status::OK();
  if (std::erase_if(function_of_constraints_, same_id) > 0) {
    return Status::OK();
  }
  if (std::erase_if(pc_constraints_, same_id) > 0) return Status::OK();
  return Status::NotFound("constraint not found: " + id);
}

std::vector<const JoinConstraint*> Mkb::JoinConstraintsOf(
    const std::string& relation) const {
  std::vector<const JoinConstraint*> out;
  for (const JoinConstraint& jc : join_constraints_) {
    if (jc.Involves(relation)) out.push_back(&jc);
  }
  return out;
}

std::vector<const JoinConstraint*> Mkb::JoinConstraintsBetween(
    const std::string& a, const std::string& b) const {
  std::vector<const JoinConstraint*> out;
  for (const JoinConstraint& jc : join_constraints_) {
    if ((jc.lhs == a && jc.rhs == b) || (jc.lhs == b && jc.rhs == a)) {
      out.push_back(&jc);
    }
  }
  return out;
}

std::vector<const FunctionOfConstraint*> Mkb::CoversOf(
    const AttributeRef& attr) const {
  std::vector<const FunctionOfConstraint*> out;
  for (const FunctionOfConstraint& fc : function_of_constraints_) {
    if (fc.target == attr) out.push_back(&fc);
  }
  return out;
}

std::vector<const PCConstraint*> Mkb::PCConstraintsBetween(
    const std::string& a, const std::string& b) const {
  std::vector<const PCConstraint*> out;
  for (const PCConstraint& pc : pc_constraints_) {
    if ((pc.lhs_relation == a && pc.rhs_relation == b) ||
        (pc.lhs_relation == b && pc.rhs_relation == a)) {
      out.push_back(&pc);
    }
  }
  return out;
}

Result<const JoinConstraint*> Mkb::GetJoinConstraint(
    const std::string& id) const {
  for (const JoinConstraint& jc : join_constraints_) {
    if (jc.id == id) return &jc;
  }
  return Status::NotFound("join constraint not found: " + id);
}

Result<const FunctionOfConstraint*> Mkb::GetFunctionOf(
    const std::string& id) const {
  for (const FunctionOfConstraint& fc : function_of_constraints_) {
    if (fc.id == id) return &fc;
  }
  return Status::NotFound("function-of constraint not found: " + id);
}

std::string Mkb::ToString() const {
  std::ostringstream os;
  os << "-- Relations --\n" << catalog_.ToString();
  os << "-- Join constraints --\n";
  for (const JoinConstraint& jc : join_constraints_) {
    os << jc.ToString() << "\n";
  }
  os << "-- Function-of constraints --\n";
  for (const FunctionOfConstraint& fc : function_of_constraints_) {
    os << fc.ToString() << "\n";
  }
  os << "-- PC constraints --\n";
  for (const PCConstraint& pc : pc_constraints_) {
    os << pc.ToString() << "\n";
  }
  return os.str();
}

}  // namespace eve
