// MISD semantic constraints (paper Fig. 1):
//  * JoinConstraint JC_{R1,R2}: a default, semantically meaningful way to
//    join two relations — a conjunction of primitive clauses.
//  * FunctionOfConstraint F_{R1.A, R2.B}: R1.A = f(R2.B) whenever the two
//    relations are meaningfully combined.
//  * PCConstraint (partial/complete): containment between projections of
//    selections of two relations; drives view-extent (P3) inference.
// Type- and order-integrity constraints live in catalog::RelationDef.

#ifndef EVE_MKB_CONSTRAINTS_H_
#define EVE_MKB_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "catalog/attribute_ref.h"

namespace eve {

struct JoinConstraint {
  std::string id;   // e.g. "JC1"
  std::string lhs;  // first relation
  std::string rhs;  // second relation
  // Conjunction of primitive clauses over attributes of lhs/rhs (clauses
  // touching a single relation, like "Customer.Age > 1" in JC2, are
  // allowed).
  std::vector<ExprPtr> clauses;

  // The conjunction as one expression.
  ExprPtr AsExpr() const { return MakeConjunction(clauses); }

  bool Involves(const std::string& relation) const {
    return lhs == relation || rhs == relation;
  }
  // The endpoint that is not `relation` (valid only if Involves()).
  const std::string& Other(const std::string& relation) const {
    return lhs == relation ? rhs : lhs;
  }

  std::string ToString() const;
};

struct FunctionOfConstraint {
  std::string id;       // e.g. "F3"
  AttributeRef target;  // R1.A
  AttributeRef source;  // R2.B
  // f as an expression over `source` (and literals). Identity is the
  // common case: just Column(source).
  ExprPtr fn;

  bool IsIdentity() const {
    return fn->kind() == ExprKind::kColumn && fn->column() == source;
  }

  std::string ToString() const;
};

// θ of a PC constraint.
enum class SetRelation {
  kProperSubset,   // ⊂
  kSubset,         // ⊆
  kEqual,          // ≡
  kSuperset,       // ⊇
  kProperSuperset  // ⊃
};

std::string_view SetRelationToString(SetRelation relation);
// ⊆ becomes ⊇ etc. (swap sides).
SetRelation FlipSetRelation(SetRelation relation);

// π_{lhs_attrs}(σ_{lhs_condition} lhs_relation) θ
// π_{rhs_attrs}(σ_{rhs_condition} rhs_relation), with lhs_attrs[i]
// corresponding to rhs_attrs[i].
struct PCConstraint {
  std::string id;
  std::string lhs_relation;
  std::string rhs_relation;
  std::vector<AttributeRef> lhs_attrs;
  std::vector<AttributeRef> rhs_attrs;
  ExprPtr lhs_condition;  // null: no selection
  ExprPtr rhs_condition;  // null: no selection
  SetRelation relation = SetRelation::kEqual;

  std::string ToString() const;
};

}  // namespace eve

#endif  // EVE_MKB_CONSTRAINTS_H_
