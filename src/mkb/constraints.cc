#include "mkb/constraints.h"

#include "common/str_util.h"

namespace eve {

std::string JoinConstraint::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(clauses.size());
  for (const ExprPtr& clause : clauses) parts.push_back(clause->ToString());
  return id + ": JC(" + lhs + ", " + rhs + ") = " + Join(parts, " AND ");
}

std::string FunctionOfConstraint::ToString() const {
  return id + ": " + target.ToString() + " = " + fn->ToString();
}

std::string_view SetRelationToString(SetRelation relation) {
  switch (relation) {
    case SetRelation::kProperSubset:
      return "⊂";
    case SetRelation::kSubset:
      return "⊆";
    case SetRelation::kEqual:
      return "≡";
    case SetRelation::kSuperset:
      return "⊇";
    case SetRelation::kProperSuperset:
      return "⊃";
  }
  return "?";
}

SetRelation FlipSetRelation(SetRelation relation) {
  switch (relation) {
    case SetRelation::kProperSubset:
      return SetRelation::kProperSuperset;
    case SetRelation::kSubset:
      return SetRelation::kSuperset;
    case SetRelation::kEqual:
      return SetRelation::kEqual;
    case SetRelation::kSuperset:
      return SetRelation::kSubset;
    case SetRelation::kProperSuperset:
      return SetRelation::kProperSubset;
  }
  return relation;
}

namespace {

std::string ProjectionToString(const std::vector<AttributeRef>& attrs,
                               const ExprPtr& condition,
                               const std::string& relation) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (const AttributeRef& ref : attrs) names.push_back(ref.attribute);
  std::string base = relation;
  if (condition != nullptr) {
    base = "σ[" + condition->ToString() + "](" + base + ")";
  }
  return "π[" + Join(names, ", ") + "](" + base + ")";
}

}  // namespace

std::string PCConstraint::ToString() const {
  return id + ": " +
         ProjectionToString(lhs_attrs, lhs_condition, lhs_relation) + " " +
         std::string(SetRelationToString(relation)) + " " +
         ProjectionToString(rhs_attrs, rhs_condition, rhs_relation);
}

}  // namespace eve
