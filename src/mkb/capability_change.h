// The six IS capability-change operators (paper Sec. 5): add-relation,
// delete-relation, rename-relation, add-attribute, delete-attribute,
// rename-attribute.

#ifndef EVE_MKB_CAPABILITY_CHANGE_H_
#define EVE_MKB_CAPABILITY_CHANGE_H_

#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/result.h"

namespace eve {

struct CapabilityChange {
  enum class Kind {
    kAddRelation,
    kDeleteRelation,
    kRenameRelation,
    kAddAttribute,
    kDeleteAttribute,
    kRenameAttribute,
  };

  Kind kind = Kind::kDeleteRelation;
  // Target relation (all kinds except kAddRelation, which uses
  // new_relation.name).
  std::string relation;
  // Target attribute (attribute kinds).
  std::string attribute;
  // New name (rename kinds).
  std::string new_name;
  // Definition for kAddRelation.
  RelationDef new_relation;
  // Definition for kAddAttribute.
  AttributeDef new_attribute;

  static CapabilityChange AddRelation(RelationDef def);
  static CapabilityChange DeleteRelation(std::string relation);
  static CapabilityChange RenameRelation(std::string relation,
                                         std::string new_name);
  static CapabilityChange AddAttribute(std::string relation,
                                       AttributeDef attr);
  static CapabilityChange DeleteAttribute(std::string relation,
                                          std::string attribute);
  static CapabilityChange RenameAttribute(std::string relation,
                                          std::string attribute,
                                          std::string new_name);

  // "delete-relation Customer", ...
  std::string ToString() const;
};

// Single-line, lossless text encoding for the change journal and
// checkpoint change log. Identifiers are quoted where needed; add-relation
// carries the relation's full MISD SOURCE statement:
//   delete-attribute "Customer" "Name"
//   add-relation SOURCE IS1 RELATION Tour (TourID int, Type string)
// ParseChange inverts SerializeChange exactly.
std::string SerializeChange(const CapabilityChange& change);
Result<CapabilityChange> ParseChange(std::string_view text);

}  // namespace eve

#endif  // EVE_MKB_CAPABILITY_CHANGE_H_
