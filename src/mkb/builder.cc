#include "mkb/builder.h"

#include "common/str_util.h"
#include "sql/parser.h"

namespace eve {

Status AddJoinConstraintText(Mkb* mkb, std::string id, std::string lhs,
                             std::string rhs,
                             std::string_view condition_text) {
  JoinConstraint jc;
  jc.id = std::move(id);
  jc.lhs = std::move(lhs);
  jc.rhs = std::move(rhs);
  EVE_ASSIGN_OR_RETURN(jc.clauses, ParseConjunction(condition_text));
  return mkb->AddJoinConstraint(std::move(jc));
}

Status AddFunctionOfText(Mkb* mkb, std::string id,
                         std::string_view target_text,
                         std::string_view fn_text) {
  FunctionOfConstraint fc;
  fc.id = std::move(id);
  EVE_ASSIGN_OR_RETURN(const ExprPtr target_expr,
                       ParseExpression(target_text));
  if (target_expr->kind() != ExprKind::kColumn) {
    return Status::InvalidArgument(
        "function-of target must be a qualified attribute, got: " +
        std::string(target_text));
  }
  fc.target = target_expr->column();
  EVE_ASSIGN_OR_RETURN(fc.fn, ParseExpression(fn_text));
  std::vector<AttributeRef> sources;
  fc.fn->CollectColumns(&sources);
  if (sources.empty()) {
    return Status::InvalidArgument(
        "function-of body must reference a source attribute: " +
        std::string(fn_text));
  }
  fc.source = sources[0];
  return mkb->AddFunctionOf(std::move(fc));
}

Status AddIdentityFunctionOf(Mkb* mkb, std::string id, AttributeRef target,
                             AttributeRef source) {
  FunctionOfConstraint fc;
  fc.id = std::move(id);
  fc.target = std::move(target);
  fc.fn = Expr::Column(source);
  fc.source = std::move(source);
  return mkb->AddFunctionOf(std::move(fc));
}

Status AddProjectionPC(Mkb* mkb, std::string id, const std::string& lhs_rel,
                       std::string_view lhs_attrs, SetRelation relation,
                       const std::string& rhs_rel,
                       std::string_view rhs_attrs) {
  PCConstraint pc;
  pc.id = std::move(id);
  pc.lhs_relation = lhs_rel;
  pc.rhs_relation = rhs_rel;
  for (const std::string& name : Split(lhs_attrs, ',')) {
    pc.lhs_attrs.push_back(
        AttributeRef{lhs_rel, std::string(Trim(name))});
  }
  for (const std::string& name : Split(rhs_attrs, ',')) {
    pc.rhs_attrs.push_back(
        AttributeRef{rhs_rel, std::string(Trim(name))});
  }
  pc.relation = relation;
  return mkb->AddPCConstraint(std::move(pc));
}

}  // namespace eve
