#include "mkb/scrubber.h"

#include <utility>

namespace eve {

VersionScrubStats MkbScrubber::RunOnce() {
  VersionScrubStats stats = store_->Scrub();
  std::lock_guard<std::mutex> lock(mu_);
  last_ = stats;
  ++passes_;
  total_corruptions_ += stats.corruptions;
  return stats;
}

void MkbScrubber::Start(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this, interval] {
    for (;;) {
      VersionScrubStats stats = store_->Scrub();
      {
        std::unique_lock<std::mutex> lock(mu_);
        last_ = std::move(stats);
        ++passes_;
        total_corruptions_ += last_.corruptions;
        if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
      }
    }
  });
}

void MkbScrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

VersionScrubStats MkbScrubber::last_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

uint64_t MkbScrubber::passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return passes_;
}

uint64_t MkbScrubber::total_corruptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_corruptions_;
}

}  // namespace eve
