// Copy-on-write MKB version chain. Every committed capability change (and
// every view-pool mutation that rides along with one) produces a new
// immutable version v0..vN. A version is a list of CRC-checksummed text
// segments — the four MISD blocks of the MKB plus the serialized view pool
// — and versions that leave a block untouched share the previous version's
// segment by shared_ptr, so a 1k-version chain over a slowly-evolving MKB
// retains far fewer bytes than 1k full snapshots.
//
// Readers pin a version in O(1): `Tip()` / `Pin(id)` hand out a
// shared_ptr<const Mkb> plus the version node, and the pin stays valid (and
// byte-stable) across any number of concurrent commits — commits only
// append to the chain and swap the tip pointer under the store mutex.
//
// The chain is append-only even under rollback: RollbackToVersion commits
// the restored state as a NEW version, so history is never truncated and
// every version id ever handed out stays resolvable.

#ifndef EVE_MKB_VERSION_STORE_H_
#define EVE_MKB_VERSION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "mkb/mkb.h"

namespace eve {

// One immutable, checksummed text segment. Shared (by shared_ptr) between
// adjacent versions whose renderings are byte-identical.
struct MkbVersionSegment {
  std::string name;  // RELATIONS, JOINS, FUNCTIONS, PCS, VIEWS
  std::string body;
  uint32_t crc = 0;  // Crc32(body)
};

// The number of segments every version carries, in order.
inline constexpr size_t kNumVersionSegments = 5;
extern const char* const kVersionSegmentNames[kNumVersionSegments];

// One immutable node in the version chain.
struct MkbVersion {
  uint64_t id = 0;
  uint64_t parent = 0;  // id - 1; v0 is its own parent
  std::string change;   // single-line description of the committing change
  std::vector<std::shared_ptr<const MkbVersionSegment>> segments;
  uint32_t crc = 0;  // covers id, parent, change and the segment crcs
};

// A pinned snapshot: the version node plus a parsed MKB. Holding the
// returned shared_ptrs keeps both alive across concurrent commits.
struct PinnedMkb {
  std::shared_ptr<const MkbVersion> version;
  std::shared_ptr<const Mkb> mkb;
  uint64_t id() const { return version ? version->id : 0; }
};

// Scrub result: counters plus a human-readable line per finding.
struct VersionScrubStats {
  uint64_t versions_checked = 0;
  uint64_t segments_checked = 0;
  uint64_t segments_shared = 0;  // reused verbatim from the parent version
  uint64_t corruptions = 0;
  std::vector<std::string> findings;

  std::string ToString() const;
};

// Retained (unique segment) vs logical (sum over versions) byte counts —
// the COW amplification measured by bench_versioning.
struct VersionByteStats {
  uint64_t retained_bytes = 0;
  uint64_t logical_bytes = 0;
};

class MkbVersionStore {
 public:
  MkbVersionStore() = default;
  MkbVersionStore(const MkbVersionStore& other);
  MkbVersionStore& operator=(const MkbVersionStore& other);

  // Re-seeds the chain with a single version v0 holding `mkb` + the view
  // pool text. Used at system construction and checkpoint load.
  void Reset(std::shared_ptr<const Mkb> mkb, std::string views_text,
             std::string change);

  // Appends version NextId() rendering `mkb` + `views_text`. Segments that
  // are byte-identical to the current tip's are shared, not copied; when
  // `mkb` is pointer-identical to the tip's MKB the four MISD segments are
  // reused without re-rendering. Returns the new version id.
  uint64_t Commit(std::shared_ptr<const Mkb> mkb, std::string views_text,
                  std::string change);

  // Commit variant for callers that KNOW the view pool is unchanged since
  // the tip: shares the tip's VIEWS segment by pointer without rendering or
  // byte-comparing the pool — O(MKB), not O(views). Used by the sharded
  // serving core, where an MKB evolution is fanned out to shards whose view
  // partition the change does not touch.
  uint64_t CommitSharedViews(std::shared_ptr<const Mkb> mkb,
                             std::string change);

  uint64_t tip_id() const;
  // The id the next Commit will assign (== number of versions).
  uint64_t NextId() const;
  size_t NumVersions() const;
  bool HasVersion(uint64_t id) const;

  // O(1): shares the already-parsed tip MKB.
  PinnedMkb Tip() const;
  // Pins an arbitrary retained version; non-tip versions reparse the MISD
  // segments (the price of time travel, not of the hot path).
  Result<PinnedMkb> Pin(uint64_t id) const;
  // The serialized view pool frozen at version `id`.
  Result<std::string> ViewsAt(uint64_t id) const;
  // Snapshot of the chain (shared immutable nodes).
  std::vector<std::shared_ptr<const MkbVersion>> Versions() const;

  // Walks the whole chain verifying segment checksums, version checksums,
  // id sequencing and parent links. Never throws; corruption is counted
  // and described. Also consults the mkb.version_store.scrub failpoint so
  // tests can inject a detected finding.
  VersionScrubStats Scrub() const;

  VersionByteStats ByteStats() const;

  // One-line-per-version human summary (SHOW VERSIONS).
  std::string Render() const;

  // Serializes the chain for the checkpoint VERSIONS section and loads it
  // back, verifying every CRC and link; any flipped/missing byte fails.
  std::string Serialize() const;
  static Result<MkbVersionStore> Deserialize(std::string_view text);

  // Testing back door: deep-copies version `id` (and segment `segment`)
  // and flips one byte of the copy's body, so exactly one version is
  // corrupted and shared siblings stay intact. Returns false on bad args.
  bool CorruptSegmentForTesting(uint64_t id, size_t segment,
                                size_t byte_offset);

 private:
  static uint32_t VersionCrc(const MkbVersion& version);
  std::shared_ptr<const MkbVersion> NodeAt(uint64_t id) const;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const MkbVersion>> versions_;
  std::shared_ptr<const Mkb> tip_mkb_;  // parsed form of the tip version
};

}  // namespace eve

#endif  // EVE_MKB_VERSION_STORE_H_
