#include "mkb/version_store.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/str_util.h"
#include "mkb/serializer.h"

namespace eve {

const char* const kVersionSegmentNames[kNumVersionSegments] = {
    "RELATIONS", "JOINS", "FUNCTIONS", "PCS", "VIEWS"};

namespace {

// Change descriptions live on one line of the VERSIONS section, so any
// embedded newline would break the framing.
std::string SanitizeChange(std::string change) {
  std::replace(change.begin(), change.end(), '\n', ' ');
  std::replace(change.begin(), change.end(), '\r', ' ');
  return change;
}

std::shared_ptr<const MkbVersionSegment> MakeSegment(const char* name,
                                                     std::string body) {
  auto segment = std::make_shared<MkbVersionSegment>();
  segment->name = name;
  segment->crc = Crc32(body);
  segment->body = std::move(body);
  return segment;
}

std::string ToHex(uint32_t value) {
  std::ostringstream os;
  os << std::hex << value;
  return os.str();
}

bool ParseHex32(const std::string& word, uint32_t* out) {
  if (word.empty() || word.size() > 8) return false;
  uint32_t value = 0;
  for (const char c : word) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

bool ParseU64(const std::string& word, uint64_t* out) {
  if (word.empty()) return false;
  uint64_t value = 0;
  for (const char c : word) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string VersionScrubStats::ToString() const {
  std::ostringstream os;
  os << "versions=" << versions_checked << " segments=" << segments_checked
     << " shared=" << segments_shared << " corruptions=" << corruptions;
  for (const std::string& finding : findings) {
    os << "\n  scrub: " << finding;
  }
  return os.str();
}

MkbVersionStore::MkbVersionStore(const MkbVersionStore& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  versions_ = other.versions_;
  tip_mkb_ = other.tip_mkb_;
}

MkbVersionStore& MkbVersionStore::operator=(const MkbVersionStore& other) {
  if (this == &other) return *this;
  std::vector<std::shared_ptr<const MkbVersion>> versions;
  std::shared_ptr<const Mkb> tip;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    versions = other.versions_;
    tip = other.tip_mkb_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  versions_ = std::move(versions);
  tip_mkb_ = std::move(tip);
  return *this;
}

void MkbVersionStore::Reset(std::shared_ptr<const Mkb> mkb,
                            std::string views_text, std::string change) {
  std::lock_guard<std::mutex> lock(mu_);
  versions_.clear();
  tip_mkb_ = nullptr;
  auto node = std::make_shared<MkbVersion>();
  node->id = 0;
  node->parent = 0;
  node->change = SanitizeChange(std::move(change));
  std::array<std::string, 4> rendered = RenderMkbSegments(*mkb);
  for (size_t i = 0; i < 4; ++i) {
    node->segments.push_back(
        MakeSegment(kVersionSegmentNames[i], std::move(rendered[i])));
  }
  node->segments.push_back(
      MakeSegment(kVersionSegmentNames[4], std::move(views_text)));
  node->crc = VersionCrc(*node);
  versions_.push_back(std::move(node));
  tip_mkb_ = std::move(mkb);
}

uint64_t MkbVersionStore::Commit(std::shared_ptr<const Mkb> mkb,
                                 std::string views_text, std::string change) {
  std::lock_guard<std::mutex> lock(mu_);
  auto node = std::make_shared<MkbVersion>();
  node->id = versions_.size();
  node->parent = versions_.empty() ? 0 : versions_.back()->id;
  node->change = SanitizeChange(std::move(change));
  const MkbVersion* tip = versions_.empty() ? nullptr : versions_.back().get();
  if (tip != nullptr && mkb.get() == tip_mkb_.get()) {
    // The MKB object is unchanged (view-pool-only commit): reuse the four
    // MISD segments without re-rendering.
    node->segments.assign(tip->segments.begin(), tip->segments.begin() + 4);
  } else {
    std::array<std::string, 4> rendered = RenderMkbSegments(*mkb);
    for (size_t i = 0; i < 4; ++i) {
      if (tip != nullptr && tip->segments[i]->body == rendered[i]) {
        node->segments.push_back(tip->segments[i]);
      } else {
        node->segments.push_back(
            MakeSegment(kVersionSegmentNames[i], std::move(rendered[i])));
      }
    }
  }
  if (tip != nullptr && tip->segments[4]->body == views_text) {
    node->segments.push_back(tip->segments[4]);
  } else {
    node->segments.push_back(
        MakeSegment(kVersionSegmentNames[4], std::move(views_text)));
  }
  node->crc = VersionCrc(*node);
  const uint64_t id = node->id;
  versions_.push_back(std::move(node));
  tip_mkb_ = std::move(mkb);
  return id;
}

uint64_t MkbVersionStore::CommitSharedViews(std::shared_ptr<const Mkb> mkb,
                                            std::string change) {
  std::lock_guard<std::mutex> lock(mu_);
  auto node = std::make_shared<MkbVersion>();
  node->id = versions_.size();
  node->parent = versions_.empty() ? 0 : versions_.back()->id;
  node->change = SanitizeChange(std::move(change));
  const MkbVersion* tip = versions_.empty() ? nullptr : versions_.back().get();
  if (tip != nullptr && mkb.get() == tip_mkb_.get()) {
    node->segments.assign(tip->segments.begin(), tip->segments.begin() + 4);
  } else {
    std::array<std::string, 4> rendered = RenderMkbSegments(*mkb);
    for (size_t i = 0; i < 4; ++i) {
      if (tip != nullptr && tip->segments[i]->body == rendered[i]) {
        node->segments.push_back(tip->segments[i]);
      } else {
        node->segments.push_back(
            MakeSegment(kVersionSegmentNames[i], std::move(rendered[i])));
      }
    }
  }
  if (tip != nullptr) {
    node->segments.push_back(tip->segments[4]);
  } else {
    node->segments.push_back(MakeSegment(kVersionSegmentNames[4], ""));
  }
  node->crc = VersionCrc(*node);
  const uint64_t id = node->id;
  versions_.push_back(std::move(node));
  tip_mkb_ = std::move(mkb);
  return id;
}

uint64_t MkbVersionStore::tip_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.empty() ? 0 : versions_.back()->id;
}

uint64_t MkbVersionStore::NextId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

size_t MkbVersionStore::NumVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

bool MkbVersionStore::HasVersion(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < versions_.size();
}

PinnedMkb MkbVersionStore::Tip() const {
  std::lock_guard<std::mutex> lock(mu_);
  PinnedMkb pinned;
  if (!versions_.empty()) {
    pinned.version = versions_.back();
    pinned.mkb = tip_mkb_;
  }
  return pinned;
}

std::shared_ptr<const MkbVersion> MkbVersionStore::NodeAt(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= versions_.size()) return nullptr;
  return versions_[id];
}

Result<PinnedMkb> MkbVersionStore::Pin(uint64_t id) const {
  std::shared_ptr<const MkbVersion> node;
  std::shared_ptr<const Mkb> tip;
  uint64_t tip_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= versions_.size()) {
      return Status::NotFound("no version " + std::to_string(id) +
                              " (retained: 0.." +
                              std::to_string(versions_.size()) + ")");
    }
    node = versions_[id];
    tip = tip_mkb_;
    tip_version = versions_.back()->id;
  }
  if (id == tip_version) return PinnedMkb{std::move(node), std::move(tip)};
  std::string text;
  for (size_t i = 0; i < 4; ++i) text += node->segments[i]->body;
  Result<Mkb> mkb = LoadMkb(text);
  if (!mkb.ok()) {
    return Status::Internal("version " + std::to_string(id) +
                            " MISD segments do not reparse: " +
                            mkb.status().ToString());
  }
  return PinnedMkb{std::move(node),
                   std::make_shared<const Mkb>(mkb.MoveValue())};
}

Result<std::string> MkbVersionStore::ViewsAt(uint64_t id) const {
  const std::shared_ptr<const MkbVersion> node = NodeAt(id);
  if (node == nullptr) {
    return Status::NotFound("no version " + std::to_string(id));
  }
  return node->segments[4]->body;
}

std::vector<std::shared_ptr<const MkbVersion>> MkbVersionStore::Versions()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_;
}

uint32_t MkbVersionStore::VersionCrc(const MkbVersion& version) {
  const std::string head = std::to_string(version.id) + "|" +
                           std::to_string(version.parent) + "|" +
                           version.change;
  uint32_t crc = Crc32(head);
  for (const auto& segment : version.segments) {
    crc = Crc32(segment->name, crc);
    const uint32_t body_crc = segment->crc;
    crc = Crc32(&body_crc, sizeof(body_crc), crc);
  }
  return crc;
}

VersionScrubStats MkbVersionStore::Scrub() const {
  const std::vector<std::shared_ptr<const MkbVersion>> versions = Versions();
  VersionScrubStats stats;
  for (size_t i = 0; i < versions.size(); ++i) {
    const MkbVersion& version = *versions[i];
    ++stats.versions_checked;
    // Tests arm this site to inject a finding (error action) or kill the
    // scrubber mid-walk (crash action); the chain itself is untouched.
    const Status injected =
        Failpoints::Instance().Hit(fp::kVersionScrub);
    if (!injected.ok()) {
      ++stats.corruptions;
      stats.findings.push_back("version " + std::to_string(version.id) +
                               ": injected fault: " + injected.ToString());
    }
    if (version.id != i) {
      ++stats.corruptions;
      stats.findings.push_back("version at index " + std::to_string(i) +
                               " has id " + std::to_string(version.id));
    }
    const uint64_t expected_parent = i == 0 ? 0 : i - 1;
    if (version.parent != expected_parent) {
      ++stats.corruptions;
      stats.findings.push_back(
          "version " + std::to_string(version.id) + " parent link " +
          std::to_string(version.parent) + " != " +
          std::to_string(expected_parent));
    }
    if (version.segments.size() != kNumVersionSegments) {
      ++stats.corruptions;
      stats.findings.push_back("version " + std::to_string(version.id) +
                               " has " +
                               std::to_string(version.segments.size()) +
                               " segments, want " +
                               std::to_string(kNumVersionSegments));
      continue;
    }
    for (size_t s = 0; s < kNumVersionSegments; ++s) {
      const MkbVersionSegment& segment = *version.segments[s];
      ++stats.segments_checked;
      if (i > 0 && s < versions[i - 1]->segments.size() &&
          version.segments[s] == versions[i - 1]->segments[s]) {
        ++stats.segments_shared;
      }
      if (segment.name != kVersionSegmentNames[s]) {
        ++stats.corruptions;
        stats.findings.push_back("version " + std::to_string(version.id) +
                                 " segment " + std::to_string(s) +
                                 " named '" + segment.name + "', want '" +
                                 kVersionSegmentNames[s] + "'");
      }
      if (Crc32(segment.body) != segment.crc) {
        ++stats.corruptions;
        stats.findings.push_back("version " + std::to_string(version.id) +
                                 " segment " + segment.name +
                                 " body fails its checksum");
      }
    }
    if (VersionCrc(version) != version.crc) {
      ++stats.corruptions;
      stats.findings.push_back("version " + std::to_string(version.id) +
                               " fails its version checksum");
    }
  }
  return stats;
}

VersionByteStats MkbVersionStore::ByteStats() const {
  const std::vector<std::shared_ptr<const MkbVersion>> versions = Versions();
  VersionByteStats stats;
  std::unordered_set<const MkbVersionSegment*> seen;
  for (const auto& version : versions) {
    for (const auto& segment : version->segments) {
      stats.logical_bytes += segment->body.size();
      if (seen.insert(segment.get()).second) {
        stats.retained_bytes += segment->body.size();
      }
    }
  }
  return stats;
}

std::string MkbVersionStore::Render() const {
  const std::vector<std::shared_ptr<const MkbVersion>> versions = Versions();
  std::ostringstream os;
  for (const auto& version : versions) {
    os << "  v" << version->id;
    if (version->id != version->parent) os << " <- v" << version->parent;
    os << "  crc=" << ToHex(version->crc);
    uint64_t bytes = 0;
    for (const auto& segment : version->segments) {
      bytes += segment->body.size();
    }
    os << " bytes=" << bytes << "  " << version->change << "\n";
  }
  return os.str();
}

std::string MkbVersionStore::Serialize() const {
  const std::vector<std::shared_ptr<const MkbVersion>> versions = Versions();
  // Deduplicate shared segments: each unique segment is written once and
  // versions reference it by table index.
  std::vector<const MkbVersionSegment*> table;
  std::map<const MkbVersionSegment*, size_t> index;
  for (const auto& version : versions) {
    for (const auto& segment : version->segments) {
      if (index.emplace(segment.get(), table.size()).second) {
        table.push_back(segment.get());
      }
    }
  }
  std::ostringstream os;
  for (size_t i = 0; i < table.size(); ++i) {
    const MkbVersionSegment& segment = *table[i];
    os << "SEGMENT " << i << " " << segment.name << " "
       << segment.body.size() << " " << ToHex(segment.crc) << "\n"
       << segment.body << "\n";
  }
  for (const auto& version : versions) {
    os << "VERSION " << version->id << " " << version->parent << " "
       << ToHex(version->crc) << " SEGS";
    for (const auto& segment : version->segments) {
      os << " " << index.at(segment.get());
    }
    os << " CHANGE " << version->change << "\n";
  }
  return os.str();
}

Result<MkbVersionStore> MkbVersionStore::Deserialize(std::string_view text) {
  std::vector<std::shared_ptr<const MkbVersionSegment>> table;
  std::vector<std::shared_ptr<const MkbVersion>> versions;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string line(text.substr(pos, eol - pos));
    // A final line without '\n' puts eol at text.size(); don't step past
    // the end (the unsigned `text.size() - pos` below would underflow).
    pos = std::min(eol + 1, text.size());
    if (Trim(line).empty()) continue;
    std::istringstream is(line);
    std::string keyword;
    is >> keyword;
    if (keyword == "SEGMENT") {
      std::string index_word, name, len_word, crc_word;
      if (!(is >> index_word >> name >> len_word >> crc_word)) {
        return Status::ParseError("VERSIONS: malformed SEGMENT header: " +
                                  line);
      }
      uint64_t index = 0, len = 0;
      uint32_t crc = 0;
      if (!ParseU64(index_word, &index) || !ParseU64(len_word, &len) ||
          !ParseHex32(crc_word, &crc)) {
        return Status::ParseError("VERSIONS: malformed SEGMENT header: " +
                                  line);
      }
      if (index != table.size()) {
        return Status::ParseError("VERSIONS: SEGMENT index " + index_word +
                                  " out of sequence");
      }
      if (len > text.size() - pos) {
        return Status::ParseError("VERSIONS: SEGMENT " + index_word +
                                  " length " + len_word +
                                  " overruns the section");
      }
      auto segment = std::make_shared<MkbVersionSegment>();
      segment->name = name;
      segment->body = std::string(text.substr(pos, len));
      segment->crc = crc;
      if (Crc32(segment->body) != crc) {
        return Status::ParseError("VERSIONS: SEGMENT " + index_word + " (" +
                                  name + ") fails its checksum");
      }
      pos += len;
      // Strict framing: the body must be immediately newline-terminated.
      // A flipped separator byte is corruption, not tolerable whitespace —
      // the mutation-fuzz suite demands every single-byte flip is caught.
      if (pos < text.size()) {
        if (text[pos] != '\n') {
          return Status::ParseError("VERSIONS: SEGMENT " + index_word +
                                    " body is not newline-terminated");
        }
        ++pos;
      }
      table.push_back(std::move(segment));
    } else if (keyword == "VERSION") {
      std::string id_word, parent_word, crc_word, segs_keyword;
      if (!(is >> id_word >> parent_word >> crc_word >> segs_keyword) ||
          segs_keyword != "SEGS") {
        return Status::ParseError("VERSIONS: malformed VERSION line: " + line);
      }
      uint64_t id = 0, parent = 0;
      uint32_t crc = 0;
      if (!ParseU64(id_word, &id) || !ParseU64(parent_word, &parent) ||
          !ParseHex32(crc_word, &crc)) {
        return Status::ParseError("VERSIONS: malformed VERSION line: " + line);
      }
      auto node = std::make_shared<MkbVersion>();
      node->id = id;
      node->parent = parent;
      node->crc = crc;
      std::string word;
      while (is >> word) {
        if (word == "CHANGE") break;
        uint64_t seg_index = 0;
        if (!ParseU64(word, &seg_index) || seg_index >= table.size()) {
          return Status::ParseError("VERSIONS: VERSION " + id_word +
                                    " references unknown segment " + word);
        }
        node->segments.push_back(table[seg_index]);
      }
      if (word != "CHANGE") {
        return Status::ParseError("VERSIONS: VERSION " + id_word +
                                  " missing CHANGE");
      }
      std::string change;
      std::getline(is, change);
      // Strip only the single separator space and keep the rest verbatim:
      // trimming would also eat a flipped trailing separator byte before
      // the version checksum could catch it.
      if (!change.empty() && change.front() == ' ') change.erase(0, 1);
      node->change = std::move(change);
      if (node->segments.size() != kNumVersionSegments) {
        return Status::ParseError("VERSIONS: VERSION " + id_word + " has " +
                                  std::to_string(node->segments.size()) +
                                  " segments, want " +
                                  std::to_string(kNumVersionSegments));
      }
      for (size_t s = 0; s < kNumVersionSegments; ++s) {
        if (node->segments[s]->name != kVersionSegmentNames[s]) {
          return Status::ParseError(
              "VERSIONS: VERSION " + id_word + " segment " +
              std::to_string(s) + " is '" + node->segments[s]->name +
              "', want '" + kVersionSegmentNames[s] + "'");
        }
      }
      if (id != versions.size()) {
        return Status::ParseError("VERSIONS: VERSION " + id_word +
                                  " out of sequence");
      }
      const uint64_t expected_parent = id == 0 ? 0 : id - 1;
      if (parent != expected_parent) {
        return Status::ParseError("VERSIONS: VERSION " + id_word +
                                  " parent link " + parent_word + " != " +
                                  std::to_string(expected_parent));
      }
      if (VersionCrc(*node) != crc) {
        return Status::ParseError("VERSIONS: VERSION " + id_word +
                                  " fails its version checksum");
      }
      versions.push_back(std::move(node));
    } else {
      return Status::ParseError("VERSIONS: unexpected line: " + line);
    }
  }
  if (versions.empty()) {
    return Status::ParseError("VERSIONS: section holds no versions");
  }
  MkbVersionStore store;
  std::string tip_text;
  for (size_t i = 0; i < 4; ++i) {
    tip_text += versions.back()->segments[i]->body;
  }
  Result<Mkb> tip_mkb = LoadMkb(tip_text);
  if (!tip_mkb.ok()) {
    return Status::ParseError("VERSIONS: tip MISD segments do not reparse: " +
                              tip_mkb.status().ToString());
  }
  store.versions_ = std::move(versions);
  store.tip_mkb_ = std::make_shared<const Mkb>(tip_mkb.MoveValue());
  return store;
}

bool MkbVersionStore::CorruptSegmentForTesting(uint64_t id, size_t segment,
                                               size_t byte_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= versions_.size()) return false;
  if (segment >= versions_[id]->segments.size()) return false;
  const MkbVersionSegment& victim = *versions_[id]->segments[segment];
  if (byte_offset >= victim.body.size()) return false;
  auto corrupt_segment = std::make_shared<MkbVersionSegment>(victim);
  corrupt_segment->body[byte_offset] =
      static_cast<char>(corrupt_segment->body[byte_offset] ^ 0x40);
  auto corrupt_version = std::make_shared<MkbVersion>(*versions_[id]);
  corrupt_version->segments[segment] = std::move(corrupt_segment);
  // The node keeps its recorded crcs, which no longer match the body — the
  // scrubber must flag both the segment and the version checksum.
  versions_[id] = std::move(corrupt_version);
  return true;
}

}  // namespace eve
