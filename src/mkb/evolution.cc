#include "mkb/evolution.h"

#include <algorithm>

namespace eve {

namespace {

bool ExprMentionsAttribute(const Expr& expr, const AttributeRef& attr) {
  std::vector<AttributeRef> cols;
  expr.CollectColumns(&cols);
  return std::find(cols.begin(), cols.end(), attr) != cols.end();
}

// True if `clause` relates the two endpoint relations of a JC (touches
// both sides).
bool ClauseCrosses(const Expr& clause, const std::string& lhs,
                   const std::string& rhs) {
  std::vector<AttributeRef> cols;
  clause.CollectColumns(&cols);
  bool touches_lhs = false;
  bool touches_rhs = false;
  for (const AttributeRef& ref : cols) {
    touches_lhs = touches_lhs || ref.relation == lhs;
    touches_rhs = touches_rhs || ref.relation == rhs;
  }
  return touches_lhs && touches_rhs;
}

AttributeRef RenameRelationInRef(const AttributeRef& ref,
                                 const std::string& old_name,
                                 const std::string& new_name) {
  if (ref.relation == old_name) return AttributeRef{new_name, ref.attribute};
  return ref;
}

AttributeRef RenameAttributeInRef(const AttributeRef& ref,
                                  const AttributeRef& old_attr,
                                  const std::string& new_name) {
  if (ref == old_attr) return AttributeRef{ref.relation, new_name};
  return ref;
}

// Copies constraints from `src` into `dst.mkb`, applying `keep` and
// `rewrite` (either may be identity). `keep_jc_clause` filters individual
// JC clauses; a JC that loses its crossing clauses is dropped.
struct CopyFilters {
  std::function<bool(const JoinConstraint&)> keep_jc = nullptr;
  std::function<bool(const ExprPtr&)> keep_jc_clause = nullptr;
  std::function<bool(const FunctionOfConstraint&)> keep_fc = nullptr;
  std::function<bool(const PCConstraint&)> keep_pc = nullptr;
  std::function<ExprPtr(const ExprPtr&)> rewrite_expr = nullptr;
  std::function<AttributeRef(const AttributeRef&)> rewrite_ref = nullptr;
  std::function<std::string(const std::string&)> rewrite_relation = nullptr;
};

Status CopyConstraints(const Mkb& src, const CopyFilters& filters,
                       MkbEvolutionReport* report) {
  auto rewrite_expr = [&](const ExprPtr& e) {
    return filters.rewrite_expr ? filters.rewrite_expr(e) : e;
  };
  auto rewrite_ref = [&](const AttributeRef& r) {
    return filters.rewrite_ref ? filters.rewrite_ref(r) : r;
  };
  auto rewrite_relation = [&](const std::string& r) {
    return filters.rewrite_relation ? filters.rewrite_relation(r) : r;
  };

  for (const JoinConstraint& jc : src.join_constraints()) {
    if (filters.keep_jc && !filters.keep_jc(jc)) {
      report->dropped_constraints.push_back(jc.id);
      continue;
    }
    JoinConstraint copy;
    copy.id = jc.id;
    copy.lhs = rewrite_relation(jc.lhs);
    copy.rhs = rewrite_relation(jc.rhs);
    bool weakened = false;
    for (const ExprPtr& clause : jc.clauses) {
      if (filters.keep_jc_clause && !filters.keep_jc_clause(clause)) {
        weakened = true;
        continue;
      }
      copy.clauses.push_back(rewrite_expr(clause));
    }
    const bool still_crosses = std::any_of(
        copy.clauses.begin(), copy.clauses.end(), [&](const ExprPtr& c) {
          return ClauseCrosses(*c, copy.lhs, copy.rhs);
        });
    if (!still_crosses) {
      report->dropped_constraints.push_back(jc.id);
      continue;
    }
    if (weakened) report->weakened_constraints.push_back(jc.id);
    EVE_RETURN_IF_ERROR(report->mkb.AddJoinConstraint(std::move(copy)));
  }

  for (const FunctionOfConstraint& fc : src.function_of_constraints()) {
    if (filters.keep_fc && !filters.keep_fc(fc)) {
      report->dropped_constraints.push_back(fc.id);
      continue;
    }
    FunctionOfConstraint copy;
    copy.id = fc.id;
    copy.target = rewrite_ref(fc.target);
    copy.source = rewrite_ref(fc.source);
    copy.fn = rewrite_expr(fc.fn);
    EVE_RETURN_IF_ERROR(report->mkb.AddFunctionOf(std::move(copy)));
  }

  for (const PCConstraint& pc : src.pc_constraints()) {
    if (filters.keep_pc && !filters.keep_pc(pc)) {
      report->dropped_constraints.push_back(pc.id);
      continue;
    }
    PCConstraint copy;
    copy.id = pc.id;
    copy.lhs_relation = rewrite_relation(pc.lhs_relation);
    copy.rhs_relation = rewrite_relation(pc.rhs_relation);
    for (const AttributeRef& ref : pc.lhs_attrs) {
      copy.lhs_attrs.push_back(rewrite_ref(ref));
    }
    for (const AttributeRef& ref : pc.rhs_attrs) {
      copy.rhs_attrs.push_back(rewrite_ref(ref));
    }
    copy.lhs_condition =
        pc.lhs_condition ? rewrite_expr(pc.lhs_condition) : nullptr;
    copy.rhs_condition =
        pc.rhs_condition ? rewrite_expr(pc.rhs_condition) : nullptr;
    copy.relation = pc.relation;
    EVE_RETURN_IF_ERROR(report->mkb.AddPCConstraint(std::move(copy)));
  }
  return Status::OK();
}

}  // namespace

Result<MkbEvolutionReport> EvolveMkb(const Mkb& mkb,
                                     const CapabilityChange& change) {
  MkbEvolutionReport report;
  report.mkb.catalog() = mkb.catalog();

  switch (change.kind) {
    case CapabilityChange::Kind::kAddRelation: {
      EVE_RETURN_IF_ERROR(report.mkb.AddRelation(change.new_relation));
      EVE_RETURN_IF_ERROR(CopyConstraints(mkb, CopyFilters{}, &report));
      return report;
    }
    case CapabilityChange::Kind::kAddAttribute: {
      EVE_RETURN_IF_ERROR(report.mkb.catalog().AddAttribute(
          change.relation, change.new_attribute));
      EVE_RETURN_IF_ERROR(CopyConstraints(mkb, CopyFilters{}, &report));
      return report;
    }
    case CapabilityChange::Kind::kDeleteRelation: {
      EVE_RETURN_IF_ERROR(report.mkb.catalog().DropRelation(change.relation));
      const std::string& rel = change.relation;
      CopyFilters filters;
      filters.keep_jc = [&](const JoinConstraint& jc) {
        return !jc.Involves(rel);
      };
      filters.keep_fc = [&](const FunctionOfConstraint& fc) {
        return fc.target.relation != rel && fc.source.relation != rel;
      };
      filters.keep_pc = [&](const PCConstraint& pc) {
        return pc.lhs_relation != rel && pc.rhs_relation != rel;
      };
      EVE_RETURN_IF_ERROR(CopyConstraints(mkb, filters, &report));
      return report;
    }
    case CapabilityChange::Kind::kDeleteAttribute: {
      EVE_RETURN_IF_ERROR(report.mkb.catalog().DropAttribute(
          change.relation, change.attribute));
      const AttributeRef attr{change.relation, change.attribute};
      CopyFilters filters;
      filters.keep_jc_clause = [&](const ExprPtr& clause) {
        return !ExprMentionsAttribute(*clause, attr);
      };
      filters.keep_fc = [&](const FunctionOfConstraint& fc) {
        return fc.target != attr && fc.source != attr;
      };
      filters.keep_pc = [&](const PCConstraint& pc) {
        const auto mentions = [&](const std::vector<AttributeRef>& attrs) {
          return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
        };
        if (mentions(pc.lhs_attrs) || mentions(pc.rhs_attrs)) return false;
        if (pc.lhs_condition && ExprMentionsAttribute(*pc.lhs_condition, attr)) {
          return false;
        }
        if (pc.rhs_condition && ExprMentionsAttribute(*pc.rhs_condition, attr)) {
          return false;
        }
        return true;
      };
      EVE_RETURN_IF_ERROR(CopyConstraints(mkb, filters, &report));
      return report;
    }
    case CapabilityChange::Kind::kRenameRelation: {
      EVE_RETURN_IF_ERROR(report.mkb.catalog().RenameRelation(
          change.relation, change.new_name));
      const std::string old_name = change.relation;
      const std::string new_name = change.new_name;
      CopyFilters filters;
      filters.rewrite_relation = [=](const std::string& rel) {
        return rel == old_name ? new_name : rel;
      };
      filters.rewrite_ref = [=](const AttributeRef& ref) {
        return RenameRelationInRef(ref, old_name, new_name);
      };
      filters.rewrite_expr = [=](const ExprPtr& expr) {
        return expr->TransformColumns([=](const AttributeRef& ref) {
          return RenameRelationInRef(ref, old_name, new_name);
        });
      };
      EVE_RETURN_IF_ERROR(CopyConstraints(mkb, filters, &report));
      return report;
    }
    case CapabilityChange::Kind::kRenameAttribute: {
      EVE_RETURN_IF_ERROR(report.mkb.catalog().RenameAttribute(
          change.relation, change.attribute, change.new_name));
      const AttributeRef old_attr{change.relation, change.attribute};
      const std::string new_name = change.new_name;
      CopyFilters filters;
      filters.rewrite_ref = [=](const AttributeRef& ref) {
        return RenameAttributeInRef(ref, old_attr, new_name);
      };
      filters.rewrite_expr = [=](const ExprPtr& expr) {
        return expr->TransformColumns([=](const AttributeRef& ref) {
          return RenameAttributeInRef(ref, old_attr, new_name);
        });
      };
      EVE_RETURN_IF_ERROR(CopyConstraints(mkb, filters, &report));
      return report;
    }
  }
  return Status::Internal("unexpected capability change kind");
}

}  // namespace eve
