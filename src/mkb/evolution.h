// Step 1 of the EVE strategy (paper Sec. 4): evolving the MKB under a
// capability change — dropping or rewriting affected MISD descriptions.

#ifndef EVE_MKB_EVOLUTION_H_
#define EVE_MKB_EVOLUTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mkb/capability_change.h"
#include "mkb/mkb.h"

namespace eve {

struct MkbEvolutionReport {
  Mkb mkb;  // MKB' — the evolved meta-knowledge base
  // Constraint ids removed entirely.
  std::vector<std::string> dropped_constraints;
  // Join-constraint ids that survived with some clauses removed
  // (delete-attribute only).
  std::vector<std::string> weakened_constraints;
};

// Produces MKB' from `mkb` under `change`:
//  * delete-relation R: drop R's description and every JC/F/PC touching R;
//  * delete-attribute R.A: remove A from R's schema; drop F and PC
//    constraints touching R.A; remove JC clauses mentioning R.A and drop a
//    JC entirely when no clause relating its two relations remains;
//  * rename-relation / rename-attribute: rewrite all references in place;
//  * add-relation / add-attribute: extend the catalog (no constraints are
//    inferred automatically).
Result<MkbEvolutionReport> EvolveMkb(const Mkb& mkb,
                                     const CapabilityChange& change);

}  // namespace eve

#endif  // EVE_MKB_EVOLUTION_H_
