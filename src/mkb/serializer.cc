#include "mkb/serializer.h"

#include <sstream>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace eve {

namespace {

std::string_view SetRelationKeyword(SetRelation relation) {
  switch (relation) {
    case SetRelation::kProperSubset:
      return "PROPER_SUBSET";
    case SetRelation::kSubset:
      return "SUBSET";
    case SetRelation::kEqual:
      return "EQUAL";
    case SetRelation::kSuperset:
      return "SUPERSET";
    case SetRelation::kProperSuperset:
      return "PROPER_SUPERSET";
  }
  return "?";
}

Result<SetRelation> SetRelationFromKeyword(std::string_view keyword) {
  const std::string lower = ToLower(keyword);
  if (lower == "proper_subset") return SetRelation::kProperSubset;
  if (lower == "subset") return SetRelation::kSubset;
  if (lower == "equal") return SetRelation::kEqual;
  if (lower == "superset") return SetRelation::kSuperset;
  if (lower == "proper_superset") return SetRelation::kProperSuperset;
  return Status::ParseError("unknown PC relation keyword: " +
                            std::string(keyword));
}

void AppendAttrList(std::ostringstream* os,
                    const std::vector<AttributeRef>& attrs) {
  *os << "(";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) *os << ", ";
    *os << QuoteIdentifier(attrs[i].attribute);
  }
  *os << ")";
}

// Token-cursor parser over the MISD statement stream. Expression payloads
// (JC conditions, function bodies, PC selections) are parsed by slicing
// the original text between token offsets and delegating to the E-SQL
// expression parser.
class MisdParser {
 public:
  MisdParser(std::string_view text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Status ParseInto(Mkb* mkb) {
    while (!Check(TokenType::kEnd)) {
      if (AcceptKeyword("SOURCE")) {
        EVE_RETURN_IF_ERROR(ParseSource(mkb));
      } else if (AcceptKeyword("JOIN")) {
        EVE_RETURN_IF_ERROR(ParseJoinConstraint(mkb));
      } else if (AcceptKeyword("FUNCTION")) {
        EVE_RETURN_IF_ERROR(ParseFunctionOf(mkb));
      } else if (AcceptKeyword("PC")) {
        EVE_RETURN_IF_ERROR(ParsePc(mkb));
      } else {
        return Error("expected SOURCE, JOIN, FUNCTION or PC");
      }
    }
    return Status::OK();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Check(TokenType type) const { return Peek().is(type); }
  bool Accept(TokenType type) {
    if (Check(type)) {
      Advance();
      return true;
    }
    return false;
  }
  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.is(TokenType::kIdentifier) && EqualsIgnoreCase(t.text, kw);
  }
  bool AcceptKeyword(std::string_view kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected keyword '" + std::string(kw) + "'");
    }
    return Status::OK();
  }
  Status Expect(TokenType type, std::string_view what) {
    if (!Accept(type)) return Error("expected " + std::string(what));
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!Check(TokenType::kIdentifier)) {
      return Error("expected " + std::string(what));
    }
    return Advance().text;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position) + " (near '" +
                              Peek().text + "')");
  }

  // True when the cursor sits at the start of a new MISD statement.
  bool AtStatementStart() const {
    if (Check(TokenType::kEnd)) return true;
    if (CheckKeyword("SOURCE") && CheckKeyword("RELATION", 2)) return true;
    if (CheckKeyword("JOIN") && CheckKeyword("CONSTRAINT", 1)) return true;
    if (CheckKeyword("FUNCTION") && Peek(1).is(TokenType::kIdentifier)) {
      return true;
    }
    if (CheckKeyword("PC") && Peek(1).is(TokenType::kIdentifier) &&
        Peek(2).is(TokenType::kIdentifier)) {
      return true;
    }
    return false;
  }

  // Consumes tokens until the next statement start and returns the raw
  // text slice they cover (for re-parsing as an expression).
  std::string_view SliceUntilNextStatement() {
    const size_t begin = Peek().position;
    size_t end = begin;
    while (!Check(TokenType::kEnd) && !AtStatementStart()) {
      const Token& t = Advance();
      end = t.position + t.text.size();
      // Account for quoting/literal syntax not included in Token::text.
      if (text_[t.position] == '"' || text_[t.position] == '\'') {
        end = t.position;
        // Scan forward to the closing quote in the raw text.
        const char quote = text_[t.position];
        size_t i = t.position + 1;
        while (i < text_.size()) {
          if (text_[i] == quote) {
            if (quote == '\'' && i + 1 < text_.size() &&
                text_[i + 1] == '\'') {
              i += 2;
              continue;
            }
            break;
          }
          ++i;
        }
        end = i + 1;
      }
    }
    return text_.substr(begin, end - begin);
  }

  Status ParseSource(Mkb* mkb) {
    RelationDef def;
    EVE_ASSIGN_OR_RETURN(def.source, ExpectIdentifier("source name"));
    EVE_RETURN_IF_ERROR(ExpectKeyword("RELATION"));
    EVE_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("relation name"));
    EVE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    std::vector<AttributeDef> attrs;
    do {
      AttributeDef attr;
      EVE_ASSIGN_OR_RETURN(attr.name, ExpectIdentifier("attribute name"));
      EVE_ASSIGN_OR_RETURN(const std::string type_name,
                           ExpectIdentifier("attribute type"));
      EVE_ASSIGN_OR_RETURN(attr.type, DataTypeFromString(type_name));
      attrs.push_back(std::move(attr));
    } while (Accept(TokenType::kComma));
    EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    EVE_ASSIGN_OR_RETURN(def.schema, Schema::Create(std::move(attrs)));
    if (AcceptKeyword("ORDER")) {
      EVE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      EVE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      do {
        EVE_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("ordered attribute"));
        def.ordered_by.push_back(std::move(name));
      } while (Accept(TokenType::kComma));
      EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    return mkb->AddRelation(std::move(def));
  }

  Status ParseJoinConstraint(Mkb* mkb) {
    EVE_RETURN_IF_ERROR(ExpectKeyword("CONSTRAINT"));
    JoinConstraint jc;
    EVE_ASSIGN_OR_RETURN(jc.id, ExpectIdentifier("constraint id"));
    EVE_RETURN_IF_ERROR(ExpectKeyword("BETWEEN"));
    EVE_ASSIGN_OR_RETURN(jc.lhs, ExpectIdentifier("relation name"));
    EVE_RETURN_IF_ERROR(ExpectKeyword("AND"));
    EVE_ASSIGN_OR_RETURN(jc.rhs, ExpectIdentifier("relation name"));
    EVE_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    const std::string_view slice = SliceUntilNextStatement();
    EVE_ASSIGN_OR_RETURN(jc.clauses, ParseConjunction(slice));
    return mkb->AddJoinConstraint(std::move(jc));
  }

  Status ParseFunctionOf(Mkb* mkb) {
    FunctionOfConstraint fc;
    EVE_ASSIGN_OR_RETURN(fc.id, ExpectIdentifier("constraint id"));
    // target: Rel.Attr
    EVE_ASSIGN_OR_RETURN(const std::string rel,
                         ExpectIdentifier("target relation"));
    EVE_RETURN_IF_ERROR(Expect(TokenType::kDot, "'.'"));
    EVE_ASSIGN_OR_RETURN(const std::string attr,
                         ExpectIdentifier("target attribute"));
    fc.target = AttributeRef{rel, attr};
    EVE_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    const std::string_view slice = SliceUntilNextStatement();
    EVE_ASSIGN_OR_RETURN(fc.fn, ParseExpression(slice));
    std::vector<AttributeRef> sources;
    fc.fn->CollectColumns(&sources);
    if (sources.empty()) {
      return Error("function body references no source attribute");
    }
    fc.source = sources[0];
    return mkb->AddFunctionOf(std::move(fc));
  }

  Status ParsePcSide(std::string* relation, std::vector<AttributeRef>* attrs,
                     ExprPtr* condition) {
    EVE_ASSIGN_OR_RETURN(*relation, ExpectIdentifier("relation name"));
    EVE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      EVE_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("attribute name"));
      attrs->push_back(AttributeRef{*relation, std::move(name)});
    } while (Accept(TokenType::kComma));
    EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (AcceptKeyword("WHERE")) {
      // Parenthesized so the selection is self-delimiting.
      if (!Check(TokenType::kLParen)) {
        return Error("PC WHERE selection must be parenthesized");
      }
      const size_t begin = Peek().position;
      int depth = 0;
      size_t end = begin;
      do {
        const Token& t = Advance();
        if (t.is(TokenType::kLParen)) ++depth;
        if (t.is(TokenType::kRParen)) --depth;
        end = t.position + 1;
      } while (depth > 0 && !Check(TokenType::kEnd));
      if (depth != 0) return Error("unbalanced parentheses in PC WHERE");
      EVE_ASSIGN_OR_RETURN(*condition,
                           ParseExpression(text_.substr(begin, end - begin)));
    }
    return Status::OK();
  }

  Status ParsePc(Mkb* mkb) {
    PCConstraint pc;
    EVE_ASSIGN_OR_RETURN(pc.id, ExpectIdentifier("constraint id"));
    EVE_RETURN_IF_ERROR(
        ParsePcSide(&pc.lhs_relation, &pc.lhs_attrs, &pc.lhs_condition));
    EVE_ASSIGN_OR_RETURN(const std::string keyword,
                         ExpectIdentifier("PC relation keyword"));
    EVE_ASSIGN_OR_RETURN(pc.relation, SetRelationFromKeyword(keyword));
    EVE_RETURN_IF_ERROR(
        ParsePcSide(&pc.rhs_relation, &pc.rhs_attrs, &pc.rhs_condition));
    return mkb->AddPCConstraint(std::move(pc));
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string RenderRelationMisd(const RelationDef& def) {
  std::ostringstream os;
  os << "SOURCE " << QuoteIdentifier(def.source) << " RELATION "
     << QuoteIdentifier(def.name) << " (";
  for (size_t i = 0; i < def.schema.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(def.schema.attribute(i).name) << " "
       << DataTypeToString(def.schema.attribute(i).type);
  }
  os << ")";
  if (!def.ordered_by.empty()) {
    os << " ORDER BY (";
    for (size_t i = 0; i < def.ordered_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << QuoteIdentifier(def.ordered_by[i]);
    }
    os << ")";
  }
  return os.str();
}

std::array<std::string, 4> RenderMkbSegments(const Mkb& mkb) {
  std::array<std::string, 4> segments;
  {
    std::ostringstream os;
    for (const std::string& name : mkb.catalog().RelationNames()) {
      const RelationDef& def = *mkb.catalog().GetRelation(name).value();
      os << RenderRelationMisd(def) << "\n";
    }
    segments[0] = os.str();
  }
  {
    std::ostringstream os;
    for (const JoinConstraint& jc : mkb.join_constraints()) {
      os << "JOIN CONSTRAINT " << QuoteIdentifier(jc.id) << " BETWEEN "
         << QuoteIdentifier(jc.lhs) << " AND " << QuoteIdentifier(jc.rhs)
         << " WHERE ";
      for (size_t i = 0; i < jc.clauses.size(); ++i) {
        if (i > 0) os << " AND ";
        os << PrintExpression(*jc.clauses[i]);
      }
      os << "\n";
    }
    segments[1] = os.str();
  }
  {
    std::ostringstream os;
    for (const FunctionOfConstraint& fc : mkb.function_of_constraints()) {
      os << "FUNCTION " << QuoteIdentifier(fc.id) << " "
         << QuoteIdentifier(fc.target.relation) << "."
         << QuoteIdentifier(fc.target.attribute) << " = "
         << PrintExpression(*fc.fn) << "\n";
    }
    segments[2] = os.str();
  }
  {
    std::ostringstream os;
    for (const PCConstraint& pc : mkb.pc_constraints()) {
      std::ostringstream line;
      line << "PC " << QuoteIdentifier(pc.id) << " "
           << QuoteIdentifier(pc.lhs_relation) << " ";
      AppendAttrList(&line, pc.lhs_attrs);
      if (pc.lhs_condition != nullptr) {
        line << " WHERE (" << PrintExpression(*pc.lhs_condition) << ")";
      }
      line << " " << SetRelationKeyword(pc.relation) << " "
           << QuoteIdentifier(pc.rhs_relation) << " ";
      AppendAttrList(&line, pc.rhs_attrs);
      if (pc.rhs_condition != nullptr) {
        line << " WHERE (" << PrintExpression(*pc.rhs_condition) << ")";
      }
      os << line.str() << "\n";
    }
    segments[3] = os.str();
  }
  return segments;
}

std::string SaveMkb(const Mkb& mkb) {
  const std::array<std::string, 4> segments = RenderMkbSegments(mkb);
  std::string out = "-- MISD description (generated)\n";
  for (const std::string& segment : segments) out += segment;
  return out;
}

Result<Mkb> LoadMkb(std::string_view text) {
  Mkb mkb;
  EVE_RETURN_IF_ERROR(AppendMisd(&mkb, text));
  return mkb;
}

Status AppendMisd(Mkb* mkb, std::string_view text) {
  EVE_FAILPOINT(fp::kMisdAppendParse);
  EVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  MisdParser parser(text, std::move(tokens));
  return parser.ParseInto(mkb);
}

}  // namespace eve
