// EpochPtr<T>: RCU-style single-writer publication of immutable snapshots.
//
// The writer builds a fully-formed immutable T and publishes it with one
// atomic shared_ptr store; readers load the current pointer and keep the
// whole snapshot alive for as long as they hold it. Readers never wait for
// a writer's in-progress work (the expensive part — rendering the next
// snapshot — happens before the swap), and a published snapshot can never
// be observed half-built or torn.

#ifndef EVE_COMMON_EPOCH_PTR_H_
#define EVE_COMMON_EPOCH_PTR_H_

#include <atomic>
#include <memory>

namespace eve {

template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(std::shared_ptr<const T> initial)
      : current_(std::move(initial)) {}

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  // Reader side: pin the current snapshot. The returned shared_ptr keeps
  // the snapshot (and everything it owns) alive; a concurrent Publish only
  // swaps the pointer, so the pinned snapshot stays byte-stable.
  std::shared_ptr<const T> Pin() const { return current_.load(); }

  // Writer side: publish a new immutable snapshot. The previous snapshot
  // stays alive until its last pinned reader releases it.
  void Publish(std::shared_ptr<const T> next) {
    current_.store(std::move(next));
  }

 private:
  std::atomic<std::shared_ptr<const T>> current_;
};

}  // namespace eve

#endif  // EVE_COMMON_EPOCH_PTR_H_
