// Result<T>: a value-or-Status holder, the return type for fallible
// functions that produce a value (Arrow's arrow::Result idiom).

#ifndef EVE_COMMON_RESULT_H_
#define EVE_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace eve {

// Holds either a T or a non-OK Status. Constructing a Result from an OK
// Status is a programming error and aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // inside functions returning Result<T>.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  // Returns the held status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  // Accessors require ok(); violating that aborts (no exceptions).
  const T& value() const& {
    CheckOk();
    return std::get<T>(state_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(state_);
  }
  T&& MoveValue() {
    CheckOk();
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result accessed with error status: "
                << std::get<Status>(state_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<Status, T> state_;
};

}  // namespace eve

#define EVE_CONCAT_IMPL_(a, b) a##b
#define EVE_CONCAT_(a, b) EVE_CONCAT_IMPL_(a, b)

// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
// assigns the value to `lhs` (which may include a declaration).
#define EVE_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  EVE_ASSIGN_OR_RETURN_IMPL_(EVE_CONCAT_(_eve_result_, __LINE__), \
                             lhs, rexpr)

#define EVE_ASSIGN_OR_RETURN_IMPL_(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = result_name.MoveValue()

#endif  // EVE_COMMON_RESULT_H_
