#include "common/status.h"

namespace eve {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kViewDisabled:
      return "view_disabled";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace eve
