#include "common/cancellation.h"

#include <chrono>

namespace eve {
namespace {

class SteadyClockImpl : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

const Clock* SteadyClock() {
  static const SteadyClockImpl* const kClock = new SteadyClockImpl();
  return kClock;
}

std::string_view StopCauseToString(StopCause cause) {
  switch (cause) {
    case StopCause::kNone:
      return "none";
    case StopCause::kWorkBudget:
      return "work-budget";
    case StopCause::kDeadline:
      return "deadline";
    case StopCause::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

DeadlineToken DeadlineToken::Root(const DeadlineLimits& limits,
                                  const Clock* clock) {
  auto state = std::make_shared<State>();
  state->work_budget = limits.work_budget;
  state->deadline_micros = limits.deadline_micros;
  state->clock = clock != nullptr ? clock : SteadyClock();
  return DeadlineToken(std::move(state));
}

DeadlineToken DeadlineToken::Child(const DeadlineLimits& limits) const {
  auto state = std::make_shared<State>();
  state->parent = state_;
  state->work_budget = limits.work_budget;
  state->deadline_micros = limits.deadline_micros;
  state->clock = state_ != nullptr ? state_->clock : SteadyClock();
  return DeadlineToken(std::move(state));
}

bool DeadlineToken::RecordCause(State& state, StopCause cause) {
  StopCause none = StopCause::kNone;
  state.cause.compare_exchange_strong(none, cause,
                                      std::memory_order_relaxed);
  return false;
}

bool DeadlineToken::CheckLimits(State& state, uint64_t spent) {
  // Budget first: it is the deterministic limit, so when both a budget and
  // a wall deadline would fire on the same step, runs that only set the
  // budget and runs that set both agree on the recorded cause.
  if (state.work_budget != 0 && spent > state.work_budget) {
    return RecordCause(state, StopCause::kWorkBudget);
  }
  for (const State* s = &state; s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) {
      return RecordCause(state, StopCause::kCancelled);
    }
  }
  if (state.deadline_micros != 0 &&
      state.clock->NowMicros() >= state.deadline_micros) {
    return RecordCause(state, StopCause::kDeadline);
  }
  return true;
}

bool DeadlineToken::Spend(uint64_t units) const {
  if (state_ == nullptr) return true;
  State& s = *state_;
  if (s.cause.load(std::memory_order_relaxed) != StopCause::kNone) {
    return false;
  }
  // fetch_add returns the pre-add value; `spent` counts this step too, so
  // a budget of B admits exactly B unit steps: step B+1 observes
  // spent == B+1 > B and is refused before it runs.
  const uint64_t spent =
      s.work_spent.fetch_add(units, std::memory_order_relaxed) + units;
  return CheckLimits(s, spent);
}

bool DeadlineToken::Expired() const {
  if (state_ == nullptr) return false;
  State& s = *state_;
  if (s.cause.load(std::memory_order_relaxed) != StopCause::kNone) {
    return true;
  }
  return !CheckLimits(s, s.work_spent.load(std::memory_order_relaxed));
}

void DeadlineToken::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancelled.store(true, std::memory_order_relaxed);
}

StopCause DeadlineToken::cause() const {
  if (state_ == nullptr) return StopCause::kNone;
  return state_->cause.load(std::memory_order_relaxed);
}

uint64_t DeadlineToken::work_spent() const {
  if (state_ == nullptr) return 0;
  return state_->work_spent.load(std::memory_order_relaxed);
}

uint64_t DeadlineToken::work_budget() const {
  return state_ == nullptr ? 0 : state_->work_budget;
}

uint64_t DeadlineToken::deadline_micros() const {
  return state_ == nullptr ? 0 : state_->deadline_micros;
}

Status DeadlineToken::ToStatus(std::string_view what) const {
  const StopCause c = cause();
  if (c == StopCause::kNone) return Status::OK();
  std::string msg(what);
  msg += " stopped: ";
  msg += StopCauseToString(c);
  if (c == StopCause::kWorkBudget) {
    msg += " (budget " + std::to_string(work_budget()) + " units)";
  }
  return Status::ResourceExhausted(std::move(msg));
}

}  // namespace eve
