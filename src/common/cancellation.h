// Deadline propagation and cooperative cancellation for the
// synchronization pipeline. A DeadlineToken bounds one unit of work (a
// batch, a change, a per-view search) by
//   (a) a deterministic logical-work budget, spent one enumeration step at
//       a time, so the same budget stops the same search at exactly the
//       same step regardless of wall-clock speed or sync parallelism, and
//   (b) a best-effort wall-clock deadline read from a pluggable Clock
//       (SteadyClock in production, ManualClock in tests). Wall-clock
//       expiry is inherently nondeterministic and must never gate anything
//       whose bytes are journaled or compared across runs.
// Tokens form a parent->child tree: cancelling a batch token cancels every
// per-view child at its next safe point (the next Spend/Expired check).
// Expiry is sticky — the first cause observed is recorded once and every
// later check fails fast — which is what bounds overshoot to at most one
// enumeration step past the limit.

#ifndef EVE_COMMON_CANCELLATION_H_
#define EVE_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace eve {

// Monotonic time source. NowMicros readings must be nondecreasing.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowMicros() const = 0;
};

// Process-wide std::chrono::steady_clock-backed Clock.
const Clock* SteadyClock();

// Hand-advanced Clock for deterministic deadline tests.
class ManualClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_relaxed);
  }
  void Advance(uint64_t micros) {
    now_micros_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Set(uint64_t micros) {
    now_micros_.store(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_micros_{0};
};

// Why a token stopped admitting work. kNone means "still live".
enum class StopCause {
  kNone = 0,
  kWorkBudget,  // the deterministic logical-work budget ran out
  kDeadline,    // the wall-clock deadline passed (best-effort)
  kCancelled,   // this token or an ancestor was cancelled explicitly
};

// Stable lower-case name ("none", "work-budget", "deadline", "cancelled").
std::string_view StopCauseToString(StopCause cause);

// Limits for one token. Zero means "no limit" for both fields.
struct DeadlineLimits {
  // Logical enumeration steps this token may spend. Deterministic.
  uint64_t work_budget = 0;
  // Absolute Clock reading (micros) past which the token expires.
  uint64_t deadline_micros = 0;
};

// Copyable handle on shared expiry state. A default-constructed token is
// the null token: it never expires, spends for free, and Cancel() is a
// no-op — layers that receive no token pay (almost) nothing. All methods
// are safe to call concurrently from many threads, but determinism of the
// work budget additionally requires that one token's Spend calls happen on
// one thread (the per-view child pattern used by EveSystem).
class DeadlineToken {
 public:
  DeadlineToken() = default;

  // A root token with its own limits. `clock` is read only when
  // deadline_micros != 0; defaults to SteadyClock().
  static DeadlineToken Root(const DeadlineLimits& limits,
                            const Clock* clock = nullptr);

  // A child sharing this token's cancellation scope but carrying its own
  // budget/deadline and its own work counter. Child(…) on the null token
  // behaves like Root(…).
  DeadlineToken Child(const DeadlineLimits& limits) const;

  bool valid() const { return state_ != nullptr; }

  // The hot-path check: records `units` of work and returns true while
  // work may continue. Returns false — permanently — once any limit is
  // hit. Callers check BEFORE performing the step, so total performed
  // work never exceeds the budget, and overshoot past a wall deadline is
  // at most one step.
  bool Spend(uint64_t units = 1) const;

  // True once any limit fired (checks limits; does not spend).
  bool Expired() const;

  // Cancels this token and, transitively via the parent chain, every
  // descendant (observed at their next Spend/Expired check).
  void Cancel() const;

  // First cause observed; kNone while live (or for the null token).
  StopCause cause() const;

  uint64_t work_spent() const;
  uint64_t work_budget() const;
  uint64_t deadline_micros() const;

  // ResourceExhausted status describing why `what` was stopped.
  Status ToStatus(std::string_view what) const;

 private:
  struct State {
    std::shared_ptr<State> parent;
    const Clock* clock = nullptr;
    uint64_t work_budget = 0;
    uint64_t deadline_micros = 0;
    std::atomic<uint64_t> work_spent{0};
    std::atomic<bool> cancelled{false};
    // Sticky first cause; written once with compare-exchange.
    std::atomic<StopCause> cause{StopCause::kNone};
  };

  explicit DeadlineToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  // Records `cause` if none is recorded yet; returns false always (the
  // token is expired either way).
  static bool RecordCause(State& state, StopCause cause);
  // Limit evaluation shared by Spend and Expired. `spent` is the counter
  // value to judge the budget against.
  static bool CheckLimits(State& state, uint64_t spent);

  std::shared_ptr<State> state_;
};

}  // namespace eve

#endif  // EVE_COMMON_CANCELLATION_H_
